/**
 * @file
 * Ablation 2 (DESIGN.md): mapping-invariant per-action energy (paper
 * Sec. III-D3 and Algorithm 1). CiMLoop precomputes per-action energies
 * once per (architecture, layer) and reuses them across mappings; this
 * bench measures the same search loop with and without that caching, as
 * a function of mappings per layer — the mechanism behind Table II's
 * "faster for more mappings" column.
 */
#include "common.hh"

#include <chrono>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

using Clock = std::chrono::steady_clock;

double
runSearch(const engine::Arch& arch, const workload::Layer& layer,
          int mappings, bool cache_per_action_table)
{
    Clock::time_point start = Clock::now();
    volatile double sink = 0.0;

    engine::PerActionTable cached = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, cached.extLayer, {.seed = 3});
    for (int m = 0; m < mappings; ++m) {
        std::optional<mapping::Mapping> mp = mapper.next();
        if (!mp)
            break;
        if (cache_per_action_table) {
            sink = sink + engine::evaluate(arch, cached, *mp).energyPj;
        } else {
            // The ablated pipeline: redo the data-value-dependent
            // modeling (profile, encode, slice, every plug-in) for every
            // mapping, as a naive per-mapping evaluator would.
            engine::PerActionTable fresh = engine::precompute(arch, layer);
            sink = sink + engine::evaluate(arch, fresh, *mp).energyPj;
        }
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main()
{
    benchutil::banner("Ablation: per-action amortization",
                      "mapping search time with vs without the cached "
                      "per-(arch, layer) energy table");

    engine::Arch arch = macros::baseMacro();
    workload::Layer layer = workload::resnet18().layers[8];

    benchutil::Table t({"mappings", "cached (s)", "recomputed (s)",
                        "speedup"});
    double last_speedup = 0.0;
    for (int mappings : {10, 100, 1000, 5000}) {
        double cached = runSearch(arch, layer, mappings, true);
        double fresh = runSearch(arch, layer, mappings, false);
        last_speedup = fresh / cached;
        t.row({std::to_string(mappings), benchutil::num(cached),
               benchutil::num(fresh), benchutil::num(last_speedup, 3)});
    }
    t.print();

    std::printf("\nthe per-action table is mapping-invariant (paper Sec. "
                "III-D3), so its cost amortizes: at 5000 mappings the "
                "cached pipeline is %.0fx faster — this is the mechanism "
                "behind Table II's many-mappings column\n",
                last_speedup);
    return 0;
}
