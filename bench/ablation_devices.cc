/**
 * @file
 * Device exploration (paper Sec. III-C2: NVMExplorer memory-cell swap):
 * the same Macro-C-style architecture with its cells re-targeted to each
 * device preset (ReRAM, PCM, STT-MRAM, FeFET, SRAM), run on ResNet18.
 * Shows the device-level tradeoffs the full stack exposes: read energy,
 * programming cost, multi-level-cell capability (fewer cells per
 * weight), and leakage.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/models/devices.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

int
main()
{
    benchutil::banner("Device exploration",
                      "one macro, five memory-cell technologies "
                      "(ResNet18)");

    workload::Network net = workload::resnet18();

    benchutil::Table t({"device", "cell class", "bits/cell", "pJ/MAC",
                        "cells pJ/MAC", "area mm^2"});
    for (const std::string& name : models::devicePresetNames()) {
        const models::DevicePreset& preset = models::devicePreset(name);

        macros::MacroParams p = macros::macroCDefaults();
        p.cellBits = std::min(p.cellBits, preset.maxBitsPerCell);
        engine::Arch arch = macros::macroC(p);
        models::applyDevicePreset(arch.hierarchy, "cells", preset);
        arch.rep.cellBits = p.cellBits;

        double energy = 0.0, cells_energy = 0.0, macs = 0.0, area = 0.0;
        int cells_idx = arch.hierarchy.indexOf("cells");
        for (int idx : {2, 8, 14, 19}) {
            engine::SearchResult sr =
                engine::searchMappings(arch, net.layers[idx], 120, 1);
            energy += sr.best.energyPj;
            cells_energy += sr.best.nodeEnergyPj[cells_idx];
            macs += sr.best.macs;
            area = sr.best.areaUm2 / 1e6;
        }
        t.row({preset.name, preset.cellClass,
               std::to_string(p.cellBits), benchutil::num(energy / macs),
               benchutil::num(cells_energy / macs),
               benchutil::num(area)});
    }
    t.print();

    std::printf("\nthe full-stack view exposes device tradeoffs: "
                "multi-level cells (ReRAM/PCM/FeFET) store a weight in "
                "fewer cells; STT-MRAM's low on/off ratio burns read "
                "current; SRAM cells avoid programming cost but take "
                "~8x the area and leak\n");
    return 0;
}
