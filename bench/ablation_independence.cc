/**
 * @file
 * Ablation 1 (DESIGN.md): the independent per-tensor PMF assumption
 * (paper Sec. III-D1). CiMLoop stores O(N*T) independent distributions
 * instead of an O(N^T) joint distribution; the paper argues this is
 * "sufficient to get high accuracy".
 *
 * We sweep the strength of the joint structure in the ground-truth
 * tensors (a shared per-activation contrast factor, the kind of
 * correlation real activation tensors have). At zero correlation the
 * statistical model is exact by construction; as correlation grows, its
 * error grows only mildly (the nonlinear value-aware ADC term), while
 * the fixed-energy baseline stays an order of magnitude worse — the
 * quantitative backing for the paper's design choice.
 */
#include "common.hh"

#include <cmath>

#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

int
main()
{
    benchutil::banner("Ablation: independence assumption",
                      "statistical-model error vs operand correlation "
                      "strength (paper Sec. III-D1)");

    workload::Network net = workload::resnet18();
    std::vector<workload::Layer> layers;
    for (int idx : {3, 8, 13, 18}) {
        workload::Layer l = net.layers[idx];
        l.dims[workload::dimIndex(workload::Dim::P)] =
            std::min<std::int64_t>(l.size(workload::Dim::P), 7);
        l.dims[workload::dimIndex(workload::Dim::Q)] =
            std::min<std::int64_t>(l.size(workload::Dim::Q), 7);
        layers.push_back(l);
    }

    benchutil::Table t({"contrast log-std", "statistical avg err %",
                        "fixed-energy avg err %"});
    double err_at_zero = 0.0, err_at_max = 0.0;
    for (double contrast : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        refsim::RefSimConfig cfg;
        cfg.rows = 128;
        cfg.cols = 128;
        cfg.maxVectors = 32;
        cfg.contrastStd = contrast;

        std::vector<refsim::RefSimResult> truth;
        std::vector<dist::OperandProfile> profiles;
        for (const workload::Layer& l : layers) {
            dist::OperandProfile prof;
            truth.push_back(refsim::simulateValueLevel(cfg, l, &prof));
            profiles.push_back(prof);
        }
        dist::OperandProfile avg = refsim::averageProfiles(profiles);

        double stat = 0.0, fixed = 0.0;
        for (std::size_t i = 0; i < layers.size(); ++i) {
            double tr = truth[i].totalPj();
            stat += benchutil::pctErr(
                refsim::estimateStatistical(cfg, layers[i], profiles[i])
                    .totalPj(),
                tr);
            fixed += benchutil::pctErr(
                refsim::estimateFixedEnergy(cfg, layers[i], avg).totalPj(),
                tr);
        }
        stat /= layers.size();
        fixed /= layers.size();
        if (contrast == 0.0)
            err_at_zero = stat;
        err_at_max = stat;
        t.row({benchutil::num(contrast, 3), benchutil::num(stat, 3),
               benchutil::num(fixed, 3)});
    }
    t.print();

    std::printf("\nindependence-assumption cost: statistical error grows "
                "from %.2f%% (independent operands) to %.2f%% at the "
                "strongest correlation — small compared to the "
                "fixed-energy baseline throughout, supporting the "
                "paper's O(N*T) independent-PMF design choice\n",
                err_at_zero, err_at_max);
    return 0;
}
