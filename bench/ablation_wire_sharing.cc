/**
 * @file
 * Ablation 3 (DESIGN.md): the hard wire-sharing rule of the container-
 * hierarchy (paper Sec. III-B1). A shared analog wire (spatial_reuse)
 * cannot carry distinct data, which restricts which dimensions may be
 * mapped spatially — the "mapping restriction" row of paper Fig. 3.
 *
 * This bench evaluates Macro A with the rule enforced, then with every
 * node idealized to flexible (NoC-like) interconnect, showing (1) how
 * many candidate mappings the rule rejects and (2) how much an idealized
 * model underestimates energy by multicasting where the silicon cannot.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

int
main()
{
    benchutil::banner("Ablation: wire-sharing constraints",
                      "Macro A with physical wire sharing vs idealized "
                      "flexible interconnect");

    workload::Network net = workload::resnet18();

    engine::Arch real = macros::macroA();
    engine::Arch ideal = macros::macroA();
    for (spec::SpecNode& node : ideal.hierarchy.nodes) {
        node.flexibleSpatial = true; // idealize every connection
        node.spatialDims.clear();    // and drop mapping restrictions
    }

    benchutil::Table t({"layer", "real pJ/MAC", "ideal pJ/MAC",
                        "underestimate", "real rejects", "ideal rejects"});
    double under_sum = 0.0;
    int n = 0;
    for (int idx : {1, 6, 12, 17, 20}) {
        const workload::Layer& layer = net.layers[idx];
        engine::SearchResult sr_real =
            engine::searchMappings(real, layer, 150, 1);
        engine::SearchResult sr_ideal =
            engine::searchMappings(ideal, layer, 150, 1);
        double rr = sr_real.best.energyPerMacPj();
        double ri = sr_ideal.best.energyPerMacPj();
        under_sum += rr / ri;
        ++n;
        t.row({layer.name, benchutil::num(rr), benchutil::num(ri),
               benchutil::num(rr / ri, 3) + "x",
               std::to_string(sr_real.invalid),
               std::to_string(sr_ideal.invalid)});
    }
    t.print();

    std::printf("\nignoring wire-level sharing constraints (as "
                "architecture-only models like plain Timeloop must) "
                "underestimates Macro A energy by %.2fx on average and "
                "admits mappings the silicon cannot execute — why the "
                "paper's circuit-level data-movement modeling matters\n",
                under_sum / n);
    return 0;
}
