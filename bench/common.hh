/**
 * @file
 * Shared helpers for the per-figure/table benchmark binaries: fixed-width
 * table printing and percent-error reporting, so every bench emits the
 * same style of rows/series the paper reports.
 */
#ifndef CIMLOOP_BENCH_COMMON_HH
#define CIMLOOP_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace benchutil {

/** Prints the experiment banner. */
inline void
banner(const std::string& id, const std::string& what)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("==================================================="
                "=========================\n");
}

/** Simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns)
        : cols(std::move(columns))
    {}

    /** Adds a row of pre-formatted cells (must match column count). */
    void
    row(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> widths(cols.size());
        for (std::size_t i = 0; i < cols.size(); ++i)
            widths[i] = cols[i].size();
        for (const auto& r : rows) {
            for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
                widths[i] = std::max(widths[i], r[i].size());
        }
        auto line = [&](const std::vector<std::string>& cells) {
            for (std::size_t i = 0; i < cols.size(); ++i) {
                std::string cell = i < cells.size() ? cells[i] : "";
                std::printf("%-*s  ", static_cast<int>(widths[i]),
                            cell.c_str());
            }
            std::printf("\n");
        };
        line(cols);
        std::string dashes;
        for (std::size_t i = 0; i < cols.size(); ++i)
            dashes += std::string(widths[i], '-') + "  ";
        std::printf("%s\n", dashes.c_str());
        for (const auto& r : rows)
            line(r);
    }

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

/** Formats a double with the given precision. */
inline std::string
num(double v, int precision = 3)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
}

/** Formats a percent error between model and reference. */
inline double
pctErr(double model, double reference)
{
    return reference != 0.0
        ? 100.0 * std::abs(model - reference) / std::abs(reference)
        : 0.0;
}

} // namespace benchutil

#endif // CIMLOOP_BENCH_COMMON_HH
