/**
 * @file
 * Accuracy-under-variation sweep: how well the statistical model tracks
 * the value-level ground truth as device faults and conductance
 * variation grow. For each (stuck rate, sigma) grid point the sweep
 * reports the truth-vs-model error and the energy delta the injected
 * faults cause relative to the fault-free truth — the robustness
 * counterpart of the paper's Fig. 6 accuracy claim.
 */
#include <cmath>
#include <vector>

#include "common.hh"

#include "cimloop/faults/faults.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

refsim::RefSimConfig
sweepConfig()
{
    refsim::RefSimConfig cfg;
    cfg.rows = 64;
    cfg.cols = 64;
    cfg.maxVectors = 24;
    return cfg;
}

std::vector<workload::Layer>
sweepLayers()
{
    workload::Network net = workload::resnet18();
    std::vector<workload::Layer> layers;
    for (int idx : {2, 5, 9, 14}) {
        workload::Layer l = net.layers[idx];
        // Shrink spatial extents so value-level simulation stays fast.
        l.dims[workload::dimIndex(workload::Dim::P)] = 4;
        l.dims[workload::dimIndex(workload::Dim::Q)] = 4;
        layers.push_back(l);
    }
    return layers;
}

} // namespace

int
main()
{
    benchutil::banner("fault_sweep",
                      "truth-vs-model accuracy and energy degradation "
                      "under device faults");

    const std::vector<workload::Layer> layers = sweepLayers();
    refsim::RefSimConfig clean_cfg = sweepConfig();

    // Fault-free truth per layer: the degradation baseline.
    std::vector<double> clean_truth;
    for (const workload::Layer& l : layers)
        clean_truth.push_back(
            refsim::simulateValueLevel(clean_cfg, l).totalPj());

    benchutil::Table table({"stuck_rate", "sigma", "mean |err| %",
                            "max |err| %", "mean dE %"});
    for (double stuck : {0.0, 0.01, 0.05}) {
        for (double sigma : {0.0, 0.1, 0.3, 0.5}) {
            refsim::RefSimConfig cfg = sweepConfig();
            cfg.faults.stuckOffRate = stuck / 2.0;
            cfg.faults.stuckOnRate = stuck / 2.0;
            cfg.faults.conductanceSigma = sigma;

            double err_sum = 0.0, err_max = 0.0, de_sum = 0.0;
            for (std::size_t i = 0; i < layers.size(); ++i) {
                dist::OperandProfile prof;
                refsim::RefSimResult truth =
                    refsim::simulateValueLevel(cfg, layers[i], &prof);
                refsim::RefSimResult model =
                    refsim::estimateStatistical(cfg, layers[i], prof);
                double err = std::abs(
                    model.totalPj() / truth.totalPj() - 1.0);
                err_sum += err;
                err_max = std::max(err_max, err);
                de_sum += truth.totalPj() / clean_truth[i] - 1.0;
            }
            double n = static_cast<double>(layers.size());
            table.row({benchutil::num(stuck), benchutil::num(sigma),
                       benchutil::num(err_sum / n * 100.0),
                       benchutil::num(err_max * 100.0),
                       benchutil::num(de_sum / n * 100.0)});
        }
    }
    table.print();
    std::printf("\nThe statistical perturbation matches the injected "
                "faults' first two moments\nexactly, so the model error "
                "stays in the clean few-percent band across the\ngrid "
                "while the energy delta tracks the fault severity.\n");
    return 0;
}
