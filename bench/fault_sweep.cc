/**
 * @file
 * Accuracy-under-variation sweep: how well the statistical model tracks
 * the value-level ground truth as device faults and conductance
 * variation grow. For each (stuck rate, sigma) grid point the sweep
 * reports the truth-vs-model error and the energy delta the injected
 * faults cause relative to the fault-free truth — the robustness
 * counterpart of the paper's Fig. 6 accuracy claim.
 *
 * The grid itself comes from cimloop::dse — the declarative spec
 * enumerates (fault_stuck_rate, conductance_sigma) points in the same
 * odometer order the old nested loops produced, and forEachPoint()
 * provides the keep-going execution; this bench only supplies the
 * refsim measurement per point.
 */
#include <cmath>
#include <vector>

#include "common.hh"

#include "cimloop/dse/dse.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

refsim::RefSimConfig
sweepConfig()
{
    refsim::RefSimConfig cfg;
    cfg.rows = 64;
    cfg.cols = 64;
    cfg.maxVectors = 24;
    return cfg;
}

std::vector<workload::Layer>
sweepLayers()
{
    workload::Network net = workload::resnet18();
    std::vector<workload::Layer> layers;
    for (int idx : {2, 5, 9, 14}) {
        workload::Layer l = net.layers[idx];
        // Shrink spatial extents so value-level simulation stays fast.
        l.dims[workload::dimIndex(workload::Dim::P)] = 4;
        l.dims[workload::dimIndex(workload::Dim::Q)] = 4;
        layers.push_back(l);
    }
    return layers;
}

/** One grid point's measurements. */
struct PointRow
{
    double stuck = 0.0;
    double sigma = 0.0;
    double meanErrPct = 0.0;
    double maxErrPct = 0.0;
    double meanDeltaEPct = 0.0;
};

} // namespace

int
main()
{
    benchutil::banner("fault_sweep",
                      "truth-vs-model accuracy and energy degradation "
                      "under device faults");

    const std::vector<workload::Layer> layers = sweepLayers();
    refsim::RefSimConfig clean_cfg = sweepConfig();

    // Fault-free truth per layer: the degradation baseline.
    std::vector<double> clean_truth;
    for (const workload::Layer& l : layers)
        clean_truth.push_back(
            refsim::simulateValueLevel(clean_cfg, l).totalPj());

    dse::SweepSpec spec;
    spec.name = "fault-grid";
    spec.addAxis("fault_stuck_rate", {0.0, 0.01, 0.05});
    spec.addAxis("conductance_sigma", {0.0, 0.1, 0.3, 0.5});

    std::vector<PointRow> rows(spec.pointCount());
    std::vector<dse::PointResult> statuses = dse::forEachPoint(
        spec, /*threads=*/1, [&](const dse::SweepPoint& point) {
            refsim::RefSimConfig cfg = sweepConfig();
            cfg.faults = point.faults;

            PointRow& row = rows[point.index];
            row.stuck = point.fieldValue("fault_stuck_rate");
            row.sigma = point.fieldValue("conductance_sigma");
            double err_sum = 0.0;
            for (std::size_t i = 0; i < layers.size(); ++i) {
                dist::OperandProfile prof;
                refsim::RefSimResult truth =
                    refsim::simulateValueLevel(cfg, layers[i], &prof);
                refsim::RefSimResult model =
                    refsim::estimateStatistical(cfg, layers[i], prof);
                double err = std::abs(
                    model.totalPj() / truth.totalPj() - 1.0);
                err_sum += err;
                row.maxErrPct = std::max(row.maxErrPct, err * 100.0);
                row.meanDeltaEPct +=
                    (truth.totalPj() / clean_truth[i] - 1.0) * 100.0;
            }
            double n = static_cast<double>(layers.size());
            row.meanErrPct = err_sum / n * 100.0;
            row.meanDeltaEPct /= n;
        });

    benchutil::Table table({"stuck_rate", "sigma", "mean |err| %",
                            "max |err| %", "mean dE %"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (statuses[i].status != dse::PointStatus::Ok) {
            std::printf("point #%zu [%s] %s: %s\n", i,
                        statuses[i].point.label(spec).c_str(),
                        dse::pointStatusName(statuses[i].status),
                        statuses[i].statusDetail.c_str());
            continue;
        }
        table.row({benchutil::num(rows[i].stuck),
                   benchutil::num(rows[i].sigma),
                   benchutil::num(rows[i].meanErrPct),
                   benchutil::num(rows[i].maxErrPct),
                   benchutil::num(rows[i].meanDeltaEPct)});
    }
    table.print();
    std::printf("\nThe statistical perturbation matches the injected "
                "faults' first two moments\nexactly, so the model error "
                "stays in the clean few-percent band across the\ngrid "
                "while the energy delta tracks the fault severity.\n");
    return 0;
}
