/**
 * @file
 * Reproduces paper Fig. 10 (+ Table III): per-component area breakdowns
 * of Macros A-D. Prints Table III's parameterized attributes first, then
 * each macro's component areas, and compares each macro's total against
 * the published macro area (reconstructed references, EXPERIMENTS.md).
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"

using namespace cimloop;

namespace {

struct AreaBreakdown
{
    double cells = 0.0, adc = 0.0, dac = 0.0, digital = 0.0,
           buffer = 0.0, other = 0.0;

    double
    total() const
    {
        return cells + adc + dac + digital + buffer + other;
    }
};

AreaBreakdown
measure(const engine::Arch& arch)
{
    // Area is mapping-invariant; any valid layer works.
    workload::Layer layer = workload::matmulLayer("mvm", 4, 16, 8);
    layer.network = "mvm";
    engine::PerActionTable table = engine::precompute(arch, layer);

    AreaBreakdown bd;
    for (std::size_t i = 0; i < arch.hierarchy.nodes.size(); ++i) {
        const std::string& name = arch.hierarchy.nodes[i].name;
        std::int64_t instances = 1;
        for (std::size_t j = 0; j <= i; ++j)
            instances *= arch.hierarchy.nodes[j].spatialFanout();
        double a = table.nodes[i].areaUm2 *
                   static_cast<double>(instances) / 1e6; // mm^2
        if (name == "cells" || name == "mac_units")
            bd.cells += a;
        else if (name == "adc")
            bd.adc += a;
        else if (name == "dac_bank")
            bd.dac += a;
        else if (name == "buffer" || name == "weight_bank")
            bd.buffer += a;
        else if (name == "shift_add" || name == "adder_tree" ||
                 name == "analog_adder" || name == "analog_accumulator")
            bd.digital += a;
        else
            bd.other += a;
    }
    return bd;
}

} // namespace

int
main()
{
    benchutil::banner("Table III + Fig. 10",
                      "macro attributes and area breakdowns (mm^2)");

    // Table III.
    benchutil::Table t3({"macro", "node (nm)", "cell", "in bits",
                         "wt bits", "array", "ADC bits"});
    t3.row({"A", "65", "SRAM", "1-8", "1-8", "768x768", "8"});
    t3.row({"B", "7", "SRAM", "4", "4", "64x64", "4"});
    t3.row({"C", "130", "ReRAM", "1-8", "analog", "256x256", "1-10"});
    t3.row({"D", "22", "SRAM", "8", "8", "512x128*", "8"});
    t3.print();
    std::printf("* activates a 64x128 subset at once\n\n");

    // Fig. 10: area breakdowns. Published totals (mm^2, approximate from
    // the papers) serve as reconstructed references.
    struct Ref
    {
        const char* kind;
        double published_mm2;
    };
    const Ref refs[] = {
        {"A", 5.0},   // Jia et al.: compute-in-memory region of the 8.56 mm^2 die
        {"B", 0.0032},// Sinangil et al.: 0.0032 mm^2 macro
        {"C", 6.1},   // Wan et al.: 6 mm^2 core
        {"D", 0.11},  // Wang et al.: ~0.1 mm^2 macro
    };

    benchutil::Table t({"macro", "cells", "ADC", "DAC", "digital",
                        "buffers", "total", "ref total", "err %"});
    double err_sum = 0.0;
    for (const Ref& r : refs) {
        AreaBreakdown bd = measure(macros::macroByName(r.kind));
        double err = benchutil::pctErr(bd.total(), r.published_mm2);
        err_sum += err;
        t.row({r.kind, benchutil::num(bd.cells), benchutil::num(bd.adc),
               benchutil::num(bd.dac), benchutil::num(bd.digital),
               benchutil::num(bd.buffer), benchutil::num(bd.total()),
               benchutil::num(r.published_mm2), benchutil::num(err, 2)});
    }
    t.print();

    std::printf("\naverage total-area deviation vs reconstructed "
                "references: %.0f%% (paper: 8%% for discrete components "
                "against silicon)\n",
                err_sum / 4.0);
    std::printf("paper Fig. 10 shape: array cells plus ADCs dominate "
                "analog macro area\n");
    return 0;
}
