/**
 * @file
 * Reproduces paper Fig. 11: Macro B's data-value-dependent energy. As the
 * average MAC value grows, the DAC switches more to supply larger inputs
 * and the analog adder charges/discharges larger analog values; the paper
 * reports up to a 2.3x macro-energy swing.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"

using namespace cimloop;

namespace {

/** Operand profile with both operands centered at a normalized level. */
dist::OperandProfile
levelProfile(double level)
{
    const int bits = 4; // Macro B operands
    std::int64_t half = std::int64_t{1} << (bits - 1);
    dist::OperandProfile p;
    p.inputs = dist::Pmf::quantizedGaussian(
        level * static_cast<double>(half - 1), 0.6, 0, half - 1);
    p.weights = dist::Pmf::quantizedGaussian(
        level * static_cast<double>(half - 1), 0.6, -half, half - 1);
    p.outputs =
        dist::Pmf::quantizedGaussian(0.0, half / 3.0, -half, half - 1);
    return p;
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 11",
                      "Macro B data-value-dependent energy vs average MAC "
                      "value");

    engine::Arch arch = macros::macroB();
    macros::MacroParams p = macros::macroBDefaults();
    workload::Layer layer =
        workload::matmulLayer("mvm", 2048, p.rows, p.cols);
    layer.network = "mvm";

    benchutil::Table t({"avg MAC value (norm)", "macro pJ/MAC",
                        "DAC pJ/MAC", "analog adder pJ/MAC"});
    double e_min = 1e300, e_max = 0.0;
    int dac = arch.hierarchy.indexOf("dac_bank");
    int adder = arch.hierarchy.indexOf("analog_adder");

    for (double level : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95}) {
        dist::OperandProfile prof = levelProfile(level);
        engine::PerActionTable table =
            engine::precompute(arch, layer, &prof);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        engine::Evaluation ev =
            engine::evaluate(arch, table, mapper.greedy());
        double mac_val = level * level; // both operands at `level`
        // Macro energy per the paper's macro definition (buffer excluded).
        double pj = macros::macroOnlyEnergyPj(arch, ev) / ev.macs;
        e_min = std::min(e_min, pj);
        e_max = std::max(e_max, pj);
        t.row({benchutil::num(mac_val, 3), benchutil::num(pj),
               benchutil::num(ev.nodeEnergyPj[dac] / ev.macs),
               benchutil::num(ev.nodeEnergyPj[adder] / ev.macs)});
    }
    t.print();

    std::printf("\nmacro energy swing across data values: %.2fx "
                "(paper: up to 2.3x)\n",
                e_max / e_min);
    std::printf("paper Fig. 11 shape: energy grows with average MAC "
                "value through the DAC and analog adder — reproduced: "
                "%s\n",
                e_max / e_min > 1.5 ? "YES" : "NO");
    return 0;
}
