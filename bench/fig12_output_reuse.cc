/**
 * @file
 * Reproduces paper Fig. 12 (Macro A + Mapping): reusing outputs between N
 * columns cuts ADC energy but costs input reuse (more DAC energy). On the
 * maximum-utilization MVM the tradeoff is monotone; on ResNet18 the
 * 3-column-reuse configuration finds uniquely good mappings because the
 * network's 3x3 kernels map S across the reused columns (the reason Jia
 * et al. fabricated 3-column reuse).
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

struct Result
{
    double dac_pj_per_mac = 0.0;
    double adc_pj_per_mac = 0.0;
    double other_pj_per_mac = 0.0;
    double total_pj_per_mac = 0.0;
};

Result
accumulate(const engine::Arch& arch, const engine::Evaluation& ev,
           Result acc, double weight)
{
    int dac = arch.hierarchy.indexOf("dac_bank");
    int adc = arch.hierarchy.indexOf("adc");
    double dac_pj = ev.nodeEnergyPj[dac];
    double adc_pj = ev.nodeEnergyPj[adc];
    acc.dac_pj_per_mac += weight * dac_pj;
    acc.adc_pj_per_mac += weight * adc_pj;
    acc.other_pj_per_mac += weight * (ev.energyPj - dac_pj - adc_pj);
    acc.total_pj_per_mac += weight * ev.energyPj;
    return acc;
}

Result
perMac(Result r, double macs)
{
    r.dac_pj_per_mac /= macs;
    r.adc_pj_per_mac /= macs;
    r.other_pj_per_mac /= macs;
    r.total_pj_per_mac /= macs;
    return r;
}

/** Maximum-utilization MVM matched to an N-column-reuse Macro A. */
Result
maxUtil(int reuse)
{
    macros::MacroParams p = macros::macroADefaults();
    p.outputReuseCols = reuse;
    engine::Arch arch = macros::macroA(p);
    std::int64_t groups = p.cols / reuse;
    workload::Layer layer = workload::matmulLayer(
        "mvm", 16, p.rows * reuse, std::max<std::int64_t>(1, groups / 8));
    layer.network = "mvm";
    engine::SearchResult sr = engine::searchMappings(arch, layer, 100, 1);
    Result r = accumulate(arch, sr.best, Result{}, 1.0);
    return perMac(r, sr.best.macs);
}

/** Variable-utilization: ResNet18 across the same configurations. */
Result
resnet(int reuse)
{
    macros::MacroParams p = macros::macroADefaults();
    p.outputReuseCols = reuse;
    engine::Arch arch = macros::macroA(p);
    workload::Network net = workload::resnet18();
    Result r;
    double macs = 0.0;
    for (const workload::Layer& layer : net.layers) {
        engine::SearchResult sr =
            engine::searchMappings(arch, layer, 120, 1);
        r = accumulate(arch, sr.best, r,
                       static_cast<double>(layer.count));
        macs += sr.best.macs * static_cast<double>(layer.count);
    }
    return perMac(r, macs);
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 12",
                      "Macro A output reuse between columns: ADC vs DAC "
                      "energy (pJ/MAC)");

    std::printf("\n--- maximum-utilization workload (matched MVM) ---\n");
    benchutil::Table tm({"reuse cols", "DAC", "ADC", "other", "total"});
    for (int reuse : {1, 2, 3, 4, 6}) {
        Result r = maxUtil(reuse);
        tm.row({std::to_string(reuse), benchutil::num(r.dac_pj_per_mac),
                benchutil::num(r.adc_pj_per_mac),
                benchutil::num(r.other_pj_per_mac),
                benchutil::num(r.total_pj_per_mac)});
    }
    tm.print();

    std::printf("\n--- variable-utilization workload (ResNet18) ---\n");
    benchutil::Table tr({"reuse cols", "DAC", "ADC", "other", "total"});
    double best_total = 1e300;
    int best_reuse = 0;
    for (int reuse : {1, 2, 3, 4, 6}) {
        Result r = resnet(reuse);
        tr.row({std::to_string(reuse), benchutil::num(r.dac_pj_per_mac),
                benchutil::num(r.adc_pj_per_mac),
                benchutil::num(r.other_pj_per_mac),
                benchutil::num(r.total_pj_per_mac)});
        if (r.total_pj_per_mac < best_total) {
            best_total = r.total_pj_per_mac;
            best_reuse = reuse;
        }
    }
    tr.print();

    std::printf("\nlowest-energy configuration on ResNet18: %d-column "
                "reuse (paper: 3 — Jia et al.'s fabricated choice)\n",
                best_reuse);
    std::printf("paper Fig. 12 shape: output reuse trades lower ADC "
                "energy for higher DAC energy; ResNet18's 3x3 kernels "
                "favor 3-column reuse\n");
    return 0;
}
