/**
 * @file
 * Reproduces paper Fig. 13 (Macro B + Circuits): analog adder width vs
 * throughput-per-area across workload weight precisions. Wider adders
 * need fewer ADCs (more compute density with many-bit weights) but sit
 * underutilized when weights have fewer bits; the 8-operand adder's area
 * overhead keeps it from ever winning.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"

using namespace cimloop;

namespace {

double
topsPerMm2(int adder_operands, int weight_bits)
{
    macros::MacroParams p = macros::macroBDefaults();
    p.adderOperands = adder_operands;
    p.weightBits = weight_bits;
    engine::Arch arch = macros::macroB(p);
    workload::Layer layer =
        workload::matmulLayer("mvm", 2048, p.rows, p.cols);
    layer.network = "mvm";
    engine::SearchResult sr = engine::searchMappings(arch, layer, 80, 1);
    return sr.best.topsPerMm2();
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 13",
                      "Macro B analog adder width vs throughput/area "
                      "(TOPS/mm^2) across weight precisions");

    const int operand_counts[] = {1, 2, 4, 8};
    benchutil::Table t({"weight bits", "1-op adder", "2-op", "4-op",
                        "8-op", "best"});
    int eight_op_wins = 0;
    for (int wb : {1, 2, 4, 8}) {
        std::vector<std::string> cells = {std::to_string(wb)};
        double best = 0.0;
        int best_ops = 0;
        for (int ops : operand_counts) {
            double v = topsPerMm2(ops, wb);
            cells.push_back(benchutil::num(v));
            if (v > best) {
                best = v;
                best_ops = ops;
            }
        }
        cells.push_back(std::to_string(best_ops) + "-op");
        if (best_ops == 8)
            ++eight_op_wins;
        t.row(cells);
    }
    t.print();

    std::printf("\npaper Fig. 13 shape: more-operand adders win with "
                "more-bit weights (higher compute density) but are "
                "underutilized with few-bit weights; the 8-operand adder "
                "never has the highest throughput/area\n");
    std::printf("8-operand adder wins: %d of 4 precisions "
                "(paper: never) — reproduced: %s\n",
                eight_op_wins, eight_op_wins == 0 ? "YES" : "NO");
    return 0;
}
