/**
 * @file
 * Reproduces paper Fig. 14 (Macro C + Architecture): energy across array
 * sizes (64..1024) for four workloads of different tensor sizes. Larger
 * arrays amortize ADC and digital-sum energy over more MACs — strongly
 * for max-utilization and large-tensor workloads, saturating for
 * medium tensors, and reversing for small tensors where underutilization
 * raises energy.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

double
energyPerMac(std::int64_t array, const workload::Network& net)
{
    macros::MacroParams p = macros::macroCDefaults();
    p.rows = array;
    p.cols = array;
    p.adcBits = macros::scaledAdcBits(array, 8); // Macro C: 8b at 256 rows

    engine::Arch arch = macros::macroC(p);
    return engine::evaluateNetwork(arch, net, 100, 1).energyPerMacPj();
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 14",
                      "Macro C array size vs energy (pJ/MAC) across "
                      "workload tensor sizes");

    struct Workload
    {
        const char* label;
        workload::Network net;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"max-utilization MVM",
                         workload::maxUtilMvm(1024, 1024, 16)});
    workloads.push_back({"large tensors (ViT)", workload::vitBase()});
    workloads.push_back({"medium tensors (ResNet18)",
                         workload::resnet18()});
    workloads.push_back({"small tensors (MobileNetV3)",
                         workload::mobileNetV3()});

    const std::int64_t sizes[] = {64, 128, 256, 512, 1024};

    benchutil::Table t({"workload", "64", "128", "256", "512", "1024",
                        "best size"});
    std::vector<std::int64_t> best_sizes;
    for (const Workload& w : workloads) {
        std::vector<std::string> cells = {w.label};
        double best = 1e300;
        std::int64_t best_size = 0;
        for (std::int64_t n : sizes) {
            double pj = energyPerMac(n, w.net);
            cells.push_back(benchutil::num(pj));
            if (pj < best) {
                best = pj;
                best_size = n;
            }
        }
        cells.push_back(std::to_string(best_size));
        best_sizes.push_back(best_size);
        t.row(cells);
    }
    t.print();

    std::printf("\npaper Fig. 14 shape: larger arrays help when tensors "
                "can fill them; the small-tensor workload prefers a "
                "smaller array\n");
    std::printf("reproduced: %s (small-tensor best size %lld < "
                "max-utilization best size %lld)\n",
                best_sizes.back() < best_sizes.front() ? "YES" : "NO",
                static_cast<long long>(best_sizes.back()),
                static_cast<long long>(best_sizes.front()));
    return 0;
}
