/**
 * @file
 * Reproduces paper Fig. 15 (Macro D + Full-System): system energy
 * breakdown (off-chip movement / global buffer / on-chip movement /
 * macro compute) for GPT-2 (large tensors) and ResNet18 (mixed tensors)
 * under three scenarios: everything off-chip, weight-stationary, and
 * weight-stationary with fused (on-chip) activations.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/system/system.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

system::SystemBreakdown
run(const workload::Network& net, system::WeightPolicy policy)
{
    system::SystemParams p;
    p.macroKind = "D";
    p.macro = macros::macroDDefaults();
    p.numMacros = 16;
    p.policy = policy;
    engine::Arch arch = system::buildSystem(p);

    system::SystemBreakdown total;
    for (const workload::Layer& layer : net.layers) {
        engine::SearchResult sr =
            engine::searchMappings(arch, layer, 100, 1);
        system::SystemBreakdown bd =
            system::groupBreakdown(arch, sr.best);
        double reps = static_cast<double>(layer.count);
        total.offChipPj += bd.offChipPj * reps;
        total.globalBufferPj += bd.globalBufferPj * reps;
        total.onChipMovePj += bd.onChipMovePj * reps;
        total.macroComputePj += bd.macroComputePj * reps;
    }
    return total;
}

void
report(const char* label, const workload::Network& net)
{
    std::printf("\n--- %s ---\n", label);
    benchutil::Table t({"scenario", "off-chip uJ", "global buf uJ",
                        "on-chip move uJ", "macro uJ", "total uJ"});
    double prev_total = 0.0;
    bool monotone = true;
    for (auto policy : {system::WeightPolicy::OffChip,
                        system::WeightPolicy::WeightStationary,
                        system::WeightPolicy::Fused}) {
        system::SystemBreakdown bd = run(net, policy);
        t.row({system::policyName(policy),
               benchutil::num(bd.offChipPj / 1e6),
               benchutil::num(bd.globalBufferPj / 1e6),
               benchutil::num(bd.onChipMovePj / 1e6),
               benchutil::num(bd.macroComputePj / 1e6),
               benchutil::num(bd.totalPj() / 1e6)});
        if (prev_total > 0.0 && bd.totalPj() >= prev_total)
            monotone = false;
        prev_total = bd.totalPj();
    }
    t.print();
    std::printf("energy decreases off-chip -> weight-stationary -> "
                "fused: %s\n",
                monotone ? "YES" : "NO");
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 15",
                      "Macro D full system: weight placement scenarios "
                      "(energy breakdown)");

    // GPT-2 decoder blocks (the LM head's 38M-parameter projection
    // exceeds any single-chip weight capacity; the paper notes large
    // DNNs need multi-chip pipelines, so the head is excluded here).
    workload::Network gpt2 = workload::gpt2Small(1024);
    gpt2.layers.pop_back();
    report("GPT-2 (large tensors)", gpt2);

    report("ResNet18 (mixed-size tensors)", workload::resnet18());

    std::printf("\npaper Fig. 15 shape: weight-stationary CiM removes "
                "most off-chip energy; remaining benefit is limited by "
                "input/output movement, which layer fusion removes\n");
    return 0;
}
