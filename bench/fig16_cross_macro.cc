/**
 * @file
 * Reproduces paper Fig. 16 (Cross-Macro): a fair comparison of the three
 * SRAM-based Macros A/B/D, all scaled to 7 nm with a common 8b ADC and
 * common cell technology, across input/weight precisions. Macro A's 1b
 * analog operations exploit few-bit operands; Macros B/D's multi-bit
 * analog components win at higher precisions but gain little from
 * few-bit operands.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"

using namespace cimloop;

namespace {

double
topsPerWatt(const std::string& kind, int bits)
{
    macros::MacroParams p = macros::defaultsByName(kind);
    // Fair comparison: everyone at 7 nm with an 8b ADC (paper Sec. V-B5).
    p.technologyNm = 7.0;
    p.adcBits = 8;
    p.inputBits = bits;
    p.weightBits = bits;
    if (kind == "B") {
        // The analog adder spans min(weight slices, 4) columns.
        p.adderOperands = std::min(4, std::max(1, bits));
        while (p.cols % p.adderOperands != 0)
            --p.adderOperands;
    }
    engine::Arch arch = macros::macroByName(kind);
    (void)arch;
    engine::Arch a = kind == "A" ? macros::macroA(p)
                   : kind == "B" ? macros::macroB(p)
                                 : macros::macroD(p);
    workload::Layer layer =
        workload::matmulLayer("mvm", 2048, p.rows, p.cols);
    layer.network = "mvm";
    engine::SearchResult sr = engine::searchMappings(a, layer, 80, 1);
    return macros::macroTopsPerWatt(a, sr.best);
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 16",
                      "cross-macro comparison at 7nm, 8b ADC: TOPS/W vs "
                      "operand precision (Macros A, B, D)");

    benchutil::Table t({"in/wt bits", "Macro A", "Macro B", "Macro D",
                        "winner"});
    std::string low_bits_winner, high_bits_winner;
    for (int bits : {1, 2, 4, 8}) {
        double a = topsPerWatt("A", bits);
        double b = topsPerWatt("B", bits);
        double d = topsPerWatt("D", bits);
        std::string winner = (a >= b && a >= d) ? "A"
                           : (b >= a && b >= d) ? "B"
                                                : "D";
        if (bits == 1)
            low_bits_winner = winner;
        if (bits == 8)
            high_bits_winner = winner;
        t.row({std::to_string(bits), benchutil::num(a),
               benchutil::num(b), benchutil::num(d), winner});
    }
    t.print();

    std::printf("\npaper Fig. 16 shape: the lowest-energy macro depends "
                "on operand precision — Macro A's bit-scalable 1b "
                "operations win at few-bit operands; B/D's multi-bit "
                "analog components win at more-bit operands\n");
    std::printf("winner changes with precision: %s (1b: Macro %s, 8b: "
                "Macro %s)\n",
                low_bits_winner != high_bits_winner ? "YES" : "NO",
                low_bits_winner.c_str(), high_bits_winner.c_str());
    return 0;
}
