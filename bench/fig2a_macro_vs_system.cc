/**
 * @file
 * Reproduces paper Fig. 2a: sweeping CiM array size for a macro running
 * ResNet18, comparing the array size that minimizes *macro* energy with
 * the one that minimizes *system* energy. The paper's point: optimizing
 * the macro alone is misleading — only full-system modeling finds the
 * right array size.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/system/system.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

/** Mean energy per MAC (pJ) for a network on an arch. */
double
energyPerMac(const engine::Arch& arch, const workload::Network& net,
             int mappings, std::uint64_t seed)
{
    engine::NetworkEvaluation ev =
        engine::evaluateNetwork(arch, net, mappings, seed);
    return ev.energyPerMacPj();
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 2a",
                      "macro-optimal vs system-optimal CiM array size "
                      "(ResNet18)");

    workload::Network net = workload::resnet18();
    const int kMappings = 120;

    benchutil::Table table({"array", "macro pJ/MAC", "system pJ/MAC"});
    double best_macro = 1e300, best_system = 1e300;
    std::int64_t best_macro_size = 0, best_system_size = 0;

    for (std::int64_t n : {64, 128, 256, 512, 1024}) {
        macros::MacroParams mp = macros::baseDefaults();
        mp.rows = n;
        mp.cols = n;
        mp.adcBits = macros::scaledAdcBits(n); // column sums widen
        engine::Arch macro_arch = macros::baseMacro(mp);
        double macro_pj = energyPerMac(macro_arch, net, kMappings, 1);

        system::SystemParams sp;
        sp.macroKind = "base";
        sp.macro = mp;
        sp.numMacros = 4;
        sp.policy = system::WeightPolicy::OffChip;
        engine::Arch system_arch = system::buildSystem(sp);
        double system_pj = energyPerMac(system_arch, net, kMappings, 1);

        table.row({std::to_string(n) + "x" + std::to_string(n),
                   benchutil::num(macro_pj), benchutil::num(system_pj)});
        if (macro_pj < best_macro) {
            best_macro = macro_pj;
            best_macro_size = n;
        }
        if (system_pj < best_system) {
            best_system = system_pj;
            best_system_size = n;
        }
    }
    table.print();

    std::printf("\nlowest-energy MACRO array:  %lldx%lld\n",
                static_cast<long long>(best_macro_size),
                static_cast<long long>(best_macro_size));
    std::printf("lowest-energy SYSTEM array: %lldx%lld\n",
                static_cast<long long>(best_system_size),
                static_cast<long long>(best_system_size));
    std::printf("paper Fig. 2a shape: the system-optimal array is LARGER "
                "than the macro-optimal one\n");
    std::printf("reproduced: %s\n",
                best_system_size > best_macro_size ? "YES" : "NO");
    return 0;
}
