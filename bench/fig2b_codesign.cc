/**
 * @file
 * Reproduces paper Fig. 2b: co-optimizing circuits (DAC resolution) and
 * architecture (array size) yields a lower-energy system than optimizing
 * either level alone. Sweeps the full DAC-resolution x array-size grid
 * on a ResNet18 system and reports the labeled design points:
 *   baseline           — small array, bit-serial 1b DAC
 *   optimize circuits  — small array, its best DAC resolution
 *   optimize arch      — large array keeping that DAC resolution
 *   optimize both      — the best (array, DAC) pair overall
 *
 * Physics that creates the tension: a higher-resolution DAC cuts array
 * activations, but the ADC must digitize a wider analog range
 * (resolution grows with DAC bits and with rows), and underutilized
 * large arrays stop amortizing converter energy.
 */
#include "common.hh"

#include <map>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/system/system.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

/** ADC resolution for an array x DAC-resolution point (RAELLA-style
 *  truncation keeps 2 DAC bits free). */
int
adcBitsFor(std::int64_t array, int dac_bits)
{
    return macros::scaledAdcBits(array) + std::max(0, dac_bits - 3);
}

double
systemEnergyPerMac(std::int64_t array, int dac_bits,
                   const workload::Network& net)
{
    macros::MacroParams mp = macros::baseDefaults();
    mp.rows = array;
    mp.cols = array;
    mp.dacBits = dac_bits;
    mp.adcBits = adcBitsFor(array, dac_bits);
    system::SystemParams sp;
    sp.macroKind = "base";
    sp.macro = mp;
    sp.numMacros = 4;
    sp.policy = system::WeightPolicy::OffChip;
    engine::Arch arch = system::buildSystem(sp);
    return engine::evaluateNetwork(arch, net, 120, 1).energyPerMacPj();
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 2b",
                      "co-optimizing DAC resolution (circuits) and array "
                      "size (architecture), ResNet18 system energy");

    workload::Network net = workload::resnet18();

    const std::int64_t small_array = 128;
    const std::int64_t large_array = 512;
    const int dac_options[] = {1, 2, 4, 8};

    // Full grid.
    benchutil::Table grid({"array \\ DAC", "1b", "2b", "4b", "8b"});
    std::map<std::pair<std::int64_t, int>, double> pj;
    for (std::int64_t array : {small_array, large_array}) {
        std::vector<std::string> cells = {
            std::to_string(array) + "x" + std::to_string(array)};
        for (int dac : dac_options) {
            double v = systemEnergyPerMac(array, dac, net);
            pj[{array, dac}] = v;
            cells.push_back(benchutil::num(v));
        }
        grid.row(cells);
    }
    grid.print();

    // Labeled design points.
    int best_small_dac = 1;
    for (int dac : dac_options) {
        if (pj[{small_array, dac}] < pj[{small_array, best_small_dac}])
            best_small_dac = dac;
    }
    std::int64_t best_array = small_array;
    int best_dac = 1;
    for (auto& [key, v] : pj) {
        if (v < pj[{best_array, best_dac}]) {
            best_array = key.first;
            best_dac = key.second;
        }
    }

    double baseline = pj[{small_array, 1}];
    double circuits = pj[{small_array, best_small_dac}];
    double arch_only = pj[{large_array, best_small_dac}];
    double both = pj[{best_array, best_dac}];

    benchutil::Table t({"design point", "array", "DAC bits",
                        "system pJ/MAC"});
    t.row({"baseline", std::to_string(small_array), "1",
           benchutil::num(baseline)});
    t.row({"optimize circuits", std::to_string(small_array),
           std::to_string(best_small_dac), benchutil::num(circuits)});
    t.row({"optimize architecture", std::to_string(large_array),
           std::to_string(best_small_dac), benchutil::num(arch_only)});
    t.row({"optimize both", std::to_string(best_array),
           std::to_string(best_dac), benchutil::num(both)});
    t.print();

    bool reproduced = both <= circuits && both <= arch_only &&
                      circuits < baseline;
    std::printf("\npaper Fig. 2b shape: co-optimizing both levels beats "
                "optimizing either alone — reproduced: %s\n",
                reproduced ? "YES" : "NO");
    if (best_array != small_array && best_dac != best_small_dac) {
        std::printf("synergy: the best DAC resolution at %lldx%lld (%db) "
                    "differs from the best at %lldx%lld (%db)\n",
                    static_cast<long long>(best_array),
                    static_cast<long long>(best_array), best_dac,
                    static_cast<long long>(small_array),
                    static_cast<long long>(small_array), best_small_dac);
    }
    return 0;
}
