/**
 * @file
 * Reproduces paper Fig. 3: the ADC-energy-reducing strategies of the six
 * published macro families. For each macro, prints where outputs are
 * reused, the per-MAC converter action counts, and the resulting
 * converter energy share — showing that each strategy cuts ADC converts
 * per MAC relative to the base macro (or eliminates them).
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/mapping/nest.hh"

using namespace cimloop;

namespace {

struct Row
{
    std::string macro;
    double adc_per_mac = 0.0;
    double dac_per_mac = 0.0;
    double adc_energy_frac = 0.0;
};

Row
measure(const std::string& kind)
{
    engine::Arch arch = macros::macroByName(kind);
    const macros::MacroParams p = macros::defaultsByName(kind);
    // Matched MVM per macro: reduction fills the rows (times the Macro A
    // output-reuse factor), outputs fill the columns.
    std::int64_t c = p.rows;
    std::int64_t k = p.cols;
    if (kind == "A") {
        c *= p.outputReuseCols;
        k /= p.outputReuseCols;
    }
    std::int64_t wb = (p.weightBits + p.cellBits - 1) / p.cellBits;
    k = std::max<std::int64_t>(1, k / wb);
    workload::Layer layer = workload::matmulLayer("mvm", 16, c, k);
    layer.network = "mvm";

    engine::PerActionTable table = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    mapping::Mapping m = mapper.greedy();
    mapping::NestResult nest =
        mapping::analyzeNest(arch.hierarchy, m, table.extLayer);
    engine::Evaluation ev = engine::evaluate(arch, table, m);

    Row row;
    row.macro = kind;
    double macs = ev.macs;
    int adc = arch.hierarchy.indexOf("adc");
    int dac = arch.hierarchy.indexOf("dac_bank");
    if (adc >= 0) {
        row.adc_per_mac = nest.nodes[adc].tensors[2].actions / macs;
        row.adc_energy_frac = ev.nodeEnergyPj[adc] / ev.energyPj;
    }
    if (dac >= 0)
        row.dac_per_mac = nest.nodes[dac].tensors[0].actions / macs;
    return row;
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 3",
                      "ADC-energy-reducing strategies of published CiM "
                      "macros (per-MAC converter counts)");

    const char* reuse_how[] = {
        "rows sum on wire (base)",
        "+ wire sum across columns (different weights)",
        "+ analog adder across columns (weight bits)",
        "+ analog accumulator across cycles",
        "+ analog multi-bit MAC unit",
        "digital adder tree, no ADC",
    };
    const char* kinds[] = {"base", "A", "B", "C", "D", "digital"};

    benchutil::Table table({"macro", "output reuse strategy",
                            "ADC conv/MAC", "DAC conv/MAC",
                            "ADC energy share"});
    double base_adc = 0.0;
    for (int i = 0; i < 6; ++i) {
        Row r = measure(kinds[i]);
        if (i == 0)
            base_adc = r.adc_per_mac;
        table.row({r.macro, reuse_how[i], benchutil::num(r.adc_per_mac),
                   benchutil::num(r.dac_per_mac),
                   benchutil::num(100.0 * r.adc_energy_frac, 3) + "%"});
    }
    table.print();

    std::printf("\npaper Fig. 3 shape: every strategy reduces ADC "
                "converts per MAC vs the base macro\n");
    std::printf("(base macro: %s ADC converts per MAC; Digital CiM "
                "eliminates the ADC entirely)\n",
                benchutil::num(base_adc).c_str());
    return 0;
}
