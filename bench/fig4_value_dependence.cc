/**
 * @file
 * Reproduces paper Fig. 4: data-value-dependence can affect DAC energy by
 * more than 2.5x, its effect differs per layer and per encoding, and the
 * best encoding differs across layers. Sweeps ResNet18 layers x operand
 * encodings and prints the per-convert DAC energy.
 */
#include "common.hh"

#include <map>

#include "cimloop/dist/encoding.hh"
#include "cimloop/dist/operands.hh"
#include "cimloop/models/component.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

/** DAC energy per convert for one layer's inputs under one encoding. */
double
dacEnergy(const dist::Pmf& inputs, dist::Encoding enc, int bits)
{
    spec::SpecNode node;
    node.name = "dac";
    node.attributes["resolution"] = yaml::Node::makeInt(bits);

    models::ComponentContext ctx;
    ctx.node = &node;
    ctx.technologyNm = 40.0;
    ctx.tensors[0] = dist::encodeOperands(inputs, enc, 8);

    return models::PluginRegistry::instance().require("DAC").estimate(ctx)
        .actionEnergyPj[0];
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 4",
                      "data-value-dependent DAC energy across ResNet18 "
                      "layers and encodings (pJ per 8b convert)");

    workload::Network net = workload::resnet18();
    const dist::Encoding encodings[] = {
        dist::Encoding::Offset, dist::Encoding::TwosComplement,
        dist::Encoding::MagnitudeOnly, dist::Encoding::Xnor};

    benchutil::Table table({"layer", "offset", "twos_compl", "magnitude",
                            "xnor", "best encoding"});

    double global_min = 1e300, global_max = 0.0;
    std::map<std::string, int> best_count;
    for (int idx : {0, 2, 5, 8, 11, 14, 17, 20}) {
        const workload::Layer& layer = net.layers[idx];
        dist::OperandProfile prof = dist::synthesizeOperands(
            layer.network, layer.index, layer.networkLayers, 8, 8);

        std::vector<std::string> cells = {layer.name};
        double best = 1e300;
        std::string best_name;
        for (dist::Encoding e : encodings) {
            double pj = dacEnergy(prof.inputs, e, 8);
            cells.push_back(benchutil::num(pj));
            global_min = std::min(global_min, pj);
            global_max = std::max(global_max, pj);
            if (pj < best) {
                best = pj;
                best_name = dist::encodingName(e);
            }
        }
        cells.push_back(best_name);
        best_count[best_name]++;
        table.row(cells);
    }
    table.print();

    std::printf("\nmax/min DAC energy across (layer, encoding): %.2fx\n",
                global_max / global_min);
    std::printf("paper Fig. 4 shape: data-value-dependence swings DAC "
                "energy > 2.5x — reproduced: %s\n",
                global_max / global_min > 2.5 ? "YES" : "NO");
    std::printf("distinct best encodings across layers: %zu (paper: the "
                "best encoding is layer-dependent)\n",
                best_count.size());
    return 0;
}
