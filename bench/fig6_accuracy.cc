/**
 * @file
 * Reproduces paper Fig. 6: CiMLoop's statistical data-value-dependent
 * model vs a non-data-value-dependent (fixed-energy) model, both compared
 * to a value-level ground truth that simulates every propagated value
 * (the paper uses NeuroSim; we use the from-scratch value-level simulator
 * in src/refsim, see DESIGN.md). Paper numbers: statistical avg/max error
 * 3%/7%; fixed-energy 28%/70%.
 *
 * Also runs the DESIGN.md ablation: the independence assumption's cost is
 * visible in the ADC term (nonlinear in the joint column-sum
 * distribution), which dominates the statistical model's residual error.
 */
#include "common.hh"

#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>

#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

int
main(int argc, char** argv)
{
    benchutil::banner("Fig. 6",
                      "statistical vs fixed-energy model accuracy against "
                      "a value-level ground truth (ResNet18 layers)");

    int threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = std::stoi(argv[++i]);
    }

    refsim::RefSimConfig cfg;
    cfg.rows = 128;
    cfg.cols = 128;
    cfg.adcBits = 5;
    cfg.maxVectors = 32;
    cfg.threads = threads;

    workload::Network net = workload::resnet18();

    // Shrink spatial extents: the value-level truth costs O(values).
    std::vector<workload::Layer> layers;
    for (std::size_t i = 1; i < net.layers.size(); i += 2) {
        workload::Layer l = net.layers[i];
        l.dims[workload::dimIndex(workload::Dim::P)] =
            std::min<std::int64_t>(l.size(workload::Dim::P), 7);
        l.dims[workload::dimIndex(workload::Dim::Q)] =
            std::min<std::int64_t>(l.size(workload::Dim::Q), 7);
        layers.push_back(l);
    }

    std::vector<refsim::RefSimResult> truth;
    std::vector<dist::OperandProfile> profiles;
    auto t0 = std::chrono::steady_clock::now();
    for (const workload::Layer& l : layers) {
        dist::OperandProfile prof;
        truth.push_back(refsim::simulateValueLevel(cfg, l, &prof));
        profiles.push_back(prof);
    }
    auto t1 = std::chrono::steady_clock::now();
    double truth_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("value-level ground truth: %.0f ms at %d thread%s "
                "(bit-identical for any --threads)\n\n",
                truth_ms, threads, threads == 1 ? "" : "s");
    dist::OperandProfile avg = refsim::averageProfiles(profiles);

    benchutil::Table table({"layer", "truth pJ", "CiMLoop pJ", "err %",
                            "fixed pJ", "err %"});
    double stat_sum = 0.0, stat_max = 0.0, fixed_sum = 0.0, fixed_max = 0.0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        double t = truth[i].totalPj();
        double s =
            refsim::estimateStatistical(cfg, layers[i], profiles[i])
                .totalPj();
        double f = refsim::estimateFixedEnergy(cfg, layers[i], avg)
                       .totalPj();
        double se = benchutil::pctErr(s, t);
        double fe = benchutil::pctErr(f, t);
        stat_sum += se;
        fixed_sum += fe;
        stat_max = std::max(stat_max, se);
        fixed_max = std::max(fixed_max, fe);
        table.row({layers[i].name, benchutil::num(t), benchutil::num(s),
                   benchutil::num(se, 2), benchutil::num(f),
                   benchutil::num(fe, 2)});
    }
    table.print();

    double n = static_cast<double>(layers.size());
    std::printf("\n                         avg err   max err\n");
    std::printf("CiMLoop (statistical):   %5.1f%%    %5.1f%%   "
                "(paper: 3%% / 7%%)\n",
                stat_sum / n, stat_max);
    std::printf("fixed-energy baseline:   %5.1f%%    %5.1f%%   "
                "(paper: 28%% / 70%%)\n",
                fixed_sum / n, fixed_max);
    std::printf("\npaper Fig. 6 shape: data-value-dependent modeling is "
                "far more accurate — reproduced: %s\n",
                (stat_sum < 0.5 * fixed_sum) ? "YES" : "NO");
    return 0;
}
