/**
 * @file
 * Reproduces paper Fig. 7: energy efficiency and throughput of Macros
 * A/B/D across supply voltages, validated against reference curves.
 * Macro B is data-value-dependent, so it is reported for both small and
 * large data values (paper does the same).
 *
 * Reference curves: the silicon measurements are not available here, so
 * references are reconstructed from each paper's published nominal
 * efficiency anchored to the ideal CV^2 / alpha-power laws (see
 * DESIGN.md substitution table and EXPERIMENTS.md). Reported percent
 * error measures our full pipeline against those reconstructions.
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/models/tech.hh"

using namespace cimloop;

namespace {

struct Sweep
{
    std::string label;
    engine::Arch (*build)(const macros::MacroParams&);
    macros::MacroParams params;
    double published_tops_w; //!< anchor at nominal supply
    const dist::OperandProfile* profile = nullptr;
};

dist::OperandProfile
valueProfile(double level, int bits)
{
    std::int64_t half = std::int64_t{1} << (bits - 1);
    dist::OperandProfile p;
    p.inputs = dist::Pmf::quantizedGaussian(
        level * static_cast<double>(half - 1), 2.0, 0, half - 1);
    p.weights = dist::Pmf::quantizedGaussian(
        level * static_cast<double>(half - 1), 2.0, -half, half - 1);
    p.outputs = dist::Pmf::quantizedGaussian(0.0, half / 4.0, -half,
                                             half - 1);
    return p;
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 7",
                      "energy efficiency / throughput vs supply voltage "
                      "(Macros A, B, D)");

    dist::OperandProfile b_small = valueProfile(0.12, 4);
    dist::OperandProfile b_large = valueProfile(0.85, 4);

    std::vector<Sweep> sweeps = {
        {"Macro A (65nm SRAM, 8b ops)", &macros::macroA,
         macros::macroADefaults(), 3.0, nullptr},
        {"Macro B (7nm, small values)", &macros::macroB,
         macros::macroBDefaults(), 420.0, &b_small},
        {"Macro B (7nm, large values)", &macros::macroB,
         macros::macroBDefaults(), 300.0, &b_large},
        {"Macro D (22nm C-2C, 8b)", &macros::macroD,
         macros::macroDDefaults(), 32.2, nullptr},
    };

    double err_eff_sum = 0.0, err_thr_sum = 0.0;
    int err_count = 0;

    for (const Sweep& s : sweeps) {
        std::printf("\n--- %s ---\n", s.label.c_str());
        models::TechParams tech = models::techParams(s.params.technologyNm);
        models::VoltageModel vm(tech);

        // Per the paper's methodology, components are calibrated at the
        // nominal point and the sweep validates the curve *shape*: both
        // reference curves are anchored at our nominal model values and
        // follow the ideal CV^2 / alpha-power laws. The published TOPS/W
        // anchor is reported separately as a calibration check.
        macros::MacroParams nominal_p = s.params;
        engine::Arch nominal_arch = s.build(nominal_p);
        workload::Layer layer = workload::matmulLayer(
            "mvm", 32, s.params.rows, s.params.cols);
        layer.network = "mvm";
        engine::PerActionTable nom_table =
            engine::precompute(nominal_arch, layer, s.profile);
        mapping::Mapper nom_mapper(nominal_arch.hierarchy,
                                   nom_table.extLayer);
        engine::Evaluation nom_ev =
            engine::evaluate(nominal_arch, nom_table, nom_mapper.greedy());
        double thr_anchor = nom_ev.macsPerSecond();
        double eff_anchor = macros::macroTopsPerWatt(nominal_arch, nom_ev);
        std::printf("calibration: modeled %s TOPS/W at nominal "
                    "(published anchor: %s)\n",
                    benchutil::num(eff_anchor).c_str(),
                    benchutil::num(s.published_tops_w).c_str());

        benchutil::Table table({"V/Vnom", "TOPS/W", "ref TOPS/W", "err %",
                                "rel thr", "ref thr", "err %"});
        for (double rel : {0.70, 0.80, 0.90, 1.00, 1.10}) {
            double v = rel * tech.vNominal;
            if (v <= tech.vThreshold * 1.05)
                continue;
            macros::MacroParams p = s.params;
            p.supplyVoltage = v;
            engine::Arch arch = s.build(p);
            engine::PerActionTable table_pa =
                engine::precompute(arch, layer, s.profile);
            mapping::Mapper mapper(arch.hierarchy, table_pa.extLayer);
            engine::Evaluation ev =
                engine::evaluate(arch, table_pa, mapper.greedy());

            double eff = macros::macroTopsPerWatt(arch, ev);
            double ref_eff = eff_anchor / (rel * rel);
            double thr = ev.macsPerSecond() / thr_anchor;
            double ref_thr = vm.frequencyFactor(v);

            double e1 = benchutil::pctErr(eff, ref_eff);
            double e2 = benchutil::pctErr(thr, ref_thr);
            err_eff_sum += e1;
            err_thr_sum += e2;
            ++err_count;
            table.row({benchutil::num(rel, 3), benchutil::num(eff),
                       benchutil::num(ref_eff), benchutil::num(e1, 2),
                       benchutil::num(thr), benchutil::num(ref_thr),
                       benchutil::num(e2, 2)});
        }
        table.print();
    }

    std::printf("\naverage energy-efficiency error: %.1f%% "
                "(paper: 7%%)\n",
                err_eff_sum / err_count);
    std::printf("average throughput error:        %.1f%% "
                "(paper: 2%%)\n",
                err_thr_sum / err_count);
    std::printf("paper Fig. 7 shape: efficiency rises as voltage drops "
                "(~1/V^2), throughput falls (alpha-power law)\n");
    return 0;
}
