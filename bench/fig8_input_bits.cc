/**
 * @file
 * Reproduces paper Fig. 8: energy efficiency and throughput of Macros B
 * and C for varying numbers of input bits. Macro B streams more input
 * slices through its 4b DAC as precision grows; Macro C is bit-serial
 * with an analog accumulator, so its ADC converts stay constant while
 * DAC/cell activations grow with precision.
 *
 * References are reconstructed ideal-scaling curves anchored at the
 * published nominal efficiency (see EXPERIMENTS.md).
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"

using namespace cimloop;

namespace {

struct MacroEval
{
    engine::Evaluation ev;
    double macroTopsW = 0.0;
};

MacroEval
evalMacro(const engine::Arch& arch, std::int64_t rows, std::int64_t cols)
{
    workload::Layer layer = workload::matmulLayer("mvm", 2048, rows, cols);
    layer.network = "mvm";
    engine::PerActionTable table = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    MacroEval out;
    out.ev = engine::evaluate(arch, table, mapper.greedy());
    out.macroTopsW = macros::macroTopsPerWatt(arch, out.ev);
    return out;
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 8",
                      "energy efficiency / throughput vs # input bits "
                      "(Macros B, C)");

    double err_eff_sum = 0.0, err_thr_sum = 0.0;
    int err_count = 0;

    // --- Macro B: 4b DAC; input bits 1-8 change the slice count. ---
    {
        std::printf("\n--- Macro B (7nm SRAM, 4b DAC) ---\n");
        macros::MacroParams base = macros::macroBDefaults();
        MacroEval nominal = evalMacro(macros::macroB(base),
                                      base.rows, base.cols);
        double anchor_eff = 351.0; // published TOPS/W at 4b inputs
        double anchor_thr = nominal.ev.macsPerSecond();
        double nominal_eff = nominal.macroTopsW;

        benchutil::Table t({"input bits", "TOPS/W", "ref", "err %",
                            "rel thr", "ref thr", "err %"});
        for (int bits : {1, 2, 4, 8}) {
            macros::MacroParams p = base;
            p.inputBits = bits;
            MacroEval me = evalMacro(macros::macroB(p), p.rows, p.cols);
            // Ideal scaling: slices = ceil(bits/4) activations per MAC.
            double slices = (bits + 3) / 4;
            double eff = me.macroTopsW;
            double ref_eff = anchor_eff / slices;
            double thr = me.ev.macsPerSecond() / anchor_thr;
            double ref_thr = 1.0 / slices;
            double e1 = benchutil::pctErr(eff / nominal_eff,
                                          ref_eff / anchor_eff);
            double e2 = benchutil::pctErr(thr, ref_thr);
            err_eff_sum += e1;
            err_thr_sum += e2;
            ++err_count;
            t.row({std::to_string(bits), benchutil::num(eff),
                   benchutil::num(ref_eff), benchutil::num(e1, 2),
                   benchutil::num(thr), benchutil::num(ref_thr),
                   benchutil::num(e2, 2)});
        }
        t.print();
    }

    // --- Macro C: bit-serial 1b DAC + analog accumulator. ---
    {
        std::printf("\n--- Macro C (130nm ReRAM, bit-serial) ---\n");
        macros::MacroParams base = macros::macroCDefaults();
        MacroEval nominal = evalMacro(macros::macroC(base),
                                      base.rows, base.cols);
        double anchor_eff = 148.0; // published 74 TMACS/W ~ 148 TOPS/W, 8b
        double anchor_thr = nominal.ev.macsPerSecond();
        double nominal_eff = nominal.macroTopsW;

        benchutil::Table t({"input bits", "TOPS/W", "ref", "err %",
                            "rel thr", "ref thr", "err %"});
        for (int bits : {1, 2, 4, 8}) {
            macros::MacroParams p = base;
            p.inputBits = bits;
            MacroEval me = evalMacro(macros::macroC(p), p.rows, p.cols);
            double eff = me.macroTopsW;
            // Bit-serial: activation-proportional energy scales with the
            // serial cycles, but the ADC/eviction share (phi of the 8b
            // energy) does not. The reconstructed reference states
            // phi = 0.5 for energy and 0.1 for time (EXPERIMENTS.md).
            const double phi_e = 0.5, phi_t = 0.1;
            double ref_eff =
                anchor_eff / (phi_e + (1.0 - phi_e) * bits / 8.0);
            double thr = me.ev.macsPerSecond() / anchor_thr;
            double ref_thr = 1.0 / (phi_t + (1.0 - phi_t) * bits / 8.0);
            double e1 = benchutil::pctErr(eff / nominal_eff,
                                          ref_eff / anchor_eff);
            double e2 = benchutil::pctErr(thr, ref_thr);
            err_eff_sum += e1;
            err_thr_sum += e2;
            ++err_count;
            t.row({std::to_string(bits), benchutil::num(eff),
                   benchutil::num(ref_eff), benchutil::num(e1, 2),
                   benchutil::num(thr), benchutil::num(ref_thr),
                   benchutil::num(e2, 2)});
        }
        t.print();
    }

    std::printf("\naverage energy-efficiency error: %.1f%% "
                "(paper: 6%%)\n",
                err_eff_sum / err_count);
    std::printf("average throughput error:        %.1f%% "
                "(paper: 5%%)\n",
                err_thr_sum / err_count);
    std::printf("paper Fig. 8 shape: fewer input bits raise both "
                "efficiency and throughput; Macro C gains more because "
                "its ADC cost is input-bit-invariant\n");
    return 0;
}
