/**
 * @file
 * Reproduces paper Fig. 9: per-component energy breakdowns of Macro C
 * (at 1b, 2b, and 8b inputs, showing how each component's energy scales
 * with input precision) and Macro D. Reference shares are reconstructed
 * from the published breakdown structure (see EXPERIMENTS.md).
 */
#include "common.hh"

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"

using namespace cimloop;

namespace {

struct Breakdown
{
    double dac = 0.0, cells = 0.0, adc = 0.0, digital = 0.0,
           buffer = 0.0, other = 0.0;

    double
    total() const
    {
        return dac + cells + adc + digital + buffer + other;
    }
};

Breakdown
measure(const engine::Arch& arch, std::int64_t rows, std::int64_t cols)
{
    workload::Layer layer = workload::matmulLayer("mvm", 2048, rows, cols);
    layer.network = "mvm";
    engine::PerActionTable table = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    engine::Evaluation ev =
        engine::evaluate(arch, table, mapper.greedy());

    Breakdown bd;
    for (std::size_t i = 0; i < arch.hierarchy.nodes.size(); ++i) {
        const std::string& name = arch.hierarchy.nodes[i].name;
        double e = ev.nodeEnergyPj[i] / ev.macs; // pJ per MAC
        if (name == "dac_bank")
            bd.dac += e;
        else if (name == "cells" || name == "mac_units")
            bd.cells += e;
        else if (name == "adc")
            bd.adc += e;
        else if (name == "shift_add" || name == "adder_tree" ||
                 name == "analog_adder" || name == "analog_accumulator")
            bd.digital += e;
        else if (name == "buffer" || name == "weight_bank")
            bd.buffer += e;
        else
            bd.other += e;
    }
    return bd;
}

void
printRow(benchutil::Table& t, const std::string& label,
         const Breakdown& bd)
{
    t.row({label, benchutil::num(bd.dac), benchutil::num(bd.cells),
           benchutil::num(bd.adc), benchutil::num(bd.digital),
           benchutil::num(bd.buffer), benchutil::num(bd.total())});
}

} // namespace

int
main()
{
    benchutil::banner("Fig. 9",
                      "energy breakdowns (pJ/MAC): Macro C at 1/2/8 input "
                      "bits, Macro D");

    // --- Macro C: input-bit scaling of each component. ---
    std::printf("\n--- Macro C (130nm ReRAM) ---\n");
    benchutil::Table tc({"inputs", "DAC", "cells", "ADC",
                         "adder/accum", "buffer", "total"});
    Breakdown c1, c8;
    for (int bits : {1, 2, 8}) {
        macros::MacroParams p = macros::macroCDefaults();
        p.inputBits = bits;
        Breakdown bd = measure(macros::macroC(p), p.rows, p.cols);
        if (bits == 1)
            c1 = bd;
        if (bits == 8)
            c8 = bd;
        printRow(tc, std::to_string(bits) + "b", bd);
    }
    tc.print();
    std::printf("DAC+cell energy scales with input bits (8b/1b = %.1fx); "
                "ADC energy does not (8b/1b = %.2fx)\n",
                (c8.dac + c8.cells) / (c1.dac + c1.cells),
                c8.adc / c1.adc);

    // --- Macro D. ---
    std::printf("\n--- Macro D (22nm C-2C) ---\n");
    benchutil::Table td({"config", "DAC", "MAC units", "ADC", "shift-add",
                         "buffers", "total"});
    macros::MacroParams pd = macros::macroDDefaults();
    Breakdown d = measure(macros::macroD(pd), pd.rows, pd.cols);
    printRow(td, "8b x 8b", d);
    td.print();

    // Reference: the published Macro D breakdown is ADC-dominated with
    // substantial MAC-array energy (reconstructed shares, EXPERIMENTS.md).
    struct RefShare
    {
        const char* name;
        double ref_frac;
        double model;
    };
    double macro_total = d.total() - d.buffer + 1e-30;
    RefShare shares[] = {
        {"ADC", 0.60, d.adc / macro_total},
        {"MAC units", 0.25, d.cells / macro_total},
        {"DAC", 0.05, d.dac / macro_total},
        {"digital", 0.05, d.digital / macro_total},
    };
    std::printf("\nMacro D component shares vs reconstructed reference:\n");
    double err_sum = 0.0;
    for (const RefShare& s : shares) {
        double err = std::abs(s.model - s.ref_frac) * 100.0;
        err_sum += err;
        std::printf("  %-10s model %4.1f%%  ref %4.1f%%  |diff| %4.1f pts\n",
                    s.name, 100.0 * s.model, 100.0 * s.ref_frac, err);
    }
    std::printf("average share deviation: %.1f points (paper: 4%% energy "
                "error for discrete components; the residual share is "
                "miscellaneous components we did not model, as the paper "
                "also reports for Macro D)\n",
                err_sum / 4.0);
    return 0;
}
