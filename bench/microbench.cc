/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot paths whose speed the
 * paper's Table II depends on: YAML parsing, operand profiling +
 * encoding (precompute), mapping sampling, nest analysis, and full
 * mapping evaluation. Run alongside the figure benches; regressions
 * here erode the statistical model's headline speed.
 */
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "cimloop/common/arena.hh"
#include "cimloop/dist/encoding.hh"
#include "cimloop/dist/pmf.hh"
#include "cimloop/dist/simd.hh"
#include "cimloop/dse/dse.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/layout/layout.hh"
#include "cimloop/models/bankconflict.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/obs/obs.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"
#include "cimloop/yaml/parser.hh"

using namespace cimloop;

namespace {

const workload::Layer&
benchLayer()
{
    static workload::Layer layer = workload::resnet18().layers[8];
    return layer;
}

const engine::Arch&
benchArch()
{
    static engine::Arch arch = macros::baseMacro();
    return arch;
}

void
BM_YamlParseSpec(benchmark::State& state)
{
    std::string text = benchArch().hierarchy.toYamlText();
    for (auto _ : state) {
        benchmark::DoNotOptimize(yaml::parse(text));
    }
}
BENCHMARK(BM_YamlParseSpec);

void
BM_Precompute(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine::precompute(benchArch(), benchLayer()));
    }
}
BENCHMARK(BM_Precompute);

void
BM_MapperSample(benchmark::State& state)
{
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.next());
    }
}
BENCHMARK(BM_MapperSample);

void
BM_NestAnalysis(benchmark::State& state)
{
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    mapping::Mapping m = mapper.greedy();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mapping::analyzeNest(benchArch().hierarchy, m,
                                 table.extLayer));
    }
}
BENCHMARK(BM_NestAnalysis);

void
BM_Evaluate(benchmark::State& state)
{
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    mapping::Mapping m = mapper.greedy();
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::evaluate(benchArch(), table, m));
    }
    // The Table II claim rests on this number: evaluations per second.
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Evaluate);

void
BM_BankConflictSlowdown(benchmark::State& state)
{
    // The per-(node, tensor) inner kernel the layout path adds to every
    // evaluation: it must stay negligible next to BM_Evaluate.
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    mapping::Mapping m = mapper.greedy();
    layout::ResolvedLayout resolved = layout::resolveLayout(
        benchArch().hierarchy,
        layout::presetLayout("banked8", benchArch().hierarchy));
    std::size_t node = 0;
    for (std::size_t i = 0; i < resolved.slots.size(); ++i) {
        if (resolved.nodeAny(i))
            node = i;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(models::bankConflictSlowdowns(
            resolved, benchArch().hierarchy, node, m));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankConflictSlowdown);

void
BM_EvaluateWithLayout(benchmark::State& state)
{
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    mapping::Mapping m = mapper.greedy();
    layout::ResolvedLayout resolved = layout::resolveLayout(
        benchArch().hierarchy,
        layout::presetLayout("banked8", benchArch().hierarchy));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine::evaluate(benchArch(), table, m, &resolved));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateWithLayout);

void
BM_CoSearchLayouts(benchmark::State& state)
{
    // Layout x mapping co-search over the full candidate set; arg =
    // worker threads. ~7x the single-layout search's evaluations.
    engine::Arch arch = benchArch();
    arch.layoutSearch = true;
    int threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::searchMappings(
            arch, benchLayer(), 100, 1, engine::Objective::Delay,
            threads));
    }
}
BENCHMARK(BM_CoSearchLayouts)->Arg(1)->Arg(4);

void
BM_SearchHundredMappings(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine::searchMappings(benchArch(), benchLayer(), 100, 1));
    }
}
BENCHMARK(BM_SearchHundredMappings);

void
BM_SearchParallel(benchmark::State& state)
{
    // Sharded intra-layer search; arg = worker threads. Identical result
    // at every thread count, so this isolates the fan-out overhead.
    int threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::searchMappings(
            benchArch(), benchLayer(), 400, 1, engine::Objective::Energy,
            threads));
    }
}
BENCHMARK(BM_SearchParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_PrecomputeCached(benchmark::State& state)
{
    // Steady-state hit path of the keyed per-action table cache; compare
    // against BM_Precompute for the per-call synthesis cost it saves.
    engine::cachedPrecompute(benchArch(), benchLayer());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine::cachedPrecompute(benchArch(), benchLayer()));
    }
}
BENCHMARK(BM_PrecomputeCached);

void
BM_DivisorsOfMemoized(benchmark::State& state)
{
    // Hot in sample(): called once per sampled mapping per dimension.
    std::int64_t n = 1680; // highly composite: worst case uncached
    for (auto _ : state) {
        benchmark::DoNotOptimize(divisorsOf(n).size());
    }
}
BENCHMARK(BM_DivisorsOfMemoized);

void
BM_DivisorsOfUncached(benchmark::State& state)
{
    std::int64_t n = 1680;
    for (auto _ : state) {
        benchmark::DoNotOptimize(computeDivisors(n).size());
    }
}
BENCHMARK(BM_DivisorsOfUncached);

void
BM_PmfConvolveLattice(benchmark::State& state)
{
    // Integer support on both sides: takes the dense lattice kernel.
    dist::Pmf a = dist::Pmf::quantizedGaussian(0.0, 40.0, -128, 127);
    dist::Pmf b = dist::Pmf::quantizedGaussian(0.0, 40.0, -128, 127);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.convolveWith(b));
    }
}
BENCHMARK(BM_PmfConvolveLattice);

void
BM_PmfConvolvePointList(benchmark::State& state)
{
    // A fractional shift pushes the support off the integer lattice and
    // forces the sort-merge fallback; the ratio against
    // BM_PmfConvolveLattice is the fast path's speedup.
    dist::Pmf a = dist::Pmf::quantizedGaussian(0.0, 40.0, -128, 127)
                      .mapped([](double v) { return v + 0.1; });
    dist::Pmf b = dist::Pmf::quantizedGaussian(0.0, 40.0, -128, 127)
                      .mapped([](double v) { return v + 0.1; });
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.convolveWith(b));
    }
}
BENCHMARK(BM_PmfConvolvePointList);

void
BM_PmfSliceMixture(benchmark::State& state)
{
    // precompute()'s per-layer representation step: the average-slice
    // mixture of an 8-bit operand tensor sliced to 1-bit planes.
    dist::Pmf ops = dist::Pmf::quantizedGaussian(0.0, 30.0, -128, 127);
    dist::EncodedTensor enc =
        dist::encodeOperands(ops, dist::Encoding::Offset, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dist::sliceMixture(enc, 1));
    }
}
BENCHMARK(BM_PmfSliceMixture);

/** Runs @p body with the SIMD backend forced to @p b, then re-detects. */
template <typename Fn>
void
withBackend(dist::simd::Backend b, benchmark::State& state, Fn&& body)
{
    if (b == dist::simd::Backend::Avx2 && !dist::simd::avx2Supported()) {
        state.SkipWithError("AVX2 unavailable on this host");
        for (auto _ : state) {
        }
        return;
    }
    dist::simd::setBackend(b);
    body();
    dist::simd::resetBackend();
}

void
latticeConvolveLoop(benchmark::State& state)
{
    // Same workload as BM_PmfConvolveLattice; the Simd/Portable pair
    // isolates the vector-kernel speedup at a pinned backend (results
    // are bit-identical between the two by the simd.hh contract).
    dist::Pmf a = dist::Pmf::quantizedGaussian(0.0, 40.0, -128, 127);
    dist::Pmf b = dist::Pmf::quantizedGaussian(0.0, 40.0, -128, 127);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.convolveWith(b));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(a.size() * b.size()));
}

void
BM_LatticeConvolveSimd(benchmark::State& state)
{
    withBackend(dist::simd::Backend::Avx2, state,
                [&] { latticeConvolveLoop(state); });
}
BENCHMARK(BM_LatticeConvolveSimd);

void
BM_LatticeConvolvePortable(benchmark::State& state)
{
    withBackend(dist::simd::Backend::Portable, state,
                [&] { latticeConvolveLoop(state); });
}
BENCHMARK(BM_LatticeConvolvePortable);

void
BM_PrecomputeArena(benchmark::State& state)
{
    // The allocation pattern precompute drives through the thread arena:
    // a scope, a few dense lattice arrays, rewind. Compare against
    // BM_Precompute across snapshots for the end-to-end effect.
    Arena& arena = scratchArena();
    for (auto _ : state) {
        ArenaScope scope(arena);
        double* a = arena.alloc<double>(512);
        double* b = arena.alloc<double>(1024);
        double* c = arena.alloc<double>(4096);
        a[0] = 1.0;
        b[0] = 2.0;
        c[0] = 3.0;
        benchmark::DoNotOptimize(a);
        benchmark::DoNotOptimize(b);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_PrecomputeArena);

void
BM_RefsimGnormWalk(benchmark::State& state)
{
    // The refsim inner loop in isolation: per-(k, wb) dotPair over a
    // 512-row tile, the dominant cost of simulateVector.
    constexpr std::size_t kRows = 512;
    constexpr std::size_t kCols = 128; // k_total * wb rows of g_norm
    std::vector<double> xs(kRows), xs2(kRows), g(kCols * kRows);
    Rng rng(7);
    for (std::size_t i = 0; i < kRows; ++i) {
        xs[i] = rng.uniform();
        xs2[i] = xs[i] * xs[i];
    }
    for (double& v : g)
        v = rng.uniform();
    for (auto _ : state) {
        double total = 0.0;
        for (std::size_t k = 0; k < kCols; ++k) {
            double s = 0.0, e = 0.0;
            dist::simd::dotPair(xs.data(), xs2.data(), &g[k * kRows],
                                kRows, s, e);
            total += s + e;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kRows * kCols));
}
BENCHMARK(BM_RefsimGnormWalk);

void
BM_RefsimGnormWalkNaive(benchmark::State& state)
{
    // The pre-SIMD shape of the same walk: a serial dependent-chain
    // accumulator per dot, which cannot vectorize without reassociation.
    // The ratio against BM_RefsimGnormWalk is the kernel speedup.
    constexpr std::size_t kRows = 512;
    constexpr std::size_t kCols = 128;
    std::vector<double> xs(kRows), xs2(kRows), g(kCols * kRows);
    Rng rng(7);
    for (std::size_t i = 0; i < kRows; ++i) {
        xs[i] = rng.uniform();
        xs2[i] = xs[i] * xs[i];
    }
    for (double& v : g)
        v = rng.uniform();
    for (auto _ : state) {
        double total = 0.0;
        for (std::size_t k = 0; k < kCols; ++k) {
            const double* gr = &g[k * kRows];
            double s = 0.0, e = 0.0;
            for (std::size_t c = 0; c < kRows; ++c) {
                s += xs[c] * gr[c];
                e += xs2[c] * gr[c];
            }
            benchmark::DoNotOptimize(s);
            total += s + e;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kRows * kCols));
}
BENCHMARK(BM_RefsimGnormWalkNaive);

refsim::RefSimConfig
refsimBenchConfig()
{
    refsim::RefSimConfig cfg;
    cfg.maxVectors = 8;
    return cfg;
}

void
BM_RefSimValueLevel(benchmark::State& state)
{
    refsim::RefSimConfig cfg = refsimBenchConfig();
    const workload::Layer& layer = benchLayer();
    std::int64_t vectors = 0;
    for (auto _ : state) {
        refsim::RefSimResult r = refsim::simulateValueLevel(cfg, layer);
        benchmark::DoNotOptimize(r);
        vectors += cfg.maxVectors;
    }
    // Items = sampled vectors: the per-vector cost the refsim pays.
    state.SetItemsProcessed(vectors);
}
BENCHMARK(BM_RefSimValueLevel);

void
BM_FaultPerturbConductances(benchmark::State& state)
{
    // Per-cell counter-derived streams over a full 128x128 array: the
    // one-time injection cost the refsim pays per (layer, fault seed).
    faults::FaultModel model;
    model.stuckOffRate = 0.01;
    model.stuckOnRate = 0.01;
    model.conductanceSigma = 0.2;
    std::vector<double> g_norm(128 * 128, 0.5);
    std::vector<double> scratch;
    for (auto _ : state) {
        scratch = g_norm;
        faults::perturbConductances(model, 7, scratch);
        benchmark::DoNotOptimize(scratch.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g_norm.size()));
}
BENCHMARK(BM_FaultPerturbConductances);

void
BM_FaultPerturbCellCodes(benchmark::State& state)
{
    // Analytic PMF perturbation (stuck atoms + variance inflation +
    // lattice re-quantization): the statistical pipeline's per-slice
    // cost when faults are enabled.
    faults::FaultModel model;
    model.stuckOffRate = 0.01;
    model.stuckOnRate = 0.01;
    model.conductanceSigma = 0.2;
    dist::Pmf codes = dist::Pmf::quantizedGaussian(128.0, 40.0, 0, 255);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            faults::perturbedCellCodes(model, codes, 255.0));
    }
}
BENCHMARK(BM_FaultPerturbCellCodes);

void
BM_RefSimFaulty(benchmark::State& state)
{
    // Full value-level run with every fault mechanism on; compare with
    // BM_RefSimValueLevel for the injection overhead.
    refsim::RefSimConfig cfg = refsimBenchConfig();
    cfg.faults.stuckOffRate = 0.01;
    cfg.faults.stuckOnRate = 0.01;
    cfg.faults.conductanceSigma = 0.2;
    cfg.faults.adcNoiseSigma = 0.01;
    const workload::Layer& layer = benchLayer();
    for (auto _ : state) {
        refsim::RefSimResult r = refsim::simulateValueLevel(cfg, layer);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RefSimFaulty);

void
BM_RefSimParallel(benchmark::State& state)
{
    // arg = worker threads; results are bit-identical at every count, so
    // this isolates the parallel speedup (and fan-out overhead at 1).
    refsim::RefSimConfig cfg = refsimBenchConfig();
    cfg.maxVectors = 32;
    cfg.threads = static_cast<int>(state.range(0));
    const workload::Layer& layer = benchLayer();
    for (auto _ : state) {
        refsim::RefSimResult r = refsim::simulateValueLevel(cfg, layer);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RefSimParallel)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ObsCounterAdd(benchmark::State& state)
{
    // The always-on cost at an instrumented call site: one relaxed
    // fetch_add on a cache-line-aligned atomic, registry lookup hoisted
    // into a function-local static exactly as instrumented code does it.
    static obs::Counter& c = obs::counter("bench.obs.counter_add");
    for (auto _ : state) {
        c.add();
    }
}
BENCHMARK(BM_ObsCounterAdd);

void
BM_ObsSpanDisabled(benchmark::State& state)
{
    // The default path: timing off, a span is two branches and no clock
    // reads. This is the overhead every CIM_SPAN site pays in normal
    // (non---metrics) runs, quoted in docs/architecture.md.
    obs::setTimingEnabled(false);
    for (auto _ : state) {
        CIM_SPAN("bench.obs.span_disabled");
    }
}
BENCHMARK(BM_ObsSpanDisabled);

void
BM_ObsSpanEnabled(benchmark::State& state)
{
    // With --metrics: two steady_clock reads plus a mutex-guarded
    // aggregate update at span close.
    obs::setTimingEnabled(true);
    for (auto _ : state) {
        CIM_SPAN("bench.obs.span_enabled");
    }
    obs::setTimingEnabled(false);
}
BENCHMARK(BM_ObsSpanEnabled);

void
BM_ObsEvaluateOverhead(benchmark::State& state)
{
    // End-to-end guard for the "< 2% with obs disabled" budget: a full
    // mapping evaluation with every counter live but timing off —
    // compare against BM_Evaluate in a snapshot diff.
    obs::setTimingEnabled(false);
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    mapping::Mapping m = mapper.greedy();
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::evaluate(benchArch(), table, m));
    }
}
BENCHMARK(BM_ObsEvaluateOverhead);

/** Sweep-spec parse + grid materialization (no evaluation). */
void
BM_DseMaterializeGrid(benchmark::State& state)
{
    dse::SweepSpec spec;
    spec.network = "mvm";
    spec.scaledAdc = true;
    spec.addAxis("array", {64, 128, 256, 512});
    spec.addAxis("dac_bits", {1, 2, 3, 4});
    spec.addAxis("conductance_sigma", {0.0, 0.1, 0.3});
    spec.validate();
    for (auto _ : state) {
        for (std::size_t i = 0; i < spec.pointCount(); ++i)
            benchmark::DoNotOptimize(dse::materializePoint(spec, i));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(spec.pointCount()));
}
BENCHMARK(BM_DseMaterializeGrid);

/** Pareto extraction over a synthetic 256-point 3-objective cloud. */
void
BM_DseParetoIndices(benchmark::State& state)
{
    std::vector<std::vector<double>> objectives;
    Rng rng(42);
    for (int i = 0; i < 256; ++i)
        objectives.push_back(
            {rng.uniform(), rng.uniform(), rng.uniform()});
    for (auto _ : state) {
        benchmark::DoNotOptimize(dse::paretoIndices(objectives));
    }
}
BENCHMARK(BM_DseParetoIndices);

/**
 * Streaming frontier maintenance at million-point scale: inserts per
 * second into an incrementally pruned ParetoFront — the structure that
 * replaced the O(n^2) end-of-run scan. The argument sweeps the insert
 * count so the report shows how cost tracks the (small, self-pruning)
 * frontier rather than the stream length.
 */
void
BM_DseParetoFrontInsert(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(42);
    std::vector<std::vector<double>> rows;
    rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        rows.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    for (auto _ : state) {
        dse::ParetoFront front(3);
        for (std::size_t i = 0; i < n; ++i)
            front.insert(i, rows[i]);
        benchmark::DoNotOptimize(front.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DseParetoFrontInsert)->Arg(1024)->Arg(16384)->Arg(131072);

/**
 * End-to-end sweep throughput (points/sec) on a small engine-backed
 * grid — the number BENCH_*.json tracks for the dse executor.
 */
void
BM_DseSweepMvm(benchmark::State& state)
{
    dse::SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 10;
    spec.scaledAdc = true;
    spec.addAxis("array", {128, 256});
    spec.addAxis("dac_bits", {1, 2});
    for (auto _ : state) {
        // Clear the per-action cache so every iteration measures real
        // precompute + search work, not 100% cache hits.
        engine::clearPerActionCache();
        benchmark::DoNotOptimize(dse::runSweep(spec));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(spec.pointCount()));
}
BENCHMARK(BM_DseSweepMvm);

} // namespace

int
main(int argc, char** argv)
{
    // `--json` is shorthand for google-benchmark's JSON reporter; the
    // snapshot script (scripts/bench_snapshot.sh) relies on it.
    static char json_flag[] = "--benchmark_format=json";
    std::vector<char*> args(argv, argv + argc);
    for (char*& arg : args) {
        if (std::strcmp(arg, "--json") == 0)
            arg = json_flag;
    }
    int argc2 = static_cast<int>(args.size());
    benchmark::Initialize(&argc2, args.data());
    if (benchmark::ReportUnrecognizedArguments(argc2, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
