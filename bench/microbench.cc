/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot paths whose speed the
 * paper's Table II depends on: YAML parsing, operand profiling +
 * encoding (precompute), mapping sampling, nest analysis, and full
 * mapping evaluation. Run alongside the figure benches; regressions
 * here erode the statistical model's headline speed.
 */
#include <benchmark/benchmark.h>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"
#include "cimloop/yaml/parser.hh"

using namespace cimloop;

namespace {

const workload::Layer&
benchLayer()
{
    static workload::Layer layer = workload::resnet18().layers[8];
    return layer;
}

const engine::Arch&
benchArch()
{
    static engine::Arch arch = macros::baseMacro();
    return arch;
}

void
BM_YamlParseSpec(benchmark::State& state)
{
    std::string text = benchArch().hierarchy.toYamlText();
    for (auto _ : state) {
        benchmark::DoNotOptimize(yaml::parse(text));
    }
}
BENCHMARK(BM_YamlParseSpec);

void
BM_Precompute(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine::precompute(benchArch(), benchLayer()));
    }
}
BENCHMARK(BM_Precompute);

void
BM_MapperSample(benchmark::State& state)
{
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.next());
    }
}
BENCHMARK(BM_MapperSample);

void
BM_NestAnalysis(benchmark::State& state)
{
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    mapping::Mapping m = mapper.greedy();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mapping::analyzeNest(benchArch().hierarchy, m,
                                 table.extLayer));
    }
}
BENCHMARK(BM_NestAnalysis);

void
BM_Evaluate(benchmark::State& state)
{
    engine::PerActionTable table =
        engine::precompute(benchArch(), benchLayer());
    mapping::Mapper mapper(benchArch().hierarchy, table.extLayer,
                           {.seed = 1});
    mapping::Mapping m = mapper.greedy();
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::evaluate(benchArch(), table, m));
    }
    // The Table II claim rests on this number: evaluations per second.
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Evaluate);

void
BM_SearchHundredMappings(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine::searchMappings(benchArch(), benchLayer(), 100, 1));
    }
}
BENCHMARK(BM_SearchHundredMappings);

void
BM_SearchParallel(benchmark::State& state)
{
    // Sharded intra-layer search; arg = worker threads. Identical result
    // at every thread count, so this isolates the fan-out overhead.
    int threads = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine::searchMappings(
            benchArch(), benchLayer(), 400, 1, engine::Objective::Energy,
            threads));
    }
}
BENCHMARK(BM_SearchParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_PrecomputeCached(benchmark::State& state)
{
    // Steady-state hit path of the keyed per-action table cache; compare
    // against BM_Precompute for the per-call synthesis cost it saves.
    engine::cachedPrecompute(benchArch(), benchLayer());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine::cachedPrecompute(benchArch(), benchLayer()));
    }
}
BENCHMARK(BM_PrecomputeCached);

void
BM_DivisorsOfMemoized(benchmark::State& state)
{
    // Hot in sample(): called once per sampled mapping per dimension.
    std::int64_t n = 1680; // highly composite: worst case uncached
    for (auto _ : state) {
        benchmark::DoNotOptimize(divisorsOf(n).size());
    }
}
BENCHMARK(BM_DivisorsOfMemoized);

void
BM_DivisorsOfUncached(benchmark::State& state)
{
    std::int64_t n = 1680;
    for (auto _ : state) {
        benchmark::DoNotOptimize(computeDivisors(n).size());
    }
}
BENCHMARK(BM_DivisorsOfUncached);

} // namespace

BENCHMARK_MAIN();
