/**
 * @file
 * Reproduces paper Table I: the tool-property comparison. The other rows
 * (NeuroSim, MNSim, Timeloop) are qualitative literature claims; this
 * bench *demonstrates* the "This Work" row by measurement:
 *
 *  - architecture flexibility: user-defined hierarchies of any depth,
 *    loadable from YAML, serializable back;
 *  - circuit flexibility: a registry of data-value-dependent component
 *    models, extensible at runtime;
 *  - energy accuracy: data-value-dependent estimates track a value-level
 *    ground truth within a few percent where a fixed-energy model errs
 *    by an order of magnitude more;
 *  - model speed: orders of magnitude faster than value-level
 *    simulation.
 */
#include "common.hh"

#include <chrono>
#include <cmath>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/models/component.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/spec/hierarchy.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

int
main()
{
    benchutil::banner("Table I", "tool properties, demonstrated");

    // --- Architecture flexibility. ---
    int max_depth = 0;
    for (const char* kind : {"base", "A", "B", "C", "D", "digital"}) {
        spec::Hierarchy h = macros::macroByName(kind).hierarchy;
        spec::Hierarchy round =
            spec::Hierarchy::fromText(h.toYamlText(), h.name);
        max_depth = std::max(max_depth,
                             static_cast<int>(round.nodes.size()));
    }
    std::printf("architecture flexibility: 6 published macro families "
                "expressed as pure specifications (deepest: %d nodes), "
                "YAML round-trip exact\n",
                max_depth);

    // --- Circuit flexibility. ---
    std::vector<std::string> classes =
        models::PluginRegistry::instance().classNames();
    std::printf("circuit flexibility: %zu registered component model "
                "classes, runtime-extensible (see "
                "examples/custom_component)\n",
                classes.size());

    // --- Energy accuracy. ---
    refsim::RefSimConfig cfg;
    cfg.rows = 128;
    cfg.cols = 128;
    cfg.maxVectors = 24;
    workload::Network net = workload::resnet18();
    double stat_err = 0.0, fixed_err = 0.0;
    {
        std::vector<dist::OperandProfile> profiles;
        std::vector<workload::Layer> layers;
        std::vector<double> truths;
        for (int idx : {4, 10, 16}) {
            workload::Layer l = net.layers[idx];
            l.dims[workload::dimIndex(workload::Dim::P)] = 5;
            l.dims[workload::dimIndex(workload::Dim::Q)] = 5;
            dist::OperandProfile prof;
            truths.push_back(
                refsim::simulateValueLevel(cfg, l, &prof).totalPj());
            profiles.push_back(prof);
            layers.push_back(l);
        }
        dist::OperandProfile avg = refsim::averageProfiles(profiles);
        for (std::size_t i = 0; i < layers.size(); ++i) {
            stat_err += benchutil::pctErr(
                refsim::estimateStatistical(cfg, layers[i], profiles[i])
                    .totalPj(),
                truths[i]);
            fixed_err += benchutil::pctErr(
                refsim::estimateFixedEnergy(cfg, layers[i], avg).totalPj(),
                truths[i]);
        }
        stat_err /= layers.size();
        fixed_err /= layers.size();
    }
    std::printf("energy accuracy: data-value-dependent model %.1f%% avg "
                "error vs value-level truth (fixed-energy model: "
                "%.1f%%)\n",
                stat_err, fixed_err);

    // --- Model speed. ---
    using Clock = std::chrono::steady_clock;
    workload::Layer l = net.layers[8];
    l.dims[workload::dimIndex(workload::Dim::P)] = 5;
    l.dims[workload::dimIndex(workload::Dim::Q)] = 5;
    Clock::time_point t0 = Clock::now();
    volatile double sink = refsim::simulateValueLevel(cfg, l).totalPj();
    double slow_s = std::chrono::duration<double>(Clock::now() - t0)
                        .count();

    engine::Arch arch = macros::baseMacro();
    engine::PerActionTable table = engine::precompute(arch, l);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer, {.seed = 1});
    t0 = Clock::now();
    int evals = 0;
    for (int i = 0; i < 2000; ++i) {
        auto m = mapper.next();
        if (!m)
            break;
        sink = sink + engine::evaluate(arch, table, *m).energyPj;
        ++evals;
    }
    double fast_s = std::chrono::duration<double>(Clock::now() - t0)
                        .count();
    double speedup = (slow_s / 1.0) / (fast_s / evals);
    std::printf("model speed: %d mapping evaluations in %.3f s vs %.3f s "
                "for ONE value-level run — %.0fx per evaluation\n",
                evals, fast_s, slow_s, speedup);

    std::printf("\npaper Table I row for this work: flexibility HIGH, "
                "accuracy HIGH, speed HIGH — demonstrated: %s\n",
                (max_depth >= 7 && classes.size() >= 15 &&
                 stat_err < 0.5 * fixed_err && speedup > 100.0)
                    ? "YES"
                    : "NO");
    return 0;
}
