/**
 * @file
 * Reproduces paper Table II: modeling speed in (mappings x layers)/second
 * for the value-level reference simulator (the paper's NeuroSim column)
 * vs CiMLoop's statistical pipeline, at 1 mapping and at many mappings
 * per layer (amortization of the per-(arch, layer) precompute), single-
 * and multi-threaded.
 */
#include "common.hh"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** ResNet18 layers shrunk so the value-level run finishes in minutes. */
std::vector<workload::Layer>
benchLayers()
{
    workload::Network net = workload::resnet18();
    std::vector<workload::Layer> layers;
    for (std::size_t i = 1; i < net.layers.size(); i += 4) {
        workload::Layer l = net.layers[i];
        l.dims[workload::dimIndex(workload::Dim::P)] =
            std::min<std::int64_t>(l.size(workload::Dim::P), 7);
        l.dims[workload::dimIndex(workload::Dim::Q)] =
            std::min<std::int64_t>(l.size(workload::Dim::Q), 7);
        layers.push_back(l);
    }
    return layers;
}

/** (mappings x layers)/s for the CiMLoop statistical pipeline. */
double
cimloopRate(const std::vector<workload::Layer>& layers, int mappings,
            int threads)
{
    engine::Arch arch = macros::baseMacro();
    auto evalLayer = [&](const workload::Layer& layer) {
        engine::PerActionTable table = engine::precompute(arch, layer);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer,
                               {.seed = 7});
        engine::Evaluation ev =
            engine::evaluate(arch, table, mapper.greedy());
        double acc = ev.energyPj;
        for (int m = 1; m < mappings; ++m) {
            auto mp = mapper.next();
            if (!mp)
                continue;
            acc += engine::evaluate(arch, table, *mp).energyPj;
        }
        return acc;
    };

    Clock::time_point start = Clock::now();
    volatile double sink = 0.0;
    if (threads <= 1) {
        for (const workload::Layer& l : layers)
            sink = sink + evalLayer(l);
    } else {
        std::vector<std::thread> pool;
        std::atomic<std::size_t> next{0};
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < layers.size(); i = next.fetch_add(1)) {
                    volatile double local = evalLayer(layers[i]);
                    (void)local;
                }
            });
        }
        for (std::thread& t : pool)
            t.join();
    }
    double dt = seconds(start, Clock::now());
    return static_cast<double>(mappings) *
           static_cast<double>(layers.size()) / dt;
}

/**
 * Intra-layer search throughput (mappings/s): one layer, the sample
 * budget sharded over worker threads. The GPT-2-style case — few distinct
 * layers — leaves layer-level fan-out with nothing to do; this is where
 * the intra-layer shards earn their keep.
 */
double
intraLayerRate(const workload::Layer& layer, int mappings, int threads,
               engine::SearchResult* out = nullptr)
{
    engine::Arch arch = macros::baseMacro();
    Clock::time_point start = Clock::now();
    engine::SearchResult sr = engine::searchMappings(
        arch, layer, mappings, 7, engine::Objective::Energy, threads);
    double dt = seconds(start, Clock::now());
    if (out)
        *out = std::move(sr);
    return static_cast<double>(mappings) / dt;
}

/** (mappings x layers)/s for the value-level reference simulator. */
double
refsimRate(const std::vector<workload::Layer>& layers)
{
    refsim::RefSimConfig cfg;
    cfg.rows = 128;
    cfg.cols = 128;
    cfg.maxVectors = 24;
    Clock::time_point start = Clock::now();
    volatile double sink = 0.0;
    for (const workload::Layer& l : layers)
        sink = sink + refsim::simulateValueLevel(cfg, l).totalPj();
    double dt = seconds(start, Clock::now());
    return static_cast<double>(layers.size()) / dt;
}

} // namespace

int
main()
{
    benchutil::banner("Table II",
                      "modeling speed, (mappings x layers) per second");

    std::vector<workload::Layer> layers = benchLayers();
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());

    double ref = refsimRate(layers);
    double cim_1 = cimloopRate(layers, 1, 1);
    double cim_5000 = cimloopRate(layers, 5000, 1);
    double cim_mt_1 = cimloopRate(layers, 1, static_cast<int>(hw));
    double cim_mt_5000 = cimloopRate(layers, 5000, static_cast<int>(hw));

    benchutil::Table table({"model", "# cores", "1 mapping",
                            "5000 mappings"});
    table.row({"value-level sim (NeuroSim role)", "1",
               benchutil::num(ref), "-"});
    table.row({"CiMLoop", "1", benchutil::num(cim_1),
               benchutil::num(cim_5000)});
    table.row({"CiMLoop", std::to_string(hw), benchutil::num(cim_mt_1),
               benchutil::num(cim_mt_5000)});
    table.print();

    std::printf("\nspeedup at 1 mapping:     %.0fx\n", cim_1 / ref);
    std::printf("speedup at 5000 mappings: %.0fx\n", cim_5000 / ref);
    std::printf("amortization gain (5000 vs 1 mapping, per mapping): "
                "%.0fx\n",
                cim_5000 / cim_1);
    std::printf("\npaper Table II shape: orders-of-magnitude faster than "
                "the value-level model, and faster still when the "
                "per-layer precompute amortizes over many mappings — "
                "reproduced: %s\n",
                (cim_5000 / ref > 100.0 && cim_5000 > cim_1) ? "YES"
                                                             : "NO");

    // Intra-layer parallel search: a single-layer workload, 2000+
    // mappings, serial vs sharded-parallel, with the determinism
    // contract checked (identical winner for any thread count).
    const int kIntraMappings = 2000;
    workload::Layer single = layers.front();
    engine::clearPerActionCache();
    engine::SearchResult warm;
    intraLayerRate(single, 64, 1, &warm); // warm the per-action cache

    engine::SearchResult sr1, sr8;
    double intra_1 = intraLayerRate(single, kIntraMappings, 1, &sr1);
    double intra_8 = intraLayerRate(single, kIntraMappings, 8, &sr8);
    bool identical = sr1.bestMapping == sr8.bestMapping &&
                     sr1.best.energyPj == sr8.best.energyPj;

    std::printf("\nintra-layer search, 1 layer x %d mappings:\n",
                kIntraMappings);
    benchutil::Table intra({"search threads", "mappings/s", "speedup"});
    intra.row({"1 (serial)", benchutil::num(intra_1), "1.0x"});
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", intra_8 / intra_1);
    intra.row({"8", benchutil::num(intra_8), speedup});
    intra.print();
    std::printf("best mapping identical across 1/8 threads: %s "
                "(%.6g pJ, %d evaluated, %d rejected)\n",
                identical ? "YES" : "NO", sr1.best.energyPj,
                sr1.evaluated, sr1.rejected);
    std::printf("(speedup scales with physical cores; %u available "
                "here)\n", hw);
    return 0;
}
