# Empty compiler generated dependencies file for ablation_devices.
# This may be replaced when dependencies are built.
