file(REMOVE_RECURSE
  "../bench/ablation_independence"
  "../bench/ablation_independence.pdb"
  "CMakeFiles/ablation_independence.dir/ablation_independence.cc.o"
  "CMakeFiles/ablation_independence.dir/ablation_independence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
