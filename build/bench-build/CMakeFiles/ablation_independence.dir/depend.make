# Empty dependencies file for ablation_independence.
# This may be replaced when dependencies are built.
