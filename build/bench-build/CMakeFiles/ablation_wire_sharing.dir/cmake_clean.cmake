file(REMOVE_RECURSE
  "../bench/ablation_wire_sharing"
  "../bench/ablation_wire_sharing.pdb"
  "CMakeFiles/ablation_wire_sharing.dir/ablation_wire_sharing.cc.o"
  "CMakeFiles/ablation_wire_sharing.dir/ablation_wire_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wire_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
