# Empty dependencies file for ablation_wire_sharing.
# This may be replaced when dependencies are built.
