file(REMOVE_RECURSE
  "../bench/fig10_area_breakdown"
  "../bench/fig10_area_breakdown.pdb"
  "CMakeFiles/fig10_area_breakdown.dir/fig10_area_breakdown.cc.o"
  "CMakeFiles/fig10_area_breakdown.dir/fig10_area_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_area_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
