# Empty dependencies file for fig10_area_breakdown.
# This may be replaced when dependencies are built.
