file(REMOVE_RECURSE
  "../bench/fig11_value_energy"
  "../bench/fig11_value_energy.pdb"
  "CMakeFiles/fig11_value_energy.dir/fig11_value_energy.cc.o"
  "CMakeFiles/fig11_value_energy.dir/fig11_value_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_value_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
