file(REMOVE_RECURSE
  "../bench/fig12_output_reuse"
  "../bench/fig12_output_reuse.pdb"
  "CMakeFiles/fig12_output_reuse.dir/fig12_output_reuse.cc.o"
  "CMakeFiles/fig12_output_reuse.dir/fig12_output_reuse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_output_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
