# Empty compiler generated dependencies file for fig12_output_reuse.
# This may be replaced when dependencies are built.
