file(REMOVE_RECURSE
  "../bench/fig13_adder_width"
  "../bench/fig13_adder_width.pdb"
  "CMakeFiles/fig13_adder_width.dir/fig13_adder_width.cc.o"
  "CMakeFiles/fig13_adder_width.dir/fig13_adder_width.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_adder_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
