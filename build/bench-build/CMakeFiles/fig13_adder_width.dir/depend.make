# Empty dependencies file for fig13_adder_width.
# This may be replaced when dependencies are built.
