file(REMOVE_RECURSE
  "../bench/fig14_array_size"
  "../bench/fig14_array_size.pdb"
  "CMakeFiles/fig14_array_size.dir/fig14_array_size.cc.o"
  "CMakeFiles/fig14_array_size.dir/fig14_array_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_array_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
