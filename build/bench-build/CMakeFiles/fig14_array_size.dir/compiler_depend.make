# Empty compiler generated dependencies file for fig14_array_size.
# This may be replaced when dependencies are built.
