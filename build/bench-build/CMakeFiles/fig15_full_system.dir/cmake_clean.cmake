file(REMOVE_RECURSE
  "../bench/fig15_full_system"
  "../bench/fig15_full_system.pdb"
  "CMakeFiles/fig15_full_system.dir/fig15_full_system.cc.o"
  "CMakeFiles/fig15_full_system.dir/fig15_full_system.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_full_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
