# Empty compiler generated dependencies file for fig15_full_system.
# This may be replaced when dependencies are built.
