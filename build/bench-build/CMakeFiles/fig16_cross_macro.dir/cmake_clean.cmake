file(REMOVE_RECURSE
  "../bench/fig16_cross_macro"
  "../bench/fig16_cross_macro.pdb"
  "CMakeFiles/fig16_cross_macro.dir/fig16_cross_macro.cc.o"
  "CMakeFiles/fig16_cross_macro.dir/fig16_cross_macro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cross_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
