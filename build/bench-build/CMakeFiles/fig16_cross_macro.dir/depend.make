# Empty dependencies file for fig16_cross_macro.
# This may be replaced when dependencies are built.
