file(REMOVE_RECURSE
  "../bench/fig2a_macro_vs_system"
  "../bench/fig2a_macro_vs_system.pdb"
  "CMakeFiles/fig2a_macro_vs_system.dir/fig2a_macro_vs_system.cc.o"
  "CMakeFiles/fig2a_macro_vs_system.dir/fig2a_macro_vs_system.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_macro_vs_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
