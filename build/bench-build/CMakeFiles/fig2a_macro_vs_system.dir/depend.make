# Empty dependencies file for fig2a_macro_vs_system.
# This may be replaced when dependencies are built.
