file(REMOVE_RECURSE
  "../bench/fig2b_codesign"
  "../bench/fig2b_codesign.pdb"
  "CMakeFiles/fig2b_codesign.dir/fig2b_codesign.cc.o"
  "CMakeFiles/fig2b_codesign.dir/fig2b_codesign.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
