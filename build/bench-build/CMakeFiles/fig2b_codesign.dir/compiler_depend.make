# Empty compiler generated dependencies file for fig2b_codesign.
# This may be replaced when dependencies are built.
