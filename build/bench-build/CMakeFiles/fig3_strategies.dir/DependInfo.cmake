
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_strategies.cc" "bench-build/CMakeFiles/fig3_strategies.dir/fig3_strategies.cc.o" "gcc" "bench-build/CMakeFiles/fig3_strategies.dir/fig3_strategies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/refsim/CMakeFiles/cimloop_refsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/cimloop_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/cimloop_system.dir/DependInfo.cmake"
  "/root/repo/build/src/macros/CMakeFiles/cimloop_macros.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/cimloop_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/cimloop_models.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/cimloop_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/cimloop_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/cimloop_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cimloop_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/yaml/CMakeFiles/cimloop_yaml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cimloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
