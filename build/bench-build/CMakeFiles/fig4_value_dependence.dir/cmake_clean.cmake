file(REMOVE_RECURSE
  "../bench/fig4_value_dependence"
  "../bench/fig4_value_dependence.pdb"
  "CMakeFiles/fig4_value_dependence.dir/fig4_value_dependence.cc.o"
  "CMakeFiles/fig4_value_dependence.dir/fig4_value_dependence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_value_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
