# Empty compiler generated dependencies file for fig6_accuracy.
# This may be replaced when dependencies are built.
