# Empty dependencies file for fig7_voltage_sweep.
# This may be replaced when dependencies are built.
