file(REMOVE_RECURSE
  "../bench/fig8_input_bits"
  "../bench/fig8_input_bits.pdb"
  "CMakeFiles/fig8_input_bits.dir/fig8_input_bits.cc.o"
  "CMakeFiles/fig8_input_bits.dir/fig8_input_bits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_input_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
