# Empty compiler generated dependencies file for fig8_input_bits.
# This may be replaced when dependencies are built.
