file(REMOVE_RECURSE
  "../bench/fig9_energy_breakdown"
  "../bench/fig9_energy_breakdown.pdb"
  "CMakeFiles/fig9_energy_breakdown.dir/fig9_energy_breakdown.cc.o"
  "CMakeFiles/fig9_energy_breakdown.dir/fig9_energy_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
