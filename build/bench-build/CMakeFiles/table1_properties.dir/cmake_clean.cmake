file(REMOVE_RECURSE
  "../bench/table1_properties"
  "../bench/table1_properties.pdb"
  "CMakeFiles/table1_properties.dir/table1_properties.cc.o"
  "CMakeFiles/table1_properties.dir/table1_properties.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
