file(REMOVE_RECURSE
  "../bench/table2_speed"
  "../bench/table2_speed.pdb"
  "CMakeFiles/table2_speed.dir/table2_speed.cc.o"
  "CMakeFiles/table2_speed.dir/table2_speed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
