# Empty dependencies file for table2_speed.
# This may be replaced when dependencies are built.
