file(REMOVE_RECURSE
  "CMakeFiles/custom_component.dir/custom_component.cpp.o"
  "CMakeFiles/custom_component.dir/custom_component.cpp.o.d"
  "custom_component"
  "custom_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
