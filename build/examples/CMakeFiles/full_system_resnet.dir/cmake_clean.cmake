file(REMOVE_RECURSE
  "CMakeFiles/full_system_resnet.dir/full_system_resnet.cpp.o"
  "CMakeFiles/full_system_resnet.dir/full_system_resnet.cpp.o.d"
  "full_system_resnet"
  "full_system_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_system_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
