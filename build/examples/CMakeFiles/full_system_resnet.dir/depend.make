# Empty dependencies file for full_system_resnet.
# This may be replaced when dependencies are built.
