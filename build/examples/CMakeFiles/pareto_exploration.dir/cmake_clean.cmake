file(REMOVE_RECURSE
  "CMakeFiles/pareto_exploration.dir/pareto_exploration.cpp.o"
  "CMakeFiles/pareto_exploration.dir/pareto_exploration.cpp.o.d"
  "pareto_exploration"
  "pareto_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
