# Empty compiler generated dependencies file for pareto_exploration.
# This may be replaced when dependencies are built.
