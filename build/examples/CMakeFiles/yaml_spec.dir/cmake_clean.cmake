file(REMOVE_RECURSE
  "CMakeFiles/yaml_spec.dir/yaml_spec.cpp.o"
  "CMakeFiles/yaml_spec.dir/yaml_spec.cpp.o.d"
  "yaml_spec"
  "yaml_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yaml_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
