# Empty dependencies file for yaml_spec.
# This may be replaced when dependencies are built.
