# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("yaml")
subdirs("dist")
subdirs("workload")
subdirs("spec")
subdirs("models")
subdirs("mapping")
subdirs("engine")
subdirs("refsim")
subdirs("macros")
subdirs("system")
subdirs("cli")
