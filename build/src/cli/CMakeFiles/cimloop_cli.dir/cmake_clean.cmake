file(REMOVE_RECURSE
  "CMakeFiles/cimloop_cli.dir/cli.cc.o"
  "CMakeFiles/cimloop_cli.dir/cli.cc.o.d"
  "libcimloop_cli.a"
  "libcimloop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
