file(REMOVE_RECURSE
  "libcimloop_cli.a"
)
