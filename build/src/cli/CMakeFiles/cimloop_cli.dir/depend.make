# Empty dependencies file for cimloop_cli.
# This may be replaced when dependencies are built.
