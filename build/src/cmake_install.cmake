# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/common/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/yaml/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/dist/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/workload/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/spec/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/models/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/mapping/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/engine/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/refsim/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/macros/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/system/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cli/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libcimloop_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/common/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/yaml/libcimloop_yaml.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/yaml/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/dist/libcimloop_dist.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/dist/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/workload/libcimloop_workload.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/workload/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/spec/libcimloop_spec.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/spec/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/models/libcimloop_models.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/models/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/mapping/libcimloop_mapping.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/mapping/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/engine/libcimloop_engine.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/engine/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/refsim/libcimloop_refsim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/refsim/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/macros/libcimloop_macros.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/macros/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/system/libcimloop_system.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/system/include/")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cli/libcimloop_cli.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/cli/include/")
endif()

