file(REMOVE_RECURSE
  "CMakeFiles/cimloop_common.dir/error.cc.o"
  "CMakeFiles/cimloop_common.dir/error.cc.o.d"
  "CMakeFiles/cimloop_common.dir/log.cc.o"
  "CMakeFiles/cimloop_common.dir/log.cc.o.d"
  "CMakeFiles/cimloop_common.dir/util.cc.o"
  "CMakeFiles/cimloop_common.dir/util.cc.o.d"
  "libcimloop_common.a"
  "libcimloop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
