file(REMOVE_RECURSE
  "libcimloop_common.a"
)
