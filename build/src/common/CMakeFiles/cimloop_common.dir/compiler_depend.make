# Empty compiler generated dependencies file for cimloop_common.
# This may be replaced when dependencies are built.
