
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/encoding.cc" "src/dist/CMakeFiles/cimloop_dist.dir/encoding.cc.o" "gcc" "src/dist/CMakeFiles/cimloop_dist.dir/encoding.cc.o.d"
  "/root/repo/src/dist/operands.cc" "src/dist/CMakeFiles/cimloop_dist.dir/operands.cc.o" "gcc" "src/dist/CMakeFiles/cimloop_dist.dir/operands.cc.o.d"
  "/root/repo/src/dist/pmf.cc" "src/dist/CMakeFiles/cimloop_dist.dir/pmf.cc.o" "gcc" "src/dist/CMakeFiles/cimloop_dist.dir/pmf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cimloop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
