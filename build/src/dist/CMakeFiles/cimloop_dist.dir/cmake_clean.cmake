file(REMOVE_RECURSE
  "CMakeFiles/cimloop_dist.dir/encoding.cc.o"
  "CMakeFiles/cimloop_dist.dir/encoding.cc.o.d"
  "CMakeFiles/cimloop_dist.dir/operands.cc.o"
  "CMakeFiles/cimloop_dist.dir/operands.cc.o.d"
  "CMakeFiles/cimloop_dist.dir/pmf.cc.o"
  "CMakeFiles/cimloop_dist.dir/pmf.cc.o.d"
  "libcimloop_dist.a"
  "libcimloop_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
