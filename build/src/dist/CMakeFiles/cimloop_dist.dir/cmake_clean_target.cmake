file(REMOVE_RECURSE
  "libcimloop_dist.a"
)
