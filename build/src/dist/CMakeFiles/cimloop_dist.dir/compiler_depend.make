# Empty compiler generated dependencies file for cimloop_dist.
# This may be replaced when dependencies are built.
