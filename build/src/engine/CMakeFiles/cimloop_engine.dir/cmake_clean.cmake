file(REMOVE_RECURSE
  "CMakeFiles/cimloop_engine.dir/arch.cc.o"
  "CMakeFiles/cimloop_engine.dir/arch.cc.o.d"
  "CMakeFiles/cimloop_engine.dir/evaluate.cc.o"
  "CMakeFiles/cimloop_engine.dir/evaluate.cc.o.d"
  "libcimloop_engine.a"
  "libcimloop_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
