file(REMOVE_RECURSE
  "libcimloop_engine.a"
)
