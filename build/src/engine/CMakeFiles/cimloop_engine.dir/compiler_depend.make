# Empty compiler generated dependencies file for cimloop_engine.
# This may be replaced when dependencies are built.
