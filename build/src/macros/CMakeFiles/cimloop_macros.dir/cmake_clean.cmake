file(REMOVE_RECURSE
  "CMakeFiles/cimloop_macros.dir/macros.cc.o"
  "CMakeFiles/cimloop_macros.dir/macros.cc.o.d"
  "libcimloop_macros.a"
  "libcimloop_macros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_macros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
