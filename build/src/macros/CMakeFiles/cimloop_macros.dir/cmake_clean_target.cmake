file(REMOVE_RECURSE
  "libcimloop_macros.a"
)
