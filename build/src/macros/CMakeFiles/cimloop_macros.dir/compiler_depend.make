# Empty compiler generated dependencies file for cimloop_macros.
# This may be replaced when dependencies are built.
