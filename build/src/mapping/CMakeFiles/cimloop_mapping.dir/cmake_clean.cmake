file(REMOVE_RECURSE
  "CMakeFiles/cimloop_mapping.dir/mapper.cc.o"
  "CMakeFiles/cimloop_mapping.dir/mapper.cc.o.d"
  "CMakeFiles/cimloop_mapping.dir/mapping.cc.o"
  "CMakeFiles/cimloop_mapping.dir/mapping.cc.o.d"
  "CMakeFiles/cimloop_mapping.dir/nest.cc.o"
  "CMakeFiles/cimloop_mapping.dir/nest.cc.o.d"
  "libcimloop_mapping.a"
  "libcimloop_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
