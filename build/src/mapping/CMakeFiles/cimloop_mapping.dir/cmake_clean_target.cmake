file(REMOVE_RECURSE
  "libcimloop_mapping.a"
)
