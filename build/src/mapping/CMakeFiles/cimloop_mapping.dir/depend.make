# Empty dependencies file for cimloop_mapping.
# This may be replaced when dependencies are built.
