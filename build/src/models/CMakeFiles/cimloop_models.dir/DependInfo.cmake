
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/component.cc" "src/models/CMakeFiles/cimloop_models.dir/component.cc.o" "gcc" "src/models/CMakeFiles/cimloop_models.dir/component.cc.o.d"
  "/root/repo/src/models/devices.cc" "src/models/CMakeFiles/cimloop_models.dir/devices.cc.o" "gcc" "src/models/CMakeFiles/cimloop_models.dir/devices.cc.o.d"
  "/root/repo/src/models/plugins.cc" "src/models/CMakeFiles/cimloop_models.dir/plugins.cc.o" "gcc" "src/models/CMakeFiles/cimloop_models.dir/plugins.cc.o.d"
  "/root/repo/src/models/tech.cc" "src/models/CMakeFiles/cimloop_models.dir/tech.cc.o" "gcc" "src/models/CMakeFiles/cimloop_models.dir/tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cimloop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/cimloop_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/cimloop_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cimloop_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/yaml/CMakeFiles/cimloop_yaml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
