file(REMOVE_RECURSE
  "CMakeFiles/cimloop_models.dir/component.cc.o"
  "CMakeFiles/cimloop_models.dir/component.cc.o.d"
  "CMakeFiles/cimloop_models.dir/devices.cc.o"
  "CMakeFiles/cimloop_models.dir/devices.cc.o.d"
  "CMakeFiles/cimloop_models.dir/plugins.cc.o"
  "CMakeFiles/cimloop_models.dir/plugins.cc.o.d"
  "CMakeFiles/cimloop_models.dir/tech.cc.o"
  "CMakeFiles/cimloop_models.dir/tech.cc.o.d"
  "libcimloop_models.a"
  "libcimloop_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
