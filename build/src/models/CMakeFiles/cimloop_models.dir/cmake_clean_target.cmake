file(REMOVE_RECURSE
  "libcimloop_models.a"
)
