# Empty dependencies file for cimloop_models.
# This may be replaced when dependencies are built.
