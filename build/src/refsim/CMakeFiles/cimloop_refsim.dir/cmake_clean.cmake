file(REMOVE_RECURSE
  "CMakeFiles/cimloop_refsim.dir/refsim.cc.o"
  "CMakeFiles/cimloop_refsim.dir/refsim.cc.o.d"
  "libcimloop_refsim.a"
  "libcimloop_refsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_refsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
