file(REMOVE_RECURSE
  "libcimloop_refsim.a"
)
