# Empty dependencies file for cimloop_refsim.
# This may be replaced when dependencies are built.
