file(REMOVE_RECURSE
  "CMakeFiles/cimloop_spec.dir/builder.cc.o"
  "CMakeFiles/cimloop_spec.dir/builder.cc.o.d"
  "CMakeFiles/cimloop_spec.dir/hierarchy.cc.o"
  "CMakeFiles/cimloop_spec.dir/hierarchy.cc.o.d"
  "libcimloop_spec.a"
  "libcimloop_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
