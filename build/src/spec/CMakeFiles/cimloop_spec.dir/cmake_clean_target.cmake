file(REMOVE_RECURSE
  "libcimloop_spec.a"
)
