# Empty dependencies file for cimloop_spec.
# This may be replaced when dependencies are built.
