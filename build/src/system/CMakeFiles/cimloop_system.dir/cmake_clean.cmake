file(REMOVE_RECURSE
  "CMakeFiles/cimloop_system.dir/system.cc.o"
  "CMakeFiles/cimloop_system.dir/system.cc.o.d"
  "libcimloop_system.a"
  "libcimloop_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
