file(REMOVE_RECURSE
  "libcimloop_system.a"
)
