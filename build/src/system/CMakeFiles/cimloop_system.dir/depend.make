# Empty dependencies file for cimloop_system.
# This may be replaced when dependencies are built.
