
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/layer.cc" "src/workload/CMakeFiles/cimloop_workload.dir/layer.cc.o" "gcc" "src/workload/CMakeFiles/cimloop_workload.dir/layer.cc.o.d"
  "/root/repo/src/workload/networks.cc" "src/workload/CMakeFiles/cimloop_workload.dir/networks.cc.o" "gcc" "src/workload/CMakeFiles/cimloop_workload.dir/networks.cc.o.d"
  "/root/repo/src/workload/workload_yaml.cc" "src/workload/CMakeFiles/cimloop_workload.dir/workload_yaml.cc.o" "gcc" "src/workload/CMakeFiles/cimloop_workload.dir/workload_yaml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cimloop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/yaml/CMakeFiles/cimloop_yaml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
