file(REMOVE_RECURSE
  "CMakeFiles/cimloop_workload.dir/layer.cc.o"
  "CMakeFiles/cimloop_workload.dir/layer.cc.o.d"
  "CMakeFiles/cimloop_workload.dir/networks.cc.o"
  "CMakeFiles/cimloop_workload.dir/networks.cc.o.d"
  "CMakeFiles/cimloop_workload.dir/workload_yaml.cc.o"
  "CMakeFiles/cimloop_workload.dir/workload_yaml.cc.o.d"
  "libcimloop_workload.a"
  "libcimloop_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
