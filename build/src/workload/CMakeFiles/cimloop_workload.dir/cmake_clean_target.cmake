file(REMOVE_RECURSE
  "libcimloop_workload.a"
)
