# Empty compiler generated dependencies file for cimloop_workload.
# This may be replaced when dependencies are built.
