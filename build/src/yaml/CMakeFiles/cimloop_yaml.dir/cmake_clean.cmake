file(REMOVE_RECURSE
  "CMakeFiles/cimloop_yaml.dir/node.cc.o"
  "CMakeFiles/cimloop_yaml.dir/node.cc.o.d"
  "CMakeFiles/cimloop_yaml.dir/parser.cc.o"
  "CMakeFiles/cimloop_yaml.dir/parser.cc.o.d"
  "libcimloop_yaml.a"
  "libcimloop_yaml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_yaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
