file(REMOVE_RECURSE
  "libcimloop_yaml.a"
)
