# Empty dependencies file for cimloop_yaml.
# This may be replaced when dependencies are built.
