file(REMOVE_RECURSE
  "CMakeFiles/test_dist.dir/dist/encoding_test.cc.o"
  "CMakeFiles/test_dist.dir/dist/encoding_test.cc.o.d"
  "CMakeFiles/test_dist.dir/dist/operands_test.cc.o"
  "CMakeFiles/test_dist.dir/dist/operands_test.cc.o.d"
  "CMakeFiles/test_dist.dir/dist/pmf_test.cc.o"
  "CMakeFiles/test_dist.dir/dist/pmf_test.cc.o.d"
  "CMakeFiles/test_dist.dir/dist/statistics_test.cc.o"
  "CMakeFiles/test_dist.dir/dist/statistics_test.cc.o.d"
  "test_dist"
  "test_dist.pdb"
  "test_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
