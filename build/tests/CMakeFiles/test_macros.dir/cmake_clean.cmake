file(REMOVE_RECURSE
  "CMakeFiles/test_macros.dir/macros/macros_test.cc.o"
  "CMakeFiles/test_macros.dir/macros/macros_test.cc.o.d"
  "test_macros"
  "test_macros.pdb"
  "test_macros[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_macros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
