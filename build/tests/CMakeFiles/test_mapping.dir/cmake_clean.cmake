file(REMOVE_RECURSE
  "CMakeFiles/test_mapping.dir/mapping/constraints_test.cc.o"
  "CMakeFiles/test_mapping.dir/mapping/constraints_test.cc.o.d"
  "CMakeFiles/test_mapping.dir/mapping/exhaustive_test.cc.o"
  "CMakeFiles/test_mapping.dir/mapping/exhaustive_test.cc.o.d"
  "CMakeFiles/test_mapping.dir/mapping/mapper_test.cc.o"
  "CMakeFiles/test_mapping.dir/mapping/mapper_test.cc.o.d"
  "CMakeFiles/test_mapping.dir/mapping/mapping_yaml_test.cc.o"
  "CMakeFiles/test_mapping.dir/mapping/mapping_yaml_test.cc.o.d"
  "CMakeFiles/test_mapping.dir/mapping/nest_scenarios_test.cc.o"
  "CMakeFiles/test_mapping.dir/mapping/nest_scenarios_test.cc.o.d"
  "CMakeFiles/test_mapping.dir/mapping/nest_test.cc.o"
  "CMakeFiles/test_mapping.dir/mapping/nest_test.cc.o.d"
  "test_mapping"
  "test_mapping.pdb"
  "test_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
