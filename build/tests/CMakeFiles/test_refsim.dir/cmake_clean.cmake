file(REMOVE_RECURSE
  "CMakeFiles/test_refsim.dir/refsim/accumulate_test.cc.o"
  "CMakeFiles/test_refsim.dir/refsim/accumulate_test.cc.o.d"
  "CMakeFiles/test_refsim.dir/refsim/fidelity_test.cc.o"
  "CMakeFiles/test_refsim.dir/refsim/fidelity_test.cc.o.d"
  "CMakeFiles/test_refsim.dir/refsim/refsim_test.cc.o"
  "CMakeFiles/test_refsim.dir/refsim/refsim_test.cc.o.d"
  "test_refsim"
  "test_refsim.pdb"
  "test_refsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
