# Empty dependencies file for test_refsim.
# This may be replaced when dependencies are built.
