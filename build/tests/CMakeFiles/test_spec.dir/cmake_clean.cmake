file(REMOVE_RECURSE
  "CMakeFiles/test_spec.dir/spec/edit_test.cc.o"
  "CMakeFiles/test_spec.dir/spec/edit_test.cc.o.d"
  "CMakeFiles/test_spec.dir/spec/hierarchy_test.cc.o"
  "CMakeFiles/test_spec.dir/spec/hierarchy_test.cc.o.d"
  "CMakeFiles/test_spec.dir/spec/serialize_test.cc.o"
  "CMakeFiles/test_spec.dir/spec/serialize_test.cc.o.d"
  "test_spec"
  "test_spec.pdb"
  "test_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
