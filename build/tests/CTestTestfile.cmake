# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_yaml[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_macros[1]_include.cmake")
include("/root/repo/build/tests/test_refsim[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_regress[1]_include.cmake")
