file(REMOVE_RECURSE
  "CMakeFiles/cimloop_tool.dir/cimloop_cli.cc.o"
  "CMakeFiles/cimloop_tool.dir/cimloop_cli.cc.o.d"
  "cimloop"
  "cimloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cimloop_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
