# Empty dependencies file for cimloop_tool.
# This may be replaced when dependencies are built.
