/**
 * @file
 * User-defined data-value-dependent component models (paper Sec. III-C2:
 * "a simple plug-in interface that lets users define new ... energy
 * models"). Registers a photonic Mach-Zehnder modulator model — a
 * paradigm the paper explicitly says CiMLoop can cover — and uses it in
 * a custom macro.
 */
#include <cmath>
#include <cstdio>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/models/component.hh"
#include "cimloop/spec/builder.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;
using workload::TensorKind;

namespace {

/**
 * A photonic Mach-Zehnder modulator: drive energy follows the modulation
 * depth (the encoded input level), a different functional form than any
 * built-in electrical model — exactly what the plug-in interface is for.
 */
class MziModulatorModel : public models::ComponentModel
{
  public:
    std::string className() const override { return "MziModulator"; }

    std::string
    description() const override
    {
        return "photonic MZI modulator; drive energy ~ sin^2 of level";
    }

    models::ComponentEstimate
    estimate(const models::ComponentContext& ctx) const override
    {
        const dist::EncodedTensor& in =
            ctx.tensors[spec::tensorIndex(TensorKind::Input)];
        double e_drive_fj = ctx.attrDouble("drive_energy_fj", 45.0);
        // Modulation transfer: power ~ sin^2(pi/2 * level); expectation
        // over the full code distribution, not just its mean.
        double activity = in.codes.expectation([&](double code) {
            double level = in.maxCode() > 0 ? code / in.maxCode() : 0.0;
            double s = std::sin(M_PI_2 * level);
            return s * s;
        });
        models::ComponentEstimate est;
        est.actionEnergyPj[spec::tensorIndex(TensorKind::Input)] =
            e_drive_fj * activity / 1000.0;
        est.latencyNs = ctx.attrDouble("latency_ns", 0.1);
        est.areaUm2 = ctx.attrDouble("area_um2", 900.0);
        return est;
    }
};

} // namespace

int
main()
{
    // Register the plug-in; from here it is addressable by class name,
    // exactly like the built-ins.
    models::PluginRegistry::instance().add(
        std::make_unique<MziModulatorModel>());

    spec::Hierarchy h = spec::HierarchyBuilder("photonic_macro")
        .component("buffer", "SRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
            .attr("entries", std::int64_t{16384})
            .attr("width", std::int64_t{64})
        .container("macro")
        .component("modulators", "MziModulator") // <- the custom class
            .noCoalesce({TensorKind::Input})
        .container("column")
            .spatial(32, 1)
            .spatialReuse({TensorKind::Input})
            .spatialDims({workload::Dim::K})
        .component("adc", "ADC")
            .noCoalesce({TensorKind::Output})
            .attr("resolution", std::int64_t{6})
        .component("weights", "SRAMCell")
            .spatial(1, 32)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
            .spatialDims({workload::Dim::C})
        .build();

    engine::Arch arch;
    arch.name = "photonic";
    arch.hierarchy = h;
    arch.technologyNm = 28.0;
    arch.rep.dacBits = 8; // full-resolution modulation
    arch.rep.cellBits = 8;

    workload::Network net = workload::maxUtilMvm(32, 32, 4096);
    engine::SearchResult sr =
        engine::searchMappings(arch, net.layers[0], 150, 1);

    int mod = arch.hierarchy.indexOf("modulators");
    std::printf("photonic macro on a 32x32 MVM stream:\n");
    std::printf("  total energy    : %.3f pJ/MAC\n",
                sr.best.energyPerMacPj());
    std::printf("  modulator share : %.1f%%\n",
                100.0 * sr.best.nodeEnergyPj[mod] / sr.best.energyPj);
    std::printf("  efficiency      : %.1f TOPS/W\n",
                sr.best.topsPerWatt());
    std::printf("\nthe custom model is data-value-dependent: its energy "
                "was computed from the layer's full input code "
                "distribution through a user-defined sin^2 transfer\n");
    return 0;
}
