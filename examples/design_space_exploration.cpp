/**
 * @file
 * Design space exploration: the paper's motivating use case (Sec. II-B).
 * Sweeps CiM array size x DAC resolution for the base macro running
 * ResNet18, evaluating hundreds of mappings per design point — fast,
 * because per-action energies are precomputed once per (arch, layer) and
 * amortized over every mapping (paper Sec. III-D).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

int
main()
{
    workload::Network net = workload::resnet18();

    std::printf("exploring array size x DAC resolution on ResNet18\n");
    std::printf("(energy in pJ/MAC; each point searches 100 mappings "
                "per layer)\n\n");

    std::printf("%-10s", "array\\DAC");
    for (int dac : {1, 2, 4})
        std::printf("  %8db", dac);
    std::printf("\n");

    double best = 1e300;
    std::string best_label;
    for (std::int64_t array : {64, 128, 256, 512}) {
        std::printf("%-10s", (std::to_string(array) + "x" +
                              std::to_string(array)).c_str());
        for (int dac : {1, 2, 4}) {
            macros::MacroParams p = macros::baseDefaults();
            p.rows = array;
            p.cols = array;
            p.dacBits = dac;
            p.adcBits = macros::scaledAdcBits(array) +
                        std::max(0, dac - 3);
            engine::Arch arch = macros::baseMacro(p);
            engine::NetworkEvaluation ev =
                engine::evaluateNetwork(arch, net, 100, 1);
            double pj = ev.energyPerMacPj();
            std::printf("  %9.3f", pj);
            if (pj < best) {
                best = pj;
                best_label = std::to_string(array) + "x" +
                             std::to_string(array) + " array, " +
                             std::to_string(dac) + "b DAC";
            }
        }
        std::printf("\n");
    }

    std::printf("\nbest design point: %s (%.3f pJ/MAC)\n",
                best_label.c_str(), best);
    std::printf("co-design matters: neither the array size nor the DAC "
                "resolution can be chosen well in isolation (paper "
                "Fig. 2b)\n");
    return 0;
}
