/**
 * @file
 * Design space exploration: the paper's motivating use case (Sec. II-B).
 * Sweeps CiM array size x DAC resolution for the base macro running
 * ResNet18 through the cimloop::dse engine — one declarative spec
 * replaces the hand-rolled nested loops, and the executor adds keep-going
 * degradation, per-action cache reuse across points, and Pareto frontier
 * extraction for free. The same spec could be written as a YAML file and
 * run via `cimloop --sweep` (see examples/sweep.yaml).
 */
#include <cstdio>
#include <string>

#include "cimloop/dse/dse.hh"

using namespace cimloop;

int
main()
{
    dse::SweepSpec spec;
    spec.name = "resnet18-array-x-dac";
    spec.macro = "base";
    spec.network = "resnet18";
    spec.mappings = 100;
    spec.seed = 1;
    // ADC resolution tracks the array (RAELLA-style truncation), so it
    // is derived, not an axis.
    spec.scaledAdc = true;
    spec.addAxis("array", {64, 128, 256, 512});
    spec.addAxis("dac_bits", {1, 2, 4});

    std::printf("exploring array size x DAC resolution on ResNet18\n");
    std::printf("(energy in pJ/MAC; each point searches %d mappings "
                "per layer)\n\n", spec.mappings);

    dse::SweepResult result = dse::runSweep(spec);

    // The grid enumerates in odometer order (last axis fastest), so the
    // point at (array index a, dac index d) is points[a * n_dac + d].
    const std::size_t n_dac = spec.axes[1].values.size();
    std::printf("%-10s", "array\\DAC");
    for (const dse::AxisValue& dac : spec.axes[1].values)
        std::printf("  %7sb", dac.text.c_str());
    std::printf("\n");
    for (std::size_t a = 0; a < spec.axes[0].values.size(); ++a) {
        const std::string& array = spec.axes[0].values[a].text;
        std::printf("%-10s", (array + "x" + array).c_str());
        for (std::size_t d = 0; d < n_dac; ++d) {
            const dse::PointResult& pr = result.points[a * n_dac + d];
            if (pr.status == dse::PointStatus::Ok)
                std::printf("  %9.3f", pr.energyPerMacPj);
            else
                std::printf("  %9s", dse::pointStatusName(pr.status));
        }
        std::printf("\n");
    }

    if (result.bestIndex != static_cast<std::size_t>(-1)) {
        const dse::PointResult& best = result.points[result.bestIndex];
        std::printf("\nbest design point: %s (%.3f pJ/MAC)\n",
                    best.point.label(spec).c_str(),
                    best.energyPerMacPj);
    }
    std::printf("pareto frontier (pJ/MAC vs latency): %zu of %zu "
                "evaluated points\n",
                result.frontier.size(), result.evaluated);
    // Every point in this grid is a distinct hardware design, so each
    // (arch, layer) precompute is a miss; axes that do not change the
    // hardware (mapper budget, seed) share entries instead — see
    // examples/sweep.yaml for a grid with cross-point hits.
    std::printf("per-action cache economy: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(result.cacheHits),
                static_cast<unsigned long long>(result.cacheMisses));
    std::printf("co-design matters: neither the array size nor the DAC "
                "resolution can be chosen well in isolation (paper "
                "Fig. 2b)\n");
    return 0;
}
