/**
 * @file
 * Full-system evaluation: a chip with DRAM, a global buffer, a NoC, and
 * 16 parallel Macro-D CiM macros running all of ResNet18 under the three
 * weight-placement scenarios of paper Fig. 15.
 */
#include <cstdio>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/system/system.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

int
main()
{
    workload::Network net = workload::resnet18();

    for (auto policy : {system::WeightPolicy::OffChip,
                        system::WeightPolicy::WeightStationary,
                        system::WeightPolicy::Fused}) {
        system::SystemParams params;
        params.macroKind = "D";
        params.numMacros = 16;
        params.policy = policy;
        engine::Arch arch = system::buildSystem(params);

        double total_pj = 0.0, off_pj = 0.0, gb_pj = 0.0;
        double total_macs = 0.0, latency_ns = 0.0;
        for (const workload::Layer& layer : net.layers) {
            engine::SearchResult sr =
                engine::searchMappings(arch, layer, 100, 1);
            system::SystemBreakdown bd =
                system::groupBreakdown(arch, sr.best);
            total_pj += bd.totalPj();
            off_pj += bd.offChipPj;
            gb_pj += bd.globalBufferPj;
            total_macs += sr.best.macs;
            latency_ns += sr.best.latencyNs;
        }

        std::printf("--- %s ---\n", system::policyName(policy));
        std::printf("  total energy : %8.1f uJ  (%5.2f pJ/MAC)\n",
                    total_pj / 1e6, total_pj / total_macs);
        std::printf("  off-chip     : %8.1f uJ  (%4.1f%%)\n",
                    off_pj / 1e6, 100.0 * off_pj / total_pj);
        std::printf("  global buffer: %8.1f uJ  (%4.1f%%)\n",
                    gb_pj / 1e6, 100.0 * gb_pj / total_pj);
        std::printf("  inference    : %8.2f ms\n", latency_ns / 1e6);
    }

    std::printf("\nweight-stationary CiM removes weight movement; layer "
                "fusion removes the remaining input/output movement "
                "(paper Fig. 15)\n");
    return 0;
}
