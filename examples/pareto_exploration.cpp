/**
 * @file
 * Energy/latency trade-space exploration: instead of a single best
 * mapping, expose the Pareto frontier of a layer on two macros and show
 * how the frontier shifts with architecture — the kind of exploration
 * the paper's fast statistical model makes cheap (thousands of mappings
 * per second).
 */
#include <cstdio>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

void
printFrontier(const char* label, const engine::Arch& arch,
              const workload::Layer& layer)
{
    std::vector<engine::ParetoPoint> frontier =
        engine::paretoFrontier(arch, layer, 2000, 1);
    std::printf("\n%s — %zu nondominated mappings of ~2000 sampled:\n",
                label, frontier.size());
    std::printf("  %12s  %12s  %8s\n", "energy (uJ)", "latency (ms)",
                "util");
    for (const engine::ParetoPoint& p : frontier) {
        std::printf("  %12.4f  %12.4f  %7.0f%%\n",
                    p.eval.energyPj / 1e6, p.eval.latencyNs / 1e6,
                    100.0 * p.eval.utilization);
    }
}

} // namespace

int
main()
{
    workload::Layer layer = workload::resnet18().layers[8];
    std::printf("layer %s (%s)\n", layer.name.c_str(),
                layer.shapeString().c_str());

    macros::MacroParams small = macros::baseDefaults();
    small.rows = 128;
    small.cols = 128;
    printFrontier("base macro, 128x128", macros::baseMacro(small), layer);

    macros::MacroParams large = macros::baseDefaults();
    large.rows = 512;
    large.cols = 512;
    large.adcBits = macros::scaledAdcBits(512);
    printFrontier("base macro, 512x512", macros::baseMacro(large), layer);

    std::printf("\nthe frontier, not a single optimum, is what a "
                "co-design loop consumes: a mapping that wins on energy "
                "may lose 2x on latency, and the trade moves with the "
                "architecture\n");
    return 0;
}
