/**
 * @file
 * Pareto-frontier exploration at two scales:
 *
 *  - Across designs: a cimloop::dse sweep over array sizes extracts the
 *    energy/latency frontier of the design space itself — which array
 *    sizes are worth building at all.
 *  - Within one design: engine::paretoFrontier exposes the trade space
 *    of mappings on a fixed architecture — what a compiler can still
 *    trade after the hardware is chosen.
 *
 * Both are cheap because of the paper's statistical model (thousands of
 * mappings per second).
 */
#include <cstdio>

#include "cimloop/dse/dse.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

void
printMappingFrontier(const char* label, const engine::Arch& arch,
                     const workload::Layer& layer)
{
    std::vector<engine::ParetoPoint> frontier =
        engine::paretoFrontier(arch, layer, 2000, 1);
    std::printf("\n%s — %zu nondominated mappings of ~2000 sampled:\n",
                label, frontier.size());
    std::printf("  %12s  %12s  %8s\n", "energy (uJ)", "latency (ms)",
                "util");
    for (const engine::ParetoPoint& p : frontier) {
        std::printf("  %12.4f  %12.4f  %7.0f%%\n",
                    p.eval.energyPj / 1e6, p.eval.latencyNs / 1e6,
                    100.0 * p.eval.utilization);
    }
}

} // namespace

int
main()
{
    // Design-level frontier: sweep the base macro's array size on the
    // max-utilization MVM workload and keep the nondominated designs.
    dse::SweepSpec spec;
    spec.name = "array-size-frontier";
    spec.macro = "base";
    spec.network = "mvm";
    spec.mappings = 200;
    spec.scaledAdc = true;
    spec.paretoObjectives = {"energy_per_mac", "latency"};
    spec.addAxis("array", {128, 256, 512, 1024});

    dse::SweepResult result = dse::runSweep(spec);
    std::printf("design-level frontier (%zu of %zu designs "
                "nondominated on pJ/MAC vs latency):\n",
                result.frontier.size(), result.points.size());
    std::printf("  %-18s  %12s  %12s\n", "design", "pJ/MAC",
                "latency (ns)");
    for (std::size_t idx : result.frontier) {
        const dse::PointResult& pr = result.points[idx];
        std::printf("  %-18s  %12.4f  %12.4f\n",
                    pr.point.label(spec).c_str(), pr.energyPerMacPj,
                    pr.latencyNs);
    }

    // Mapping-level frontier on two of those designs: rebuild the exact
    // architectures the sweep evaluated from their materialized points.
    workload::Layer layer = workload::resnet18().layers[8];
    std::printf("\nmapping-level trade space on layer %s (%s):\n",
                layer.name.c_str(), layer.shapeString().c_str());
    for (std::size_t idx : {std::size_t{0}, std::size_t{2}}) {
        dse::SweepPoint point = dse::materializePoint(spec, idx);
        engine::Arch arch =
            macros::macroByName(point.macroName, point.params);
        printMappingFrontier(point.label(spec).c_str(), arch, layer);
    }

    std::printf("\nthe frontier, not a single optimum, is what a "
                "co-design loop consumes: a mapping that wins on energy "
                "may lose 2x on latency, and the trade moves with the "
                "architecture\n");
    return 0;
}
