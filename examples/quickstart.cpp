/**
 * @file
 * Quickstart: describe a small CiM macro with the container-hierarchy
 * specification, map a matrix-vector workload onto it, and read out
 * energy / area / throughput.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/spec/builder.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;
using workload::TensorKind;

int
main()
{
    // 1. Describe the hardware: a buffer feeding a 64x64 CiM array.
    //    Per-tensor reuse directives say who stores, converts, and sums
    //    what (paper Fig. 5). The same spec can be written in YAML and
    //    loaded with spec::Hierarchy::fromFile.
    spec::Hierarchy macro = spec::HierarchyBuilder("quickstart_macro")
        .component("buffer", "SRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
            .attr("entries", std::int64_t{16384})
            .attr("width", std::int64_t{64})
        .container("macro")
        .component("shift_add", "ShiftAdd")
            .coalesce({TensorKind::Output})
        .component("dac_bank", "DAC")
            .noCoalesce({TensorKind::Input})
            .attr("resolution", std::int64_t{1})
        .container("column")
            .spatial(64, 1)
            .spatialReuse({TensorKind::Input}) // rows broadcast inputs
            .spatialDims({workload::Dim::K, workload::Dim::WB})
        .component("adc", "ADC")
            .noCoalesce({TensorKind::Output})
            .attr("resolution", std::int64_t{5})
        .component("cells", "ReRAMCell")
            .spatial(1, 64)
            .temporalReuse({TensorKind::Weight}) // weights stay in cells
            .spatialReuse({TensorKind::Output})  // column wire sums
            .spatialDims({workload::Dim::C, workload::Dim::R,
                          workload::Dim::S})
        .build();

    std::printf("%s\n", macro.summary().c_str());

    // 2. Wrap it into an evaluable architecture: technology node and the
    //    hardware data representation (encoding + bit slicing).
    engine::Arch arch;
    arch.name = "quickstart";
    arch.hierarchy = macro;
    arch.technologyNm = 40.0;
    arch.rep.inputEncoding = dist::Encoding::Offset;
    arch.rep.weightEncoding = dist::Encoding::Offset;
    arch.rep.dacBits = 1;  // bit-serial inputs
    arch.rep.cellBits = 1; // one weight bit per cell

    // 3. A workload: one 1024-vector MVM over a 64x64 weight matrix.
    workload::Network net = workload::maxUtilMvm(64, 64, 1024);

    // 4. Search mappings and report.
    engine::SearchResult sr =
        engine::searchMappings(arch, net.layers[0], 200, /*seed=*/1);

    std::printf("best mapping found (of %d evaluated):\n%s\n",
                sr.evaluated,
                sr.bestMapping.toString(arch.hierarchy).c_str());
    std::printf("energy      : %.3f uJ  (%.3f pJ/MAC)\n",
                sr.best.energyPj / 1e6, sr.best.energyPerMacPj());
    std::printf("efficiency  : %.1f TOPS/W\n", sr.best.topsPerWatt());
    std::printf("area        : %.3f mm^2\n", sr.best.areaUm2 / 1e6);
    std::printf("latency     : %.3f ms\n", sr.best.latencyNs / 1e6);
    std::printf("utilization : %.0f%%\n", 100.0 * sr.best.utilization);
    return 0;
}
