/**
 * @file
 * Loading an architecture from a YAML specification file — the paper's
 * Fig. 5b front end. Writes the spec to disk, loads it back, and
 * evaluates it, demonstrating that non-parameterizable changes (adding
 * components, changing connections) need only input-file edits (paper
 * Sec. VI contrasts this with simulators requiring source changes).
 */
#include <cstdio>
#include <fstream>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/spec/hierarchy.hh"
#include "cimloop/workload/networks.hh"

using namespace cimloop;

namespace {

const char* kSpec = R"(# A CiM macro in the paper's Fig. 5b style.
!Component
name: buffer
class: SRAM
temporal_reuse: [Inputs, Outputs]   # bypass weights
entries: 16384
width: 64
!Container
name: macro
!Component
name: shift_add
class: ShiftAdd
coalesce: [Outputs]                 # merges bit-sliced partials
!Component
name: dac_bank
class: DAC
no_coalesce: [Inputs]               # every datum is a fresh convert
resolution: 2
!Container
name: column
spatial: {meshX: 128}
spatial_reuse: [Inputs]             # rows broadcast across columns
spatial_dims: [K, WB]
!Component
name: adc
class: ADC
no_coalesce: [Outputs]
resolution: 6
!Component
name: cells
class: ReRAMCell
spatial: {meshY: 128}
temporal_reuse: [Weights]           # weights stationary in the array
spatial_reuse: [Outputs]            # column wire sums partial outputs
spatial_dims: [C, R, S]
idle_fraction: 0.25
)";

} // namespace

int
main()
{
    const char* path = "example_macro.yaml";
    {
        std::ofstream out(path);
        out << kSpec;
    }
    std::printf("wrote %s; loading it back...\n\n", path);

    spec::Hierarchy h = spec::Hierarchy::fromFile(path);
    std::printf("%s\n", h.summary().c_str());

    engine::Arch arch;
    arch.name = "yaml_macro";
    arch.hierarchy = h;
    arch.technologyNm = 40.0;
    arch.rep.dacBits = 2;  // matches the DAC resolution above
    arch.rep.cellBits = 1;

    workload::Network net = workload::resnet18();
    const workload::Layer& layer = net.layers[6];
    engine::SearchResult sr = engine::searchMappings(arch, layer, 150, 1);

    std::printf("layer %s (%s):\n", layer.name.c_str(),
                layer.shapeString().c_str());
    std::printf("  energy     : %.3f pJ/MAC\n", sr.best.energyPerMacPj());
    std::printf("  efficiency : %.1f TOPS/W\n", sr.best.topsPerWatt());
    std::printf("  mappings evaluated: %d (%d invalid samples skipped)\n",
                sr.evaluated, sr.invalid);
    std::printf("\nedit %s (e.g. change resolutions, add an analog "
                "accumulator before the cells) and re-run — no "
                "recompilation needed for spec-level changes\n",
                path);
    return 0;
}
