#!/usr/bin/env bash
# Diffs a current microbench run against the committed BENCH_*.json
# trajectory and fails (exit 1) when any gated kernel regressed by more
# than BENCH_TOLERANCE_PCT percent. This is what makes the perf
# trajectory ENFORCED rather than just recorded.
#
# Usage: bench_compare.sh [-b baseline.json] [-c current.json] [-o report]
#   -b  baseline snapshot (default: newest git-tracked BENCH_*.json)
#   -c  current snapshot (default: run ${BUILD_DIR}/bench/microbench now)
#   -o  report file (default: ${BENCH_REPORT}, falling back to
#       ${BUILD_DIR}/bench_compare_report.txt so the work tree stays
#       clean — reports are build products, not sources)
#
# Env knobs:
#   BENCH_TOLERANCE_PCT  allowed slowdown per gated kernel (default 15;
#                        CI uses a looser value — runner hardware varies)
#   BENCH_GATE_REGEX     anchored regex of gated benchmark names
#   BUILD_DIR            build tree used when -c is not given
#
# Exit codes: 0 ok, 1 regression, 2 usage/misconfiguration.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${FILTER:-Convolve|Precompute|RefSim|Gnorm|Arena|SliceMixture|Evaluate|Fault|Obs|Dse}"
TOLERANCE="${BENCH_TOLERANCE_PCT:-15}"
GATE_REGEX="${BENCH_GATE_REGEX:-^BM_(PmfConvolveLattice|PmfSliceMixture|Precompute|PrecomputeArena|LatticeConvolveSimd|RefsimGnormWalk|RefSimValueLevel|Evaluate)$}"
REPORT="${BENCH_REPORT:-${BUILD_DIR}/bench_compare_report.txt}"

BASELINE=""
CURRENT=""
while getopts "b:c:o:h" opt; do
    case "${opt}" in
        b) BASELINE="${OPTARG}" ;;
        c) CURRENT="${OPTARG}" ;;
        o) REPORT="${OPTARG}" ;;
        h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) exit 2 ;;
    esac
done

if [ -z "${BASELINE}" ]; then
    # Newest snapshot the repo has COMMITTED, so a snapshot freshly
    # written into the work tree never becomes its own baseline.
    BASELINE="$(git ls-files 'BENCH_*.json' 2>/dev/null | sort | tail -1)"
    if [ -z "${BASELINE}" ]; then
        BASELINE="$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -1)"
    fi
fi
if [ -z "${BASELINE}" ] || [ ! -f "${BASELINE}" ]; then
    echo "error: no baseline BENCH_*.json found (commit one with" \
         "scripts/bench_snapshot.sh or pass -b)" >&2
    exit 2
fi

CLEANUP=""
if [ -z "${CURRENT}" ]; then
    if [ ! -x "${BUILD_DIR}/bench/microbench" ]; then
        echo "error: ${BUILD_DIR}/bench/microbench not built (build it" \
             "or pass -c current.json)" >&2
        exit 2
    fi
    CURRENT="$(mktemp)"
    CLEANUP="${CURRENT}"
    trap '[ -n "${CLEANUP}" ] && rm -f "${CLEANUP}"' EXIT
    "${BUILD_DIR}/bench/microbench" --json \
        "--benchmark_filter=${FILTER}" > "${CURRENT}"
fi

mkdir -p "$(dirname "${REPORT}")"
BENCH_BASELINE_PATH="${BASELINE}" BENCH_CURRENT_PATH="${CURRENT}" \
BENCH_TOLERANCE_PCT="${TOLERANCE}" BENCH_GATE_REGEX="${GATE_REGEX}" \
BENCH_REPORT_PATH="${REPORT}" python3 - <<'EOF'
import json, os, re, sys

tol = float(os.environ["BENCH_TOLERANCE_PCT"])
gate = re.compile(os.environ["BENCH_GATE_REGEX"])
base_path = os.environ["BENCH_BASELINE_PATH"]
cur_path = os.environ["BENCH_CURRENT_PATH"]
report_path = os.environ["BENCH_REPORT_PATH"]

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if b.get("error_occurred"):
            continue
        out[b["name"]] = float(b["real_time"]) * UNIT_NS.get(
            b.get("time_unit", "ns"), 1.0)
    return doc.get("context", {}), out

base_ctx, base = load(base_path)
cur_ctx, cur = load(cur_path)

lines = []
lines.append(f"bench_compare: baseline={base_path} current={cur_path}")
lines.append(f"tolerance: +{tol:g}% on gated kernels "
             f"(gate: {os.environ['BENCH_GATE_REGEX']})")
bt = str(base_ctx.get("cimloop_build_type",
                      base_ctx.get("library_build_type", "unknown")))
if bt.lower() != "release":
    lines.append(f"WARNING: baseline records build type '{bt}' — "
                 "numbers may not be apples-to-apples")

regressions = []
gated_seen = 0
rows = []
for name in sorted(set(base) | set(cur)):
    gated = bool(gate.match(name))
    if name not in cur:
        rows.append((name, base[name], None, None, gated,
                     "missing from current run"))
        continue
    if name not in base:
        rows.append((name, None, cur[name], None, gated,
                     "new (not in baseline)"))
        continue
    b, c = base[name], cur[name]
    delta = (c - b) / b * 100.0 if b > 0 else 0.0
    verdict = "ok"
    if gated:
        gated_seen += 1
        if delta > tol:
            verdict = "REGRESSED"
            regressions.append((name, delta))
        elif delta < -tol:
            verdict = "improved"
    rows.append((name, b, c, delta, gated, verdict))

def fmt_ns(v):
    if v is None:
        return "-"
    return f"{v:.1f}"

w = max((len(r[0]) for r in rows), default=10)
lines.append(f"{'benchmark':<{w}}  {'base(ns)':>12}  {'cur(ns)':>12}  "
             f"{'delta':>8}  gate  verdict")
for name, b, c, delta, gated, verdict in rows:
    d = f"{delta:+.1f}%" if delta is not None else "-"
    g = "*" if gated else " "
    lines.append(f"{name:<{w}}  {fmt_ns(b):>12}  {fmt_ns(c):>12}  "
                 f"{d:>8}  {g:>4}  {verdict}")

if gated_seen == 0:
    lines.append("ERROR: no gated kernel present in both snapshots — "
                 "gate regex or snapshots are misconfigured")
if regressions:
    lines.append("")
    lines.append(f"FAIL: {len(regressions)} gated kernel(s) regressed "
                 f"beyond +{tol:g}%:")
    for name, delta in regressions:
        lines.append(f"  {name}: {delta:+.1f}%")
    lines.append("If this slowdown is intentional (a feature that costs "
                 "cycles), re-record the trajectory with "
                 "scripts/bench_snapshot.sh and commit the new "
                 "BENCH_<date>.json alongside the change; in CI, apply "
                 "the 'perf-regression-accepted' label to the PR and "
                 "note the justification in the description.")
else:
    lines.append("")
    lines.append("OK: all gated kernels within tolerance")

text = "\n".join(lines) + "\n"
sys.stdout.write(text)
with open(report_path, "w") as f:
    f.write(text)
if gated_seen == 0:
    sys.exit(2)
sys.exit(1 if regressions else 0)
EOF
