#!/usr/bin/env bash
# Records a dated microbenchmark snapshot (BENCH_<date>.json) so perf
# changes to the hot kernels (Pmf convolution, precompute, refsim) are
# visible in review diffs. Run from anywhere; builds the bench target if
# needed. Override the build tree with BUILD_DIR (default: build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${FILTER:-Convolve|Precompute|RefSim|SliceMixture|Evaluate|Fault|Obs|Dse}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

if [ ! -x "${BUILD_DIR}/bench/microbench" ]; then
    cmake -B "${BUILD_DIR}" -S . >/dev/null
    cmake --build "${BUILD_DIR}" --target microbench -j >/dev/null
fi

"${BUILD_DIR}/bench/microbench" --json \
    "--benchmark_filter=${FILTER}" > "${OUT}"
echo "wrote ${OUT}"
