#!/usr/bin/env bash
# Records a dated microbenchmark snapshot (BENCH_<date>.json) so perf
# changes to the hot kernels (Pmf convolution, precompute, refsim) are
# visible in review diffs — and enforced by scripts/bench_compare.sh.
# Run from anywhere; builds the bench target if needed. Override the
# build tree with BUILD_DIR (default: build).
#
# Snapshots must be apples-to-apples: the script refuses to record from
# a non-Release tree (the committed trajectory is Release numbers).
# Set BENCH_ALLOW_NON_RELEASE=1 to record anyway — loudly marked.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${FILTER:-Convolve|Precompute|RefSim|Gnorm|Arena|SliceMixture|Evaluate|Fault|Obs|Dse|BankConflict|CoSearch}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

if [ ! -x "${BUILD_DIR}/bench/microbench" ]; then
    # Fresh tree: configure Release so the snapshot is comparable.
    if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
        cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    fi
    cmake --build "${BUILD_DIR}" --target microbench -j >/dev/null
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
    "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null || true)"
if [ "${BUILD_TYPE}" != "Release" ]; then
    if [ "${BENCH_ALLOW_NON_RELEASE:-0}" = "1" ]; then
        echo "warn: recording a snapshot from a '${BUILD_TYPE:-unknown}'" \
             "build — numbers are NOT comparable to the committed" \
             "Release trajectory" >&2
    else
        echo "error: ${BUILD_DIR} is configured as" \
             "'${BUILD_TYPE:-unknown}', not Release." >&2
        echo "  Use a Release tree, e.g.:" >&2
        echo "    cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release" >&2
        echo "    BUILD_DIR=build-rel $0" >&2
        echo "  or set BENCH_ALLOW_NON_RELEASE=1 to record anyway." >&2
        exit 1
    fi
fi

"${BUILD_DIR}/bench/microbench" --json \
    "--benchmark_filter=${FILTER}" > "${OUT}"

# Stamp the cimloop build type into the snapshot context: the
# 'library_build_type' google-benchmark records is its OWN build flavor,
# which is why an earlier snapshot could claim 'debug' from a Release
# cimloop tree. bench_compare.sh reads this stamp.
python3 - "${OUT}" "${BUILD_TYPE:-unknown}" <<'EOF'
import json, sys
path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
doc.setdefault("context", {})["cimloop_build_type"] = build_type.lower()
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
echo "wrote ${OUT}"
