#!/usr/bin/env bash
# Full verification: configure, build, test, regenerate every figure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] && "$b"
done
echo "ALL CHECKS PASSED"
