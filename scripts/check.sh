#!/usr/bin/env bash
# Full verification: configure, build, test, regenerate every figure.
set -euo pipefail
cd "$(dirname "$0")/.."

# Same configure command as the tier-1 verify in ROADMAP.md: no generator
# override, so an existing build/ configured with the default generator
# (or a fresh clone) both work. Extra arguments pass straight to the
# configure step, so a Release tier-1 verify is
#   scripts/check.sh -DCMAKE_BUILD_TYPE=Release
# (or set CMAKE_BUILD_TYPE=Release in the environment).
cmake -B build -S . \
    ${CMAKE_BUILD_TYPE:+-DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE}"} "$@"
cmake --build build -j
ctest --test-dir build --output-on-failure -j
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] && "$b"
done
echo "ALL CHECKS PASSED"
