#!/usr/bin/env bash
# CLI metrics regression: runs the cimloop tool with --metrics=FILE on the
# built-in example specs, extracts the deterministic "counters" block from
# the metrics JSON (the same byte-comparable surface tests/regress uses),
# and diffs it against the goldens under tests/regress/golden/.
#
#   scripts/metrics_regress.sh            # compare against goldens
#   UPDATE=1 scripts/metrics_regress.sh   # regenerate the goldens
#
# Counters are deterministic at fixed seed for any --threads, so any diff
# is a real behavior change (different kernel path, different search
# trajectory, different cache economy) — review it like code.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CLI="${BUILD_DIR}/tools/cimloop"
GOLDEN_DIR=tests/regress/golden

if [ ! -x "${CLI}" ]; then
    echo "error: ${CLI} not built (cmake --build ${BUILD_DIR} --target cimloop_tool)" >&2
    exit 2
fi

status=0

run_case() {
    local name="$1"
    shift
    local tmp
    tmp="$(mktemp /tmp/cimloop_metrics_regress.XXXXXX)"
    "${CLI}" "$@" --metrics="${tmp}.json" >/dev/null
    # Keep this extraction in sync with obs::countersJson's layout.
    sed -n '/^"counters": {$/,/^},$/p' "${tmp}.json" > "${tmp}.counters"
    if [ ! -s "${tmp}.counters" ]; then
        echo "FAIL ${name}: no counters block in metrics JSON" >&2
        status=1
    elif [ "${UPDATE:-0}" = "1" ]; then
        cp "${tmp}.counters" "${GOLDEN_DIR}/cli_${name}.counters"
        echo "updated ${GOLDEN_DIR}/cli_${name}.counters"
    elif diff -u "${GOLDEN_DIR}/cli_${name}.counters" "${tmp}.counters"; then
        echo "ok ${name}"
    else
        echo "FAIL ${name}: counters drifted (UPDATE=1 to regenerate)" >&2
        status=1
    fi
    rm -f "${tmp}" "${tmp}.json" "${tmp}.counters"
}

run_case engine_mvm \
    --macro base --network mvm --mappings 40 --seed 1 --threads 2
run_case engine_mvm_faults \
    --macro base --network mvm --mappings 40 --seed 1 --threads 2 \
    --fault-stuck-rate 0.02 --fault-sigma 0.1
run_case refsim_mvm \
    --refsim --network mvm --refsim-vectors 4 --seed 1 --threads 2
# Layout x mapping co-search: pins the candidate count, the search
# counters scaled by the layout enumeration, and the bank-conflict
# cycle total.
run_case engine_mvm_cosearch \
    --macro base --network mvm --mappings 40 --seed 1 --threads 2 \
    --objective delay --layout-search
# The example sweep grid: 50 points including a failing design and
# cross-point per-action cache reuse (dse.cache.hits pins the economy).
run_case sweep_mvm \
    --sweep examples/sweep.yaml --seed 1 --threads 2
# The layout sweep grid: fixed presets vs per-point co-search, sharing
# per-action tables across layout values (layouts never change them).
run_case sweep_mvm_layout \
    --sweep examples/layout_sweep.yaml --seed 1 --threads 2

exit "${status}"
