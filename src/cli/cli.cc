#include "cimloop/cli/cli.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"
#include "cimloop/dse/dse.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/obs/obs.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/layout/layout.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/models/devices.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::cli {

std::string
usage()
{
    return R"(usage: cimloop [options]

architecture (exactly one):
  --macro NAME         built-in macro: base, A, B, C, D, digital
  --arch FILE.yaml     container-hierarchy specification file

workload (exactly one):
  --network NAME       bundled: resnet18, vit, mobilenetv3, gpt2,
                       alexnet, vgg16, bert, mvm
  --workload FILE.yaml network description file

search:
  --mappings N         mappings searched per layer (default 500)
  --seed N             search seed (default 1)
  --threads N          worker threads; spread over layers first, and
                       across each layer's mapping search when layers
                       are fewer than threads (default 1; results are
                       identical for any value)
  --objective OBJ      energy | edp | delay (default energy)

operating point / representation overrides:
  --tech NM            technology node in nm
  --voltage V          supply voltage in volts
  --dac-bits B         input slice width (DAC resolution)
  --cell-bits B        weight bits per cell
  --input-bits B       operand precision overrides
  --weight-bits B
  --device NAME        memory-cell preset: ReRAM, PCM, STT-MRAM,
                       FeFET, SRAM (re-targets the 'cells'/'mac_units'
                       node)

output:
  --csv FILE           write per-layer results as CSV
  --ert FILE           dump the per-action energy reference table (YAML)
                       computed for the first layer
  --report             print the per-node energy table for each layer
  --help               this text

physical layout:
  --layout FILE.yaml   pin a physical data layout (per-dataspace rank
                       order, banks, interleave per storage node); the
                       analytical bank-conflict model folds the
                       resulting slowdown into each layer's latency
  --layout-search      co-search the built-in layout candidates jointly
                       with the mapping search (every candidate scores
                       the same sample set; results are bit-identical
                       for any --threads); prints the winning layout
                       per layer

fixed mapping:
  --mapping FILE.yaml  replay a pinned mapping (Timeloop-style) on every
                       layer instead of searching (combines with
                       --layout, not --layout-search)

reference simulation:
  --refsim             run the value-level reference simulator against
                       the statistical model per layer (no --macro/--arch
                       needed; honors --threads, --seed, and bit widths;
                       results are bit-identical for any --threads)
  --refsim-vectors N   activation vectors sampled per layer (default 48;
                       0 simulates every vector)

design-space exploration:
  --sweep FILE.yaml    run the declarative sweep the file describes
                       (axes over macro/fault/network/mapper knobs; see
                       docs/architecture.md) instead of one evaluation;
                       needs no architecture or workload flags. Prints
                       the point table, failed points (with their axis
                       values), the Pareto frontier, and the best point.
                       Honors --threads (output is byte-identical for
                       any value at fixed seed), --seed (overrides the
                       spec's seed), --csv, --json, --metrics, --trace
  --json FILE          write the sweep result as a JSON artifact
  --resume DIR         journal completed chunks to DIR and, when DIR
                       already holds a journal of the same spec, skip
                       the journaled ranges — an interrupted sweep
                       resumes where it stopped, with artifacts
                       byte-identical to an uninterrupted run
  --chunk-size N       points per journal/commit chunk (default 1024;
                       never changes result bytes, only checkpoint
                       granularity)
  --max-chunks N       stop cleanly after N freshly executed chunks (a
                       controlled interruption: combine with --resume
                       to checkpoint, then rerun to continue)

fault injection / robustness:
  --faults FILE.yaml   device fault spec (stuck_off_rate, stuck_on_rate,
                       conductance_sigma, adc_offset, adc_noise_sigma,
                       seed); applies to --refsim and the statistical
                       pipeline alike
  --fault-stuck-rate R total stuck-cell fraction in [0, 1], split evenly
                       between stuck-off and stuck-on; overrides the
                       fault spec's rates
  --fault-sigma S      lognormal conductance variation sigma in [0, 0.8];
                       overrides the fault spec's sigma
  --keep-going         capture per-layer failures (e.g. unmappable
                       layers) as diagnostics and continue with partial
                       results instead of aborting

observability:
  --metrics[=FILE]     print the run's counter/span summary table; with
                       =FILE, write the metrics JSON instead. Counter
                       values are deterministic at fixed --seed for any
                       --threads (span timings are not)
  --trace FILE         write a Chrome trace-event JSON of the run's
                       timing spans; load it via chrome://tracing or
                       ui.perfetto.dev (also accepts --trace=FILE)

cancellation / shutdown:
  --timeout SECONDS    wall-clock deadline for the whole run (any
                       mode); work stops at the next deterministic
                       boundary (sweep chunk, layer, search sample,
                       refsim vector) and exits with code 124. A
                       journaled sweep keeps every committed chunk and
                       --resume continues it later.
  With --sweep --resume, SIGINT/SIGTERM are handled cooperatively: the
  in-flight chunk commits, the resume hint prints, and the exit code
  is 128+signo (Ctrl-C = 130). A second signal kills immediately.

server mode:
  cimloop serve --listen PATH [--cache-mb N] [--threads N]
                       run as a long-lived evaluation daemon speaking
                       newline-delimited JSON over a Unix socket; see
                       `cimloop serve --help` and docs/architecture.md,
                       "The evaluation server"

exit codes:
  0    success (including a sweep paused at --max-chunks)
  1    fatal error (bad spec, unmappable layer, I/O failure)
  2    usage error (bad flags)
  124  --timeout deadline expired
  130  interrupted by SIGINT (SIGTERM exits 143; 128+signo in general)
)";
}

namespace {

std::int64_t
parseInt(const std::string& flag, const std::string& value)
{
    try {
        std::size_t pos = 0;
        long long v = std::stoll(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception&) {
        CIM_FATAL("flag ", flag, " expects an integer, got '", value, "'");
    }
}

double
parseDouble(const std::string& flag, const std::string& value)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception&) {
        CIM_FATAL("flag ", flag, " expects a number, got '", value, "'");
    }
}

} // namespace

CliOptions
parseArgs(const std::vector<std::string>& args)
{
    CliOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& flag = args[i];
        auto value = [&]() -> const std::string& {
            if (i + 1 >= args.size())
                CIM_FATAL("flag ", flag, " expects a value");
            return args[++i];
        };
        if (flag == "--help" || flag == "-h") {
            opts.help = true;
        } else if (flag == "--macro") {
            opts.macroName = value();
        } else if (flag == "--arch") {
            opts.archPath = value();
        } else if (flag == "--network") {
            opts.networkName = value();
        } else if (flag == "--workload") {
            opts.workloadPath = value();
        } else if (flag == "--mappings") {
            opts.mappings = static_cast<int>(parseInt(flag, value()));
        } else if (flag == "--seed") {
            opts.seed = static_cast<std::uint64_t>(parseInt(flag, value()));
            opts.seedGiven = true;
        } else if (flag == "--threads") {
            opts.threads = static_cast<int>(parseInt(flag, value()));
        } else if (flag == "--objective") {
            opts.objective = value();
        } else if (flag == "--tech") {
            opts.technologyNm = parseDouble(flag, value());
        } else if (flag == "--voltage") {
            opts.voltage = parseDouble(flag, value());
        } else if (flag == "--dac-bits") {
            opts.dacBits = static_cast<int>(parseInt(flag, value()));
        } else if (flag == "--cell-bits") {
            opts.cellBits = static_cast<int>(parseInt(flag, value()));
        } else if (flag == "--input-bits") {
            opts.inputBits = static_cast<int>(parseInt(flag, value()));
        } else if (flag == "--weight-bits") {
            opts.weightBits = static_cast<int>(parseInt(flag, value()));
        } else if (flag == "--device") {
            opts.device = value();
        } else if (flag == "--csv") {
            opts.csvPath = value();
        } else if (flag == "--ert") {
            opts.ertPath = value();
        } else if (flag == "--mapping") {
            opts.mappingPath = value();
        } else if (flag == "--report") {
            opts.report = true;
        } else if (flag == "--refsim") {
            opts.refsim = true;
        } else if (flag == "--refsim-vectors") {
            opts.refsimVectors = parseInt(flag, value());
        } else if (flag == "--faults") {
            opts.faultsPath = value();
        } else if (flag == "--fault-stuck-rate") {
            opts.faultStuckRate = parseDouble(flag, value());
            if (opts.faultStuckRate < 0.0 || opts.faultStuckRate > 1.0) {
                CIM_FATAL("--fault-stuck-rate must be within [0, 1], "
                          "got ", opts.faultStuckRate);
            }
        } else if (flag == "--fault-sigma") {
            opts.faultSigma = parseDouble(flag, value());
            if (opts.faultSigma < 0.0)
                CIM_FATAL("--fault-sigma must be >= 0, got ",
                          opts.faultSigma);
        } else if (flag == "--keep-going") {
            opts.keepGoing = true;
        } else if (flag == "--layout") {
            opts.layoutPath = value();
        } else if (startsWith(flag, "--layout=")) {
            opts.layoutPath = flag.substr(std::string("--layout=").size());
            if (opts.layoutPath.empty())
                CIM_FATAL("--layout= expects a file path");
        } else if (flag == "--layout-search") {
            opts.layoutSearch = true;
        } else if (flag == "--sweep") {
            opts.sweepPath = value();
        } else if (startsWith(flag, "--sweep=")) {
            opts.sweepPath = flag.substr(std::string("--sweep=").size());
            if (opts.sweepPath.empty())
                CIM_FATAL("--sweep= expects a file path");
        } else if (flag == "--resume") {
            opts.resumeDir = value();
        } else if (startsWith(flag, "--resume=")) {
            opts.resumeDir = flag.substr(std::string("--resume=").size());
            if (opts.resumeDir.empty())
                CIM_FATAL("--resume= expects a directory path");
        } else if (flag == "--chunk-size") {
            const std::int64_t v = parseInt(flag, value());
            if (v < 1)
                CIM_FATAL("--chunk-size must be >= 1, got ", v);
            opts.chunkSize = static_cast<std::size_t>(v);
        } else if (flag == "--max-chunks") {
            const std::int64_t v = parseInt(flag, value());
            if (v < 1)
                CIM_FATAL("--max-chunks must be >= 1, got ", v);
            opts.maxChunks = static_cast<std::size_t>(v);
        } else if (flag == "--timeout") {
            opts.timeoutSeconds = parseDouble(flag, value());
            if (!(opts.timeoutSeconds > 0.0)) {
                CIM_FATAL("--timeout must be > 0 seconds, got ",
                          opts.timeoutSeconds);
            }
        } else if (flag == "--json") {
            opts.jsonPath = value();
        } else if (flag == "--metrics") {
            opts.metrics = true;
        } else if (startsWith(flag, "--metrics=")) {
            opts.metrics = true;
            opts.metricsPath = flag.substr(std::string("--metrics=").size());
            if (opts.metricsPath.empty())
                CIM_FATAL("--metrics= expects a file path");
        } else if (flag == "--trace") {
            opts.tracePath = value();
        } else if (startsWith(flag, "--trace=")) {
            opts.tracePath = flag.substr(std::string("--trace=").size());
            if (opts.tracePath.empty())
                CIM_FATAL("--trace= expects a file path");
        } else {
            CIM_FATAL("unknown flag '", flag, "' (try --help)");
        }
    }
    if (!opts.help) {
        if (!opts.sweepPath.empty()) {
            // The sweep spec names the architecture and workload; mixing
            // the single-run selection flags in would be ambiguous.
            if (!opts.macroName.empty() || !opts.archPath.empty() ||
                !opts.networkName.empty() || !opts.workloadPath.empty()) {
                CIM_FATAL("--sweep takes its architecture and workload "
                          "from the sweep spec; drop --macro/--arch/"
                          "--network/--workload");
            }
            if (opts.refsim)
                CIM_FATAL("--sweep and --refsim are mutually exclusive");
            if (!opts.mappingPath.empty())
                CIM_FATAL("--sweep and --mapping are mutually exclusive");
            if (!opts.layoutPath.empty() || opts.layoutSearch)
                CIM_FATAL("--sweep explores layouts through a 'layout' "
                          "axis in the spec; drop --layout/"
                          "--layout-search");
            if (opts.threads < 1)
                CIM_FATAL("--threads must be >= 1");
            return opts;
        }
        if (!opts.jsonPath.empty())
            CIM_FATAL("--json is only meaningful with --sweep");
        if (!opts.resumeDir.empty())
            CIM_FATAL("--resume is only meaningful with --sweep");
        if (opts.chunkSize != 0)
            CIM_FATAL("--chunk-size is only meaningful with --sweep");
        if (opts.maxChunks != 0)
            CIM_FATAL("--max-chunks is only meaningful with --sweep");
        if (!opts.layoutPath.empty() && opts.layoutSearch)
            CIM_FATAL("--layout and --layout-search are mutually "
                      "exclusive");
        if (opts.layoutSearch && !opts.mappingPath.empty())
            CIM_FATAL("--layout-search needs a mapping search; it cannot "
                      "be combined with --mapping");
        if (opts.refsim) {
            // The reference simulator models the base macro directly; an
            // architecture flag is allowed but not required.
            if (!opts.macroName.empty() && !opts.archPath.empty())
                CIM_FATAL("specify at most one of --macro or --arch");
            if (opts.refsimVectors < 0)
                CIM_FATAL("--refsim-vectors must be >= 0 (0 = all)");
            if (!opts.layoutPath.empty() || opts.layoutSearch)
                CIM_FATAL("--refsim does not model physical layouts; "
                          "drop --layout/--layout-search");
        } else if (opts.macroName.empty() == opts.archPath.empty()) {
            CIM_FATAL("specify exactly one of --macro or --arch");
        }
        if (opts.networkName.empty() == opts.workloadPath.empty())
            CIM_FATAL("specify exactly one of --network or --workload");
        if (opts.mappings < 1)
            CIM_FATAL("--mappings must be >= 1");
        if (opts.threads < 1)
            CIM_FATAL("--threads must be >= 1");
        if (opts.objective != "energy" && opts.objective != "edp" &&
            opts.objective != "delay") {
            CIM_FATAL("--objective must be energy, edp, or delay");
        }
    }
    return opts;
}

namespace {

engine::Arch
buildArch(const CliOptions& opts)
{
    engine::Arch arch;
    if (!opts.macroName.empty()) {
        arch = macros::macroByName(opts.macroName);
    } else {
        arch.name = opts.archPath;
        arch.hierarchy = spec::Hierarchy::fromFile(opts.archPath);
    }
    if (opts.technologyNm > 0.0)
        arch.technologyNm = opts.technologyNm;
    if (opts.voltage > 0.0)
        arch.supplyVoltage = opts.voltage;
    if (opts.dacBits > 0)
        arch.rep.dacBits = opts.dacBits;
    if (opts.cellBits > 0)
        arch.rep.cellBits = opts.cellBits;
    if (opts.inputBits > 0)
        arch.rep.inputBits = opts.inputBits;
    if (opts.weightBits > 0)
        arch.rep.weightBits = opts.weightBits;
    if (!opts.device.empty()) {
        const models::DevicePreset& preset =
            models::devicePreset(opts.device);
        const char* cell_node =
            arch.hierarchy.indexOf("cells") >= 0 ? "cells" : "mac_units";
        models::applyDevicePreset(arch.hierarchy, cell_node, preset);
        arch.rep.cellBits =
            std::min(arch.rep.cellBits, preset.maxBitsPerCell);
    }
    return arch;
}

faults::FaultModel
buildFaults(const CliOptions& opts)
{
    faults::FaultModel model;
    if (!opts.faultsPath.empty())
        model = faults::FaultModel::fromFile(opts.faultsPath);
    if (opts.faultStuckRate >= 0.0) {
        // The flag gives the total stuck fraction, split evenly.
        model.stuckOffRate = opts.faultStuckRate / 2.0;
        model.stuckOnRate = opts.faultStuckRate / 2.0;
    }
    if (opts.faultSigma >= 0.0)
        model.conductanceSigma = opts.faultSigma;
    model.validate();
    return model;
}

workload::Network
buildWorkload(const CliOptions& opts)
{
    if (!opts.networkName.empty())
        return workload::networkByName(opts.networkName);
    return workload::networkFromFile(opts.workloadPath);
}

engine::Objective
objectiveFromString(const std::string& s)
{
    if (s == "edp")
        return engine::Objective::Edp;
    if (s == "delay")
        return engine::Objective::Delay;
    return engine::Objective::Energy;
}

int
runRefSim(const CliOptions& opts, const faults::FaultModel& fault_model,
          const CancelToken& token, std::ostream& out)
{
    workload::Network net = buildWorkload(opts);

    refsim::RefSimConfig cfg;
    cfg.cancel = token;
    cfg.threads = opts.threads;
    cfg.seed = opts.seed;
    cfg.maxVectors = opts.refsimVectors;
    cfg.faults = fault_model;
    if (opts.inputBits > 0)
        cfg.inputBits = opts.inputBits;
    if (opts.weightBits > 0)
        cfg.weightBits = opts.weightBits;
    if (opts.dacBits > 0)
        cfg.dacBits = opts.dacBits;
    if (opts.cellBits > 0)
        cfg.cellBits = opts.cellBits;
    if (opts.technologyNm > 0.0)
        cfg.technologyNm = opts.technologyNm;

    const bool faulty = fault_model.enabled();

    out << "value-level reference vs statistical model on "
        << net.name << " (" << net.layers.size() << " layers, "
        << (cfg.maxVectors == 0 ? std::string("all")
                                : std::to_string(cfg.maxVectors))
        << " vectors/layer, " << cfg.threads << " thread"
        << (cfg.threads == 1 ? "" : "s") << ", seed " << cfg.seed
        << ")\n";
    if (faulty) {
        out << "faults: stuck-off " << fault_model.stuckOffRate
            << ", stuck-on " << fault_model.stuckOnRate << ", sigma "
            << fault_model.conductanceSigma << ", adc offset "
            << fault_model.adcOffset << ", adc noise "
            << fault_model.adcNoiseSigma << ", seed "
            << fault_model.seed << "\n";
    }
    out << "\n";

    // With faults enabled, each layer runs a second, fault-free truth
    // simulation so the report shows the energy degradation the injected
    // faults cause next to the truth-vs-model agreement under faults.
    refsim::RefSimConfig clean_cfg = cfg;
    clean_cfg.faults = faults::FaultModel{};

    char line[200];
    if (faulty) {
        std::snprintf(line, sizeof(line), "%-24s %14s %14s %8s %14s %8s\n",
                      "layer", "truth (pJ)", "model (pJ)", "err",
                      "clean (pJ)", "dE");
    } else {
        std::snprintf(line, sizeof(line), "%-24s %14s %14s %8s\n",
                      "layer", "truth (pJ)", "model (pJ)", "err");
    }
    out << line;

    double err_sum = 0.0;
    for (const workload::Layer& layer : net.layers) {
        dist::OperandProfile profile;
        refsim::RefSimResult truth =
            refsim::simulateValueLevel(cfg, layer, &profile);
        refsim::RefSimResult model =
            refsim::estimateStatistical(cfg, layer, profile);
        double err =
            model.totalPj() / std::max(truth.totalPj(), 1e-300) - 1.0;
        err_sum += std::abs(err);
        if (faulty) {
            refsim::RefSimResult clean =
                refsim::simulateValueLevel(clean_cfg, layer, nullptr);
            double de =
                truth.totalPj() / std::max(clean.totalPj(), 1e-300) - 1.0;
            std::snprintf(line, sizeof(line),
                          "%-24s %14.6g %14.6g %+7.2f%% %14.6g %+7.2f%%\n",
                          layer.name.c_str(), truth.totalPj(),
                          model.totalPj(), err * 100.0, clean.totalPj(),
                          de * 100.0);
        } else {
            std::snprintf(line, sizeof(line),
                          "%-24s %14.6g %14.6g %+7.2f%%\n",
                          layer.name.c_str(), truth.totalPj(),
                          model.totalPj(), err * 100.0);
        }
        out << line;
    }
    std::snprintf(line, sizeof(line),
                  "\nmean |error| : %.2f%% over %zu layers\n",
                  err_sum / static_cast<double>(net.layers.size()) * 100.0,
                  net.layers.size());
    out << line;
    return 0;
}

/**
 * Arms span timing (and tracing) for one run and guarantees both are
 * off again when the run leaves scope, whatever path it exits on, so a
 * metrics run never leaks timing overhead into a later in-process run.
 */
struct ObsRunScope
{
    explicit ObsRunScope(const CliOptions& opts)
    {
        // Hermetic per-invocation numbers: counters are process-wide
        // and the per-action cache would turn misses into hits across
        // back-to-back runs.
        obs::resetAll();
        engine::clearPerActionCache();
        obs::setTimingEnabled(opts.metrics || !opts.tracePath.empty());
        obs::setTraceEnabled(!opts.tracePath.empty());
    }
    ~ObsRunScope()
    {
        obs::setTraceEnabled(false);
        obs::setTimingEnabled(false);
    }
};

/**
 * --sweep mode: loads the spec, runs the grid, and prints the report.
 * Every byte written here (table, CSV, JSON) is identical for any
 * --threads at fixed seed — the determinism harness compares them.
 */
int
runSweepCli(const CliOptions& opts, const CancelToken& token,
            std::ostream& out, std::ostream& err)
{
    dse::SweepSpec spec = dse::SweepSpec::fromFile(opts.sweepPath);
    if (opts.seedGiven)
        spec.seed = opts.seed;

    dse::SweepOptions sweep_opts;
    sweep_opts.threads = opts.threads;
    sweep_opts.chunkSize = opts.chunkSize;
    sweep_opts.resumeDir = opts.resumeDir;
    sweep_opts.maxChunks = opts.maxChunks;
    sweep_opts.cancel = token;
    dse::SweepResult result = dse::runSweep(spec, sweep_opts);
    out << dse::formatTable(result);

    if (!opts.csvPath.empty()) {
        std::ofstream csv(opts.csvPath);
        if (!csv)
            CIM_FATAL("cannot write CSV to '", opts.csvPath, "'");
        csv << dse::toCsv(result);
        out << "wrote " << opts.csvPath << "\n";
    }
    if (!opts.jsonPath.empty()) {
        std::ofstream json(opts.jsonPath);
        if (!json)
            CIM_FATAL("cannot write JSON to '", opts.jsonPath, "'");
        json << dse::toJson(result);
        out << "wrote " << opts.jsonPath << "\n";
    }
    if (result.stoppedEarly) {
        if (result.cancelled) {
            out << "sweep cancelled ("
                << cancelReasonName(token.reason()) << ")\n";
        }
        out << "sweep paused after "
            << result.chunksExecuted + result.chunksResumed << " of "
            << result.chunksTotal << " chunks";
        if (!opts.resumeDir.empty())
            out << "; rerun with --resume " << opts.resumeDir
                << " to continue";
        out << "\n";
        return ExitOk;
    }
    if (result.evaluated == 0) {
        err << "sweep '" << result.name
            << "' evaluated no points successfully\n";
        return ExitFatal;
    }
    return ExitOk;
}

/**
 * Installs the cooperative SIGINT/SIGTERM handler for the run when
 * @p enable (sweep --resume mode, where an interrupted run loses
 * nothing), and guarantees the previous dispositions come back on any
 * exit path — a library embedder's handlers must survive run().
 */
struct SignalCancelScope
{
    bool installed = false;
    SignalCancelScope(const CancelToken& token, bool enable)
    {
        if (enable) {
            installSignalCancel(token);
            installed = true;
        }
    }
    ~SignalCancelScope()
    {
        if (installed)
            uninstallSignalCancel();
    }
};

/** Maps a cancelled run's reason to its process exit code. */
int
cancelExitCode(CancelReason reason)
{
    if (reason == CancelReason::Signal) {
        const int sig = lastCancelSignal();
        return sig > 0 ? 128 + sig : static_cast<int>(ExitInterrupt);
    }
    return ExitDeadline;
}

/** Writes --trace / --metrics outputs at the end of a successful run. */
void
emitObservability(const CliOptions& opts, std::ostream& out)
{
    if (!opts.tracePath.empty()) {
        std::ofstream trace(opts.tracePath);
        if (!trace)
            CIM_FATAL("cannot write trace to '", opts.tracePath, "'");
        trace << obs::traceJson();
        out << "wrote " << opts.tracePath << "\n";
    }
    if (opts.metrics) {
        obs::MetricsSnapshot snap = obs::snapshot();
        if (opts.metricsPath.empty()) {
            out << "\n" << obs::summaryTable(snap);
        } else {
            std::ofstream mf(opts.metricsPath);
            if (!mf)
                CIM_FATAL("cannot write metrics to '", opts.metricsPath,
                          "'");
            mf << obs::metricsJson(snap);
            out << "wrote " << opts.metricsPath << "\n";
        }
    }
}

} // namespace

int
run(const std::vector<std::string>& args, std::ostream& out,
    std::ostream& err)
{
    CliOptions opts;
    try {
        opts = parseArgs(args);
    } catch (const FatalError& e) {
        err << e.what() << "\n" << usage();
        return ExitUsage;
    }
    if (opts.help) {
        out << usage();
        return ExitOk;
    }

    // One token for the whole run: --timeout arms its deadline, and in
    // sweep --resume mode SIGINT/SIGTERM flip it instead of killing the
    // process (an interrupted journaled sweep loses nothing; other
    // modes keep the default die-on-signal behavior).
    CancelToken token;
    if (opts.timeoutSeconds > 0.0)
        token.setDeadline(Deadline::after(opts.timeoutSeconds));
    SignalCancelScope signal_scope(
        token, !opts.sweepPath.empty() && !opts.resumeDir.empty());

    // Hermetic per-invocation numbers for the one-shot tool only: the
    // serve daemon calls runParsed() directly, keeping the per-action
    // cache warm and the counters cumulative across requests.
    ObsRunScope obs_scope(opts);
    return runParsed(opts, token, out, err);
}

int
runParsed(const CliOptions& opts, const CancelToken& token,
          std::ostream& out, std::ostream& err)
{
    try {
        if (!opts.sweepPath.empty()) {
            int rc = runSweepCli(opts, token, out, err);
            if (rc == 0)
                emitObservability(opts, out);
            if (rc == 0 && token.cancelled())
                rc = cancelExitCode(token.reason());
            return rc;
        }
        faults::FaultModel fault_model = buildFaults(opts);
        if (opts.refsim) {
            int rc = runRefSim(opts, fault_model, token, out);
            if (rc == 0)
                emitObservability(opts, out);
            return rc;
        }

        engine::Arch arch = buildArch(opts);
        arch.faults = fault_model;
        if (!opts.layoutPath.empty())
            arch.layout = layout::LayoutSpec::fromFile(opts.layoutPath);
        arch.layoutSearch = opts.layoutSearch;
        workload::Network net = buildWorkload(opts);

        out << "architecture: " << arch.name << " ("
            << arch.technologyNm << " nm)\n";
        out << "workload: " << net.name << " (" << net.layers.size()
            << " layers, " << net.totalMacs() << " MACs)\n";
        // These lines print only when a layout flag was given, keeping
        // layout-free runs byte-identical to earlier releases.
        if (!opts.layoutPath.empty())
            out << "layout: " << arch.layout.summary() << "\n";
        if (opts.layoutSearch) {
            out << "layout co-search: "
                << layout::enumerateLayouts(arch.hierarchy).size()
                << " candidates per layer\n";
        }
        engine::NetworkEvaluation ev;
        if (!opts.mappingPath.empty()) {
            out << "replaying fixed mapping " << opts.mappingPath
                << " on every layer\n\n";
            mapping::Mapping fixed = mapping::Mapping::fromYaml(
                arch.hierarchy, yaml::parseFile(opts.mappingPath));
            for (const workload::Layer& layer : net.layers) {
                token.throwIfCancelled("fixed-mapping replay at layer '" +
                                       layer.name + "'");
                engine::PerActionTable table =
                    engine::precompute(arch, layer);
                engine::SearchResult sr;
                sr.bestMapping = fixed;
                sr.best = engine::evaluate(arch, table, fixed);
                sr.evaluated = sr.best.valid ? 1 : 0;
                if (!sr.best.valid) {
                    CIM_FATAL("fixed mapping invalid for layer '",
                              layer.name, "': ",
                              sr.best.invalidReason);
                }
                double reps = static_cast<double>(layer.count);
                ev.energyPj += sr.best.energyPj * reps;
                ev.latencyNs += sr.best.latencyNs * reps;
                ev.macs += sr.best.macs * reps;
                ev.areaUm2 = std::max(ev.areaUm2, sr.best.areaUm2);
                ev.layers.push_back(std::move(sr));
            }
        } else {
            out << "searching " << opts.mappings
                << " mappings per layer (objective: " << opts.objective
                << ", seed " << opts.seed << ")\n\n";
            ev = engine::evaluateNetworkParallel(
                arch, net, opts.threads, opts.mappings, opts.seed,
                objectiveFromString(opts.objective), opts.keepGoing,
                &token);
        }

        if (!ev.complete()) {
            err << "warning: " << ev.diagnostics.size() << " of "
                << net.layers.size()
                << " layers failed; continuing with partial results:\n";
            for (const engine::LayerDiagnostic& d : ev.diagnostics) {
                err << "  layer '" << d.layer << "' (" << d.kind
                    << "): " << d.message << "\n";
            }
        }

        if (opts.layoutSearch) {
            out << "co-searched layouts:\n";
            for (std::size_t i = 0; i < net.layers.size(); ++i) {
                const engine::SearchResult& sr = ev.layers[i];
                out << "  " << net.layers[i].name << ": "
                    << (sr.best.valid ? sr.bestLayout.summary()
                                      : std::string("-"))
                    << "\n";
            }
            out << "\n";
        }

        if (fault_model.enabled() && opts.mappingPath.empty()) {
            // Degradation report: re-evaluate the same network fault-free
            // (identical seed and mapping search) and show the per-layer
            // energy delta the fault model predicts.
            engine::Arch clean_arch = arch;
            clean_arch.faults = faults::FaultModel{};
            engine::NetworkEvaluation clean =
                engine::evaluateNetworkParallel(
                    clean_arch, net, opts.threads, opts.mappings,
                    opts.seed, objectiveFromString(opts.objective),
                    opts.keepGoing, &token);
            char fl[160];
            out << "per-layer degradation vs fault-free baseline:\n";
            std::snprintf(fl, sizeof(fl), "%-24s %14s %14s %8s\n",
                          "layer", "clean (pJ)", "faulty (pJ)", "dE");
            out << fl;
            for (std::size_t i = 0; i < net.layers.size(); ++i) {
                const engine::Evaluation& cb = clean.layers[i].best;
                const engine::Evaluation& fb = ev.layers[i].best;
                if (!cb.valid || !fb.valid) {
                    std::snprintf(fl, sizeof(fl), "%-24s %14s %14s %8s\n",
                                  net.layers[i].name.c_str(), "-", "-",
                                  "-");
                    out << fl;
                    continue;
                }
                double de =
                    fb.energyPj / std::max(cb.energyPj, 1e-300) - 1.0;
                std::snprintf(fl, sizeof(fl),
                              "%-24s %14.6g %14.6g %+7.2f%%\n",
                              net.layers[i].name.c_str(), cb.energyPj,
                              fb.energyPj, de * 100.0);
                out << fl;
            }
            out << "\n";
        }

        if (!opts.ertPath.empty()) {
            engine::PerActionTable table =
                engine::precompute(arch, net.layers.front());
            std::ofstream ert(opts.ertPath);
            if (!ert)
                CIM_FATAL("cannot write ERT to '", opts.ertPath, "'");
            ert << engine::toYamlErt(arch, table);
            out << "wrote " << opts.ertPath << "\n";
        }

        if (opts.report) {
            for (std::size_t i = 0; i < net.layers.size(); ++i) {
                out << "--- " << net.layers[i].name << " ("
                    << net.layers[i].shapeString() << ") ---\n";
                out << engine::formatReport(arch, ev.layers[i].best);
            }
            out << "\n";
        }

        char line[160];
        std::snprintf(line, sizeof(line),
                      "total energy : %.6g uJ (%.4g pJ/MAC)\n",
                      ev.energyPj / 1e6, ev.energyPerMacPj());
        out << line;
        std::snprintf(line, sizeof(line), "efficiency   : %.4g TOPS/W\n",
                      ev.topsPerWatt());
        out << line;
        std::snprintf(line, sizeof(line), "area         : %.4g mm^2\n",
                      ev.areaUm2 / 1e6);
        out << line;
        std::snprintf(line, sizeof(line), "latency      : %.4g ms\n",
                      ev.latencyNs / 1e6);
        out << line;

        if (!opts.csvPath.empty()) {
            std::ofstream csv(opts.csvPath);
            if (!csv)
                CIM_FATAL("cannot write CSV to '", opts.csvPath, "'");
            csv << engine::toCsv(ev, net);
            out << "wrote " << opts.csvPath << "\n";
        }

        emitObservability(opts, out);
        // Keep-going runs absorb cancellation into "cancelled"
        // diagnostics instead of throwing; the partial table above is
        // still worth printing, but the exit code must say the run was
        // cut short.
        if (token.cancelled())
            return cancelExitCode(token.reason());
        return ExitOk;
    } catch (const CancelledError& e) {
        err << e.what() << "\n";
        return cancelExitCode(e.reason());
    } catch (const FatalError& e) {
        err << e.what() << "\n";
        return ExitFatal;
    }
}

} // namespace cimloop::cli
