/**
 * @file
 * The `cimloop` command-line driver, as a testable library.
 *
 * Mirrors the original tool's workflow: point it at an architecture (a
 * YAML container-hierarchy or a built-in macro) and a workload (a YAML
 * network or a bundled one), and it searches mappings and reports
 * energy / area / performance.
 *
 *   cimloop --macro base --network resnet18 --mappings 500
 *   cimloop --arch my_macro.yaml --dac-bits 2 --workload net.yaml \
 *           --csv out.csv --report
 */
#ifndef CIMLOOP_CLI_CLI_HH
#define CIMLOOP_CLI_CLI_HH

#include <ostream>
#include <string>
#include <vector>

#include "cimloop/common/cancel.hh"

namespace cimloop::cli {

/**
 * Process exit codes, standardized across every mode. Scripts (and the
 * e2e tests) branch on these, so the values are frozen:
 *  - ExitOk: the run completed (including a sweep that paused cleanly
 *    at --max-chunks).
 *  - ExitFatal: a fatal error — bad spec, unmappable layer, I/O
 *    failure — after argument parsing succeeded.
 *  - ExitUsage: the command line itself was rejected (unknown flag,
 *    malformed or out-of-range value, contradictory flags).
 *  - ExitDeadline: --timeout expired; work stopped at the next
 *    deterministic boundary (timeout(1) uses the same 124).
 *  - ExitInterrupt: a signal cancelled the run (128 + signo; 130 is
 *    SIGINT, SIGTERM maps to 143).
 */
enum ExitCode : int
{
    ExitOk = 0,
    ExitFatal = 1,
    ExitUsage = 2,
    ExitDeadline = 124,
    ExitInterrupt = 130,
};

/** Parsed command-line options. */
struct CliOptions
{
    std::string archPath;    //!< --arch <file.yaml>
    std::string macroName;   //!< --macro base|A|B|C|D|digital
    std::string workloadPath; //!< --workload <file.yaml>
    std::string networkName; //!< --network resnet18|vit|...

    int mappings = 500;       //!< --mappings N
    std::uint64_t seed = 1;   //!< --seed N
    bool seedGiven = false;   //!< --seed was on the command line
    int threads = 1;          //!< --threads N (layer + intra-layer workers)
    std::string objective = "energy"; //!< --objective energy|edp|delay

    double technologyNm = 0.0; //!< --tech NM (override; 0 = keep)
    double voltage = 0.0;      //!< --voltage V (0 = nominal)
    int dacBits = 0;           //!< --dac-bits B (YAML archs; 0 = default)
    int cellBits = 0;          //!< --cell-bits B
    int inputBits = 0;         //!< --input-bits B
    int weightBits = 0;        //!< --weight-bits B
    std::string device;        //!< --device reram|pcm|stt-mram|fefet|sram

    std::string csvPath;     //!< --csv <file>: per-layer CSV dump
    std::string ertPath;     //!< --ert <file>: energy-reference-table dump
    std::string mappingPath; //!< --mapping <file>: replay a fixed mapping
    bool report = false;     //!< --report: per-node table per layer
    bool help = false;       //!< --help

    /**
     * --refsim: run the value-level reference simulator against the
     * statistical model on the base macro instead of searching mappings.
     * No architecture flag is needed; --threads, --seed, and the bit
     * width overrides are honored.
     */
    bool refsim = false;
    std::int64_t refsimVectors = 48; //!< --refsim-vectors N (0 = all)

    /**
     * Device fault / variation injection. --faults loads a YAML fault
     * spec; --fault-stuck-rate and --fault-sigma override (or stand
     * alone). Negative means "flag not given". With any fault enabled,
     * both CLI modes print a per-layer degradation report against the
     * fault-free baseline.
     */
    std::string faultsPath;      //!< --faults <file.yaml>
    double faultStuckRate = -1.0; //!< --fault-stuck-rate R (off+on total)
    double faultSigma = -1.0;     //!< --fault-sigma S (lognormal sigma)

    /**
     * --keep-going: capture per-layer evaluation failures as diagnostics
     * and continue with the remaining layers instead of aborting.
     */
    bool keepGoing = false;

    /**
     * Physical data layouts. --layout pins a layout spec file on every
     * storage node it names (the bank-conflict model folds into each
     * layer's latency); --layout-search co-searches the built-in layout
     * candidates jointly with the mapping search instead. Mutually
     * exclusive; neither given = idealized conflict-free buffers with
     * byte-identical output to earlier releases.
     */
    std::string layoutPath;   //!< --layout <file.yaml>
    bool layoutSearch = false; //!< --layout-search

    /**
     * --sweep FILE: run the declarative design-space sweep the YAML file
     * describes (see cimloop::dse) instead of a single evaluation. No
     * architecture/workload flags are needed — the spec names them.
     * Honors --threads (byte-identical output for any value), --seed
     * (overrides the spec's seed when given), --csv (per-point CSV),
     * --json (sweep JSON artifact), --metrics, and --trace.
     */
    std::string sweepPath;
    std::string jsonPath; //!< --json <file>: sweep JSON artifact

    /**
     * --resume DIR: journal completed sweep chunks to DIR and skip the
     * ranges already journaled there, so an interrupted sweep rerun
     * with the same spec and directory picks up where it stopped and
     * still produces byte-identical artifacts. --chunk-size sets the
     * commit granularity (0 = default 1024 points); --max-chunks stops
     * cleanly after N freshly executed chunks (a controlled
     * interruption for tests/CI; 0 = run to completion).
     */
    std::string resumeDir;     //!< --resume DIR (empty = no journal)
    std::size_t chunkSize = 0; //!< --chunk-size N
    std::size_t maxChunks = 0; //!< --max-chunks N

    /**
     * --timeout SECONDS: arm a wall-clock deadline for the whole run
     * (any mode). Work stops at the next deterministic boundary —
     * sweep chunk, network layer, search sample, refsim vector — and
     * the process exits with ExitDeadline; a journaled sweep keeps
     * every chunk committed before the deadline and resumes normally.
     * 0 (the default) means no deadline.
     */
    double timeoutSeconds = 0.0;

    /**
     * Observability. --metrics prints the run's counter/span summary
     * table; --metrics=FILE writes the metrics JSON instead (counters
     * are deterministic at fixed seed for any --threads; span timings
     * are not). --trace=FILE writes a Chrome trace-event JSON — load it
     * via chrome://tracing or ui.perfetto.dev. Both flags reset the
     * process-wide counters at the start of the run, so the output
     * describes exactly one invocation.
     */
    bool metrics = false;    //!< --metrics[=FILE] given
    std::string metricsPath; //!< empty = print summary to out
    std::string tracePath;   //!< --trace=FILE (empty = tracing off)
};

/**
 * Parses argv-style arguments (without the program name). Fatal
 * (cimloop::FatalError) on unknown flags or malformed values.
 */
CliOptions parseArgs(const std::vector<std::string>& args);

/** Usage text. */
std::string usage();

/**
 * Runs the tool: builds the architecture and workload, searches
 * mappings, and writes results to @p out (diagnostics to @p err).
 * Returns a process exit code (see ExitCode). For `--sweep --resume`
 * runs, SIGINT/SIGTERM are handled cooperatively: the chunk in flight
 * commits to the journal, the resume hint prints, and the exit code is
 * 128 + signo.
 */
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/**
 * Executes one already-parsed invocation and returns its exit code —
 * the workhorse behind run(), exposed for `cimloop serve`.
 *
 * Unlike run(), this neither resets the process-wide obs counters nor
 * clears the per-action cache, and it installs no signal handlers: the
 * daemon runs many requests through one process and *wants* the cache
 * and counters to accumulate across them. Cancellation (deadline,
 * client disconnect, server shutdown) arrives through @p token. Every
 * byte written to @p out for a given options struct is identical to
 * what a one-shot run() of the same flags writes — the serve e2e
 * harness byte-compares the two — because cached per-action tables are
 * pure values: hitting a warm cache changes counters, never results.
 *
 * FatalError/CancelledError are caught and mapped to exit codes exactly
 * as run() maps them; @p opts must already be validated (parseArgs).
 */
int runParsed(const CliOptions& opts, const CancelToken& token,
              std::ostream& out, std::ostream& err);

} // namespace cimloop::cli

#endif // CIMLOOP_CLI_CLI_HH
