#include "cimloop/common/arena.hh"

#include <algorithm>
#include <new>

#include "cimloop/common/error.hh"

namespace cimloop {

namespace {

/** First chunk size when the arena is constructed with no hint. */
constexpr std::size_t kDefaultChunkBytes = std::size_t{64} * 1024;

/** Growth is geometric but capped so a one-off giant scope does not pin
 *  gigabytes of scratch for the rest of the thread's life. */
constexpr std::size_t kMaxChunkGrowthBytes = std::size_t{64} * 1024 * 1024;

std::size_t
alignUp(std::size_t v, std::size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

std::byte*
reserveBytes(std::size_t size)
{
    return static_cast<std::byte*>(::operator new(
        size, std::align_val_t{Arena::kMinAlign}));
}

void
freeBytes(std::byte* p, std::size_t size)
{
    ::operator delete(p, size, std::align_val_t{Arena::kMinAlign});
}

} // namespace

Arena::Arena(std::size_t initial_bytes)
    : next_size_(initial_bytes > 0 ? alignUp(initial_bytes, kMinAlign)
                                   : kDefaultChunkBytes)
{}

Arena::~Arena()
{
    for (Chunk& c : chunks_)
        freeBytes(c.data, c.size);
}

void
Arena::grow(std::size_t min_bytes)
{
    std::size_t size = std::max(next_size_, alignUp(min_bytes, kMinAlign));
    next_size_ = std::min(size * 2, kMaxChunkGrowthBytes);
    Chunk c;
    c.data = reserveBytes(size);
    c.size = size;
    c.used = 0;
    chunks_.push_back(c);
    active_ = chunks_.size() - 1;
}

void*
Arena::allocate(std::size_t bytes, std::size_t align)
{
    CIM_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
    if (align < kMinAlign)
        align = kMinAlign;
    if (bytes == 0)
        bytes = 1; // distinct non-null pointers for zero-size requests
    while (true) {
        if (chunks_.empty()) {
            grow(bytes + align);
            continue;
        }
        Chunk& c = chunks_[active_];
        std::size_t at = alignUp(c.used, align);
        if (at + bytes <= c.size) {
            c.used = at + bytes;
            return c.data + at;
        }
        // Chunk sizes are nondecreasing, so later (released) chunks can
        // only be bigger; advance into them before reserving new memory.
        if (active_ + 1 < chunks_.size()) {
            ++active_;
            continue;
        }
        grow(bytes + align);
    }
}

Arena::Mark
Arena::mark() const
{
    if (chunks_.empty())
        return {};
    return {active_, chunks_[active_].used};
}

void
Arena::release(const Mark& m)
{
    if (chunks_.empty())
        return;
    CIM_ASSERT(m.chunk < chunks_.size(), "arena mark out of range");
    for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i)
        chunks_[i].used = 0;
    active_ = m.chunk;
    chunks_[active_].used = m.used;
}

void
Arena::reset()
{
    if (chunks_.size() > 1) {
        std::size_t total = 0;
        for (Chunk& c : chunks_) {
            total += c.size;
            freeBytes(c.data, c.size);
        }
        chunks_.clear();
        Chunk c;
        c.data = reserveBytes(total);
        c.size = total;
        c.used = 0;
        chunks_.push_back(c);
    } else if (!chunks_.empty()) {
        chunks_.front().used = 0;
    }
    active_ = 0;
}

std::size_t
Arena::capacityBytes() const
{
    std::size_t total = 0;
    for (const Chunk& c : chunks_)
        total += c.size;
    return total;
}

std::size_t
Arena::usedBytes() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i <= active_ && i < chunks_.size(); ++i)
        total += chunks_[i].used;
    return total;
}

Arena&
scratchArena()
{
    thread_local Arena arena;
    return arena;
}

} // namespace cimloop
