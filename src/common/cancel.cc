#include "cimloop/common/cancel.hh"

#include <chrono>
#include <csignal>
#include <limits>

namespace cimloop {

namespace {

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char*
cancelReasonName(CancelReason reason)
{
    switch (reason) {
    case CancelReason::None:
        return "none";
    case CancelReason::User:
        return "user";
    case CancelReason::Deadline:
        return "deadline";
    case CancelReason::Signal:
        return "signal";
    }
    return "none";
}

Deadline
Deadline::after(double seconds)
{
    Deadline d;
    const double ns = seconds * 1e9;
    // A non-positive (or absurdly large negative) budget is "already
    // expired": clamp to the clock's current stamp so expired() is true
    // on the very first poll. Nonzero is preserved so active() holds.
    std::int64_t stamp;
    if (ns <= 0.0) {
        stamp = nowNs();
    } else if (ns >=
               static_cast<double>(
                   std::numeric_limits<std::int64_t>::max()) -
                   static_cast<double>(nowNs())) {
        stamp = std::numeric_limits<std::int64_t>::max();
    } else {
        stamp = nowNs() + static_cast<std::int64_t>(ns);
    }
    d.ns_ = stamp == 0 ? 1 : stamp;
    return d;
}

Deadline
Deadline::fromRawNs(std::int64_t ns)
{
    Deadline d;
    d.ns_ = ns;
    return d;
}

bool
Deadline::expired() const
{
    return ns_ != 0 && nowNs() >= ns_;
}

double
Deadline::remainingSeconds() const
{
    if (ns_ == 0)
        return std::numeric_limits<double>::infinity();
    const std::int64_t left = ns_ - nowNs();
    return left <= 0 ? 0.0 : static_cast<double>(left) * 1e-9;
}

CancelledError::CancelledError(CancelReason reason,
                               const std::string& context)
    : std::runtime_error(context + " cancelled (" +
                         cancelReasonName(reason) + ")"),
      reason_(reason)
{}

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

void
CancelToken::cancel(CancelReason reason) const
{
    int expected = static_cast<int>(CancelReason::None);
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(reason), std::memory_order_relaxed);
}

void
CancelToken::setDeadline(Deadline deadline) const
{
    state_->deadlineNs.store(deadline.rawNs(),
                             std::memory_order_relaxed);
}

Deadline
CancelToken::deadline() const
{
    return Deadline::fromRawNs(
        state_->deadlineNs.load(std::memory_order_relaxed));
}

bool
CancelToken::cancelled() const
{
    if (state_->reason.load(std::memory_order_relaxed) !=
        static_cast<int>(CancelReason::None)) {
        return true;
    }
    const std::int64_t dl =
        state_->deadlineNs.load(std::memory_order_relaxed);
    if (dl != 0 && nowNs() >= dl) {
        cancel(CancelReason::Deadline);
        return true;
    }
    return false;
}

CancelReason
CancelToken::reason() const
{
    // Route through cancelled() so an expired-but-unobserved deadline
    // latches before the reason is read.
    if (!cancelled())
        return CancelReason::None;
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_relaxed));
}

void
CancelToken::throwIfCancelled(const std::string& context) const
{
    if (cancelled())
        throw CancelledError(reason(), context);
}

namespace {

/**
 * Signal plumbing. The handler may run at any instant, so it touches
 * only lock-free atomics: the raw target pointer (kept alive by the
 * shared_ptr below, which only install/uninstall — ordinary code —
 * mutate) and the signal-number cell. A second delivery of the same
 * signal restores SIG_DFL and re-raises: graceful shutdown must never
 * make a process unkillable.
 */
std::shared_ptr<void> g_signal_keepalive; //!< pins the token's state
std::atomic<std::atomic<int>*> g_signal_target{nullptr}; //!< its reason cell
std::atomic<int> g_signal_number{0};
std::atomic<int> g_signal_count{0};
struct sigaction g_old_int;
struct sigaction g_old_term;
bool g_signal_installed = false;

extern "C" void
cimloopSignalCancelHandler(int sig)
{
    if (g_signal_count.fetch_add(1, std::memory_order_relaxed) > 0) {
        std::signal(sig, SIG_DFL); // async-signal-safe
        std::raise(sig);
        return;
    }
    g_signal_number.store(sig, std::memory_order_relaxed);
    if (std::atomic<int>* reason =
            g_signal_target.load(std::memory_order_relaxed)) {
        int expected = static_cast<int>(CancelReason::None);
        reason->compare_exchange_strong(
            expected, static_cast<int>(CancelReason::Signal),
            std::memory_order_relaxed);
    }
}

} // namespace

void
installSignalCancel(const CancelToken& token)
{
    g_signal_keepalive = token.state_;
    g_signal_target.store(&token.state_->reason,
                          std::memory_order_relaxed);
    g_signal_number.store(0, std::memory_order_relaxed);
    g_signal_count.store(0, std::memory_order_relaxed);
    if (!g_signal_installed) {
        struct sigaction sa = {};
        sa.sa_handler = cimloopSignalCancelHandler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0; // no SA_RESTART: let blocking calls wake
        sigaction(SIGINT, &sa, &g_old_int);
        sigaction(SIGTERM, &sa, &g_old_term);
        g_signal_installed = true;
    }
}

void
uninstallSignalCancel()
{
    if (g_signal_installed) {
        sigaction(SIGINT, &g_old_int, nullptr);
        sigaction(SIGTERM, &g_old_term, nullptr);
        g_signal_installed = false;
    }
    g_signal_target.store(nullptr, std::memory_order_relaxed);
    g_signal_keepalive.reset();
}

int
lastCancelSignal()
{
    return g_signal_number.load(std::memory_order_relaxed);
}

} // namespace cimloop
