#include "cimloop/common/error.hh"

namespace cimloop {
namespace detail {

void
throwFatal(const std::string& msg)
{
    throw FatalError("fatal: " + msg);
}

void
throwPanic(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << "panic: " << msg << " [" << file << ":" << line << "]";
    throw PanicError(oss.str());
}

} // namespace detail
} // namespace cimloop
