/**
 * @file
 * Bump-pointer scratch arena for hot-path temporaries.
 *
 * The statistical pipeline (Pmf lattice kernels, engine precompute,
 * dist::sliceMixture) used to allocate and free short-lived dense arrays
 * on every call, hammering the global allocator from every worker
 * thread. An Arena replaces that churn with a per-thread bump pointer:
 * allocation is a pointer increment, and an ArenaScope rewinds the whole
 * scope's allocations at once when the kernel returns.
 *
 * Lifetime rules (see docs/architecture.md, "Hot paths and kernels"):
 *  - Arena memory is scratch: it is only valid until the enclosing
 *    ArenaScope is destroyed. Never store arena pointers in results.
 *  - Scopes nest: inner kernels may open their own scope on the same
 *    arena (convolveWith's fallback path calls fromPoints, for example).
 *  - Only trivially-destructible types may be placed in an arena; no
 *    destructors run at release.
 *  - scratchArena() is thread_local, so arena use is data-race-free by
 *    construction and keeps counter determinism (the arena itself
 *    maintains no obs counters: chunk growth depends on which thread ran
 *    which work item, which must never leak into golden metrics).
 */
#ifndef CIMLOOP_COMMON_ARENA_HH
#define CIMLOOP_COMMON_ARENA_HH

#include <cstddef>
#include <type_traits>
#include <vector>

namespace cimloop {

/**
 * A chunked bump allocator. Chunks grow geometrically; release() rewinds
 * to a previously taken mark without freeing, and reset() consolidates
 * all capacity into one contiguous chunk for the next use.
 *
 * Not thread-safe: use one Arena per thread (see scratchArena()).
 */
class Arena
{
  public:
    /** Minimum alignment of every allocation (AVX-friendly). */
    static constexpr std::size_t kMinAlign = 32;

    /** @p initial_bytes sizes the first chunk; 0 defers until first use. */
    explicit Arena(std::size_t initial_bytes = 0);
    ~Arena();

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /** Raw allocation of @p bytes at @p align (>= kMinAlign enforced). */
    void* allocate(std::size_t bytes, std::size_t align = kMinAlign);

    /** Typed array allocation; no constructors or destructors run. */
    template <typename T>
    T*
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory never runs destructors");
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena memory is raw scratch");
        constexpr std::size_t a =
            alignof(T) > kMinAlign ? alignof(T) : kMinAlign;
        return static_cast<T*>(allocate(n * sizeof(T), a));
    }

    /** A rewind point; only meaningful for the arena that produced it. */
    struct Mark
    {
        std::size_t chunk = 0;
        std::size_t used = 0;
    };

    /** Current position, to be restored with release(). */
    Mark mark() const;

    /**
     * Rewinds to @p m: every allocation made after mark() is reclaimed
     * (capacity is retained). Marks must be released in LIFO order.
     */
    void release(const Mark& m);

    /**
     * Drops all allocations. When growth left multiple chunks behind,
     * their capacity is consolidated into a single contiguous chunk so
     * subsequent scopes bump through one span.
     */
    void reset();

    /** Total bytes reserved across chunks. */
    std::size_t capacityBytes() const;

    /** Bytes consumed by live allocations (including alignment padding). */
    std::size_t usedBytes() const;

    std::size_t chunkCount() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::byte* data = nullptr;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    std::vector<Chunk> chunks_;
    std::size_t active_ = 0;     //!< index of the chunk being bumped
    std::size_t next_size_ = 0;  //!< size of the next chunk to reserve

    void grow(std::size_t min_bytes);
};

/**
 * RAII rewind: records the arena position on construction and releases
 * back to it on destruction. The workhorse pattern of every kernel:
 *
 *   ArenaScope scope(scratchArena());
 *   double* acc = scope.arena().alloc<double>(span);
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark())
    {}
    ~ArenaScope() { arena_.release(mark_); }

    ArenaScope(const ArenaScope&) = delete;
    ArenaScope& operator=(const ArenaScope&) = delete;

    Arena&
    arena()
    {
        return arena_;
    }

  private:
    Arena& arena_;
    Arena::Mark mark_;
};

/** The calling thread's scratch arena (thread_local, lazily created). */
Arena& scratchArena();

} // namespace cimloop

#endif // CIMLOOP_COMMON_ARENA_HH
