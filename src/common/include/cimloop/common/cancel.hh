/**
 * @file
 * Cooperative cancellation and deadlines for the evaluation stack.
 *
 * A CancelToken is a copyable handle on shared cancellation state: one
 * relaxed-atomic reason flag plus an optional deadline. Long-running
 * paths poll cancelled() between work items — sweep chunks, network
 * layers, mapping-search samples, refsim vectors — and cancellation is
 * *acted on* only at those deterministic boundaries: a unit of work
 * either completes whole (and, for journaled sweeps, commits) or is
 * abandoned and reported as cancelled. Nothing ever returns a partial
 * number, so every artifact produced before the cancel stays
 * byte-identical to what an uninterrupted run would have written.
 *
 * Three cancellation sources share the one flag:
 *  - an explicit cancel() call (the future `cimloop serve` cancels the
 *    token it handed the request when the connection drops),
 *  - a Deadline armed via setDeadline() (CLI --timeout), observed
 *    lazily by the next cancelled() poll,
 *  - a process signal, via installSignalCancel(): SIGINT/SIGTERM flip
 *    the installed token from a signal-safe handler instead of killing
 *    the process mid-write.
 *
 * Polling is wait-free (one relaxed load; plus one clock read when a
 * deadline is armed), so per-sample polling in the mapper's inner loop
 * costs nanoseconds.
 */
#ifndef CIMLOOP_COMMON_CANCEL_HH
#define CIMLOOP_COMMON_CANCEL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace cimloop {

/** Why a token was cancelled. */
enum class CancelReason : int
{
    None = 0,     //!< not cancelled
    User = 1,     //!< explicit cancel() call
    Deadline = 2, //!< the armed Deadline expired
    Signal = 3,   //!< SIGINT/SIGTERM via installSignalCancel()
};

/** Short lowercase name ("user" | "deadline" | "signal" | "none"). */
const char* cancelReasonName(CancelReason reason);

/**
 * A point on the process's monotonic wall clock. Deadline::never() (the
 * default) never expires; Deadline::after(s) expires s seconds from
 * now. Built on std::chrono::steady_clock so a suspended/adjusted
 * system clock cannot fire (or eternally defer) a timeout.
 */
class Deadline
{
  public:
    /** An inert deadline that never expires. */
    Deadline() = default;

    static Deadline never() { return Deadline(); }

    /** Expires @p seconds from now; <= 0 is already expired. */
    static Deadline after(double seconds);

    /** True when this deadline can expire at all. */
    bool active() const { return ns_ != 0; }

    /** True when the deadline has passed (never true for never()). */
    bool expired() const;

    /** Seconds until expiry; 0 when expired, +inf when inactive. */
    double remainingSeconds() const;

    /** Raw steady-clock nanosecond stamp (0 = inactive). */
    std::int64_t rawNs() const { return ns_; }

    /** Rebuilds a deadline from a rawNs() stamp. */
    static Deadline fromRawNs(std::int64_t ns);

  private:
    std::int64_t ns_ = 0; //!< steady_clock ns since epoch; 0 = never
};

/**
 * Thrown when a work unit observes cancellation and abandons: the
 * "cancelled" failure kind next to FatalError (user error) and
 * PanicError (bug). Carries the reason so exit-code mapping (124
 * deadline / 130 signal) does not have to parse message text.
 */
class CancelledError : public std::runtime_error
{
  public:
    /** what() becomes "<context> cancelled (<reason>)". */
    CancelledError(CancelReason reason, const std::string& context);

    CancelReason reason() const { return reason_; }

  private:
    CancelReason reason_;
};

/**
 * Copyable handle on shared cancellation state (std::stop_token
 * style): the default constructor creates fresh, uncancelled state and
 * copies share it, so handing a token to a worker/config/options
 * struct links everyone to the same flag. cancel() and setDeadline()
 * act on the shared state, so they work through any copy.
 */
class CancelToken
{
  public:
    CancelToken();

    /** Flips the flag (first cancel wins; later calls are no-ops). */
    void cancel(CancelReason reason = CancelReason::User) const;

    /**
     * Arms a deadline. Call before sharing the token across threads:
     * the deadline cell itself is atomic, but re-arming mid-run would
     * race with polls semantically. An inactive deadline disarms.
     */
    void setDeadline(Deadline deadline) const;

    /** The armed deadline (never() when none). */
    Deadline deadline() const;

    /**
     * Wait-free poll: true once cancel() ran or the armed deadline
     * expired. A deadline observed here latches CancelReason::Deadline,
     * so reason() is stable afterwards.
     */
    bool cancelled() const;

    /** The latched reason (None while cancelled() is false). */
    CancelReason reason() const;

    /** Throws CancelledError("<context> cancelled (<reason>)") when
     *  cancelled; returns otherwise. The boundary-check idiom. */
    void throwIfCancelled(const std::string& context) const;

  private:
    friend void installSignalCancel(const CancelToken&);

    struct State
    {
        std::atomic<int> reason{static_cast<int>(CancelReason::None)};
        std::atomic<std::int64_t> deadlineNs{0};
    };
    std::shared_ptr<State> state_;
};

/**
 * Installs a process-wide SIGINT/SIGTERM handler that cancels @p token
 * (reason Signal) instead of killing the process: the first signal
 * flips the token's flag from the handler via a lock-free atomic store
 * (signal-safe); a second signal restores the default disposition and
 * re-raises, so a wedged run can still be killed the ordinary way.
 * Keeps the token's state alive until uninstallSignalCancel(), which
 * restores the previous handlers. Not reentrant: one installation at a
 * time (installing again replaces the target token).
 */
void installSignalCancel(const CancelToken& token);

/** Restores the signal dispositions installSignalCancel() replaced. */
void uninstallSignalCancel();

/** The signal number that cancelled the installed token (0 = none
 *  yet). Exit-code mapping returns 128 + this (130 for SIGINT). */
int lastCancelSignal();

} // namespace cimloop

#endif // CIMLOOP_COMMON_CANCEL_HH
