/**
 * @file
 * Error reporting for CiMLoop.
 *
 * Follows the gem5 fatal-vs-panic convention:
 *  - CIM_FATAL: the situation is the *user's* fault (bad specification,
 *    invalid attribute, unmappable workload). Throws cimloop::FatalError so
 *    callers and tests can recover.
 *  - CIM_PANIC: an internal invariant was violated, i.e. a CiMLoop bug.
 *    Throws cimloop::PanicError.
 *  - CIM_ASSERT: cheap invariant check that panics with source location.
 */
#ifndef CIMLOOP_COMMON_ERROR_HH
#define CIMLOOP_COMMON_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace cimloop {

/** Raised for user-caused errors (bad configuration, invalid arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Raised for internal invariant violations, i.e. CiMLoop bugs. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what_arg)
        : std::logic_error(what_arg)
    {}
};

namespace detail {

/** Streams a parameter pack into one string. */
template <typename... Args>
std::string
concatMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void throwFatal(const std::string& msg);
[[noreturn]] void throwPanic(const char* file, int line,
                             const std::string& msg);

} // namespace detail

} // namespace cimloop

/** Report a user error: throws cimloop::FatalError with the given message. */
#define CIM_FATAL(...) \
    ::cimloop::detail::throwFatal( \
        ::cimloop::detail::concatMessage(__VA_ARGS__))

/** Report an internal bug: throws cimloop::PanicError with file/line. */
#define CIM_PANIC(...) \
    ::cimloop::detail::throwPanic(__FILE__, __LINE__, \
        ::cimloop::detail::concatMessage(__VA_ARGS__))

/** Invariant check; panics with the stringified condition on failure. */
#define CIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::cimloop::detail::throwPanic(__FILE__, __LINE__, \
                ::cimloop::detail::concatMessage( \
                    "assertion failed: " #cond ". ", ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // CIMLOOP_COMMON_ERROR_HH
