/**
 * @file
 * Status messages (gem5-style inform/warn). None of these stop execution;
 * they provide operating status to the user on stderr.
 */
#ifndef CIMLOOP_COMMON_LOG_HH
#define CIMLOOP_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace cimloop {

/** Global verbosity: 0 = silent, 1 = warn, 2 = inform (default). */
int logLevel();

/** Sets the global verbosity level. */
void setLogLevel(int level);

namespace detail {

void emitLog(const char* prefix, int min_level, const std::string& msg);

} // namespace detail

/** Informative message users should know but not worry about. */
template <typename... Args>
void
inform(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    detail::emitLog("info: ", 2, oss.str());
}

/** Something may not behave exactly as expected; a place to look first. */
template <typename... Args>
void
warn(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    detail::emitLog("warn: ", 1, oss.str());
}

} // namespace cimloop

#endif // CIMLOOP_COMMON_LOG_HH
