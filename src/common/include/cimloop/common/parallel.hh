/**
 * @file
 * Minimal fork-join parallelism for the evaluation engine's fan-out loops.
 *
 * Exceptions thrown by workers never escape a thread lambda (which would
 * std::terminate the whole process): every failure is captured with the
 * index that raised it, all workers are joined, and the failures are
 * rethrown on the calling thread — so an unmappable layer surfaces as the
 * same cimloop::FatalError the serial path gives, and when several items
 * fail concurrently the combined error names each of them instead of
 * silently dropping all but the first.
 */
#ifndef CIMLOOP_COMMON_PARALLEL_HH
#define CIMLOOP_COMMON_PARALLEL_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "cimloop/common/cancel.hh"

namespace cimloop {

/** One captured worker failure: the item index and its exception. */
struct WorkerError
{
    std::size_t index = 0;
    std::exception_ptr error;
};

/**
 * Runs fn(i) for every i in [0, n) on up to @p threads workers.
 *
 * Work items are claimed dynamically from a shared counter, so callers
 * must not depend on which thread runs which index — only that every
 * index runs at most once and that results written to disjoint slots are
 * visible after return. threads <= 1 (or n <= 1) runs inline on the
 * calling thread.
 *
 * When a worker throws, remaining unclaimed items are abandoned and all
 * workers are joined. Every exception captured before the stop (several
 * items can fail concurrently) is aggregated in ascending item order: a
 * single failure rethrows the original exception unchanged; multiple
 * failures throw one PanicError when any of them was a PanicError (a bug
 * trumps bad input), otherwise one FatalError, whose message lists every
 * failing item. CancelledError captures never enter the aggregate: a
 * real failure always trumps cancellation.
 *
 * With a @p cancel token, workers poll it between work items and stop
 * claiming once it fires; items already claimed run to completion (the
 * work-item boundary is where cancellation acts). When cancellation —
 * not a failure — left items unrun, one CancelledError is thrown after
 * the join; if every item finished before the token was observed, the
 * call returns normally.
 */
void parallelFor(int threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn,
                 const CancelToken* cancel = nullptr);

/**
 * Keep-going variant: runs ALL n items even when some fail, and returns
 * the captured failures in ascending item order instead of throwing.
 * An empty result means every item succeeded. Used by graceful
 * per-layer degradation, where one bad layer must not abandon the rest
 * of the network.
 *
 * With a @p cancel token, workers stop claiming once it fires, and
 * every unrun item is reported as a WorkerError holding a
 * CancelledError — the executed items are always the contiguous prefix
 * of the claim order, so callers can tell exactly which slots hold real
 * results.
 */
std::vector<WorkerError>
parallelForAll(int threads, std::size_t n,
               const std::function<void(std::size_t)>& fn,
               const CancelToken* cancel = nullptr);

} // namespace cimloop

#endif // CIMLOOP_COMMON_PARALLEL_HH
