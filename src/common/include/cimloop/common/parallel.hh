/**
 * @file
 * Minimal fork-join parallelism for the evaluation engine's fan-out loops.
 *
 * Exceptions thrown by workers never escape a thread lambda (which would
 * std::terminate the whole process): the first one is captured as an
 * std::exception_ptr, every worker is joined, and the exception is
 * rethrown on the calling thread — so an unmappable layer surfaces as the
 * same cimloop::FatalError the serial path gives.
 */
#ifndef CIMLOOP_COMMON_PARALLEL_HH
#define CIMLOOP_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace cimloop {

/**
 * Runs fn(i) for every i in [0, n) on up to @p threads workers.
 *
 * Work items are claimed dynamically from a shared counter, so callers
 * must not depend on which thread runs which index — only that every
 * index runs at most once and that results written to disjoint slots are
 * visible after return. threads <= 1 (or n <= 1) runs inline on the
 * calling thread.
 *
 * When a worker throws, remaining unclaimed items are abandoned, all
 * workers are joined, and the first captured exception is rethrown.
 */
void parallelFor(int threads, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

} // namespace cimloop

#endif // CIMLOOP_COMMON_PARALLEL_HH
