/**
 * @file
 * Per-request attribution context for service workloads.
 *
 * A long-lived daemon (`cimloop serve`) runs many requests through the
 * same process-wide machinery — most importantly the per-action cache —
 * and wants per-client hit/miss accounting next to the global counters.
 * The global obs counters cannot provide that: they are process-wide by
 * design. Instead, a request installs a RequestStats block for its
 * calling thread via RequestStatsScope, and instrumented sites
 * (engine::cachedPrecompute) bump the *current* block when one is
 * installed, in addition to the global counters.
 *
 * The context is a thread_local pointer, and parallelFor/parallelForAll
 * propagate the caller's context into their worker threads (workers run
 * under the context that was current when the pool was entered, nested
 * pools included). So the attribution follows the request through the
 * engine's entire fan-out without threading a parameter through every
 * signature. Requests running concurrently on different threads never
 * see each other's blocks.
 *
 * The counters are relaxed atomics: one request's work items may bump
 * the same block from several workers at once. Totals are exact; no
 * ordering is implied.
 */
#ifndef CIMLOOP_COMMON_REQUEST_CONTEXT_HH
#define CIMLOOP_COMMON_REQUEST_CONTEXT_HH

#include <atomic>
#include <cstdint>

namespace cimloop {

/** Per-request (per-client) counters instrumented sites attribute to. */
struct RequestStats
{
    std::atomic<std::uint64_t> cacheHits{0};   //!< per-action cache hits
    std::atomic<std::uint64_t> cacheMisses{0}; //!< per-action cache misses
};

/**
 * The calling thread's current attribution block (nullptr when none is
 * installed — the one-shot CLI and tests run without one).
 */
RequestStats* currentRequestStats() noexcept;

/**
 * Installs @p stats as the calling thread's context and returns the
 * previous value so scopes nest. Prefer RequestStatsScope.
 */
RequestStats* setCurrentRequestStats(RequestStats* stats) noexcept;

/**
 * RAII installer: the constructor makes @p stats the calling thread's
 * context, the destructor restores whatever was installed before.
 */
class RequestStatsScope
{
  public:
    explicit RequestStatsScope(RequestStats* stats) noexcept
        : previous_(setCurrentRequestStats(stats))
    {}
    ~RequestStatsScope() { setCurrentRequestStats(previous_); }
    RequestStatsScope(const RequestStatsScope&) = delete;
    RequestStatsScope& operator=(const RequestStatsScope&) = delete;

  private:
    RequestStats* previous_;
};

} // namespace cimloop

#endif // CIMLOOP_COMMON_REQUEST_CONTEXT_HH
