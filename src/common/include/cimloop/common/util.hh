/**
 * @file
 * Small shared utilities: integer math, string helpers, and a deterministic
 * pseudo-random generator used everywhere reproducibility matters.
 */
#ifndef CIMLOOP_COMMON_UTIL_HH
#define CIMLOOP_COMMON_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cimloop {

/** Ceiling division for positive integers. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Returns true when @p n is a power of two (n >= 1). */
constexpr bool
isPowerOfTwo(std::int64_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

/** Smallest power of two >= n. */
std::int64_t nextPowerOfTwo(std::int64_t n);

/** Base-2 logarithm of a power of two; fatals if not a power of two. */
int log2Exact(std::int64_t n);

/** Number of bits needed to represent values 0..n-1 (>= 1). */
int bitsForCount(std::int64_t n);

/**
 * All positive divisors of @p n in increasing order.
 *
 * Memoized: the mapper asks for the same extents once per sampled mapping
 * per dimension, so results are cached process-wide and returned by
 * reference. The cache is thread-safe and entries are never invalidated
 * (divisors of a number do not change), so returned references stay valid
 * for the life of the process.
 */
const std::vector<std::int64_t>& divisorsOf(std::int64_t n);

/** Uncached divisor computation backing divisorsOf() (exposed for tests). */
std::vector<std::int64_t> computeDivisors(std::int64_t n);

/**
 * FNV-1a 64-bit hash of a byte string. Stable across platforms, runs,
 * and process restarts (unlike std::hash), so it is usable wherever a
 * fingerprint is persisted — e.g. the sweep journal keys its manifest
 * by a content hash of the materialized spec.
 */
constexpr std::uint64_t
fnv1a64(const char* data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

inline std::uint64_t
fnv1a64(const std::string& s)
{
    return fnv1a64(s.data(), s.size());
}

/** Strips leading and trailing whitespace. */
std::string trim(const std::string& s);

/** Splits on a delimiter character; keeps empty fields. */
std::vector<std::string> split(const std::string& s, char delim);

/** True when @p s starts with @p prefix. */
bool startsWith(const std::string& s, const std::string& prefix);

/** Lower-cases ASCII. */
std::string toLower(std::string s);

/**
 * Deterministic 64-bit xorshift* generator. Used instead of std::mt19937 in
 * hot loops and wherever cross-platform reproducibility of sampled values
 * matters (the reference simulator, the mapper's random search).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state(seed ? seed : 1)
    {}

    /**
     * Counter-derived stream: a generator for (seed, stream) decorrelated
     * from every other stream of the same seed via SplitMix64 finalization.
     * Parallel search shards draw from forStream(seed, shard) so results
     * do not depend on how shards are scheduled over threads.
     */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double gaussian();

  private:
    std::uint64_t state;
};

} // namespace cimloop

#endif // CIMLOOP_COMMON_UTIL_HH
