#include "cimloop/common/log.hh"

#include <iostream>

namespace cimloop {

namespace {
int g_log_level = 1;
} // namespace

int
logLevel()
{
    return g_log_level;
}

void
setLogLevel(int level)
{
    g_log_level = level;
}

namespace detail {

void
emitLog(const char* prefix, int min_level, const std::string& msg)
{
    if (g_log_level >= min_level)
        std::cerr << prefix << msg << "\n";
}

} // namespace detail

} // namespace cimloop
