#include "cimloop/common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "cimloop/common/error.hh"
#include "cimloop/common/request_context.hh"

namespace cimloop {

namespace {

/**
 * Runs the claim loop; captures failures; optionally stops on failure.
 *
 * With a cancel token, workers poll it before claiming each item and
 * stop claiming once it fires. Because items are claimed from a single
 * fetch_add counter, the executed items always form the contiguous
 * prefix [0, k) of the index space; the unrun tail [k, n) is reported
 * as one WorkerError per item, each holding a CancelledError, so
 * callers can tell exactly which slots hold real results.
 */
std::vector<WorkerError>
runPool(int threads, std::size_t n,
        const std::function<void(std::size_t)>& fn, bool stop_on_failure,
        const CancelToken* cancel)
{
    std::vector<WorkerError> errors;
    if (n == 0)
        return errors;
    std::size_t workers =
        threads < 1 ? 1 : static_cast<std::size_t>(threads);
    workers = std::min(workers, n);

    const auto cancelTail = [&](std::size_t first_unrun) {
        const CancelReason why = cancel->reason();
        for (std::size_t i = first_unrun; i < n; ++i) {
            errors.push_back(
                {i, std::make_exception_ptr(CancelledError(
                        why, "work item " + std::to_string(i)))});
        }
    };

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            if (cancel && cancel->cancelled()) {
                cancelTail(i);
                break;
            }
            try {
                fn(i);
            } catch (...) {
                errors.push_back({i, std::current_exception()});
                if (stop_on_failure)
                    break;
            }
        }
        return errors;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;

    // Workers inherit the caller's per-request attribution context, so
    // cache hits/misses inside a fanned-out request still land on that
    // request's RequestStats block (nested pools re-capture from their
    // worker, so the context follows arbitrarily deep fan-out).
    RequestStats* request_stats = currentRequestStats();

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
        pool.emplace_back([&] {
            RequestStatsScope stats_scope(request_stats);
            while (!(stop_on_failure &&
                     failed.load(std::memory_order_acquire))) {
                if (cancel && cancel->cancelled())
                    break;
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    break;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    errors.push_back({i, std::current_exception()});
                    failed.store(true, std::memory_order_release);
                }
            }
        });
    }
    for (std::thread& t : pool)
        t.join();
    if (cancel && cancel->cancelled()) {
        // Items past the claim counter never ran. Claimed items finished
        // (workers only check the token *between* items), so the executed
        // set is the contiguous prefix [0, min(next, n)).
        const std::size_t first_unrun =
            std::min(next.load(std::memory_order_relaxed), n);
        cancelTail(first_unrun);
    }
    // Capture order is thread-completion order, which is nondeterministic;
    // diagnostics sort by item index so aggregated reports are stable
    // (pinned by ParallelFor.AggregationListsFailuresInItemOrder and
    // ParallelForAll.ErrorsSortedDespiteReverseCompletionOrder).
    std::sort(errors.begin(), errors.end(),
              [](const WorkerError& a, const WorkerError& b) {
                  return a.index < b.index;
              });
    return errors;
}

bool
isCancelledError(const std::exception_ptr& error)
{
    try {
        std::rethrow_exception(error);
    } catch (const CancelledError&) {
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace

void
parallelFor(int threads, std::size_t n,
            const std::function<void(std::size_t)>& fn,
            const CancelToken* cancel)
{
    std::vector<WorkerError> errors =
        runPool(threads, n, fn, /*stop_on_failure=*/true, cancel);
    if (errors.empty())
        return;

    // A real failure always trumps cancellation: the cancelled-tail
    // entries carry no information beyond "the run stopped", while a
    // captured failure is the thing the user must see.
    std::vector<WorkerError> real;
    std::exception_ptr first_cancelled;
    for (WorkerError& we : errors) {
        if (isCancelledError(we.error)) {
            if (!first_cancelled)
                first_cancelled = we.error;
        } else {
            real.push_back(std::move(we));
        }
    }
    if (real.empty()) {
        std::rethrow_exception(first_cancelled);
    }
    if (real.size() == 1)
        std::rethrow_exception(real.front().error);

    // Several items failed before the stop flag landed: aggregate them in
    // item order so no failure is silently dropped.
    bool any_panic = false;
    std::string combined = std::to_string(real.size()) +
                           " parallel work items failed:";
    for (const WorkerError& we : real) {
        combined += "\n  item " + std::to_string(we.index) + ": ";
        try {
            std::rethrow_exception(we.error);
        } catch (const PanicError& e) {
            any_panic = true;
            combined += e.what();
        } catch (const std::exception& e) {
            combined += e.what();
        } catch (...) {
            combined += "unknown exception";
        }
    }
    if (any_panic)
        throw PanicError(combined);
    throw FatalError(combined);
}

std::vector<WorkerError>
parallelForAll(int threads, std::size_t n,
               const std::function<void(std::size_t)>& fn,
               const CancelToken* cancel)
{
    return runPool(threads, n, fn, /*stop_on_failure=*/false, cancel);
}

} // namespace cimloop
