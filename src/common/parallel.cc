#include "cimloop/common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "cimloop/common/error.hh"

namespace cimloop {

namespace {

/** Runs the claim loop; captures failures; optionally stops on failure. */
std::vector<WorkerError>
runPool(int threads, std::size_t n,
        const std::function<void(std::size_t)>& fn, bool stop_on_failure)
{
    std::vector<WorkerError> errors;
    if (n == 0)
        return errors;
    std::size_t workers =
        threads < 1 ? 1 : static_cast<std::size_t>(threads);
    workers = std::min(workers, n);

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors.push_back({i, std::current_exception()});
                if (stop_on_failure)
                    break;
            }
        }
        return errors;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
        pool.emplace_back([&] {
            while (!(stop_on_failure &&
                     failed.load(std::memory_order_acquire))) {
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    break;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    errors.push_back({i, std::current_exception()});
                    failed.store(true, std::memory_order_release);
                }
            }
        });
    }
    for (std::thread& t : pool)
        t.join();
    // Capture order is thread-completion order, which is nondeterministic;
    // diagnostics sort by item index so aggregated reports are stable
    // (pinned by ParallelFor.AggregationListsFailuresInItemOrder and
    // ParallelForAll.ErrorsSortedDespiteReverseCompletionOrder).
    std::sort(errors.begin(), errors.end(),
              [](const WorkerError& a, const WorkerError& b) {
                  return a.index < b.index;
              });
    return errors;
}

} // namespace

void
parallelFor(int threads, std::size_t n,
            const std::function<void(std::size_t)>& fn)
{
    std::vector<WorkerError> errors =
        runPool(threads, n, fn, /*stop_on_failure=*/true);
    if (errors.empty())
        return;
    if (errors.size() == 1)
        std::rethrow_exception(errors.front().error);

    // Several items failed before the stop flag landed: aggregate them in
    // item order so no failure is silently dropped.
    bool any_panic = false;
    std::string combined = std::to_string(errors.size()) +
                           " parallel work items failed:";
    for (const WorkerError& we : errors) {
        combined += "\n  item " + std::to_string(we.index) + ": ";
        try {
            std::rethrow_exception(we.error);
        } catch (const PanicError& e) {
            any_panic = true;
            combined += e.what();
        } catch (const std::exception& e) {
            combined += e.what();
        } catch (...) {
            combined += "unknown exception";
        }
    }
    if (any_panic)
        throw PanicError(combined);
    throw FatalError(combined);
}

std::vector<WorkerError>
parallelForAll(int threads, std::size_t n,
               const std::function<void(std::size_t)>& fn)
{
    return runPool(threads, n, fn, /*stop_on_failure=*/false);
}

} // namespace cimloop
