#include "cimloop/common/parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cimloop {

void
parallelFor(int threads, std::size_t n,
            const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    std::size_t workers = threads < 1 ? 1 : static_cast<std::size_t>(threads);
    workers = std::min(workers, n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
        pool.emplace_back([&] {
            while (!failed.load(std::memory_order_acquire)) {
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    break;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    failed.store(true, std::memory_order_release);
                }
            }
        });
    }
    for (std::thread& t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace cimloop
