#include "cimloop/common/request_context.hh"

namespace cimloop {

namespace {

thread_local RequestStats* t_request_stats = nullptr;

} // namespace

RequestStats*
currentRequestStats() noexcept
{
    return t_request_stats;
}

RequestStats*
setCurrentRequestStats(RequestStats* stats) noexcept
{
    RequestStats* previous = t_request_stats;
    t_request_stats = stats;
    return previous;
}

} // namespace cimloop
