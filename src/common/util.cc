#include "cimloop/common/util.hh"

#include <cctype>
#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "cimloop/common/error.hh"

namespace cimloop {

std::int64_t
nextPowerOfTwo(std::int64_t n)
{
    CIM_ASSERT(n >= 1, "nextPowerOfTwo requires n >= 1, got ", n);
    std::int64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

int
log2Exact(std::int64_t n)
{
    if (!isPowerOfTwo(n))
        CIM_FATAL("expected a power of two, got ", n);
    int b = 0;
    while ((std::int64_t{1} << b) < n)
        ++b;
    return b;
}

int
bitsForCount(std::int64_t n)
{
    CIM_ASSERT(n >= 1, "bitsForCount requires n >= 1, got ", n);
    int b = 1;
    while ((std::int64_t{1} << b) < n)
        ++b;
    return b;
}

std::vector<std::int64_t>
computeDivisors(std::int64_t n)
{
    CIM_ASSERT(n >= 1, "divisorsOf requires n >= 1, got ", n);
    std::vector<std::int64_t> low, high;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            low.push_back(d);
            if (d != n / d)
                high.push_back(n / d);
        }
    }
    low.insert(low.end(), high.rbegin(), high.rend());
    return low;
}

const std::vector<std::int64_t>&
divisorsOf(std::int64_t n)
{
    // unordered_map element addresses are stable across rehash and entries
    // are never erased, so returned references outlive the locks.
    static std::shared_mutex mutex;
    static std::unordered_map<std::int64_t, std::vector<std::int64_t>> cache;
    {
        std::shared_lock<std::shared_mutex> lock(mutex);
        auto it = cache.find(n);
        if (it != cache.end())
            return it->second;
    }
    std::vector<std::int64_t> divs = computeDivisors(n);
    std::unique_lock<std::shared_mutex> lock(mutex);
    return cache.emplace(n, std::move(divs)).first->second;
}

std::string
trim(const std::string& s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string& s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(std::string s)
{
    for (char& c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    // SplitMix64 finalizer over a golden-ratio stride keeps nearby
    // (seed, stream) pairs statistically independent.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return Rng(z ? z : 1);
}

double
Rng::gaussian()
{
    // Box-Muller; discard the second value for simplicity.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

} // namespace cimloop
