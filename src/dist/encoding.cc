#include "cimloop/dist/encoding.hh"

#include <cmath>

#include "cimloop/common/arena.hh"
#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::dist {

Encoding
encodingFromString(const std::string& name)
{
    std::string n = toLower(name);
    if (n == "unsigned")
        return Encoding::Unsigned;
    if (n == "twos_complement" || n == "twos-complement" || n == "2c")
        return Encoding::TwosComplement;
    if (n == "offset")
        return Encoding::Offset;
    if (n == "differential")
        return Encoding::Differential;
    if (n == "xnor")
        return Encoding::Xnor;
    if (n == "magnitude" || n == "magnitude_only" || n == "magnitude-only")
        return Encoding::MagnitudeOnly;
    CIM_FATAL("unknown encoding '", name, "'");
}

const char*
encodingName(Encoding e)
{
    switch (e) {
      case Encoding::Unsigned: return "unsigned";
      case Encoding::TwosComplement: return "twos_complement";
      case Encoding::Offset: return "offset";
      case Encoding::Differential: return "differential";
      case Encoding::Xnor: return "xnor";
      case Encoding::MagnitudeOnly: return "magnitude_only";
    }
    return "?";
}

double
EncodedTensor::maxCode() const
{
    return static_cast<double>((std::int64_t{1} << bits) - 1);
}

double
EncodedTensor::meanNormValue() const
{
    double mc = maxCode();
    return mc > 0.0 ? codes.mean() / mc : 0.0;
}

double
EncodedTensor::meanNormSquare() const
{
    double mc = maxCode();
    return mc > 0.0 ? codes.meanSquare() / (mc * mc) : 0.0;
}

std::vector<double>
EncodedTensor::bitOnProbs() const
{
    std::vector<double> probs(bits, 0.0);
    for (const Pmf::Point& pt : codes.points()) {
        auto code = static_cast<std::uint64_t>(pt.value);
        for (int i = 0; i < bits; ++i) {
            if ((code >> i) & 1u)
                probs[i] += pt.prob;
        }
    }
    return probs;
}

double
EncodedTensor::meanBitFlips() const
{
    double flips = 0.0;
    for (double p : bitOnProbs())
        flips += 2.0 * p * (1.0 - p);
    return flips;
}

std::vector<EncodedTensor>
EncodedTensor::slices(int slice_bits) const
{
    CIM_ASSERT(slice_bits >= 1, "slice width must be >= 1");
    std::vector<EncodedTensor> out;
    for (int lo = 0; lo < bits; lo += slice_bits) {
        int width = std::min(slice_bits, bits - lo);
        std::uint64_t mask = (std::uint64_t{1} << width) - 1;
        EncodedTensor slice;
        slice.encoding = encoding;
        slice.bits = width;
        slice.planes = planes;
        slice.bipolarBits = bipolarBits;
        slice.codes = codes.mapped([lo, mask](double v) {
            auto code = static_cast<std::uint64_t>(v);
            return static_cast<double>((code >> lo) & mask);
        });
        out.push_back(std::move(slice));
    }
    return out;
}

EncodedTensor
sliceMixture(const EncodedTensor& full, int slice_bits)
{
    // Slicing and mixing allocate a burst of short-lived Pmfs; scope the
    // thread's arena so the nested lattice kernels' scratch is rewound
    // when the mixture is done.
    ArenaScope scratch(scratchArena());
    std::vector<EncodedTensor> slices = full.slices(slice_bits);
    CIM_ASSERT(!slices.empty(), "slicing produced no slices");
    EncodedTensor mix = slices.front();
    if (slices.size() > 1) {
        std::vector<Pmf> parts;
        parts.reserve(slices.size());
        for (EncodedTensor& s : slices)
            parts.push_back(std::move(s.codes));
        mix.codes = Pmf::mixture(parts);
        // Mixture spans the widest slice.
        for (const EncodedTensor& s : slices)
            mix.bits = std::max(mix.bits, s.bits);
    }
    return mix;
}

EncodedTensor
encodeOperands(const Pmf& operands, Encoding e, int operand_bits)
{
    CIM_ASSERT(operand_bits >= 1 && operand_bits <= 32,
               "operand bits out of range: ", operand_bits);
    if (operands.empty())
        CIM_FATAL("cannot encode an empty operand PMF");

    const std::int64_t full = (std::int64_t{1} << operand_bits) - 1;
    const std::int64_t half = std::int64_t{1} << (operand_bits - 1);
    const bool has_negative = operands.minValue() < 0.0;

    EncodedTensor enc;
    enc.encoding = e;
    enc.planes = 1;
    enc.bipolarBits = false;

    auto clampCode = [](double v, std::int64_t hi) {
        auto c = static_cast<std::int64_t>(std::llround(v));
        if (c < 0)
            c = 0;
        if (c > hi)
            c = hi;
        return static_cast<double>(c);
    };

    switch (e) {
      case Encoding::Unsigned: {
        if (has_negative) {
            CIM_FATAL("unsigned encoding cannot represent negative "
                      "operands (min ", operands.minValue(), ")");
        }
        enc.bits = operand_bits;
        enc.codes =
            operands.mapped([&](double v) { return clampCode(v, full); });
        break;
      }
      case Encoding::TwosComplement: {
        enc.bits = operand_bits;
        enc.codes = operands.mapped([&](double v) {
            auto x = static_cast<std::int64_t>(std::llround(v));
            if (x < -half)
                x = -half;
            if (x > half - 1)
                x = half - 1;
            std::int64_t code = x < 0 ? x + (std::int64_t{1} << operand_bits)
                                      : x;
            return static_cast<double>(code);
        });
        break;
      }
      case Encoding::Offset: {
        enc.bits = operand_bits;
        enc.codes = operands.mapped([&](double v) {
            return clampCode(v + static_cast<double>(half), full);
        });
        break;
      }
      case Encoding::Differential: {
        // Positive and negative parts are stored on paired devices; each
        // device plane carries (operand_bits - 1) magnitude bits. The code
        // PMF is the 50/50 mixture of the two plane distributions (each
        // physical device sees one plane).
        enc.bits = std::max(1, operand_bits - 1);
        enc.planes = 2;
        std::int64_t hi = (std::int64_t{1} << enc.bits) - 1;
        Pmf pos = operands.mapped(
            [&](double v) { return clampCode(std::max(v, 0.0), hi); });
        Pmf neg = operands.mapped(
            [&](double v) { return clampCode(std::max(-v, 0.0), hi); });
        enc.codes = pos.mixedWith(neg, 0.5);
        break;
      }
      case Encoding::Xnor: {
        // XNOR nets drive each bit as a +/-1 level; the code itself is the
        // two's complement pattern, with bipolar bit semantics.
        enc.bits = operand_bits;
        enc.bipolarBits = true;
        enc.codes = operands.mapped([&](double v) {
            auto x = static_cast<std::int64_t>(std::llround(v));
            if (x < -half)
                x = -half;
            if (x > half - 1)
                x = half - 1;
            std::int64_t code = x < 0 ? x + (std::int64_t{1} << operand_bits)
                                      : x;
            return static_cast<double>(code);
        });
        break;
      }
      case Encoding::MagnitudeOnly: {
        enc.bits = has_negative ? std::max(1, operand_bits - 1)
                                : operand_bits;
        std::int64_t hi = (std::int64_t{1} << enc.bits) - 1;
        enc.codes = operands.mapped(
            [&](double v) { return clampCode(std::abs(v), hi); });
        break;
      }
    }
    return enc;
}

double
meanNormMac(const EncodedTensor& input, const EncodedTensor& weight)
{
    return input.meanNormValue() * weight.meanNormValue();
}

} // namespace cimloop::dist
