/**
 * @file
 * Hardware data representations: encoding and bit slicing (paper Sec.
 * III-C1b).
 *
 * Operands are first *encoded* (represented as binary codes) and then
 * *sliced* (bits partitioned across hardware components). Component energy
 * models consume the resulting per-slice code distributions.
 */
#ifndef CIMLOOP_DIST_ENCODING_HH
#define CIMLOOP_DIST_ENCODING_HH

#include <string>
#include <vector>

#include "cimloop/dist/pmf.hh"

namespace cimloop::dist {

/**
 * Operand-to-bits encoding schemes used by published CiM macros
 * (paper cites offset [ISAAC], differential [RAELLA], XNOR [Jia],
 * magnitude-only [FORMS], plus plain unsigned / two's complement).
 */
enum class Encoding {
    Unsigned,        //!< non-negative magnitude, all bits data
    TwosComplement,  //!< standard signed binary
    Offset,          //!< value + 2^(b-1); zero-point shifted
    Differential,    //!< positive/negative parts on paired devices
    Xnor,            //!< bits carry +/-1 levels (binary networks)
    MagnitudeOnly,   //!< |value| in b-1 bits, sign handled digitally
};

/** Parses an encoding name ("offset", "xnor", ...); fatal when unknown. */
Encoding encodingFromString(const std::string& name);

/** Canonical lowercase name of an encoding. */
const char* encodingName(Encoding e);

/**
 * The representation of one tensor at one component: an encoding, a bit
 * width, and the distribution of the unsigned codes that devices/circuits
 * actually see. This is the interface between the workload's operand PMFs
 * and the data-value-dependent component models.
 */
struct EncodedTensor
{
    Encoding encoding = Encoding::Unsigned;
    int bits = 8;          //!< bits per plane code
    int planes = 1;        //!< 2 for differential (pos/neg device pair)
    bool bipolarBits = false; //!< XNOR: each bit drives a +/-1 level
    Pmf codes;             //!< PMF over plane codes in [0, 2^bits)

    /** Largest representable plane code. */
    double maxCode() const;

    /** E[code] / maxCode: average normalized analog level in [0, 1]. */
    double meanNormValue() const;

    /** E[code^2] / maxCode^2: drives V^2-type energies. */
    double meanNormSquare() const;

    /** P(bit i == 1) for each of the `bits` bit positions (LSB first). */
    std::vector<double> bitOnProbs() const;

    /**
     * Expected number of bit transitions between two independent
     * consecutive codes: sum_i 2 p_i (1 - p_i). Drives switching
     * (capacitive) energy models.
     */
    double meanBitFlips() const;

    /**
     * Partitions the code's bits into slices of @p slice_bits (LSB-first;
     * the final slice may be narrower) and returns the marginal
     * representation each slice's hardware sees.
     */
    std::vector<EncodedTensor> slices(int slice_bits) const;
};

/**
 * Encodes an operand PMF (signed integers at @p operand_bits precision)
 * under scheme @p e. Fatal when the PMF's support does not fit the scheme
 * (e.g. negative operands under Unsigned).
 */
EncodedTensor encodeOperands(const Pmf& operands, Encoding e,
                             int operand_bits);

/**
 * The representation an "average action" sees when a tensor is sliced:
 * the equal-weight mixture of the per-slice code marginals, computed as
 * one single-pass merge (Pmf::mixture) over all slices.
 */
EncodedTensor sliceMixture(const EncodedTensor& full, int slice_bits);

/**
 * Convenience: the per-plane code average MAC contribution used for
 * validation plots, E[input_level * weight_level] under independence.
 */
double meanNormMac(const EncodedTensor& input, const EncodedTensor& weight);

} // namespace cimloop::dist

#endif // CIMLOOP_DIST_ENCODING_HH
