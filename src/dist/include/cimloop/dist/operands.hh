/**
 * @file
 * Synthetic per-layer DNN operand distributions.
 *
 * The paper profiles real DNN runs (ImageNet / Wikipedia inputs) to obtain a
 * PMF per tensor per layer (Sec. III-D1). Those traces are unavailable here,
 * so this module generates *deterministic, layer-varying* operand PMFs with
 * the statistical structure published DNN profiles show: post-ReLU
 * half-normal activations whose scale and sparsity vary layer to layer,
 * zero-mean Gaussian weights with layer-dependent variance, and
 * accumulation-widened outputs. The modeling pipeline only ever consumes the
 * PMFs, so every downstream code path is exercised identically (see
 * DESIGN.md, substitution table).
 */
#ifndef CIMLOOP_DIST_OPERANDS_HH
#define CIMLOOP_DIST_OPERANDS_HH

#include <cstdint>
#include <string>

#include "cimloop/dist/pmf.hh"

namespace cimloop::dist {

/** Per-layer operand value distributions (signed integer domain). */
struct OperandProfile
{
    Pmf inputs;         //!< activation values at input precision
    Pmf weights;        //!< weight values at weight precision
    Pmf outputs;        //!< output values at output precision
    double inputSparsity = 0.0; //!< P(input == 0), informational
};

/**
 * Deterministically synthesizes operand PMFs for layer @p layer_index of
 * @p num_layers in network @p network. The same arguments always give the
 * same profile. Layer 0 of image networks is treated as a signed
 * (image-like) input; later layers are post-ReLU non-negative.
 *
 * @param network      network name; seeds the per-layer variation
 * @param layer_index  0-based layer position
 * @param num_layers   total layers in the network
 * @param input_bits   activation precision in bits (signed domain)
 * @param weight_bits  weight precision in bits (signed domain)
 */
OperandProfile synthesizeOperands(const std::string& network,
                                  int layer_index, int num_layers,
                                  int input_bits, int weight_bits);

/** FNV-1a hash of a string, used to seed deterministic per-layer draws. */
std::uint64_t stableHash(const std::string& s);

} // namespace cimloop::dist

#endif // CIMLOOP_DIST_OPERANDS_HH
