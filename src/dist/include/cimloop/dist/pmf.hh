/**
 * @file
 * Probability mass functions over operand / code values.
 *
 * CiMLoop's statistical energy model (paper Sec. III-C/III-D) represents
 * every tensor by an independent per-layer PMF instead of the full tensor.
 * All data-value-dependent component models consume these PMFs.
 */
#ifndef CIMLOOP_DIST_PMF_HH
#define CIMLOOP_DIST_PMF_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace cimloop::dist {

/**
 * A discrete probability mass function over real-valued points. Points are
 * kept sorted and unique; probabilities sum to 1 after normalize().
 */
class Pmf
{
  public:
    /** One support point. */
    struct Point
    {
        double value = 0.0;
        double prob = 0.0;
    };

    Pmf() = default;

    /** Point mass at @p v. */
    static Pmf delta(double v);

    /** Uniform over the integers lo..hi inclusive. */
    static Pmf uniformInt(std::int64_t lo, std::int64_t hi);

    /**
     * Builds from (value, weight) pairs; merges duplicates, normalizes.
     * When every value lies on the integer lattice (the common case —
     * all encodings are quantized), duplicates merge through a dense
     * probability array indexed by lattice offset instead of a
     * sort-and-merge pass.
     */
    static Pmf fromPoints(std::vector<Point> pts);

    /** Empirical PMF of a sample vector. */
    static Pmf fromSamples(const std::vector<double>& samples);

    /**
     * Gaussian N(mean, sigma^2) quantized to the integers lo..hi (values
     * outside clamp to the ends). Used by the synthetic operand profiler.
     */
    static Pmf quantizedGaussian(double mean, double sigma, std::int64_t lo,
                                 std::int64_t hi);

    /**
     * Post-ReLU Gaussian: negative mass collapses to 0, positive mass is
     * quantized to 0..hi. Models activation tensors.
     */
    static Pmf reluGaussian(double mean, double sigma, std::int64_t hi);

    /** Number of support points. */
    std::size_t size() const { return points_.size(); }

    bool empty() const { return points_.empty(); }

    /** Support points in increasing value order. */
    const std::vector<Point>& points() const { return points_; }

    /** E[X]. */
    double mean() const;

    /** E[|X|]. */
    double meanAbs() const;

    /** E[X^2]. */
    double meanSquare() const;

    /** Var[X]. */
    double variance() const;

    /** E[f(X)]. */
    double expectation(const std::function<double(double)>& f) const;

    /** P(X == v) with exact match on the stored double. */
    double probOf(double v) const;

    /** Smallest / largest support value; fatal when empty. */
    double minValue() const;
    double maxValue() const;

    /** Applies f to every support value, merging collisions. */
    Pmf mapped(const std::function<double(double)>& f) const;

    /**
     * PMF of X + Y for independent X, Y (discrete convolution). When both
     * supports lie on the integer lattice, the product runs as contiguous
     * multiply-adds over a flat probability array (no sort/merge); other
     * supports fall back to the point-pair expansion. Support is capped
     * at @p max_points by merging nearest neighbors by value gap,
     * probability-weighted so the mean is preserved exactly.
     */
    Pmf convolveWith(const Pmf& other, std::size_t max_points = 4096) const;

    /** Mixture: this with weight w, other with weight (1-w). */
    Pmf mixedWith(const Pmf& other, double w) const;

    /**
     * Equal-weight mixture of @p parts in a single pass (one merge over
     * all components' points), replacing chains of incremental
     * mixedWith() calls; fatal when @p parts is empty.
     */
    static Pmf mixture(const std::vector<Pmf>& parts);

    /** Rescales probabilities to sum to 1; fatal when total is 0. */
    void normalize();

    /** Draws one sample using @p u uniform in [0, 1). */
    double sample(double u) const;

  private:
    std::vector<Point> points_;

    void sortMerge();
    void downsample(std::size_t max_points);
};

} // namespace cimloop::dist

#endif // CIMLOOP_DIST_PMF_HH
