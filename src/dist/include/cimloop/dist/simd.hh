/**
 * @file
 * SIMD kernels for the statistical hot path, with a strict bit-identity
 * contract.
 *
 * Dispatch policy (see docs/architecture.md, "Hot paths and kernels"):
 * the backend is resolved once per process — the CIMLOOP_SIMD env var
 * ("portable", "avx2", or "auto"; default auto) overrides runtime CPU
 * detection (`__builtin_cpu_supports("avx2")`). No global -mavx2 flag:
 * AVX2 bodies are compiled per-function with
 * `__attribute__((target("avx2")))`, so the rest of the binary's codegen
 * is unchanged and the same build runs on non-AVX2 hosts.
 *
 * Bit-identity contract — both backends produce byte-identical outputs:
 *  - Elementwise kernels (axpy, scaleProbs, divProbs, adjacentGaps) are
 *    lane-exact: each output double is produced by the same mul/add/div
 *    on the same inputs in both backends. FMA is never used (a fused
 *    multiply-add rounds once where mul+add rounds twice, which would
 *    break identity with the scalar path).
 *  - Reductions (sum, dot, dotPair) fix the association order in BOTH
 *    backends: four accumulators striped j, j+4, j+8, ... combined as
 *    (l0+l1)+(l2+l3), then a serial tail. The portable mirror uses the
 *    same four-accumulator structure, so the two backends agree bitwise
 *    with each other (though not with a naive serial single-accumulator
 *    loop — call sites that adopt these reductions accept a fixed,
 *    documented association change).
 */
#ifndef CIMLOOP_DIST_SIMD_HH
#define CIMLOOP_DIST_SIMD_HH

#include <cstddef>

#include "cimloop/dist/pmf.hh"

namespace cimloop::dist::simd {

enum class Backend
{
    Portable,
    Avx2,
};

/** True when this build and CPU can run the AVX2 backend. */
bool avx2Supported();

/** The backend every kernel dispatches to (resolved once, cached). */
Backend activeBackend();

/** Forces a backend (tests and benches); fatal if unsupported here. */
void setBackend(Backend b);

/** Drops a forced backend and re-resolves from env + CPU detection. */
void resetBackend();

const char* backendName(Backend b);

/** dst[j] += scale * src[j] for j in [0, n). */
void axpy(double* dst, const double* src, double scale, std::size_t n);

/** pts[i].prob *= w (values untouched). */
void scaleProbs(Pmf::Point* pts, std::size_t n, double w);

/** pts[i].prob /= divisor (values untouched). */
void divProbs(Pmf::Point* pts, std::size_t n, double divisor);

/** gaps[i] = pts[i+1].value - pts[i].value for i in [0, n-1); n >= 1. */
void adjacentGaps(const Pmf::Point* pts, std::size_t n, double* gaps);

/** Sum of x[0..n) under the fixed blocked association. */
double sum(const double* x, std::size_t n);

/** Dot product of x and g under the fixed blocked association. */
double dot(const double* x, const double* g, std::size_t n);

/** s = dot(x, g), e = dot(x2, g) in one pass over g. */
void dotPair(const double* x, const double* x2, const double* g,
             std::size_t n, double& s, double& e);

} // namespace cimloop::dist::simd

#endif // CIMLOOP_DIST_SIMD_HH
