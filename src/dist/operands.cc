#include "cimloop/dist/operands.hh"

#include <cmath>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::dist {

std::uint64_t
stableHash(const std::string& s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h ? h : 1;
}

OperandProfile
synthesizeOperands(const std::string& network, int layer_index,
                   int num_layers, int input_bits, int weight_bits)
{
    CIM_ASSERT(layer_index >= 0 && layer_index < std::max(num_layers, 1),
               "layer index ", layer_index, " out of range for ",
               num_layers, " layers");
    CIM_ASSERT(input_bits >= 1 && input_bits <= 16,
               "input bits out of supported range: ", input_bits);
    CIM_ASSERT(weight_bits >= 1 && weight_bits <= 16,
               "weight bits out of supported range: ", weight_bits);

    // Deterministic per-layer parameter draws. Three draws decorrelate the
    // activation scale, weight scale, and sparsity across layers, mimicking
    // the layer-to-layer variation the paper's Fig. 4/6 rely on.
    Rng rng(stableHash(network) ^
            (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(
                                         layer_index + 1)));
    double u_act = rng.uniform();
    double u_wt = rng.uniform();
    double u_sp = rng.uniform();

    const std::int64_t in_half = std::int64_t{1} << (input_bits - 1);
    const std::int64_t wt_half = std::int64_t{1} << (weight_bits - 1);

    OperandProfile prof;

    // Binary operands (binarized networks): Bernoulli activations and
    // sign weights; the Gaussian machinery below would degenerate.
    if (input_bits == 1 || weight_bits == 1) {
        if (input_bits == 1) {
            double p_on = 0.35 + 0.30 * u_act;
            prof.inputs = Pmf::delta(0.0).mixedWith(Pmf::delta(1.0),
                                                    1.0 - p_on);
        } else if (layer_index == 0) {
            prof.inputs = Pmf::quantizedGaussian(
                0.0, 0.25 * static_cast<double>(in_half), -in_half,
                in_half - 1);
        } else {
            prof.inputs = Pmf::delta(0.0).mixedWith(
                Pmf::reluGaussian(0.0,
                                  (0.1 + 0.3 * u_act) *
                                      static_cast<double>(in_half),
                                  in_half - 1),
                0.25 + 0.40 * u_sp);
        }
        prof.inputSparsity = prof.inputs.probOf(0.0);
        if (weight_bits == 1) {
            // Two's-complement 1b: code 1 carries the -1 level (XNOR).
            double p_neg = 0.45 + 0.10 * u_wt;
            prof.weights = Pmf::delta(-1.0).mixedWith(Pmf::delta(0.0),
                                                      p_neg);
        } else {
            prof.weights = Pmf::quantizedGaussian(
                0.0, (0.05 + 0.18 * u_wt) * static_cast<double>(wt_half),
                -wt_half, wt_half - 1);
        }
        prof.outputs = (in_half > 1)
            ? Pmf::quantizedGaussian(0.0,
                                     0.25 * static_cast<double>(in_half),
                                     -in_half, in_half - 1)
            : Pmf::delta(0.0).mixedWith(Pmf::delta(-1.0), 0.5);
        return prof;
    }

    if (layer_index == 0) {
        // First layer: image-like, roughly symmetric around a small offset.
        double sigma = (0.18 + 0.12 * u_act) * static_cast<double>(in_half);
        double mean = 0.05 * static_cast<double>(in_half) * (u_sp - 0.5);
        prof.inputs = Pmf::quantizedGaussian(mean, sigma, -in_half,
                                             in_half - 1);
    } else {
        // Post-ReLU half-normal whose scale shrinks/grows with depth. Extra
        // mass at exactly zero models activation sparsity (30-70% typical).
        double depth = num_layers > 1
            ? static_cast<double>(layer_index) /
                  static_cast<double>(num_layers - 1)
            : 0.0;
        double sigma = (0.06 + 0.30 * u_act * (1.0 - 0.5 * depth)) *
                       static_cast<double>(in_half);
        Pmf relu = Pmf::reluGaussian(0.0, sigma, in_half - 1);
        double extra_zero = 0.25 + 0.40 * u_sp;
        prof.inputs = Pmf::delta(0.0).mixedWith(relu, extra_zero);
    }
    prof.inputSparsity = prof.inputs.probOf(0.0);

    // Weights: zero-mean Gaussian, layer-varying spread (trained nets have
    // narrow late layers and wider early ones; we just vary determinately).
    double wt_sigma = (0.05 + 0.18 * u_wt) * static_cast<double>(wt_half);
    prof.weights =
        Pmf::quantizedGaussian(0.0, wt_sigma, -wt_half, wt_half - 1);

    // Outputs: accumulation of many products widens the distribution; the
    // post-quantization output is roughly Gaussian at the input precision.
    double out_sigma =
        std::min(0.45, 0.10 + 2.5 * (prof.inputs.meanAbs() /
                                     static_cast<double>(in_half)) *
                            (prof.weights.meanAbs() /
                             static_cast<double>(wt_half))) *
        static_cast<double>(in_half);
    prof.outputs = Pmf::quantizedGaussian(0.0, std::max(out_sigma, 1.0),
                                          -in_half, in_half - 1);
    return prof;
}

} // namespace cimloop::dist
