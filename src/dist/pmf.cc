#include "cimloop/dist/pmf.hh"

#include <algorithm>
#include <cmath>

#include "cimloop/common/error.hh"

namespace cimloop::dist {

namespace {

/** Standard normal CDF. */
double
normCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace

Pmf
Pmf::delta(double v)
{
    Pmf p;
    p.points_.push_back({v, 1.0});
    return p;
}

Pmf
Pmf::uniformInt(std::int64_t lo, std::int64_t hi)
{
    CIM_ASSERT(hi >= lo, "uniformInt requires hi >= lo");
    Pmf p;
    double prob = 1.0 / static_cast<double>(hi - lo + 1);
    p.points_.reserve(hi - lo + 1);
    for (std::int64_t v = lo; v <= hi; ++v)
        p.points_.push_back({static_cast<double>(v), prob});
    return p;
}

Pmf
Pmf::fromPoints(std::vector<Point> pts)
{
    Pmf p;
    p.points_ = std::move(pts);
    p.sortMerge();
    p.normalize();
    return p;
}

Pmf
Pmf::fromSamples(const std::vector<double>& samples)
{
    CIM_ASSERT(!samples.empty(), "fromSamples requires samples");
    std::vector<Point> pts;
    pts.reserve(samples.size());
    double w = 1.0 / static_cast<double>(samples.size());
    for (double s : samples)
        pts.push_back({s, w});
    return fromPoints(std::move(pts));
}

Pmf
Pmf::quantizedGaussian(double mean, double sigma, std::int64_t lo,
                       std::int64_t hi)
{
    CIM_ASSERT(sigma > 0.0, "quantizedGaussian requires sigma > 0");
    CIM_ASSERT(hi >= lo, "quantizedGaussian requires hi >= lo");
    Pmf p;
    p.points_.reserve(hi - lo + 1);
    for (std::int64_t v = lo; v <= hi; ++v) {
        double a = (v == lo) ? -1e30 : (static_cast<double>(v) - 0.5);
        double b = (v == hi) ? 1e30 : (static_cast<double>(v) + 0.5);
        double prob =
            normCdf((b - mean) / sigma) - normCdf((a - mean) / sigma);
        if (prob > 0.0)
            p.points_.push_back({static_cast<double>(v), prob});
    }
    p.normalize();
    return p;
}

Pmf
Pmf::reluGaussian(double mean, double sigma, std::int64_t hi)
{
    CIM_ASSERT(sigma > 0.0, "reluGaussian requires sigma > 0");
    CIM_ASSERT(hi >= 0, "reluGaussian requires hi >= 0");
    Pmf p;
    p.points_.reserve(hi + 1);
    for (std::int64_t v = 0; v <= hi; ++v) {
        double a = (v == 0) ? -1e30 : (static_cast<double>(v) - 0.5);
        double b = (v == hi) ? 1e30 : (static_cast<double>(v) + 0.5);
        double prob =
            normCdf((b - mean) / sigma) - normCdf((a - mean) / sigma);
        if (prob > 0.0)
            p.points_.push_back({static_cast<double>(v), prob});
    }
    p.normalize();
    return p;
}

double
Pmf::mean() const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += pt.value * pt.prob;
    return m;
}

double
Pmf::meanAbs() const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += std::abs(pt.value) * pt.prob;
    return m;
}

double
Pmf::meanSquare() const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += pt.value * pt.value * pt.prob;
    return m;
}

double
Pmf::variance() const
{
    double m = mean();
    return meanSquare() - m * m;
}

double
Pmf::expectation(const std::function<double(double)>& f) const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += f(pt.value) * pt.prob;
    return m;
}

double
Pmf::probOf(double v) const
{
    for (const Point& pt : points_) {
        if (pt.value == v)
            return pt.prob;
    }
    return 0.0;
}

double
Pmf::minValue() const
{
    CIM_ASSERT(!points_.empty(), "minValue on empty PMF");
    return points_.front().value;
}

double
Pmf::maxValue() const
{
    CIM_ASSERT(!points_.empty(), "maxValue on empty PMF");
    return points_.back().value;
}

Pmf
Pmf::mapped(const std::function<double(double)>& f) const
{
    std::vector<Point> pts;
    pts.reserve(points_.size());
    for (const Point& pt : points_)
        pts.push_back({f(pt.value), pt.prob});
    return fromPoints(std::move(pts));
}

Pmf
Pmf::convolveWith(const Pmf& other, std::size_t max_points) const
{
    CIM_ASSERT(!points_.empty() && !other.points_.empty(),
               "convolveWith on empty PMF");
    std::vector<Point> pts;
    pts.reserve(points_.size() * other.points_.size());
    for (const Point& a : points_) {
        for (const Point& b : other.points_) {
            pts.push_back({a.value + b.value, a.prob * b.prob});
        }
    }
    Pmf out = fromPoints(std::move(pts));
    // Cap the support by merging adjacent points (probability-weighted) so
    // repeated accumulations stay bounded.
    while (out.points_.size() > max_points) {
        std::vector<Point> merged;
        merged.reserve(out.points_.size() / 2 + 1);
        for (std::size_t i = 0; i + 1 < out.points_.size(); i += 2) {
            const Point& a = out.points_[i];
            const Point& b = out.points_[i + 1];
            double p = a.prob + b.prob;
            double v = p > 0.0
                ? (a.value * a.prob + b.value * b.prob) / p
                : 0.5 * (a.value + b.value);
            merged.push_back({v, p});
        }
        if (out.points_.size() % 2 == 1)
            merged.push_back(out.points_.back());
        out.points_ = std::move(merged);
    }
    return out;
}

Pmf
Pmf::mixedWith(const Pmf& other, double w) const
{
    CIM_ASSERT(w >= 0.0 && w <= 1.0, "mixture weight must be in [0, 1]");
    std::vector<Point> pts;
    pts.reserve(points_.size() + other.points_.size());
    for (const Point& pt : points_)
        pts.push_back({pt.value, pt.prob * w});
    for (const Point& pt : other.points_)
        pts.push_back({pt.value, pt.prob * (1.0 - w)});
    return fromPoints(std::move(pts));
}

void
Pmf::normalize()
{
    double total = 0.0;
    for (const Point& pt : points_)
        total += pt.prob;
    if (total <= 0.0)
        CIM_FATAL("cannot normalize PMF with zero total probability");
    for (Point& pt : points_)
        pt.prob /= total;
}

double
Pmf::sample(double u) const
{
    CIM_ASSERT(!points_.empty(), "sample on empty PMF");
    double acc = 0.0;
    for (const Point& pt : points_) {
        acc += pt.prob;
        if (u < acc)
            return pt.value;
    }
    return points_.back().value;
}

void
Pmf::sortMerge()
{
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) {
                  return a.value < b.value;
              });
    std::vector<Point> merged;
    merged.reserve(points_.size());
    for (const Point& pt : points_) {
        if (!merged.empty() && merged.back().value == pt.value) {
            merged.back().prob += pt.prob;
        } else {
            merged.push_back(pt);
        }
    }
    points_ = std::move(merged);
}

} // namespace cimloop::dist
