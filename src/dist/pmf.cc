#include "cimloop/dist/pmf.hh"

#include <algorithm>
#include <cmath>

#include "cimloop/common/arena.hh"
#include "cimloop/common/error.hh"
#include "cimloop/dist/simd.hh"
#include "cimloop/obs/obs.hh"

namespace cimloop::dist {

namespace {

/** Standard normal CDF. */
double
normCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/** Hard cap on the dense-array span of the lattice fast path. */
constexpr std::int64_t kMaxLatticeSpan = std::int64_t{1} << 22;

/**
 * True when every value is an exact integer within a dense-array span,
 * i.e. the support lies on the integer lattice and flat probability
 * arrays indexed by lattice offset are affordable. Sets [lo, hi] to the
 * integer bounds. Works on unsorted points.
 */
bool
latticeBounds(const std::vector<Pmf::Point>& pts, std::int64_t& lo,
              std::int64_t& hi)
{
    if (pts.empty())
        return false;
    double min_v = pts.front().value;
    double max_v = pts.front().value;
    for (const Pmf::Point& pt : pts) {
        double v = pt.value;
        if (!(std::abs(v) <= 0x1p53) || v != std::floor(v))
            return false;
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
    }
    lo = static_cast<std::int64_t>(min_v);
    hi = static_cast<std::int64_t>(max_v);
    return hi - lo < kMaxLatticeSpan;
}

/** Density guard: a dense array is only worth it when the span is not
 *  wildly larger than the point count. */
bool
denseEnough(std::int64_t lo, std::int64_t hi, std::size_t n_points)
{
    return hi - lo + 1 <=
           std::max<std::int64_t>(64,
                                  8 * static_cast<std::int64_t>(n_points));
}

/**
 * latticeBounds over the union of all components' supports — exactly the
 * test fromPoints would apply to the concatenated point list, so the
 * single-pass mixture fast path triggers iff the old concat-then-
 * fromPoints route would have taken the lattice path.
 */
bool
mixtureLatticeBounds(const std::vector<Pmf>& parts, std::size_t total,
                     std::int64_t& lo, std::int64_t& hi)
{
    if (total == 0)
        return false;
    bool first = true;
    double min_v = 0.0;
    double max_v = 0.0;
    for (const Pmf& part : parts) {
        for (const Pmf::Point& pt : part.points()) {
            double v = pt.value;
            if (!(std::abs(v) <= 0x1p53) || v != std::floor(v))
                return false;
            if (first) {
                min_v = max_v = v;
                first = false;
            } else {
                min_v = std::min(min_v, v);
                max_v = std::max(max_v, v);
            }
        }
    }
    lo = static_cast<std::int64_t>(min_v);
    hi = static_cast<std::int64_t>(max_v);
    return hi - lo < kMaxLatticeSpan;
}

/**
 * Pins which instruction path a lattice kernel ran on: golden-metrics
 * tests assert this counter, so a host (or CIMLOOP_SIMD override) that
 * silently fell back to the portable kernels fails the golden diff
 * instead of passing with different code under test.
 */
void
countSimdLatticeOp()
{
    static obs::Counter& simd_ops = obs::counter("dist.simd_lattice_ops");
    if (simd::activeBackend() == simd::Backend::Avx2)
        simd_ops.add();
}

} // namespace

Pmf
Pmf::delta(double v)
{
    Pmf p;
    p.points_.push_back({v, 1.0});
    return p;
}

Pmf
Pmf::uniformInt(std::int64_t lo, std::int64_t hi)
{
    CIM_ASSERT(hi >= lo, "uniformInt requires hi >= lo");
    Pmf p;
    double prob = 1.0 / static_cast<double>(hi - lo + 1);
    p.points_.reserve(hi - lo + 1);
    for (std::int64_t v = lo; v <= hi; ++v)
        p.points_.push_back({static_cast<double>(v), prob});
    return p;
}

Pmf
Pmf::fromPoints(std::vector<Point> pts)
{
    static obs::Counter& lattice =
        obs::counter("dist.pmf.from_points.lattice");
    static obs::Counter& fallback =
        obs::counter("dist.pmf.from_points.fallback");
    Pmf p;
    std::int64_t lo = 0, hi = 0;
    if (latticeBounds(pts, lo, hi) && denseEnough(lo, hi, pts.size())) {
        lattice.add();
        // Integer-lattice fast path: merge duplicates through a dense
        // probability array (no sort; output is sorted by construction).
        // The array is per-call scratch, so it lives in the thread's
        // arena instead of hitting the global allocator.
        Arena& arena = scratchArena();
        ArenaScope scope(arena);
        const std::size_t span = static_cast<std::size_t>(hi - lo) + 1;
        double* acc = arena.alloc<double>(span);
        std::fill_n(acc, span, 0.0);
        for (const Point& pt : pts)
            acc[static_cast<std::int64_t>(pt.value) - lo] += pt.prob;
        p.points_.reserve(pts.size());
        for (std::size_t i = 0; i < span; ++i) {
            if (acc[i] != 0.0)
                p.points_.push_back(
                    {static_cast<double>(lo + static_cast<std::int64_t>(i)),
                     acc[i]});
        }
    } else {
        fallback.add();
        p.points_ = std::move(pts);
        p.sortMerge();
    }
    p.normalize();
    return p;
}

Pmf
Pmf::fromSamples(const std::vector<double>& samples)
{
    CIM_ASSERT(!samples.empty(), "fromSamples requires samples");
    std::vector<Point> pts;
    pts.reserve(samples.size());
    double w = 1.0 / static_cast<double>(samples.size());
    for (double s : samples)
        pts.push_back({s, w});
    return fromPoints(std::move(pts));
}

Pmf
Pmf::quantizedGaussian(double mean, double sigma, std::int64_t lo,
                       std::int64_t hi)
{
    CIM_ASSERT(sigma > 0.0, "quantizedGaussian requires sigma > 0");
    CIM_ASSERT(hi >= lo, "quantizedGaussian requires hi >= lo");
    Pmf p;
    p.points_.reserve(hi - lo + 1);
    for (std::int64_t v = lo; v <= hi; ++v) {
        double a = (v == lo) ? -1e30 : (static_cast<double>(v) - 0.5);
        double b = (v == hi) ? 1e30 : (static_cast<double>(v) + 0.5);
        double prob =
            normCdf((b - mean) / sigma) - normCdf((a - mean) / sigma);
        if (prob > 0.0)
            p.points_.push_back({static_cast<double>(v), prob});
    }
    p.normalize();
    return p;
}

Pmf
Pmf::reluGaussian(double mean, double sigma, std::int64_t hi)
{
    CIM_ASSERT(sigma > 0.0, "reluGaussian requires sigma > 0");
    CIM_ASSERT(hi >= 0, "reluGaussian requires hi >= 0");
    Pmf p;
    p.points_.reserve(hi + 1);
    for (std::int64_t v = 0; v <= hi; ++v) {
        double a = (v == 0) ? -1e30 : (static_cast<double>(v) - 0.5);
        double b = (v == hi) ? 1e30 : (static_cast<double>(v) + 0.5);
        double prob =
            normCdf((b - mean) / sigma) - normCdf((a - mean) / sigma);
        if (prob > 0.0)
            p.points_.push_back({static_cast<double>(v), prob});
    }
    p.normalize();
    return p;
}

double
Pmf::mean() const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += pt.value * pt.prob;
    return m;
}

double
Pmf::meanAbs() const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += std::abs(pt.value) * pt.prob;
    return m;
}

double
Pmf::meanSquare() const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += pt.value * pt.value * pt.prob;
    return m;
}

double
Pmf::variance() const
{
    double m = mean();
    return meanSquare() - m * m;
}

double
Pmf::expectation(const std::function<double(double)>& f) const
{
    double m = 0.0;
    for (const Point& pt : points_)
        m += f(pt.value) * pt.prob;
    return m;
}

double
Pmf::probOf(double v) const
{
    auto it = std::lower_bound(points_.begin(), points_.end(), v,
                               [](const Point& pt, double x) {
                                   return pt.value < x;
                               });
    return (it != points_.end() && it->value == v) ? it->prob : 0.0;
}

double
Pmf::minValue() const
{
    CIM_ASSERT(!points_.empty(), "minValue on empty PMF");
    return points_.front().value;
}

double
Pmf::maxValue() const
{
    CIM_ASSERT(!points_.empty(), "maxValue on empty PMF");
    return points_.back().value;
}

Pmf
Pmf::mapped(const std::function<double(double)>& f) const
{
    std::vector<Point> pts;
    pts.reserve(points_.size());
    for (const Point& pt : points_)
        pts.push_back({f(pt.value), pt.prob});
    return fromPoints(std::move(pts));
}

Pmf
Pmf::convolveWith(const Pmf& other, std::size_t max_points) const
{
    CIM_ASSERT(!points_.empty() && !other.points_.empty(),
               "convolveWith on empty PMF");
#ifndef NDEBUG
    const double exact_mean = mean() + other.mean();
#endif
    static obs::Counter& lattice = obs::counter("dist.pmf.convolve.lattice");
    static obs::Counter& fallback =
        obs::counter("dist.pmf.convolve.fallback");
    Pmf out;
    std::int64_t alo = 0, ahi = 0, blo = 0, bhi = 0;
    if (latticeBounds(points_, alo, ahi) &&
        latticeBounds(other.points_, blo, bhi) &&
        (ahi - alo) + (bhi - blo) < kMaxLatticeSpan &&
        denseEnough(blo, bhi, other.points_.size())) {
        lattice.add();
        countSimdLatticeOp();
        // Dense integer-lattice kernel: densify the second operand, then
        // each point of the first contributes one contiguous axpy over
        // the flat array — no point-pair list, no sort/merge. Both flat
        // arrays are arena scratch; the axpy runs on the SIMD backend
        // (elementwise mul+add, bit-identical to the scalar loop).
        const std::size_t bspan = static_cast<std::size_t>(bhi - blo) + 1;
        const std::size_t span =
            static_cast<std::size_t>((ahi - alo) + (bhi - blo)) + 1;
        Arena& arena = scratchArena();
        ArenaScope scope(arena);
        double* pb = arena.alloc<double>(bspan);
        std::fill_n(pb, bspan, 0.0);
        for (const Point& b : other.points_)
            pb[static_cast<std::int64_t>(b.value) - blo] += b.prob;
        double* acc = arena.alloc<double>(span);
        std::fill_n(acc, span, 0.0);
        for (const Point& a : points_) {
            simd::axpy(acc + (static_cast<std::int64_t>(a.value) - alo),
                       pb, a.prob, bspan);
        }
        const std::int64_t lo = alo + blo;
        out.points_.reserve(std::min(span, max_points * 2));
        for (std::size_t i = 0; i < span; ++i) {
            if (acc[i] != 0.0)
                out.points_.push_back(
                    {static_cast<double>(lo + static_cast<std::int64_t>(i)),
                     acc[i]});
        }
        out.normalize();
    } else {
        fallback.add();
        std::vector<Point> pts;
        pts.reserve(points_.size() * other.points_.size());
        for (const Point& a : points_) {
            for (const Point& b : other.points_) {
                pts.push_back({a.value + b.value, a.prob * b.prob});
            }
        }
        out = fromPoints(std::move(pts));
    }
    out.downsample(max_points);
#ifndef NDEBUG
    // Debug-build invariant: downsampling merges are probability-weighted,
    // so the mean of the capped result equals the exact convolution mean.
    CIM_ASSERT(std::abs(out.mean() - exact_mean) <=
                   1e-9 * (1.0 + std::abs(exact_mean)),
               "convolveWith downsampling shifted the mean");
#endif
    return out;
}

void
Pmf::downsample(std::size_t max_points)
{
    CIM_ASSERT(max_points >= 1, "downsample needs max_points >= 1");
    // Cap the support by merging nearest neighbors by value gap: each
    // round merges the non-overlapping adjacent pairs whose gap is at or
    // below the median gap, so tight clusters collapse before isolated
    // tail points are touched. Merges are probability-weighted, which
    // preserves the mean exactly.
    Arena& arena = scratchArena();
    while (points_.size() > max_points) {
        ArenaScope scope(arena);
        countSimdLatticeOp();
        const std::size_t n = points_.size();
        double* gaps = arena.alloc<double>(n - 1);
        simd::adjacentGaps(points_.data(), n, gaps);
        double* order = arena.alloc<double>(n - 1);
        std::copy(gaps, gaps + (n - 1), order);
        double* mid = order + (n - 1) / 2;
        std::nth_element(order, mid, order + (n - 1));
        const double threshold = *mid;

        std::vector<Point> merged;
        merged.reserve(n / 2 + 1);
        std::size_t i = 0;
        while (i < n) {
            if (i + 1 < n && gaps[i] <= threshold) {
                const Point& a = points_[i];
                const Point& b = points_[i + 1];
                double p = a.prob + b.prob;
                double v = p > 0.0
                    ? (a.value * a.prob + b.value * b.prob) / p
                    : 0.5 * (a.value + b.value);
                merged.push_back({v, p});
                i += 2;
            } else {
                merged.push_back(points_[i]);
                ++i;
            }
        }
        CIM_ASSERT(merged.size() < n, "downsample made no progress");
        points_ = std::move(merged);
    }
}

Pmf
Pmf::mixedWith(const Pmf& other, double w) const
{
    CIM_ASSERT(w >= 0.0 && w <= 1.0, "mixture weight must be in [0, 1]");
    std::vector<Point> pts;
    pts.reserve(points_.size() + other.points_.size());
    for (const Point& pt : points_)
        pts.push_back({pt.value, pt.prob * w});
    for (const Point& pt : other.points_)
        pts.push_back({pt.value, pt.prob * (1.0 - w)});
    return fromPoints(std::move(pts));
}

Pmf
Pmf::mixture(const std::vector<Pmf>& parts)
{
    CIM_ASSERT(!parts.empty(), "mixture needs at least one component");
    static obs::Counter& lattice = obs::counter("dist.pmf.mixture.lattice");
    static obs::Counter& fallback =
        obs::counter("dist.pmf.mixture.fallback");
    std::size_t total = 0;
    for (const Pmf& part : parts)
        total += part.points_.size();
    const double w = 1.0 / static_cast<double>(parts.size());

    std::int64_t lo = 0, hi = 0;
    if (mixtureLatticeBounds(parts, total, lo, hi) &&
        denseEnough(lo, hi, total)) {
        lattice.add();
        countSimdLatticeOp();
        // Single-pass dense kernel: accumulate every component straight
        // into one flat lattice array — no intermediate scaled-point
        // list. Each addend is the same pt.prob * w the concat route
        // produced, added in the same order, so the result is
        // byte-identical to the fallback's fromPoints.
        Pmf p;
        Arena& arena = scratchArena();
        ArenaScope scope(arena);
        const std::size_t span = static_cast<std::size_t>(hi - lo) + 1;
        double* acc = arena.alloc<double>(span);
        std::fill_n(acc, span, 0.0);
        for (const Pmf& part : parts) {
            for (const Point& pt : part.points_)
                acc[static_cast<std::int64_t>(pt.value) - lo] +=
                    pt.prob * w;
        }
        p.points_.reserve(std::min<std::size_t>(span, total));
        for (std::size_t i = 0; i < span; ++i) {
            if (acc[i] != 0.0)
                p.points_.push_back(
                    {static_cast<double>(lo + static_cast<std::int64_t>(i)),
                     acc[i]});
        }
        p.normalize();
        return p;
    }

    fallback.add();
    std::vector<Point> pts;
    pts.reserve(total);
    for (const Pmf& part : parts) {
        for (const Point& pt : part.points_)
            pts.push_back({pt.value, pt.prob * w});
    }
    return fromPoints(std::move(pts));
}

void
Pmf::normalize()
{
    double total = 0.0;
    for (const Point& pt : points_)
        total += pt.prob;
    if (total <= 0.0)
        CIM_FATAL("cannot normalize PMF with zero total probability");
    // The total stays a serial reduction (its order is part of the byte
    // contract); the division is elementwise and runs on the SIMD
    // backend, each prob divided by the same total either way.
    simd::divProbs(points_.data(), points_.size(), total);
}

double
Pmf::sample(double u) const
{
    CIM_ASSERT(!points_.empty(), "sample on empty PMF");
    double acc = 0.0;
    for (const Point& pt : points_) {
        acc += pt.prob;
        if (u < acc)
            return pt.value;
    }
    return points_.back().value;
}

void
Pmf::sortMerge()
{
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) {
                  return a.value < b.value;
              });
    std::vector<Point> merged;
    merged.reserve(points_.size());
    for (const Point& pt : points_) {
        if (!merged.empty() && merged.back().value == pt.value) {
            merged.back().prob += pt.prob;
        } else {
            merged.push_back(pt);
        }
    }
    points_ = std::move(merged);
}

} // namespace cimloop::dist
