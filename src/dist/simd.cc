#include "cimloop/dist/simd.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "cimloop/common/error.hh"
#include "cimloop/common/log.hh"
#include "cimloop/common/util.hh"

// This translation unit is compiled with -ffp-contract=off (see
// src/dist/CMakeLists.txt): the bit-identity contract in simd.hh forbids
// fusing any mul+add into an FMA, in the portable mirrors as much as in
// the intrinsic bodies.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CIMLOOP_SIMD_X86 1
#include <immintrin.h>
#else
#define CIMLOOP_SIMD_X86 0
#endif

namespace cimloop::dist::simd {

static_assert(sizeof(Pmf::Point) == 2 * sizeof(double),
              "Point kernels view the AoS array as a flat double array");

namespace {

// ---------------------------------------------------------------------
// Portable mirrors. Reductions use the same four-accumulator blocked
// association as the AVX2 bodies, so both backends agree bitwise.
// ---------------------------------------------------------------------

void
axpyPortable(double* dst, const double* src, double scale, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[j] += scale * src[j];
}

void
scaleProbsPortable(Pmf::Point* pts, std::size_t n, double w)
{
    for (std::size_t i = 0; i < n; ++i)
        pts[i].prob *= w;
}

void
divProbsPortable(Pmf::Point* pts, std::size_t n, double divisor)
{
    for (std::size_t i = 0; i < n; ++i)
        pts[i].prob /= divisor;
}

void
adjacentGapsPortable(const Pmf::Point* pts, std::size_t n, double* gaps)
{
    for (std::size_t i = 0; i + 1 < n; ++i)
        gaps[i] = pts[i + 1].value - pts[i].value;
}

double
sumPortable(const double* x, std::size_t n)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        a0 += x[j];
        a1 += x[j + 1];
        a2 += x[j + 2];
        a3 += x[j + 3];
    }
    double r = (a0 + a1) + (a2 + a3);
    for (; j < n; ++j)
        r += x[j];
    return r;
}

double
dotPortable(const double* x, const double* g, std::size_t n)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        a0 += x[j] * g[j];
        a1 += x[j + 1] * g[j + 1];
        a2 += x[j + 2] * g[j + 2];
        a3 += x[j + 3] * g[j + 3];
    }
    double r = (a0 + a1) + (a2 + a3);
    for (; j < n; ++j)
        r += x[j] * g[j];
    return r;
}

void
dotPairPortable(const double* x, const double* x2, const double* g,
                std::size_t n, double& s, double& e)
{
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    double e0 = 0.0, e1 = 0.0, e2 = 0.0, e3 = 0.0;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        s0 += x[j] * g[j];
        s1 += x[j + 1] * g[j + 1];
        s2 += x[j + 2] * g[j + 2];
        s3 += x[j + 3] * g[j + 3];
        e0 += x2[j] * g[j];
        e1 += x2[j + 1] * g[j + 1];
        e2 += x2[j + 2] * g[j + 2];
        e3 += x2[j + 3] * g[j + 3];
    }
    double rs = (s0 + s1) + (s2 + s3);
    double re = (e0 + e1) + (e2 + e3);
    for (; j < n; ++j) {
        rs += x[j] * g[j];
        re += x2[j] * g[j];
    }
    s = rs;
    e = re;
}

#if CIMLOOP_SIMD_X86

// ---------------------------------------------------------------------
// AVX2 bodies. Per-function target attribute: the rest of the binary is
// compiled for the baseline ISA and these are only reached after the
// runtime cpuid check. Mul+add throughout — never FMA.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) void
axpyAvx2(double* dst, const double* src, double scale, std::size_t n)
{
    const __m256d vs = _mm256_set1_pd(scale);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        __m256d d = _mm256_loadu_pd(dst + j);
        __m256d a = _mm256_mul_pd(vs, _mm256_loadu_pd(src + j));
        _mm256_storeu_pd(dst + j, _mm256_add_pd(d, a));
    }
    for (; j < n; ++j)
        dst[j] += scale * src[j];
}

// Point arrays interleave {value, prob}; a {1.0, w} multiplier (and a
// {1.0, d} divisor) touches only the prob lanes, and x*1.0 / x/1.0 are
// bitwise exact, so the value lanes pass through unchanged.
__attribute__((target("avx2"))) void
scaleProbsAvx2(Pmf::Point* pts, std::size_t n, double w)
{
    auto* d = reinterpret_cast<double*>(pts);
    const __m256d vw = _mm256_set_pd(w, 1.0, w, 1.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m256d v = _mm256_loadu_pd(d + 2 * i);
        _mm256_storeu_pd(d + 2 * i, _mm256_mul_pd(v, vw));
    }
    for (; i < n; ++i)
        pts[i].prob *= w;
}

__attribute__((target("avx2"))) void
divProbsAvx2(Pmf::Point* pts, std::size_t n, double divisor)
{
    auto* d = reinterpret_cast<double*>(pts);
    const __m256d vd = _mm256_set_pd(divisor, 1.0, divisor, 1.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m256d v = _mm256_loadu_pd(d + 2 * i);
        _mm256_storeu_pd(d + 2 * i, _mm256_div_pd(v, vd));
    }
    for (; i < n; ++i)
        pts[i].prob /= divisor;
}

// Even-lane extraction of four {value, prob} pairs starting at @p p:
// unpacklo gives [a0, b0, a2, b2]; permute to [a0, a2, b0, b2].
__attribute__((target("avx2"))) __m256d
loadPointValues(const double* p)
{
    __m256d a = _mm256_loadu_pd(p);
    __m256d b = _mm256_loadu_pd(p + 4);
    return _mm256_permute4x64_pd(_mm256_unpacklo_pd(a, b),
                                 _MM_SHUFFLE(3, 1, 2, 0));
}

__attribute__((target("avx2"))) void
adjacentGapsAvx2(const Pmf::Point* pts, std::size_t n, double* gaps)
{
    const auto* d = reinterpret_cast<const double*>(pts);
    std::size_t i = 0;
    // Needs pts[i .. i+4] resident, i.e. i + 4 < n.
    for (; i + 5 <= n; i += 4) {
        __m256d v = loadPointValues(d + 2 * i);
        __m256d w = loadPointValues(d + 2 * i + 2);
        _mm256_storeu_pd(gaps + i, _mm256_sub_pd(w, v));
    }
    for (; i + 1 < n; ++i)
        gaps[i] = pts[i + 1].value - pts[i].value;
}

__attribute__((target("avx2"))) double
hsumBlocked(__m256d acc)
{
    __m128d lo = _mm256_castpd256_pd128(acc);
    __m128d hi = _mm256_extractf128_pd(acc, 1);
    double l0 = _mm_cvtsd_f64(lo);
    double l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    double l2 = _mm_cvtsd_f64(hi);
    double l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    return (l0 + l1) + (l2 + l3);
}

__attribute__((target("avx2"))) double
sumAvx2(const double* x, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + j));
    double r = hsumBlocked(acc);
    for (; j < n; ++j)
        r += x[j];
    return r;
}

__attribute__((target("avx2"))) double
dotAvx2(const double* x, const double* g, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        __m256d p = _mm256_mul_pd(_mm256_loadu_pd(x + j),
                                  _mm256_loadu_pd(g + j));
        acc = _mm256_add_pd(acc, p);
    }
    double r = hsumBlocked(acc);
    for (; j < n; ++j)
        r += x[j] * g[j];
    return r;
}

__attribute__((target("avx2"))) void
dotPairAvx2(const double* x, const double* x2, const double* g,
            std::size_t n, double& s, double& e)
{
    __m256d acc_s = _mm256_setzero_pd();
    __m256d acc_e = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        __m256d vg = _mm256_loadu_pd(g + j);
        acc_s = _mm256_add_pd(acc_s,
                              _mm256_mul_pd(_mm256_loadu_pd(x + j), vg));
        acc_e = _mm256_add_pd(acc_e,
                              _mm256_mul_pd(_mm256_loadu_pd(x2 + j), vg));
    }
    double rs = hsumBlocked(acc_s);
    double re = hsumBlocked(acc_e);
    for (; j < n; ++j) {
        rs += x[j] * g[j];
        re += x2[j] * g[j];
    }
    s = rs;
    e = re;
}

#endif // CIMLOOP_SIMD_X86

// ---------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------

std::atomic<int> g_backend{-1};

Backend
resolveBackend()
{
    if (const char* env = std::getenv("CIMLOOP_SIMD")) {
        std::string v = toLower(env);
        if (v == "portable" || v == "scalar")
            return Backend::Portable;
        if (v == "avx2") {
            if (avx2Supported())
                return Backend::Avx2;
            warn("CIMLOOP_SIMD=avx2 requested but AVX2 is unavailable "
                 "on this CPU/build; using portable kernels");
            return Backend::Portable;
        }
        if (!v.empty() && v != "auto")
            warn("unknown CIMLOOP_SIMD value '", v,
                 "' (expected portable|avx2|auto); auto-detecting");
    }
    return avx2Supported() ? Backend::Avx2 : Backend::Portable;
}

} // namespace

bool
avx2Supported()
{
#if CIMLOOP_SIMD_X86
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

Backend
activeBackend()
{
    int b = g_backend.load(std::memory_order_relaxed);
    if (b < 0) {
        b = static_cast<int>(resolveBackend());
        g_backend.store(b, std::memory_order_relaxed);
    }
    return static_cast<Backend>(b);
}

void
setBackend(Backend b)
{
    if (b == Backend::Avx2 && !avx2Supported())
        CIM_FATAL("cannot force the AVX2 SIMD backend: unsupported on "
                  "this CPU/build");
    g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

void
resetBackend()
{
    g_backend.store(-1, std::memory_order_relaxed);
}

const char*
backendName(Backend b)
{
    return b == Backend::Avx2 ? "avx2" : "portable";
}

void
axpy(double* dst, const double* src, double scale, std::size_t n)
{
#if CIMLOOP_SIMD_X86
    if (activeBackend() == Backend::Avx2) {
        axpyAvx2(dst, src, scale, n);
        return;
    }
#endif
    axpyPortable(dst, src, scale, n);
}

void
scaleProbs(Pmf::Point* pts, std::size_t n, double w)
{
#if CIMLOOP_SIMD_X86
    if (activeBackend() == Backend::Avx2) {
        scaleProbsAvx2(pts, n, w);
        return;
    }
#endif
    scaleProbsPortable(pts, n, w);
}

void
divProbs(Pmf::Point* pts, std::size_t n, double divisor)
{
#if CIMLOOP_SIMD_X86
    if (activeBackend() == Backend::Avx2) {
        divProbsAvx2(pts, n, divisor);
        return;
    }
#endif
    divProbsPortable(pts, n, divisor);
}

void
adjacentGaps(const Pmf::Point* pts, std::size_t n, double* gaps)
{
#if CIMLOOP_SIMD_X86
    if (activeBackend() == Backend::Avx2) {
        adjacentGapsAvx2(pts, n, gaps);
        return;
    }
#endif
    adjacentGapsPortable(pts, n, gaps);
}

double
sum(const double* x, std::size_t n)
{
#if CIMLOOP_SIMD_X86
    if (activeBackend() == Backend::Avx2)
        return sumAvx2(x, n);
#endif
    return sumPortable(x, n);
}

double
dot(const double* x, const double* g, std::size_t n)
{
#if CIMLOOP_SIMD_X86
    if (activeBackend() == Backend::Avx2)
        return dotAvx2(x, g, n);
#endif
    return dotPortable(x, g, n);
}

void
dotPair(const double* x, const double* x2, const double* g, std::size_t n,
        double& s, double& e)
{
#if CIMLOOP_SIMD_X86
    if (activeBackend() == Backend::Avx2) {
        dotPairAvx2(x, x2, g, n, s, e);
        return;
    }
#endif
    dotPairPortable(x, x2, g, n, s, e);
}

} // namespace cimloop::dist::simd
