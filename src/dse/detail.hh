/**
 * @file
 * Rendering helpers shared by the sweep exporters (report.cc) and the
 * on-disk journal (journal.cc). Internal to src/dse — not installed.
 */
#ifndef CIMLOOP_DSE_DETAIL_HH
#define CIMLOOP_DSE_DETAIL_HH

#include <string>

namespace cimloop::dse::detail {

/** Fixed-notation-free numeric rendering shared by CSV/JSON/table. */
std::string fmtNum(double v);

/** Shortest round-trip rendering (%.17g) — the journal stores metrics
 *  with this so a resumed run reproduces them bit-exactly. */
std::string fmtFull(double v);

/** Escapes a CSV field (quotes it when it holds , " CR or LF). */
std::string csvField(const std::string& s);

/** Escapes a JSON string payload. */
std::string jsonEscape(const std::string& s);

/** Reverses jsonEscape for the journal loader. Tolerant: a malformed
 *  escape passes through verbatim (the loader treats garbled lines as
 *  an uncommitted tail anyway). */
std::string jsonUnescape(const std::string& s);

} // namespace cimloop::dse::detail

#endif // CIMLOOP_DSE_DETAIL_HH
