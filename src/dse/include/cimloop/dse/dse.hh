/**
 * @file
 * Declarative design-space exploration (the paper's motivating use case,
 * Sec. II-B; every sweep figure — 2a/2b, 7-16 — is an instance).
 *
 * A SweepSpec names axes over the macro knobs (rows/cols, DAC/ADC/cell
 * bits, voltage), the fault-model knobs, the network choice, and the
 * mapper budget; the executor materializes the Cartesian grid, shards it
 * over worker threads, evaluates every point through the keep-going
 * network evaluator (one unmappable design never kills the sweep), and
 * merges results in point-index order — so the sweep table, the CSV/JSON
 * artifacts, and every obs counter are byte-identical for any thread
 * count at a fixed seed.
 *
 * Because each point evaluates with the same seed a standalone
 * evaluateNetwork() call would use, a sweep reproduces the exact numbers
 * of the hand-rolled nested loops it replaces, and points that share an
 * (arch, layer) pair — e.g. the same design at two mapper budgets — reuse
 * the process-wide per-action cache instead of re-running precompute.
 */
#ifndef CIMLOOP_DSE_DSE_HH
#define CIMLOOP_DSE_DSE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/macros/macros.hh"

namespace cimloop::yaml {
class Node;
} // namespace cimloop::yaml

namespace cimloop::dse {

/** One axis value: a number for the numeric fields, a string for the
 *  `macro` / `network` fields. `text` is the rendered form used in point
 *  labels and the CSV/JSON exporters. */
struct AxisValue
{
    double num = 0.0;
    std::string text;
    bool isString = false;
};

/** One sweep axis: a field name plus the values it takes. */
struct Axis
{
    std::string field;
    std::vector<AxisValue> values;
};

/** Per-point validity bound on a numeric field (a declarative
 *  predicate): points whose materialized field value falls outside
 *  [min, max] are skipped, not failed. */
struct Constraint
{
    std::string field;
    bool hasMin = false;
    bool hasMax = false;
    double min = 0.0;
    double max = 0.0;
};

struct SweepPoint;

/**
 * A declarative sweep: base design + axes + constraints + objectives.
 *
 * YAML form (either bare or under a top-level `sweep:` key):
 *
 *   sweep:
 *     name: codesign-grid
 *     macro: base                 # base | A | B | C | D | digital
 *     network: resnet18           # exactly one of network / workload
 *     # workload: net.yaml
 *     mappings: 100               # mapper budget per layer
 *     seed: 1
 *     objective: energy           # energy | edp | delay
 *     scaled_adc: true            # adc_bits tracks the array size
 *     pareto: [energy_per_mac, latency]
 *     axes:
 *       - field: array            # sets rows and cols together
 *         values: [64, 128, 256]  # explicit list...
 *       - field: dac_bits
 *         range: {from: 1, to: 8, mult: 2}   # ...or a grid range
 *     constraints:
 *       - {field: adc_bits, max: 14}
 *     faults:                     # base fault model (axes override)
 *       conductance_sigma: 0.1
 *
 * Axis fields: rows, cols, array, dac_bits, adc_bits, cell_bits,
 * input_bits, weight_bits, voltage, tech_nm, buffer_kb, mappings,
 * fault_stuck_rate, stuck_off_rate, stuck_on_rate, fault_sigma,
 * adc_offset, adc_noise_sigma, fault_seed, and the string-valued
 * macro / network.
 */
struct SweepSpec
{
    std::string name = "sweep";
    std::string macro = "base";
    std::string network;      //!< bundled network name
    std::string workloadPath; //!< or a workload YAML file

    int mappings = 100;      //!< mapper budget per layer
    std::uint64_t seed = 1;  //!< search seed, identical for every point
    engine::Objective objective = engine::Objective::Energy;

    /**
     * When set, each point's adc_bits is derived after the axes apply:
     * scaledAdcBits(rows, scaledAdcAnchor) + max(0, dac_bits - 3) — the
     * RAELLA-style truncation rule the co-design sweeps (Fig. 2b) use,
     * so ADC resolution tracks the array instead of being its own axis.
     */
    bool scaledAdc = false;
    int scaledAdcAnchor = 5;

    /** Base fault model; fault axes override individual fields. */
    faults::FaultModel faults;

    std::vector<Axis> axes;
    std::vector<Constraint> constraints;

    /** Pareto objectives, all minimized: energy, energy_per_mac,
     *  latency, area, accuracy (the accuracy-loss proxy). */
    std::vector<std::string> paretoObjectives = {"energy_per_mac",
                                                 "latency"};

    /** Optional programmatic per-point predicate (C++ API only; runs
     *  after the declarative constraints). Return false to skip. */
    std::function<bool(const SweepPoint&)> validity;

    /** Appends a numeric axis. */
    void addAxis(const std::string& field, std::vector<double> values);

    /** Appends a string axis (macro / network). */
    void addAxis(const std::string& field,
                 std::vector<std::string> values);

    /** Number of grid points (product of axis sizes; 1 when no axes). */
    std::size_t pointCount() const;

    /**
     * Checks the grid: known axis fields, non-empty values, no
     * duplicate axes, well-formed constraints, a sane point count.
     * CIM_FATAL naming the offending spec key (sweep.axes[i].field,
     * sweep.constraints[j], ...) on failure.
     */
    void validateGrid() const;

    /** validateGrid() plus the evaluation half: exactly one of
     *  network / workload, mappings >= 1, known pareto objectives. */
    void validate() const;

    /** Parses a spec from YAML (bare mapping or `sweep:` document).
     *  Fatal on unknown keys, with the full sweep.* key path. */
    static SweepSpec fromYaml(const yaml::Node& node);

    /** Loads a spec from a YAML file; fatal when unreadable. */
    static SweepSpec fromFile(const std::string& path);
};

/** One materialized grid point: the resolved design + evaluation knobs. */
struct SweepPoint
{
    std::size_t index = 0;             //!< flat grid index
    std::vector<std::size_t> coords;   //!< per-axis value index
    std::vector<std::string> axisText; //!< per-axis rendered value

    macros::MacroParams params;
    faults::FaultModel faults;
    std::string macroName;
    std::string networkName;
    std::string workloadPath;
    int mappings = 100;
    std::uint64_t seed = 1;
    engine::Objective objective = engine::Objective::Energy;

    /** "array=64, dac_bits=2" — the axis values, for labels and error
     *  text (every per-point diagnostic carries this). */
    std::string label(const SweepSpec& spec) const;

    /** Value of a numeric axis/constraint field on this point; fatal on
     *  unknown field names. */
    double fieldValue(const std::string& field) const;
};

/**
 * Materializes grid point @p index of @p spec: axis values apply in
 * declaration order (string axes resolve the macro defaults first), the
 * last axis varying fastest — the same odometer order a hand-written
 * nested loop enumerates. Deterministic: depends only on (spec, index).
 */
SweepPoint materializePoint(const SweepSpec& spec, std::size_t index);

/** Checks a point against the declarative constraints and the
 *  programmatic validity predicate. On skip, @p reason names the
 *  violated constraint and the offending value. */
bool pointIsValid(const SweepSpec& spec, const SweepPoint& point,
                  std::string* reason = nullptr);

/**
 * Heuristic accuracy-loss proxy for Pareto trade-offs, in
 * "bits-of-precision-equivalent" units (lower is better):
 *
 *   clipped column-sum bits: max(0, log2(rows) + dac + cell - 2 - adc)
 *   + 8 * (stuck_off_rate + stuck_on_rate)
 *   + conductance_sigma + 4 * adc_noise_sigma + 2 * |adc_offset|
 *
 * It is NOT a simulated accuracy — it ranks designs by how much analog
 * information they discard (ADC truncation) and how severe the injected
 * non-idealities are, which is what the co-design loop trades against
 * energy. Use the value-level refsim for calibrated accuracy numbers.
 */
double accuracyLossProxy(const macros::MacroParams& params,
                         const faults::FaultModel& faults);

/** Point outcome. */
enum class PointStatus { Ok, Skipped, Failed };

/** Human-readable status ("ok" | "skipped" | "failed"). */
const char* pointStatusName(PointStatus s);

/** One evaluated (or skipped/failed) grid point. */
struct PointResult
{
    SweepPoint point;
    PointStatus status = PointStatus::Skipped;

    /** Skip reason, or "kind: message" failure text (the CLI prefixes
     *  it with the point label). */
    std::string statusDetail;

    /** Per-layer keep-going diagnostics behind a Failed status. */
    std::vector<engine::LayerDiagnostic> layerDiagnostics;

    /** @name Metrics (valid when status == Ok) @{ */
    double energyPj = 0.0;
    double energyPerMacPj = 0.0;
    double latencyNs = 0.0;
    double areaUm2 = 0.0;
    double macs = 0.0;
    double topsPerWatt = 0.0;
    double accuracyLoss = 0.0;
    /** @} */

    bool onFrontier = false; //!< nondominated under spec.paretoObjectives
};

/** Executor options. */
struct SweepOptions
{
    /**
     * Worker threads: points fan out first; when the grid has fewer
     * points than threads the leftover threads split each point's
     * per-layer/mapping work, exactly like evaluateNetworkParallel.
     * Results are bit-identical for any value.
     */
    int threads = 1;
};

/** A complete sweep run. */
struct SweepResult
{
    std::string name;
    std::vector<std::string> axisFields;    //!< axis order, for exporters
    std::vector<std::string> paretoObjectives;

    std::vector<PointResult> points; //!< in grid (point-index) order

    std::size_t evaluated = 0; //!< status == Ok
    std::size_t failed = 0;
    std::size_t skipped = 0;

    /** Indices of the Pareto-nondominated Ok points, ascending. */
    std::vector<std::size_t> frontier;

    /** Index of the best Ok point under the first Pareto objective
     *  (ties keep the lowest index); npos when nothing evaluated. */
    std::size_t bestIndex = static_cast<std::size_t>(-1);

    /** Per-action cache traffic measured across this sweep. Points are
     *  the only cachedPrecompute callers here and no single network
     *  evaluation repeats an (arch, layer) key, so every hit is a
     *  cross-point reuse. Deterministic at fixed seed (single-flight
     *  cache: misses == unique keys). */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
};

/**
 * Runs the sweep: validates the spec, enumerates the grid, evaluates
 * every point with keep-going degradation (a failed point is recorded
 * as a per-point diagnostic carrying its axis values), and extracts the
 * Pareto frontier. Obs counters: dse.points_total / evaluated / failed
 * / skipped / pareto, all bumped post-merge so they are identical for
 * any thread count.
 */
SweepResult runSweep(const SweepSpec& spec, const SweepOptions& opts = {});

/**
 * Grid runner without the engine: materializes every point, checks
 * constraints, and calls @p fn for each valid one on up to @p threads
 * workers (keep-going: one throwing point never aborts the rest).
 * Returns per-point status/diagnostics in grid order. Benches that
 * compute their own per-point metrics (e.g. the refsim fault sweep)
 * use this instead of hand-rolled nested loops; @p fn must write any
 * output it produces into caller-owned slots indexed by point.index.
 */
std::vector<PointResult>
forEachPoint(const SweepSpec& spec, int threads,
             const std::function<void(const SweepPoint&)>& fn);

/**
 * Indices of the nondominated rows of @p objectives (all dimensions
 * minimized), ascending. A row is dominated when another row is <= in
 * every dimension and < in at least one; equal rows are both kept.
 */
std::vector<std::size_t>
paretoIndices(const std::vector<std::vector<double>>& objectives);

/** Per-point CSV: point, axis columns, status, metrics, pareto flag,
 *  and a quoted detail column for skipped/failed points. */
std::string toCsv(const SweepResult& result);

/** JSON artifact: axes, per-point records, frontier, summary. */
std::string toJson(const SweepResult& result);

/** Human-readable sweep report: point table, failures with axis-value
 *  labels, the Pareto frontier, the best point, and the cross-point
 *  cache economy. Byte-identical for any thread count. */
std::string formatTable(const SweepResult& result);

} // namespace cimloop::dse

#endif // CIMLOOP_DSE_DSE_HH
