/**
 * @file
 * Declarative design-space exploration (the paper's motivating use case,
 * Sec. II-B; every sweep figure — 2a/2b, 7-16 — is an instance).
 *
 * A SweepSpec names axes over the macro knobs (rows/cols, DAC/ADC/cell
 * bits, voltage), the fault-model knobs, the network choice, and the
 * mapper budget; the executor materializes the Cartesian grid, shards it
 * over worker threads, evaluates every point through the keep-going
 * network evaluator (one unmappable design never kills the sweep), and
 * merges results in point-index order — so the sweep table, the CSV/JSON
 * artifacts, and every obs counter are byte-identical for any thread
 * count at a fixed seed.
 *
 * Because each point evaluates with the same seed a standalone
 * evaluateNetwork() call would use, a sweep reproduces the exact numbers
 * of the hand-rolled nested loops it replaces, and points that share an
 * (arch, layer) pair — e.g. the same design at two mapper budgets — reuse
 * the process-wide per-action cache instead of re-running precompute.
 */
#ifndef CIMLOOP_DSE_DSE_HH
#define CIMLOOP_DSE_DSE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/macros/macros.hh"

namespace cimloop::yaml {
class Node;
} // namespace cimloop::yaml

namespace cimloop::dse {

/** One axis value: a number for the numeric fields, a string for the
 *  `macro` / `network` fields. `text` is the rendered form used in point
 *  labels and the CSV/JSON exporters. */
struct AxisValue
{
    double num = 0.0;
    std::string text;
    bool isString = false;
};

/** One sweep axis: a field name plus the values it takes. */
struct Axis
{
    std::string field;
    std::vector<AxisValue> values;
};

/** Per-point validity bound on a numeric field (a declarative
 *  predicate): points whose materialized field value falls outside
 *  [min, max] are skipped, not failed. */
struct Constraint
{
    std::string field;
    bool hasMin = false;
    bool hasMax = false;
    double min = 0.0;
    double max = 0.0;
};

struct SweepPoint;

/**
 * A declarative sweep: base design + axes + constraints + objectives.
 *
 * YAML form (either bare or under a top-level `sweep:` key):
 *
 *   sweep:
 *     name: codesign-grid
 *     macro: base                 # base | A | B | C | D | digital
 *     network: resnet18           # exactly one of network / workload
 *     # workload: net.yaml
 *     mappings: 100               # mapper budget per layer
 *     seed: 1
 *     objective: energy           # energy | edp | delay
 *     scaled_adc: true            # adc_bits tracks the array size
 *     pareto: [energy_per_mac, latency]
 *     axes:
 *       - field: array            # sets rows and cols together
 *         values: [64, 128, 256]  # explicit list...
 *       - field: dac_bits
 *         range: {from: 1, to: 8, mult: 2}   # ...or a grid range
 *     constraints:
 *       - {field: adc_bits, max: 14}
 *     faults:                     # base fault model (axes override)
 *       conductance_sigma: 0.1
 *
 * Axis fields: rows, cols, array, dac_bits, adc_bits, cell_bits,
 * input_bits, weight_bits, voltage, tech_nm, buffer_kb, mappings,
 * fault_stuck_rate, stuck_off_rate, stuck_on_rate, fault_sigma,
 * adc_offset, adc_noise_sigma, fault_seed, and the string-valued
 * macro / network / layout.
 */
struct SweepSpec
{
    std::string name = "sweep";
    std::string macro = "base";
    std::string network;      //!< bundled network name
    std::string workloadPath; //!< or a workload YAML file

    int mappings = 100;      //!< mapper budget per layer
    std::uint64_t seed = 1;  //!< search seed, identical for every point
    engine::Objective objective = engine::Objective::Energy;

    /**
     * When set, each point's adc_bits is derived after the axes apply:
     * scaledAdcBits(rows, scaledAdcAnchor) + max(0, dac_bits - 3) — the
     * RAELLA-style truncation rule the co-design sweeps (Fig. 2b) use,
     * so ADC resolution tracks the array instead of being its own axis.
     */
    bool scaledAdc = false;
    int scaledAdcAnchor = 5;

    /** Base fault model; fault axes override individual fields. */
    faults::FaultModel faults;

    /**
     * Base physical layout, overridable by a string-valued `layout`
     * axis. Values: "none" (idealized buffers, the default), "search"
     * (co-search layouts with mappings per layer), a preset name
     * (layout::presetNames()), or a layout spec .yaml path. Layouts
     * change only the latency model, so points differing solely in
     * layout still share per-action tables.
     */
    std::string layout = "none";

    std::vector<Axis> axes;
    std::vector<Constraint> constraints;

    /** Pareto objectives, all minimized: energy, energy_per_mac,
     *  latency, area, accuracy (the accuracy-loss proxy). */
    std::vector<std::string> paretoObjectives = {"energy_per_mac",
                                                 "latency"};

    /** Optional programmatic per-point predicate (C++ API only; runs
     *  after the declarative constraints). Return false to skip. */
    std::function<bool(const SweepPoint&)> validity;

    /** Appends a numeric axis. */
    void addAxis(const std::string& field, std::vector<double> values);

    /** Appends a string axis (macro / network). */
    void addAxis(const std::string& field,
                 std::vector<std::string> values);

    /** Number of grid points (product of axis sizes; 1 when no axes). */
    std::size_t pointCount() const;

    /**
     * Checks the grid: known axis fields, non-empty values, no
     * duplicate axes, well-formed constraints, a sane point count.
     * CIM_FATAL naming the offending spec key (sweep.axes[i].field,
     * sweep.constraints[j], ...) on failure.
     */
    void validateGrid() const;

    /** validateGrid() plus the evaluation half: exactly one of
     *  network / workload, mappings >= 1, known pareto objectives. */
    void validate() const;

    /** Parses a spec from YAML (bare mapping or `sweep:` document).
     *  Fatal on unknown keys, with the full sweep.* key path. */
    static SweepSpec fromYaml(const yaml::Node& node);

    /** Loads a spec from a YAML file; fatal when unreadable. */
    static SweepSpec fromFile(const std::string& path);
};

/** One materialized grid point: the resolved design + evaluation knobs. */
struct SweepPoint
{
    std::size_t index = 0;             //!< flat grid index
    std::vector<std::size_t> coords;   //!< per-axis value index
    std::vector<std::string> axisText; //!< per-axis rendered value

    macros::MacroParams params;
    faults::FaultModel faults;
    std::string macroName;
    std::string networkName;
    std::string workloadPath;
    std::string layoutName = "none"; //!< layout axis value (see SweepSpec)
    int mappings = 100;
    std::uint64_t seed = 1;
    engine::Objective objective = engine::Objective::Energy;

    /** "array=64, dac_bits=2" — the axis values, for labels and error
     *  text (every per-point diagnostic carries this). */
    std::string label(const SweepSpec& spec) const;

    /** Value of a numeric axis/constraint field on this point; fatal on
     *  unknown field names. */
    double fieldValue(const std::string& field) const;
};

/**
 * Materializes grid point @p index of @p spec: axis values apply in
 * declaration order (string axes resolve the macro defaults first), the
 * last axis varying fastest — the same odometer order a hand-written
 * nested loop enumerates. Deterministic: depends only on (spec, index).
 */
SweepPoint materializePoint(const SweepSpec& spec, std::size_t index);

/**
 * The grid-identity half of materializePoint(): index, coords, and
 * axisText only, via pure odometer arithmetic that cannot throw. The
 * executor labels points whose full materialization failed (e.g. a bad
 * macro name on a `macro` axis) with a shell so exporters still print
 * the right index and axis columns instead of indexing an empty
 * axisText.
 */
SweepPoint pointShell(const SweepSpec& spec, std::size_t index);

/**
 * Content hash of the materialized spec (16 lowercase hex digits of an
 * FNV-1a 64 fingerprint): every field that affects what a grid index
 * evaluates to — name, base design, axes with full-precision values,
 * constraints, objectives, fault model, seed. The sweep journal keys
 * its manifest by this so a resume against a drifted spec fails fast
 * instead of merging incompatible results. The programmatic `validity`
 * predicate is not hashable and is NOT covered — callers who resume
 * programmatic sweeps must keep it stable themselves.
 */
std::string specFingerprint(const SweepSpec& spec);

/**
 * Keys of every distinct network the grid can reference
 * ("name:<network>" / "file:<path>"): one per `network`-axis value when
 * that axis exists (the network choice depends only on that coordinate),
 * else the single spec-level network/workload. Preload is O(#networks),
 * not O(#points).
 */
std::vector<std::string> sweepNetworkKeys(const SweepSpec& spec);

/** Checks a point against the declarative constraints and the
 *  programmatic validity predicate. On skip, @p reason names the
 *  violated constraint and the offending value. */
bool pointIsValid(const SweepSpec& spec, const SweepPoint& point,
                  std::string* reason = nullptr);

/**
 * Heuristic accuracy-loss proxy for Pareto trade-offs, in
 * "bits-of-precision-equivalent" units (lower is better):
 *
 *   clipped column-sum bits: max(0, log2(rows) + dac + cell - 2 - adc)
 *   + 8 * (stuck_off_rate + stuck_on_rate)
 *   + conductance_sigma + 4 * adc_noise_sigma + 2 * |adc_offset|
 *
 * It is NOT a simulated accuracy — it ranks designs by how much analog
 * information they discard (ADC truncation) and how severe the injected
 * non-idealities are, which is what the co-design loop trades against
 * energy. Use the value-level refsim for calibrated accuracy numbers.
 */
double accuracyLossProxy(const macros::MacroParams& params,
                         const faults::FaultModel& faults);

/** Point outcome. */
enum class PointStatus { Ok, Skipped, Failed };

/** Human-readable status ("ok" | "skipped" | "failed"). */
const char* pointStatusName(PointStatus s);

/** One evaluated (or skipped/failed) grid point. */
struct PointResult
{
    SweepPoint point;
    PointStatus status = PointStatus::Skipped;

    /** Skip reason, or "kind: message" failure text (the CLI prefixes
     *  it with the point label). */
    std::string statusDetail;

    /** Per-layer keep-going diagnostics behind a Failed status. */
    std::vector<engine::LayerDiagnostic> layerDiagnostics;

    /** @name Metrics (valid when status == Ok) @{ */
    double energyPj = 0.0;
    double energyPerMacPj = 0.0;
    double latencyNs = 0.0;
    double areaUm2 = 0.0;
    double macs = 0.0;
    double topsPerWatt = 0.0;
    double accuracyLoss = 0.0;
    /** @} */

    bool onFrontier = false; //!< nondominated under spec.paretoObjectives

    /** True when the engine actually ran for this point (Ok, or Failed
     *  after reaching evaluation — per-layer diagnostics or non-finite
     *  metrics). False for Skipped and for failures before the engine
     *  (bad macro name, invalid faults, failed materialization). The
     *  cache-economy accounting counts per-action lookups only for
     *  engine-touched points. */
    bool engineTouched = false;
};

/** True when @p pr carries a non-finite (NaN/inf) exported metric;
 *  returns the metric's CSV/JSON field name, else nullptr. Points that
 *  evaluate to non-finite objectives are demoted to Failed — NaN
 *  compares false against everything, so it would otherwise sit on the
 *  Pareto frontier unnoticed. */
const char* nonFiniteMetric(const PointResult& pr);

/** Executor options. */
struct SweepOptions
{
    /**
     * Worker threads: points fan out first; when a chunk has fewer
     * points than threads the leftover threads split each point's
     * per-layer/mapping work, exactly like evaluateNetworkParallel.
     * Results are bit-identical for any value.
     */
    int threads = 1;

    /** Points per execution chunk (0 = default 1024). Chunks run in
     *  grid order; all order-sensitive folding happens post-join per
     *  chunk, so the chunk size never changes result bytes — only the
     *  journal commit granularity. */
    std::size_t chunkSize = 0;

    /**
     * Journal / resume directory. When set, every completed chunk is
     * committed to <dir>/results.jsonl + <dir>/manifest.jsonl, and a
     * rerun of the same spec against the same directory skips the
     * journaled ranges, merging their recorded results back in grid
     * order — artifacts come out byte-identical to an uninterrupted
     * run. A fingerprint mismatch (different spec) is fatal.
     */
    std::string resumeDir;

    /** Stop cleanly after this many live (non-resumed) chunks; 0 = run
     *  to completion. Sets SweepResult::stoppedEarly. With a journal
     *  this is a controlled interruption — tests and CI use it to
     *  exercise kill-and-resume without killing processes. */
    std::size_t maxChunks = 0;

    /** Grids larger than this run memory-bounded: per-point results are
     *  folded into the frontier/summary (and journal) as chunks finish
     *  instead of being stored, so RAM stays O(frontier), not O(n). */
    std::size_t maxPointsInMemory = 262144;

    /**
     * Cooperative cancellation, polled only at the chunk boundary: the
     * chunk in flight when the token fires still completes and commits
     * (journaled sweeps journal only whole chunks), then the run stops
     * exactly as if SweepOptions::maxChunks had been hit, with
     * SweepResult::cancelled set. The token is deliberately NOT passed
     * into per-point evaluation — a point abandoned mid-chunk would
     * journal a "cancelled" failure permanently and break the resumed
     * run's byte-identity. Default-constructed tokens never fire.
     */
    CancelToken cancel;
};

/** A complete sweep run. */
struct SweepResult
{
    std::string name;
    std::vector<std::string> axisFields;    //!< axis order, for exporters
    std::vector<std::string> paretoObjectives;

    /**
     * Per-point results in grid (point-index) order. In memory-bounded
     * mode (pointsStored == false) this holds only the frontier points;
     * everything else was folded into the summary as chunks completed.
     */
    std::vector<PointResult> points;

    std::size_t totalPoints = 0; //!< grid size (== pointCount())
    bool pointsStored = true;    //!< false: points holds the frontier only

    /** Memory-bounded mode: the first few non-Ok points, kept so the
     *  report can still show representative diagnostics. */
    std::vector<PointResult> failureSamples;

    std::size_t evaluated = 0; //!< status == Ok
    std::size_t failed = 0;
    std::size_t skipped = 0;

    bool stoppedEarly = false;      //!< hit maxChunks or was cancelled
    bool cancelled = false;         //!< SweepOptions::cancel fired
    std::size_t chunksTotal = 0;    //!< ceil(totalPoints / chunkSize)
    std::size_t chunksExecuted = 0; //!< evaluated live this run
    std::size_t chunksResumed = 0;  //!< restored from the journal
    std::size_t resumedPoints = 0;  //!< points restored, not re-run

    /** Indices of the Pareto-nondominated Ok points, ascending. */
    std::vector<std::size_t> frontier;

    /** Index of the best Ok point under the first Pareto objective
     *  (ties keep the lowest index); npos when nothing evaluated. */
    std::size_t bestIndex = static_cast<std::size_t>(-1);

    /**
     * Per-action cache economy across this sweep: misses = unique
     * (design, network) fingerprints times their layer counts, hits =
     * the remaining lookups. Computed analytically from the point
     * stream (a pure function of which points reached the engine), not
     * measured live — a resumed run's process-local cache starts cold,
     * so a live delta could never match the uninterrupted run's bytes.
     * Matches the single-flight cache's own counters on any cold
     * uninterrupted run. Cross-point reuse only: no single network
     * evaluation repeats an (arch, layer) key.
     */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** The stored result for grid index @p index (binary search over
     *  the grid-ordered points), or nullptr when it is not in memory
     *  (memory-bounded mode, or a chunk past an early stop). */
    const PointResult* findPoint(std::size_t index) const;
};

/**
 * Runs the sweep: validates the spec, shards the grid into fixed-size
 * chunks executed in grid order, evaluates every point with keep-going
 * degradation (a failed point is recorded as a per-point diagnostic
 * carrying its axis values), and maintains the Pareto frontier
 * incrementally as chunks fold in. With SweepOptions::resumeDir,
 * completed chunks journal to disk and a rerun skips them, producing
 * byte-identical artifacts to an uninterrupted run. Obs counters:
 * dse.points_total / evaluated / failed / skipped / pareto,
 * dse.cache.hits / misses, dse.chunks_total / executed / resumed, and
 * dse.resume.points_skipped — all bumped post-merge so they are
 * identical for any thread count (the chunks_executed / chunks_resumed
 * / resume.points_skipped triple necessarily differs between an
 * uninterrupted and a resumed run; everything else matches).
 */
SweepResult runSweep(const SweepSpec& spec, const SweepOptions& opts = {});

/**
 * Grid runner without the engine: materializes every point, checks
 * constraints, and calls @p fn for each valid one on up to @p threads
 * workers (keep-going: one throwing point never aborts the rest).
 * Returns per-point status/diagnostics in grid order. Benches that
 * compute their own per-point metrics (e.g. the refsim fault sweep)
 * use this instead of hand-rolled nested loops; @p fn must write any
 * output it produces into caller-owned slots indexed by point.index.
 */
std::vector<PointResult>
forEachPoint(const SweepSpec& spec, int threads,
             const std::function<void(const SweepPoint&)>& fn);

/**
 * Incrementally maintained Pareto frontier (all dimensions minimized).
 * insert() is dominance-prune: a candidate dominated by a member is
 * rejected; members the candidate dominates are evicted. Equal rows are
 * both kept. The nondominated set is independent of insertion order, so
 * streaming chunks through this matches a batch pass over the full
 * grid. Cost per insert is O(frontier * dims) — for a million-point
 * sweep that replaces the old O(n²) end-of-run scan.
 */
class ParetoFront
{
  public:
    /** Outcome of one insert. */
    struct Insertion
    {
        bool added = false;
        std::vector<std::size_t> evicted; //!< indices pruned by this add
    };

    explicit ParetoFront(std::size_t dims) : dims_(dims) {}

    /** Offers (index, objectives) to the frontier. Fatal (panic) when
     *  the row's dimensionality differs from the front's. */
    Insertion insert(std::size_t index, const std::vector<double>& row);

    std::size_t size() const { return members_.size(); }

    /** Current member indices, ascending. */
    std::vector<std::size_t> indices() const;

  private:
    struct Member
    {
        std::size_t index;
        std::vector<double> row;
    };
    std::size_t dims_;
    std::vector<Member> members_;
};

/**
 * Indices of the nondominated rows of @p objectives (all dimensions
 * minimized), ascending. A row is dominated when another row is <= in
 * every dimension and < in at least one; equal rows are both kept.
 * Implemented by streaming the rows through a ParetoFront, O(n * f)
 * instead of the former O(n²) all-pairs scan.
 */
std::vector<std::size_t>
paretoIndices(const std::vector<std::vector<double>>& objectives);

/** Per-point CSV: point, axis columns, status, metrics, pareto flag,
 *  and a quoted detail column for skipped/failed points. */
std::string toCsv(const SweepResult& result);

/** JSON artifact: axes, per-point records, frontier, summary. */
std::string toJson(const SweepResult& result);

/** Human-readable sweep report: point table, failures with axis-value
 *  labels, the Pareto frontier, the best point, and the cross-point
 *  cache economy. Byte-identical for any thread count. */
std::string formatTable(const SweepResult& result);

} // namespace cimloop::dse

#endif // CIMLOOP_DSE_DSE_HH
