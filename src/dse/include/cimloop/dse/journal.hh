/**
 * @file
 * The on-disk sweep journal behind checkpoint/resume (--resume DIR).
 *
 * Layout (one directory per sweep):
 *
 *   manifest.jsonl   header line {"cimloop_sweep_journal": 1,
 *                    "fingerprint": "<specFingerprint>", "points": n,
 *                    "chunk_size": c, "name": "..."} followed by one
 *                    commit line {"chunk": k, "from": a, "to": b} per
 *                    completed chunk
 *   results.jsonl    one record per non-skipped point of every
 *                    committed chunk, in grid order
 *
 * Commit protocol: a chunk's result lines are written and fsync'd
 * BEFORE its manifest commit line, and the manifest is fsync'd after —
 * write-ahead ordering, so a kill (including kill -9 or power loss) at
 * any instant leaves at worst an uncommitted tail in results.jsonl.
 * The loader keeps only records inside committed ranges and silently
 * drops the rest (a re-executed chunk rewrites them; the last
 * occurrence of an index wins). Tests that churn many tiny journals
 * and don't need crash durability can set CIMLOOP_JOURNAL_NO_FSYNC=1
 * to skip the fsyncs (the writes still happen; only the durability
 * barrier is dropped).
 *
 * Skipped points are not journaled: validity is a pure function of
 * (spec, index) and is re-derived on load. A point that is valid yet
 * has no record inside a committed range means the journal and the
 * spec disagree — fatal, like a fingerprint mismatch.
 */
#ifndef CIMLOOP_DSE_JOURNAL_HH
#define CIMLOOP_DSE_JOURNAL_HH

#include <cstddef>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cimloop/dse/dse.hh"

namespace cimloop::dse {

/** Number of metric doubles a journal record carries (the PointResult
 *  metric block, in declaration order). */
constexpr std::size_t kJournalMetricCount = 7;

/**
 * Append-only POSIX-fd writer. The journal needs real fsync for its
 * commit protocol, and std::ofstream has no portable way to reach the
 * file descriptor — flush() only moves bytes into the OS page cache,
 * which a power loss or kill -9 can drop.
 */
class AppendFile
{
  public:
    AppendFile() = default;
    ~AppendFile();
    AppendFile(const AppendFile&) = delete;
    AppendFile& operator=(const AppendFile&) = delete;

    /** Opens @p path for appending (O_TRUNC when @p truncate). */
    void open(const std::string& path, bool truncate);

    bool isOpen() const { return fd_ >= 0; }

    /** Appends @p data whole; false on any short write or error. */
    bool write(const std::string& data);

    /** fsync(2); false on error. */
    bool sync();

  private:
    int fd_ = -1;
};

/** One journaled (non-skipped) point: everything the exporters read
 *  that cannot be re-derived from (spec, index). */
struct JournalRecord
{
    std::size_t index = 0;
    PointStatus status = PointStatus::Failed;
    bool engineTouched = false;
    std::string statusDetail;
    double metrics[kJournalMetricCount] = {0, 0, 0, 0, 0, 0, 0};
};

/**
 * Opens (or creates) the journal at @p dir for a sweep with the given
 * fingerprint / grid size / chunk size. An existing manifest whose
 * header disagrees on any of the three is fatal — resuming must never
 * merge results from a different spec or chunking.
 */
class SweepJournal
{
  public:
    SweepJournal(std::string dir, std::string fingerprint,
                 std::size_t points, std::size_t chunkSize,
                 const std::string& sweepName);

    /** True when chunk @p chunk was committed by a previous run. */
    bool chunkCompleted(std::size_t chunk) const
    {
        return completed_.count(chunk) != 0;
    }

    /** The loaded record for point @p index, or nullptr (skipped
     *  points have no record). Only committed chunks have records. */
    const JournalRecord* record(std::size_t index) const;

    /**
     * Commits chunk @p chunk covering grid range [from, to): writes
     * one record per non-skipped result and fsyncs the results file,
     * then appends the manifest commit line and fsyncs the manifest —
     * the commit line durably implies its records are durable.
     * CIMLOOP_JOURNAL_NO_FSYNC=1 skips both fsyncs.
     */
    void appendChunk(std::size_t chunk, std::size_t from, std::size_t to,
                     const std::vector<PointResult>& results);

    std::size_t completedChunks() const { return completed_.size(); }
    const std::string& dir() const { return dir_; }

  private:
    void load(const std::string& fingerprint, std::size_t points,
              std::size_t chunkSize, const std::string& sweepName);

    std::string dir_;
    std::size_t chunkSize_ = 0;
    bool fsync_ = true; //!< off via CIMLOOP_JOURNAL_NO_FSYNC=1
    std::set<std::size_t> completed_; //!< committed chunk ids
    std::map<std::size_t, JournalRecord> records_; //!< by point index
    AppendFile resultsOut_;
    AppendFile manifestOut_;
};

} // namespace cimloop::dse

#endif // CIMLOOP_DSE_JOURNAL_HH
