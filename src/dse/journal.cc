/**
 * @file
 * Sweep journal read/write (see journal.hh for the layout and commit
 * protocol). The record format is a fixed-field single-line JSON the
 * writer below is the only producer of, so the loader is a sequential
 * field scanner, not a general JSON parser; any line it cannot scan is
 * treated as an uncommitted tail and dropped.
 */
#include "cimloop/dse/journal.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "cimloop/common/error.hh"
#include "../detail.hh"

namespace cimloop::dse {

AppendFile::~AppendFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
AppendFile::open(const std::string& path, bool truncate)
{
    CIM_ASSERT(fd_ < 0, "AppendFile is single-open");
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
}

bool
AppendFile::write(const std::string& data)
{
    if (fd_ < 0)
        return false;
    std::size_t done = 0;
    while (done < data.size()) {
        const ssize_t n =
            ::write(fd_, data.data() + done, data.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool
AppendFile::sync()
{
    if (fd_ < 0)
        return false;
    int rc;
    do {
        rc = ::fsync(fd_);
    } while (rc != 0 && errno == EINTR);
    return rc == 0;
}

namespace {

constexpr int kJournalVersion = 1;

bool
journalFsyncEnabled()
{
    const char* env = std::getenv("CIMLOOP_JOURNAL_NO_FSYNC");
    return env == nullptr || std::strcmp(env, "1") != 0;
}

/** Sequential scanner over one journal line. */
struct LineScanner
{
    const std::string& s;
    std::size_t pos = 0;

    bool
    lit(const char* text)
    {
        const std::size_t len = std::string::traits_type::length(text);
        if (s.compare(pos, len, text) != 0)
            return false;
        pos += len;
        return true;
    }

    bool
    u64(std::size_t& out)
    {
        if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
            return false;
        char* end = nullptr;
        out = static_cast<std::size_t>(
            std::strtoull(s.c_str() + pos, &end, 10));
        pos = static_cast<std::size_t>(end - s.c_str());
        return true;
    }

    bool
    num(double& out)
    {
        char* end = nullptr;
        out = std::strtod(s.c_str() + pos, &end);
        if (end == s.c_str() + pos)
            return false;
        pos = static_cast<std::size_t>(end - s.c_str());
        return true;
    }

    /** Parses a quoted, jsonEscape()d string (escape-aware, so field
     *  markers inside the payload cannot confuse the scanner). */
    bool
    str(std::string& out)
    {
        if (!lit("\""))
            return false;
        std::string raw;
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '\\') {
                if (pos + 1 >= s.size())
                    return false;
                raw += c;
                raw += s[pos + 1];
                pos += 2;
                continue;
            }
            if (c == '"') {
                ++pos;
                out = detail::jsonUnescape(raw);
                return true;
            }
            raw += c;
            ++pos;
        }
        return false;
    }
};

std::string
recordLine(const PointResult& pr)
{
    std::ostringstream oss;
    oss << "{\"i\":" << pr.point.index << ",\"st\":\""
        << pointStatusName(pr.status)
        << "\",\"eng\":" << (pr.engineTouched ? 1 : 0) << ",\"d\":\""
        << detail::jsonEscape(pr.statusDetail) << "\",\"m\":[";
    const double m[kJournalMetricCount] = {
        pr.energyPj, pr.energyPerMacPj, pr.latencyNs, pr.areaUm2,
        pr.macs,     pr.topsPerWatt,    pr.accuracyLoss};
    for (std::size_t k = 0; k < kJournalMetricCount; ++k)
        oss << (k ? "," : "") << detail::fmtFull(m[k]);
    oss << "]}";
    return oss.str();
}

bool
parseRecordLine(const std::string& line, JournalRecord& rec)
{
    LineScanner sc{line};
    std::size_t eng = 0;
    std::string st;
    if (!sc.lit("{\"i\":") || !sc.u64(rec.index))
        return false;
    if (!sc.lit(",\"st\":") || !sc.str(st))
        return false;
    if (!sc.lit(",\"eng\":") || !sc.u64(eng))
        return false;
    if (!sc.lit(",\"d\":") || !sc.str(rec.statusDetail))
        return false;
    if (!sc.lit(",\"m\":["))
        return false;
    for (std::size_t k = 0; k < kJournalMetricCount; ++k) {
        if (k && !sc.lit(","))
            return false;
        if (!sc.num(rec.metrics[k]))
            return false;
    }
    if (!sc.lit("]}"))
        return false;
    rec.engineTouched = eng != 0;
    if (st == "ok")
        rec.status = PointStatus::Ok;
    else if (st == "failed")
        rec.status = PointStatus::Failed;
    else
        return false;
    return true;
}

std::string
headerLine(const std::string& fingerprint, std::size_t points,
           std::size_t chunkSize, const std::string& name)
{
    std::ostringstream oss;
    oss << "{\"cimloop_sweep_journal\":" << kJournalVersion
        << ",\"fingerprint\":\"" << detail::jsonEscape(fingerprint)
        << "\",\"points\":" << points << ",\"chunk_size\":" << chunkSize
        << ",\"name\":\"" << detail::jsonEscape(name) << "\"}";
    return oss.str();
}

} // namespace

SweepJournal::SweepJournal(std::string dir, std::string fingerprint,
                           std::size_t points, std::size_t chunkSize,
                           const std::string& sweepName)
    : dir_(std::move(dir)), chunkSize_(chunkSize),
      fsync_(journalFsyncEnabled())
{
    CIM_ASSERT(chunkSize_ > 0, "sweep journal chunk size must be > 0");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        CIM_FATAL("cannot create sweep journal directory '", dir_,
                  "': ", ec.message());
    }
    const std::string manifestPath = dir_ + "/manifest.jsonl";
    const std::string resultsPath = dir_ + "/results.jsonl";
    const bool existing = std::filesystem::exists(manifestPath);
    if (existing) {
        load(fingerprint, points, chunkSize, sweepName);
        resultsOut_.open(resultsPath, /*truncate=*/false);
        manifestOut_.open(manifestPath, /*truncate=*/false);
    } else {
        resultsOut_.open(resultsPath, /*truncate=*/true);
        manifestOut_.open(manifestPath, /*truncate=*/true);
        if (manifestOut_.isOpen()) {
            const bool ok =
                manifestOut_.write(headerLine(fingerprint, points,
                                              chunkSize, sweepName) +
                                   '\n') &&
                (!fsync_ || manifestOut_.sync());
            if (!ok) {
                CIM_FATAL("cannot write sweep journal header to '",
                          manifestPath, "'");
            }
        }
    }
    if (!resultsOut_.isOpen() || !manifestOut_.isOpen()) {
        CIM_FATAL("cannot open sweep journal files under '", dir_,
                  "'");
    }
}

void
SweepJournal::load(const std::string& fingerprint, std::size_t points,
                   std::size_t chunkSize, const std::string& sweepName)
{
    (void)sweepName; // the header's name is informational only
    const std::string manifestPath = dir_ + "/manifest.jsonl";
    std::ifstream manifest(manifestPath);
    if (!manifest) {
        CIM_FATAL("cannot read sweep journal manifest '", manifestPath,
                  "'");
    }
    std::string line;
    if (!std::getline(manifest, line)) {
        CIM_FATAL("'", manifestPath,
                  "' is empty — not a cimloop sweep journal");
    }
    {
        LineScanner sc{line};
        std::size_t version = 0, hdrPoints = 0, hdrChunk = 0;
        std::string hdrFp, hdrName;
        const bool ok = sc.lit("{\"cimloop_sweep_journal\":") &&
                        sc.u64(version) &&
                        sc.lit(",\"fingerprint\":") && sc.str(hdrFp) &&
                        sc.lit(",\"points\":") && sc.u64(hdrPoints) &&
                        sc.lit(",\"chunk_size\":") && sc.u64(hdrChunk) &&
                        sc.lit(",\"name\":") && sc.str(hdrName) &&
                        sc.lit("}");
        if (!ok) {
            CIM_FATAL("'", manifestPath,
                      "' does not start with a cimloop sweep journal "
                      "header");
        }
        if (version != static_cast<std::size_t>(kJournalVersion)) {
            CIM_FATAL("sweep journal '", dir_, "' has version ",
                      version, "; this build reads version ",
                      kJournalVersion);
        }
        if (hdrFp != fingerprint) {
            CIM_FATAL("sweep journal '", dir_,
                      "' was written for a different spec "
                      "(fingerprint ", hdrFp, ", current ", fingerprint,
                      "); use a fresh --resume directory or rerun the "
                      "original spec");
        }
        if (hdrPoints != points) {
            CIM_FATAL("sweep journal '", dir_, "' covers ", hdrPoints,
                      " points but the spec enumerates ", points);
        }
        if (hdrChunk != chunkSize) {
            CIM_FATAL("sweep journal '", dir_,
                      "' was written with --chunk-size ", hdrChunk,
                      "; resume with the same chunk size (got ",
                      chunkSize, ")");
        }
    }
    // Commit lines. A line the scanner rejects is an append that was
    // cut short by a kill; nothing after it can be committed either, so
    // stop there.
    while (std::getline(manifest, line)) {
        LineScanner sc{line};
        std::size_t chunk = 0, from = 0, to = 0;
        const bool ok = sc.lit("{\"chunk\":") && sc.u64(chunk) &&
                        sc.lit(",\"from\":") && sc.u64(from) &&
                        sc.lit(",\"to\":") && sc.u64(to) &&
                        sc.lit("}");
        if (!ok)
            break;
        const std::size_t expectFrom = chunk * chunkSize_;
        const std::size_t expectTo =
            std::min(points, expectFrom + chunkSize_);
        if (from != expectFrom || to != expectTo || to > points) {
            CIM_FATAL("sweep journal '", dir_, "' commit for chunk ",
                      chunk, " covers [", from, ", ", to,
                      ") but the grid expects [", expectFrom, ", ",
                      expectTo, ") — journal corrupt");
        }
        completed_.insert(chunk);
    }
    // Result records: keep the last occurrence of each index (a chunk
    // whose first attempt was killed mid-write gets re-executed and
    // re-journaled), then drop everything outside committed ranges.
    std::ifstream results(dir_ + "/results.jsonl");
    while (results && std::getline(results, line)) {
        JournalRecord rec;
        if (!parseRecordLine(line, rec))
            continue;
        if (rec.index >= points)
            continue;
        records_[rec.index] = std::move(rec);
    }
    for (auto it = records_.begin(); it != records_.end();) {
        if (completed_.count(it->first / chunkSize_) == 0)
            it = records_.erase(it);
        else
            ++it;
    }
}

const JournalRecord*
SweepJournal::record(std::size_t index) const
{
    auto it = records_.find(index);
    return it == records_.end() ? nullptr : &it->second;
}

void
SweepJournal::appendChunk(std::size_t chunk, std::size_t from,
                          std::size_t to,
                          const std::vector<PointResult>& results)
{
    CIM_ASSERT(results.size() == to - from,
               "journal chunk results must cover [from, to)");
    if (completed_.count(chunk))
        return;
    // Write-ahead ordering: the chunk's records reach stable storage
    // before the manifest commit line does, so a durable commit line
    // always implies durable records. One buffered write per file keeps
    // the syscall count at two writes + two fsyncs per chunk.
    std::string block;
    for (const PointResult& pr : results) {
        if (pr.status == PointStatus::Skipped)
            continue;
        block += recordLine(pr);
        block += '\n';
    }
    if (!resultsOut_.write(block) || (fsync_ && !resultsOut_.sync())) {
        CIM_FATAL("cannot append to sweep journal '", dir_,
                  "/results.jsonl'");
    }
    std::ostringstream commit;
    commit << "{\"chunk\":" << chunk << ",\"from\":" << from
           << ",\"to\":" << to << "}\n";
    if (!manifestOut_.write(commit.str()) ||
        (fsync_ && !manifestOut_.sync())) {
        CIM_FATAL("cannot append to sweep journal '", dir_,
                  "/manifest.jsonl'");
    }
    completed_.insert(chunk);
}

} // namespace cimloop::dse
