/**
 * @file
 * Sweep result exporters: CSV, JSON, and the human-readable report.
 *
 * All three render from the merged, grid-ordered SweepResult and print
 * no thread counts or wall-clock times, so their bytes are part of the
 * determinism contract (identical for any --threads at fixed seed, and
 * identical between an uninterrupted and an interrupted-then-resumed
 * run). In memory-bounded mode the per-point sections render from the
 * retained frontier (plus failure samples); the summary still covers
 * the whole grid.
 */
#include "cimloop/dse/dse.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "detail.hh"

namespace cimloop::dse {

namespace detail {

std::string
fmtNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
fmtFull(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
csvField(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        const char e = s[++i];
        switch (e) {
        case '"':
            out += '"';
            break;
        case '\\':
            out += '\\';
            break;
        case 'n':
            out += '\n';
            break;
        case 't':
            out += '\t';
            break;
        case 'u':
            if (i + 4 < s.size()) {
                const std::string hex = s.substr(i + 1, 4);
                out += static_cast<char>(
                    std::strtol(hex.c_str(), nullptr, 16));
                i += 4;
            }
            break;
        default:
            // Not something jsonEscape emits; keep it verbatim.
            out += '\\';
            out += e;
        }
    }
    return out;
}

} // namespace detail

namespace {

using detail::csvField;
using detail::fmtNum;
using detail::jsonEscape;

/**
 * Axis column @p a of a point, or "" when the point carries fewer axis
 * texts than the sweep has axes. The executor always fills the shell,
 * but hand-built PointResults (API users, old artifacts) may not —
 * exporters must pad, never index out of bounds.
 */
const std::string&
axisTextAt(const PointResult& pr, std::size_t a)
{
    static const std::string empty;
    return a < pr.point.axisText.size() ? pr.point.axisText[a] : empty;
}

/** "array=64, dac_bits=2" from the result's own axis metadata. */
std::string
joinLabel(const SweepResult& result, const PointResult& pr)
{
    if (result.axisFields.empty())
        return "defaults";
    std::string out;
    for (std::size_t a = 0; a < result.axisFields.size(); ++a) {
        if (a)
            out += ", ";
        out += result.axisFields[a];
        out += '=';
        out += axisTextAt(pr, a);
    }
    return out;
}

} // namespace

std::string
toCsv(const SweepResult& result)
{
    std::ostringstream oss;
    oss << "point";
    for (const std::string& field : result.axisFields)
        oss << ',' << field;
    oss << ",status,energy_pj,energy_per_mac_pj,latency_ns,area_um2,"
           "macs,tops_per_watt,accuracy_loss,pareto,detail\n";
    for (const PointResult& pr : result.points) {
        oss << pr.point.index;
        // One column per axis field, padded with empty cells when the
        // point has no axis text (never under-emit columns).
        for (std::size_t a = 0; a < result.axisFields.size(); ++a)
            oss << ',' << csvField(axisTextAt(pr, a));
        oss << ',' << pointStatusName(pr.status);
        if (pr.status == PointStatus::Ok) {
            oss << ',' << fmtNum(pr.energyPj) << ','
                << fmtNum(pr.energyPerMacPj) << ','
                << fmtNum(pr.latencyNs) << ',' << fmtNum(pr.areaUm2)
                << ',' << fmtNum(pr.macs) << ','
                << fmtNum(pr.topsPerWatt) << ','
                << fmtNum(pr.accuracyLoss) << ','
                << (pr.onFrontier ? 1 : 0) << ',';
        } else {
            oss << ",,,,,,,,0," << csvField(pr.statusDetail);
        }
        oss << '\n';
    }
    return oss.str();
}

std::string
toJson(const SweepResult& result)
{
    std::ostringstream oss;
    oss << "{\n  \"sweep\": \"" << jsonEscape(result.name) << "\",\n";
    oss << "  \"axes\": [";
    for (std::size_t i = 0; i < result.axisFields.size(); ++i)
        oss << (i ? ", " : "") << '"' << jsonEscape(result.axisFields[i])
            << '"';
    oss << "],\n  \"pareto_objectives\": [";
    for (std::size_t i = 0; i < result.paretoObjectives.size(); ++i)
        oss << (i ? ", " : "") << '"'
            << jsonEscape(result.paretoObjectives[i]) << '"';
    oss << "],\n";
    oss << "  \"summary\": {\"points\": " << result.totalPoints
        << ", \"evaluated\": " << result.evaluated
        << ", \"failed\": " << result.failed
        << ", \"skipped\": " << result.skipped << ", \"best\": "
        << (result.bestIndex == static_cast<std::size_t>(-1)
                ? -1
                : static_cast<long long>(result.bestIndex))
        << ", \"cache_hits\": " << result.cacheHits
        << ", \"cache_misses\": " << result.cacheMisses;
    if (!result.pointsStored)
        oss << ", \"points_elided\": true";
    oss << "},\n";
    oss << "  \"frontier\": [";
    for (std::size_t i = 0; i < result.frontier.size(); ++i)
        oss << (i ? ", " : "") << result.frontier[i];
    oss << "],\n  \"points\": [\n";
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const PointResult& pr = result.points[i];
        oss << "    {\"point\": " << pr.point.index << ", \"axes\": {";
        for (std::size_t a = 0; a < result.axisFields.size(); ++a) {
            oss << (a ? ", " : "") << '"'
                << jsonEscape(result.axisFields[a]) << "\": \""
                << jsonEscape(axisTextAt(pr, a)) << '"';
        }
        oss << "}, \"status\": \"" << pointStatusName(pr.status) << '"';
        if (pr.status == PointStatus::Ok) {
            oss << ", \"energy_pj\": " << fmtNum(pr.energyPj)
                << ", \"energy_per_mac_pj\": "
                << fmtNum(pr.energyPerMacPj)
                << ", \"latency_ns\": " << fmtNum(pr.latencyNs)
                << ", \"area_um2\": " << fmtNum(pr.areaUm2)
                << ", \"macs\": " << fmtNum(pr.macs)
                << ", \"tops_per_watt\": " << fmtNum(pr.topsPerWatt)
                << ", \"accuracy_loss\": " << fmtNum(pr.accuracyLoss)
                << ", \"pareto\": "
                << (pr.onFrontier ? "true" : "false");
        } else {
            oss << ", \"detail\": \"" << jsonEscape(pr.statusDetail)
                << '"';
        }
        oss << '}' << (i + 1 < result.points.size() ? "," : "") << '\n';
    }
    oss << "  ]\n}\n";
    return oss.str();
}

std::string
formatTable(const SweepResult& result)
{
    std::ostringstream oss;
    oss << "sweep '" << result.name << "': " << result.totalPoints
        << " points (" << result.evaluated << " ok, " << result.failed
        << " failed, " << result.skipped << " skipped)\n";
    if (result.stoppedEarly) {
        oss << "paused after " << result.chunksExecuted +
                                      result.chunksResumed
            << " of " << result.chunksTotal << " chunks; "
            << result.totalPoints - result.evaluated - result.failed -
                   result.skipped
            << " points not yet evaluated\n";
    }
    if (!result.pointsStored) {
        oss << "memory-bounded run: per-point results were folded as "
               "chunks completed; showing the "
            << result.points.size() << " frontier points\n";
    }
    oss << '\n';

    // Column widths from the data so the table stays aligned for any
    // axis naming.
    std::vector<std::size_t> axisWidth;
    for (std::size_t a = 0; a < result.axisFields.size(); ++a) {
        std::size_t w = result.axisFields[a].size();
        for (const PointResult& pr : result.points)
            w = std::max(w, axisTextAt(pr, a).size());
        for (const PointResult& pr : result.failureSamples)
            w = std::max(w, axisTextAt(pr, a).size());
        axisWidth.push_back(w);
    }

    oss << std::setw(5) << "point";
    for (std::size_t a = 0; a < result.axisFields.size(); ++a)
        oss << "  " << std::setw(static_cast<int>(axisWidth[a]))
            << result.axisFields[a];
    oss << "  " << std::setw(7) << "status" << "  " << std::setw(12)
        << "pJ/MAC" << "  " << std::setw(12) << "latency ns" << "  "
        << std::setw(10) << "TOPS/W" << "  " << std::setw(9)
        << "acc loss" << "  pareto\n";
    for (const PointResult& pr : result.points) {
        oss << std::setw(5) << pr.point.index;
        for (std::size_t a = 0; a < result.axisFields.size(); ++a)
            oss << "  " << std::setw(static_cast<int>(axisWidth[a]))
                << axisTextAt(pr, a);
        oss << "  " << std::setw(7) << pointStatusName(pr.status);
        if (pr.status == PointStatus::Ok) {
            oss << "  " << std::setw(12) << fmtNum(pr.energyPerMacPj)
                << "  " << std::setw(12) << fmtNum(pr.latencyNs) << "  "
                << std::setw(10) << fmtNum(pr.topsPerWatt) << "  "
                << std::setw(9) << fmtNum(pr.accuracyLoss) << "  "
                << (pr.onFrontier ? "*" : "");
        }
        oss << '\n';
    }

    // Diagnostics: every non-Ok stored point, or the retained samples
    // in memory-bounded mode.
    const std::vector<PointResult>& diagSource =
        result.pointsStored ? result.points : result.failureSamples;
    bool anyBad = false;
    for (const PointResult& pr : diagSource)
        anyBad = anyBad || pr.status != PointStatus::Ok;
    if (anyBad) {
        const std::size_t nonOk = result.failed + result.skipped;
        oss << "\ndiagnostics";
        if (!result.pointsStored && diagSource.size() < nonOk)
            oss << " (first " << diagSource.size() << " of " << nonOk
                << " non-ok points)";
        oss << ":\n";
        for (const PointResult& pr : diagSource) {
            if (pr.status == PointStatus::Ok)
                continue;
            oss << "  #" << pr.point.index << " ["
                << joinLabel(result, pr) << "] "
                << pointStatusName(pr.status) << ": " << pr.statusDetail
                << '\n';
        }
    }

    oss << "\npareto frontier (";
    for (std::size_t i = 0; i < result.paretoObjectives.size(); ++i)
        oss << (i ? ", " : "") << result.paretoObjectives[i];
    oss << "): " << result.frontier.size() << " of " << result.evaluated
        << " evaluated points";
    if (!result.frontier.empty()) {
        oss << ":";
        for (std::size_t idx : result.frontier)
            oss << " #" << idx;
    }
    oss << '\n';

    if (result.bestIndex != static_cast<std::size_t>(-1)) {
        const PointResult* best = result.findPoint(result.bestIndex);
        if (best) {
            oss << "best (" << result.paretoObjectives[0] << "): #"
                << best->point.index << " [" << joinLabel(result, *best)
                << "] " << fmtNum(best->energyPerMacPj) << " pJ/MAC, "
                << fmtNum(best->latencyNs) << " ns, "
                << fmtNum(best->topsPerWatt) << " TOPS/W\n";
        } else {
            // Memory-bounded and the best point fell off the frontier
            // (tied on the first objective, dominated elsewhere).
            oss << "best (" << result.paretoObjectives[0] << "): #"
                << result.bestIndex << '\n';
        }
    }
    oss << "per-action cache across points: " << result.cacheHits
        << " hits, " << result.cacheMisses << " misses\n";
    return oss.str();
}

} // namespace cimloop::dse
