/**
 * @file
 * Sweep specification: YAML parsing, validation, and grid-point
 * materialization. Everything here is deterministic — a point depends
 * only on (spec, index), never on threads or evaluation order.
 */
#include "cimloop/dse/dse.hh"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"
#include "cimloop/layout/layout.hh"
#include "cimloop/yaml/node.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::dse {

namespace {

constexpr const char* kNumericFields =
    "rows, cols, array, dac_bits, adc_bits, cell_bits, input_bits, "
    "weight_bits, voltage, tech_nm, buffer_kb, mappings, "
    "fault_stuck_rate, stuck_off_rate, stuck_on_rate, "
    "conductance_sigma, adc_offset, adc_noise_sigma, fault_seed";

constexpr const char* kStringFields = "macro, network, layout";

bool
isStringField(const std::string& field)
{
    return field == "macro" || field == "network" || field == "layout";
}

/** Fatal unless @p value is a valid layout axis value. */
void
checkLayoutValue(const std::string& value, const std::string& at)
{
    if (!layout::isLayoutValueName(value)) {
        CIM_FATAL("unknown layout value '", value, "' at ", at,
                  " (known: none, search, ", layout::presetNames(),
                  ", or a .yaml layout spec path)");
    }
}

bool
isNumericField(const std::string& field)
{
    return field == "rows" || field == "cols" || field == "array" ||
           field == "dac_bits" || field == "adc_bits" ||
           field == "cell_bits" || field == "input_bits" ||
           field == "weight_bits" || field == "voltage" ||
           field == "tech_nm" || field == "buffer_kb" ||
           field == "mappings" || field == "fault_stuck_rate" ||
           field == "stuck_off_rate" || field == "stuck_on_rate" ||
           field == "conductance_sigma" || field == "fault_sigma" ||
           field == "adc_offset" || field == "adc_noise_sigma" ||
           field == "fault_seed";
}

/** One rendering for axis values everywhere (labels, CSV, JSON), shared
 *  by the YAML and programmatic construction paths. */
std::string
renderNum(double v)
{
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::ostringstream oss;
        oss << static_cast<long long>(v);
        return oss.str();
    }
    std::ostringstream oss;
    oss << v;
    return oss.str();
}

/** Writes one numeric axis value onto a materialized point. */
void
applyNumericField(SweepPoint& point, const std::string& field, double v)
{
    macros::MacroParams& p = point.params;
    faults::FaultModel& f = point.faults;
    if (field == "rows") {
        p.rows = static_cast<std::int64_t>(v);
    } else if (field == "cols") {
        p.cols = static_cast<std::int64_t>(v);
    } else if (field == "array") {
        p.rows = static_cast<std::int64_t>(v);
        p.cols = static_cast<std::int64_t>(v);
    } else if (field == "dac_bits") {
        p.dacBits = static_cast<int>(v);
    } else if (field == "adc_bits") {
        p.adcBits = static_cast<int>(v);
    } else if (field == "cell_bits") {
        p.cellBits = static_cast<int>(v);
    } else if (field == "input_bits") {
        p.inputBits = static_cast<int>(v);
    } else if (field == "weight_bits") {
        p.weightBits = static_cast<int>(v);
    } else if (field == "voltage") {
        p.supplyVoltage = v;
    } else if (field == "tech_nm") {
        p.technologyNm = v;
    } else if (field == "buffer_kb") {
        p.bufferKb = static_cast<std::int64_t>(v);
    } else if (field == "mappings") {
        point.mappings = static_cast<int>(v);
    } else if (field == "fault_stuck_rate") {
        // Total stuck-cell rate, split evenly between the two polarities
        // (the convention bench/fault_sweep established).
        f.stuckOffRate = v / 2.0;
        f.stuckOnRate = v / 2.0;
    } else if (field == "stuck_off_rate") {
        f.stuckOffRate = v;
    } else if (field == "stuck_on_rate") {
        f.stuckOnRate = v;
    } else if (field == "conductance_sigma" || field == "fault_sigma") {
        f.conductanceSigma = v;
    } else if (field == "adc_offset") {
        f.adcOffset = v;
    } else if (field == "adc_noise_sigma") {
        f.adcNoiseSigma = v;
    } else if (field == "fault_seed") {
        f.seed = static_cast<std::uint64_t>(v);
    } else {
        CIM_PANIC("unvalidated numeric sweep field '", field, "'");
    }
}

engine::Objective
objectiveFromName(const std::string& name, const char* key)
{
    std::string n = toLower(name);
    if (n == "energy")
        return engine::Objective::Energy;
    if (n == "edp")
        return engine::Objective::Edp;
    if (n == "delay")
        return engine::Objective::Delay;
    CIM_FATAL("unknown objective '", name, "' at ", key,
              " (expected energy, edp, or delay)");
}

bool
isParetoObjective(const std::string& name)
{
    return name == "energy" || name == "energy_per_mac" ||
           name == "latency" || name == "area" || name == "accuracy";
}

/** Parses one sweep.axes[i] entry. */
Axis
axisFromYaml(const yaml::Node& node, std::size_t i)
{
    std::ostringstream path;
    path << "sweep.axes[" << i << "]";
    const std::string at = path.str();
    if (!node.isMapping())
        CIM_FATAL(at, " must be a YAML mapping with a 'field' key");

    Axis axis;
    const yaml::Node* values = nullptr;
    const yaml::Node* range = nullptr;
    for (const auto& [key, value] : node.items()) {
        if (key == "field") {
            axis.field = value.asString();
        } else if (key == "values") {
            values = &value;
        } else if (key == "range") {
            range = &value;
        } else {
            CIM_FATAL("unknown sweep axis key '", at, ".", key,
                      "' (known: field, values, range)");
        }
    }
    if (axis.field.empty())
        CIM_FATAL(at, ".field must be set");
    if ((values == nullptr) == (range == nullptr)) {
        CIM_FATAL(at, " must have exactly one of 'values' and 'range'");
    }

    if (values) {
        if (!values->isSequence())
            CIM_FATAL(at, ".values must be a YAML sequence");
        for (const yaml::Node& v : values->elements()) {
            AxisValue av;
            if (v.kind() == yaml::Kind::String) {
                av.isString = true;
                av.text = v.asString();
            } else {
                av.num = v.asDouble();
                av.text = renderNum(av.num);
            }
            axis.values.push_back(std::move(av));
        }
        return axis;
    }

    // range: {from, to, step} (additive) or {from, to, mult} (geometric)
    if (!range->isMapping())
        CIM_FATAL(at, ".range must be a YAML mapping "
                  "{from, to, step | mult}");
    for (const auto& [key, value] : range->items()) {
        (void)value;
        if (key != "from" && key != "to" && key != "step" &&
            key != "mult") {
            CIM_FATAL("unknown sweep range key '", at, ".range.", key,
                      "' (known: from, to, step, mult)");
        }
    }
    if (!range->has("from") || !range->has("to"))
        CIM_FATAL(at, ".range needs both 'from' and 'to'");
    const double from = (*range)["from"].asDouble();
    const double to = (*range)["to"].asDouble();
    const bool hasStep = range->has("step");
    const bool hasMult = range->has("mult");
    if (hasStep == hasMult) {
        CIM_FATAL(at, ".range must have exactly one of 'step' and "
                  "'mult'");
    }
    if (from > to)
        CIM_FATAL(at, ".range.from must be <= range.to, got ", from,
                  " > ", to);
    const double step = hasStep ? (*range)["step"].asDouble() : 0.0;
    const double mult = hasMult ? (*range)["mult"].asDouble() : 0.0;
    if (hasStep && step <= 0.0)
        CIM_FATAL(at, ".range.step must be > 0, got ", step);
    if (hasMult && mult <= 1.0)
        CIM_FATAL(at, ".range.mult must be > 1, got ", mult);
    if (hasMult && from <= 0.0)
        CIM_FATAL(at, ".range.from must be > 0 with 'mult', got ", from);
    // Tolerance so e.g. {from: 0.1, to: 0.5, step: 0.1} includes 0.5
    // despite binary rounding, and a geometric walk keeps its endpoint
    // when v * mult lands 1 ULP past `to`. Scaled to the range's own
    // magnitude: an absolute floor (the old max(1, |to|) form) admits
    // whole spurious values once |to| drops below it — {from: 1e-10,
    // to: 8e-10, mult: 2} must stop at 8e-10, not 1.6e-9.
    const double tol =
        1e-9 * std::max(std::abs(from), std::abs(to));
    for (double v = from; v <= to + tol;
         v = hasStep ? v + step : v * mult) {
        axis.values.push_back({v, renderNum(v), false});
        if (axis.values.size() > 1000000)
            CIM_FATAL(at, ".range enumerates more than 1e6 values");
    }
    return axis;
}

Constraint
constraintFromYaml(const yaml::Node& node, std::size_t j)
{
    std::ostringstream path;
    path << "sweep.constraints[" << j << "]";
    const std::string at = path.str();
    if (!node.isMapping())
        CIM_FATAL(at, " must be a YAML mapping "
                  "{field, min and/or max}");
    Constraint c;
    for (const auto& [key, value] : node.items()) {
        if (key == "field") {
            c.field = value.asString();
        } else if (key == "min") {
            c.hasMin = true;
            c.min = value.asDouble();
        } else if (key == "max") {
            c.hasMax = true;
            c.max = value.asDouble();
        } else {
            CIM_FATAL("unknown sweep constraint key '", at, ".", key,
                      "' (known: field, min, max)");
        }
    }
    if (c.field.empty())
        CIM_FATAL(at, ".field must be set");
    return c;
}

} // namespace

void
SweepSpec::addAxis(const std::string& field, std::vector<double> values)
{
    Axis axis;
    axis.field = field;
    axis.values.reserve(values.size());
    for (double v : values)
        axis.values.push_back({v, renderNum(v), false});
    axes.push_back(std::move(axis));
}

void
SweepSpec::addAxis(const std::string& field,
                   std::vector<std::string> values)
{
    Axis axis;
    axis.field = field;
    axis.values.reserve(values.size());
    for (std::string& v : values)
        axis.values.push_back({0.0, std::move(v), true});
    axes.push_back(std::move(axis));
}

std::size_t
SweepSpec::pointCount() const
{
    std::size_t n = 1;
    for (const Axis& axis : axes)
        n *= axis.values.size();
    return n;
}

void
SweepSpec::validateGrid() const
{
    for (std::size_t i = 0; i < axes.size(); ++i) {
        const Axis& axis = axes[i];
        std::ostringstream path;
        path << "sweep.axes[" << i << "]";
        const std::string at = path.str();
        if (axis.field.empty())
            CIM_FATAL(at, ".field must be set");
        const bool stringField = isStringField(axis.field);
        if (!stringField && !isNumericField(axis.field)) {
            CIM_FATAL("unknown sweep axis field '", axis.field, "' at ",
                      at, ".field (numeric: ", kNumericFields,
                      "; string: ", kStringFields, ")");
        }
        if (axis.values.empty())
            CIM_FATAL(at, ".values must not be empty (field '",
                      axis.field, "')");
        for (std::size_t v = 0; v < axis.values.size(); ++v) {
            if (axis.values[v].isString != stringField) {
                CIM_FATAL(at, ".values[", v, "]: field '", axis.field,
                          "' takes ",
                          stringField ? "string" : "numeric",
                          " values, got '", axis.values[v].text, "'");
            }
            if (axis.field == "layout") {
                checkLayoutValue(axis.values[v].text,
                                 at + ".values[" + std::to_string(v) +
                                     "]");
            }
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (axes[j].field == axis.field) {
                CIM_FATAL("duplicate sweep axis field '", axis.field,
                          "' at sweep.axes[", j, "] and sweep.axes[", i,
                          "]");
            }
        }
    }
    for (std::size_t j = 0; j < constraints.size(); ++j) {
        const Constraint& c = constraints[j];
        std::ostringstream path;
        path << "sweep.constraints[" << j << "]";
        const std::string at = path.str();
        if (!isNumericField(c.field)) {
            CIM_FATAL("unknown sweep constraint field '", c.field,
                      "' at ", at, ".field (known: ", kNumericFields,
                      ")");
        }
        if (!c.hasMin && !c.hasMax)
            CIM_FATAL(at, " needs at least one of 'min' and 'max' "
                      "(field '", c.field, "')");
        if (c.hasMin && c.hasMax && c.min > c.max)
            CIM_FATAL(at, ".min must be <= max, got ", c.min, " > ",
                      c.max, " (field '", c.field, "')");
    }
    // Million-plus grids are fine — the executor streams chunks and
    // keeps only frontier + summary in memory past
    // SweepOptions::maxPointsInMemory. The overflow-guarded product
    // below only rejects grids whose sheer enumeration time could
    // never finish (and whose size_t product would wrap).
    constexpr std::size_t kMaxGridPoints = 1000000000000ull; // 1e12
    std::size_t n = 1;
    for (const Axis& axis : axes) {
        const std::size_t k = axis.values.size();
        if (k != 0 && n > kMaxGridPoints / k) {
            CIM_FATAL("sweep '", name, "' enumerates more than 1e12 "
                      "points; thin the axes");
        }
        n *= k;
    }
}

void
SweepSpec::validate() const
{
    validateGrid();
    const bool hasNetworkAxis = [&] {
        for (const Axis& axis : axes)
            if (axis.field == "network")
                return true;
        return false;
    }();
    if (!hasNetworkAxis && network.empty() == workloadPath.empty()) {
        CIM_FATAL("sweep '", name, "': exactly one of sweep.network and "
                  "sweep.workload must be set (network names a bundled "
                  "network; workload is a YAML file path)");
    }
    if (hasNetworkAxis && !workloadPath.empty()) {
        CIM_FATAL("sweep '", name, "': sweep.workload cannot be "
                  "combined with a 'network' axis");
    }
    if (mappings < 1)
        CIM_FATAL("sweep.mappings must be >= 1, got ", mappings);
    if (scaledAdcAnchor < 1)
        CIM_FATAL("sweep.scaled_adc_anchor must be >= 1, got ",
                  scaledAdcAnchor);
    if (paretoObjectives.empty())
        CIM_FATAL("sweep.pareto must name at least one objective");
    for (const std::string& obj : paretoObjectives) {
        if (!isParetoObjective(obj)) {
            CIM_FATAL("unknown pareto objective '", obj,
                      "' at sweep.pareto (known: energy, "
                      "energy_per_mac, latency, area, accuracy)");
        }
    }
    faults.validate();
    checkLayoutValue(layout, "sweep.layout");
    // The macro name resolves lazily per point (a 'macro' axis may
    // override it), but a bad base name should fail at spec time.
    macros::defaultsByName(macro);
}

SweepSpec
SweepSpec::fromYaml(const yaml::Node& node)
{
    if (!node.isMapping())
        CIM_FATAL("sweep spec must be a YAML mapping (bare keys or "
                  "under a top-level 'sweep:')");
    const yaml::Node* body = node.find("sweep");
    const yaml::Node& map = body ? *body : node;
    if (!map.isMapping())
        CIM_FATAL("sweep: must hold a YAML mapping");

    SweepSpec spec;
    for (const auto& [key, value] : map.items()) {
        if (key == "name") {
            spec.name = value.asString();
        } else if (key == "macro") {
            spec.macro = value.asString();
        } else if (key == "network") {
            spec.network = value.asString();
        } else if (key == "workload") {
            spec.workloadPath = value.asString();
        } else if (key == "mappings") {
            std::int64_t m = value.asInt();
            if (m < 1)
                CIM_FATAL("sweep.mappings must be >= 1, got ", m);
            spec.mappings = static_cast<int>(m);
        } else if (key == "seed") {
            std::int64_t s = value.asInt();
            if (s < 0)
                CIM_FATAL("sweep.seed must be >= 0, got ", s);
            spec.seed = static_cast<std::uint64_t>(s);
        } else if (key == "objective") {
            spec.objective =
                objectiveFromName(value.asString(), "sweep.objective");
        } else if (key == "scaled_adc") {
            spec.scaledAdc = value.asBool();
        } else if (key == "scaled_adc_anchor") {
            spec.scaledAdcAnchor = static_cast<int>(value.asInt());
        } else if (key == "pareto") {
            if (!value.isSequence())
                CIM_FATAL("sweep.pareto must be a YAML sequence of "
                          "objective names");
            spec.paretoObjectives.clear();
            for (const yaml::Node& obj : value.elements())
                spec.paretoObjectives.push_back(obj.asString());
        } else if (key == "axes") {
            if (!value.isSequence())
                CIM_FATAL("sweep.axes must be a YAML sequence");
            for (std::size_t i = 0; i < value.size(); ++i)
                spec.axes.push_back(axisFromYaml(value[i], i));
        } else if (key == "constraints") {
            if (!value.isSequence())
                CIM_FATAL("sweep.constraints must be a YAML sequence");
            for (std::size_t j = 0; j < value.size(); ++j)
                spec.constraints.push_back(
                    constraintFromYaml(value[j], j));
        } else if (key == "faults") {
            spec.faults = faults::FaultModel::fromYaml(value);
        } else if (key == "layout") {
            spec.layout = value.asString();
        } else {
            CIM_FATAL("unknown sweep spec key 'sweep.", key,
                      "' (known: name, macro, network, workload, "
                      "mappings, seed, objective, scaled_adc, "
                      "scaled_adc_anchor, pareto, axes, constraints, "
                      "faults, layout)");
        }
    }
    spec.validate();
    return spec;
}

SweepSpec
SweepSpec::fromFile(const std::string& path)
{
    return fromYaml(yaml::parseFile(path));
}

std::string
SweepPoint::label(const SweepSpec& spec) const
{
    if (axisText.empty())
        return "defaults";
    std::string out;
    for (std::size_t i = 0; i < axisText.size(); ++i) {
        if (i)
            out += ", ";
        out += spec.axes[i].field;
        out += '=';
        out += axisText[i];
    }
    return out;
}

double
SweepPoint::fieldValue(const std::string& field) const
{
    if (field == "rows" || field == "array")
        return static_cast<double>(params.rows);
    if (field == "cols")
        return static_cast<double>(params.cols);
    if (field == "dac_bits")
        return params.dacBits;
    if (field == "adc_bits")
        return params.adcBits;
    if (field == "cell_bits")
        return params.cellBits;
    if (field == "input_bits")
        return params.inputBits;
    if (field == "weight_bits")
        return params.weightBits;
    if (field == "voltage")
        return params.supplyVoltage;
    if (field == "tech_nm")
        return params.technologyNm;
    if (field == "buffer_kb")
        return static_cast<double>(params.bufferKb);
    if (field == "mappings")
        return mappings;
    if (field == "fault_stuck_rate")
        return faults.stuckOffRate + faults.stuckOnRate;
    if (field == "stuck_off_rate")
        return faults.stuckOffRate;
    if (field == "stuck_on_rate")
        return faults.stuckOnRate;
    if (field == "conductance_sigma" || field == "fault_sigma")
        return faults.conductanceSigma;
    if (field == "adc_offset")
        return faults.adcOffset;
    if (field == "adc_noise_sigma")
        return faults.adcNoiseSigma;
    if (field == "fault_seed")
        return static_cast<double>(faults.seed);
    CIM_FATAL("unknown sweep field '", field, "' (known: ",
              kNumericFields, ")");
}

SweepPoint
pointShell(const SweepSpec& spec, std::size_t index)
{
    CIM_ASSERT(index < spec.pointCount(), "sweep point index ", index,
               " out of range (grid has ", spec.pointCount(),
               " points)");
    SweepPoint point;
    point.index = index;
    point.coords.resize(spec.axes.size());
    std::size_t rem = index;
    for (std::size_t i = spec.axes.size(); i-- > 0;) {
        point.coords[i] = rem % spec.axes[i].values.size();
        rem /= spec.axes[i].values.size();
    }
    point.axisText.reserve(spec.axes.size());
    for (std::size_t i = 0; i < spec.axes.size(); ++i)
        point.axisText.push_back(
            spec.axes[i].values[point.coords[i]].text);
    return point;
}

SweepPoint
materializePoint(const SweepSpec& spec, std::size_t index)
{
    SweepPoint point = pointShell(spec, index);

    point.macroName = spec.macro;
    point.networkName = spec.network;
    point.workloadPath = spec.workloadPath;
    point.mappings = spec.mappings;
    point.seed = spec.seed;
    point.objective = spec.objective;
    point.faults = spec.faults;
    point.layoutName = spec.layout;

    // String axes resolve first so the macro defaults they select form
    // the base the numeric axes then override.
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const Axis& axis = spec.axes[i];
        const AxisValue& v = axis.values[point.coords[i]];
        if (axis.field == "macro") {
            point.macroName = v.text;
        } else if (axis.field == "network") {
            point.networkName = v.text;
            point.workloadPath.clear();
        } else if (axis.field == "layout") {
            point.layoutName = v.text;
        }
    }
    point.params = macros::defaultsByName(point.macroName);
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const Axis& axis = spec.axes[i];
        if (isStringField(axis.field))
            continue;
        applyNumericField(point, axis.field,
                          axis.values[point.coords[i]].num);
    }
    if (spec.scaledAdc) {
        point.params.adcBits =
            macros::scaledAdcBits(point.params.rows,
                                  spec.scaledAdcAnchor) +
            std::max(0, point.params.dacBits - 3);
    }
    return point;
}

bool
pointIsValid(const SweepSpec& spec, const SweepPoint& point,
             std::string* reason)
{
    for (std::size_t j = 0; j < spec.constraints.size(); ++j) {
        const Constraint& c = spec.constraints[j];
        const double v = point.fieldValue(c.field);
        const bool ok = (!c.hasMin || v >= c.min) &&
                        (!c.hasMax || v <= c.max);
        if (ok)
            continue;
        if (reason) {
            std::ostringstream oss;
            oss << "constraint sweep.constraints[" << j << "] ("
                << c.field;
            if (c.hasMin)
                oss << " >= " << c.min;
            if (c.hasMin && c.hasMax)
                oss << " and";
            if (c.hasMax)
                oss << " <= " << c.max;
            oss << ") violated: " << c.field << " = " << renderNum(v);
            *reason = oss.str();
        }
        return false;
    }
    if (spec.validity && !spec.validity(point)) {
        if (reason)
            *reason = "validity predicate rejected the point";
        return false;
    }
    return true;
}

double
accuracyLossProxy(const macros::MacroParams& params,
                  const faults::FaultModel& faults)
{
    // Bits of column-sum information the ADC discards: a rows-deep
    // analog sum of dac*cell-bit products needs about
    // log2(rows) + dac + cell - 2 bits to digitize losslessly.
    const double needed =
        std::log2(static_cast<double>(std::max<std::int64_t>(
            params.rows, 1))) +
        params.dacBits + params.cellBits - 2.0;
    const double clip = std::max(0.0, needed - params.adcBits);
    const double faultLoss =
        8.0 * (faults.stuckOffRate + faults.stuckOnRate) +
        faults.conductanceSigma + 4.0 * faults.adcNoiseSigma +
        2.0 * std::abs(faults.adcOffset);
    return clip + faultLoss;
}

std::string
specFingerprint(const SweepSpec& spec)
{
    // Serialize every field a grid index's evaluation depends on at
    // full precision, with 0x1f separators so no concatenation of two
    // specs can alias. The programmatic validity predicate cannot be
    // hashed and is deliberately absent (see the header).
    std::ostringstream oss;
    oss.precision(17);
    oss << "cimloop-sweep-v1" << '\x1f' << spec.name << '\x1f'
        << spec.macro << '\x1f' << spec.network << '\x1f'
        << spec.workloadPath << '\x1f' << spec.mappings << ' '
        << spec.seed << ' ' << static_cast<int>(spec.objective) << ' '
        << spec.scaledAdc << ' ' << spec.scaledAdcAnchor << '\x1f'
        << spec.faults.stuckOffRate << ' ' << spec.faults.stuckOnRate
        << ' ' << spec.faults.conductanceSigma << ' '
        << spec.faults.adcOffset << ' ' << spec.faults.adcNoiseSigma
        << ' ' << spec.faults.seed << '\x1f';
    // The base layout joins the fingerprint only when set: journals of
    // pre-layout specs keep their fingerprints (and stay resumable).
    if (spec.layout != "none")
        oss << "layout" << '\x1f' << spec.layout << '\x1f';
    for (const Axis& axis : spec.axes) {
        oss << "axis" << '\x1f' << axis.field << '\x1f';
        for (const AxisValue& v : axis.values)
            oss << v.isString << ' ' << v.num << ' ' << v.text
                << '\x1f';
    }
    for (const Constraint& c : spec.constraints) {
        oss << "constraint" << '\x1f' << c.field << '\x1f' << c.hasMin
            << ' ' << c.min << ' ' << c.hasMax << ' ' << c.max
            << '\x1f';
    }
    for (const std::string& obj : spec.paretoObjectives)
        oss << "pareto" << '\x1f' << obj << '\x1f';
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(oss.str())));
    return buf;
}

const char*
pointStatusName(PointStatus s)
{
    switch (s) {
    case PointStatus::Ok:
        return "ok";
    case PointStatus::Skipped:
        return "skipped";
    case PointStatus::Failed:
        return "failed";
    }
    return "?";
}

} // namespace cimloop::dse
