/**
 * @file
 * The chunked parallel sweep executor, the streaming Pareto frontier,
 * and checkpoint/resume.
 *
 * Determinism: the grid is sharded into fixed-size chunks processed in
 * grid order; inside a chunk points are claimed dynamically but every
 * worker writes only its own slot, and every order-sensitive step —
 * counting, frontier maintenance, best-point selection, cache-economy
 * accounting, counter bumps — happens on the calling thread after the
 * chunk joins, over the slots in grid order. Combined with the engine's
 * scheduling-invariant search, a sweep's table, CSV/JSON artifacts, and
 * obs counters are byte-identical for any --threads and any chunk size
 * at a fixed seed. Resume folds journaled chunks through the same
 * per-point path, so an interrupted-then-resumed run reproduces an
 * uninterrupted run's bytes exactly.
 *
 * Memory: with SweepOptions::resumeDir each completed chunk commits to
 * the on-disk journal, and grids past maxPointsInMemory keep only the
 * frontier, a few failure samples, and the summary in RAM — million-
 * point sweeps run in O(chunk + frontier) memory.
 */
#include "cimloop/dse/dse.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "cimloop/common/error.hh"
#include "cimloop/common/parallel.hh"
#include "cimloop/common/util.hh"
#include "cimloop/dse/journal.hh"
#include "cimloop/layout/layout.hh"
#include "cimloop/obs/obs.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::dse {

namespace {

/** Points per chunk when SweepOptions::chunkSize is 0. */
constexpr std::size_t kDefaultChunkSize = 1024;

/** Non-Ok points kept for the report in memory-bounded mode. */
constexpr std::size_t kFailureSampleCap = 20;

/** Key of the network a point runs ("name:mvm" / "file:net.yaml"). */
std::string
networkKey(const SweepPoint& point)
{
    return point.workloadPath.empty() ? "name:" + point.networkName
                                      : "file:" + point.workloadPath;
}

/**
 * Loads every distinct network the grid can reference, serially and up
 * front: a bad network name or unreadable workload file is a spec-level
 * error (fatal before any point runs), not a per-point failure, and
 * workers then share immutable Network objects. One load per
 * sweepNetworkKeys() entry — O(#networks), never O(#points).
 */
std::map<std::string, workload::Network>
preloadNetworks(const SweepSpec& spec)
{
    std::map<std::string, workload::Network> nets;
    for (const std::string& key : sweepNetworkKeys(spec)) {
        if (nets.count(key))
            continue;
        nets.emplace(key, startsWith(key, "name:")
                              ? workload::networkByName(key.substr(5))
                              : workload::networkFromFile(
                                    key.substr(5)));
    }
    return nets;
}

/**
 * Prefixes a message with its kind unless the message already starts
 * with it — CIM_FATAL/CIM_PANIC texts carry "fatal: "/"panic: ".
 */
std::string
kindPrefixed(const std::string& kind, const std::string& message)
{
    const std::string prefix = kind + ": ";
    if (message.rfind(prefix, 0) == 0)
        return message;
    return prefix + message;
}

/** "layer 3 (conv4_x): fatal: ..." summary of keep-going diagnostics. */
std::string
describeDiagnostics(const std::vector<engine::LayerDiagnostic>& diags)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < diags.size(); ++i) {
        if (i)
            oss << "; ";
        oss << "layer " << diags[i].layerIndex << " (" << diags[i].layer
            << "): " << kindPrefixed(diags[i].kind, diags[i].message);
    }
    return oss.str();
}

/** Classifies a caught exception the way LayerDiagnostic.kind does. */
std::string
classifyFailure(std::exception_ptr error)
{
    try {
        std::rethrow_exception(error);
    } catch (const FatalError& e) {
        return kindPrefixed("fatal", e.what());
    } catch (const PanicError& e) {
        return kindPrefixed("panic", e.what());
    } catch (const CancelledError& e) {
        return kindPrefixed("cancelled", e.what());
    } catch (const std::exception& e) {
        return kindPrefixed("exception", e.what());
    }
}

/** Reads one Pareto objective off an evaluated point. */
double
objectiveValue(const PointResult& pr, const std::string& name)
{
    if (name == "energy")
        return pr.energyPj;
    if (name == "energy_per_mac")
        return pr.energyPerMacPj;
    if (name == "latency")
        return pr.latencyNs;
    if (name == "area")
        return pr.areaUm2;
    if (name == "accuracy")
        return pr.accuracyLoss;
    CIM_PANIC("unvalidated pareto objective '", name, "'");
}

/** Evaluates one point in place; never throws. */
void
evaluatePoint(const SweepSpec& spec,
              const std::map<std::string, workload::Network>& networks,
              int inner_threads, PointResult& pr)
{
    std::string reason;
    if (!pointIsValid(spec, pr.point, &reason)) {
        pr.status = PointStatus::Skipped;
        pr.statusDetail = reason;
        return;
    }
    try {
        // Per-point fault values come from axes, so out-of-range ones
        // are a point failure (with the axis values in the label), not
        // a spec failure.
        pr.point.faults.validate();
        engine::Arch arch =
            macros::macroByName(pr.point.macroName, pr.point.params);
        arch.faults = pr.point.faults;
        if (pr.point.layoutName == "search") {
            arch.layoutSearch = true;
        } else if (pr.point.layoutName != "none") {
            // A bad preset name or unreadable layout file is a point
            // failure (the axis value names it), caught below.
            arch.layout = layout::presetLayout(pr.point.layoutName,
                                               arch.hierarchy);
        }
        const workload::Network& net =
            networks.at(networkKey(pr.point));
        pr.engineTouched = true;
        engine::NetworkEvaluation ev = engine::evaluateNetworkParallel(
            arch, net, inner_threads, pr.point.mappings, pr.point.seed,
            pr.point.objective, /*keep_going=*/true);
        if (!ev.complete()) {
            pr.status = PointStatus::Failed;
            pr.layerDiagnostics = ev.diagnostics;
            pr.statusDetail = describeDiagnostics(ev.diagnostics);
            return;
        }
        pr.status = PointStatus::Ok;
        pr.energyPj = ev.energyPj;
        pr.energyPerMacPj = ev.energyPerMacPj();
        pr.latencyNs = ev.latencyNs;
        pr.areaUm2 = ev.areaUm2;
        pr.macs = ev.macs;
        pr.topsPerWatt = ev.topsPerWatt();
        pr.accuracyLoss =
            accuracyLossProxy(pr.point.params, pr.point.faults);
        // A NaN/inf objective compares false against everything, so it
        // would silently survive every dominance check and sit on the
        // frontier; demote it to an explicit failure instead.
        if (const char* bad = nonFiniteMetric(pr)) {
            pr.status = PointStatus::Failed;
            pr.statusDetail =
                std::string("non-finite metric ") + bad +
                " — the design evaluated to NaN/inf and cannot be "
                "ranked";
        }
    } catch (...) {
        pr.status = PointStatus::Failed;
        pr.statusDetail = classifyFailure(std::current_exception());
    }
}

/**
 * Serialization of everything that decides whether two points share
 * per-action tables: the resolved design (macro + every MacroParams
 * field), the fault model, and the network. Points that differ only in
 * mapper budget / seed / objective — or layout, which reshapes the
 * latency model but never the per-action energies — share tables. The
 * cache economy in SweepResult is computed from the set of these, which
 * makes it a pure function of the point stream — identical for resumed
 * runs whose process-local cache starts cold.
 */
std::string
designSignature(const SweepPoint& point)
{
    const macros::MacroParams& p = point.params;
    const faults::FaultModel& f = point.faults;
    std::ostringstream oss;
    oss.precision(17);
    oss << toLower(point.macroName) << '\x1f' << p.rows << ' '
        << p.cols << ' ' << p.inputBits << ' ' << p.weightBits << ' '
        << p.dacBits << ' ' << p.cellBits << ' ' << p.adcBits << ' '
        << p.technologyNm << ' ' << p.supplyVoltage << ' '
        << static_cast<int>(p.inputEncoding) << ' '
        << static_cast<int>(p.weightEncoding) << ' ' << p.bufferKb
        << ' ' << p.outputReuseCols << ' ' << p.adderOperands << ' '
        << p.weightBankRows << '\x1f' << f.stuckOffRate << ' '
        << f.stuckOnRate << ' ' << f.conductanceSigma << ' '
        << f.adcOffset << ' ' << f.adcNoiseSigma << ' ' << f.seed
        << '\x1f' << networkKey(point);
    return oss.str();
}

/** Rebuilds a PointResult from its journal record. */
PointResult
restoreRecord(const SweepSpec& spec, const JournalRecord& rec)
{
    PointResult pr;
    try {
        pr.point = materializePoint(spec, rec.index);
    } catch (...) {
        // The original run recorded this materialization failure; the
        // shell keeps the index and axis columns printable.
        pr.point = pointShell(spec, rec.index);
    }
    pr.status = rec.status;
    pr.engineTouched = rec.engineTouched;
    pr.statusDetail = rec.statusDetail;
    pr.energyPj = rec.metrics[0];
    pr.energyPerMacPj = rec.metrics[1];
    pr.latencyNs = rec.metrics[2];
    pr.areaUm2 = rec.metrics[3];
    pr.macs = rec.metrics[4];
    pr.topsPerWatt = rec.metrics[5];
    pr.accuracyLoss = rec.metrics[6];
    return pr;
}

/**
 * Rebuilds a point of a committed chunk that has no journal record:
 * only skips are unjournaled (validity is a pure function of the spec),
 * so a valid point without a record means the journal and the spec
 * disagree.
 */
PointResult
restoreSkipped(const SweepSpec& spec, std::size_t index,
               const std::string& dir)
{
    PointResult pr;
    pr.point = materializePoint(spec, index);
    std::string reason;
    if (pointIsValid(spec, pr.point, &reason)) {
        CIM_FATAL("sweep journal at '", dir,
                  "' has no record for valid point ", index,
                  " of a committed chunk — journal corrupt or spec "
                  "drifted; use a fresh --resume directory");
    }
    pr.status = PointStatus::Skipped;
    pr.statusDetail = reason;
    return pr;
}

} // namespace

const char*
nonFiniteMetric(const PointResult& pr)
{
    if (!std::isfinite(pr.energyPj))
        return "energy_pj";
    if (!std::isfinite(pr.energyPerMacPj))
        return "energy_per_mac_pj";
    if (!std::isfinite(pr.latencyNs))
        return "latency_ns";
    if (!std::isfinite(pr.areaUm2))
        return "area_um2";
    if (!std::isfinite(pr.macs))
        return "macs";
    if (!std::isfinite(pr.topsPerWatt))
        return "tops_per_watt";
    if (!std::isfinite(pr.accuracyLoss))
        return "accuracy_loss";
    return nullptr;
}

std::vector<std::string>
sweepNetworkKeys(const SweepSpec& spec)
{
    for (const Axis& axis : spec.axes) {
        if (axis.field != "network")
            continue;
        // The network choice depends only on this axis's coordinate
        // (validate() forbids combining it with sweep.workload).
        std::vector<std::string> keys;
        for (const AxisValue& v : axis.values) {
            std::string key = "name:" + v.text;
            if (std::find(keys.begin(), keys.end(), key) == keys.end())
                keys.push_back(std::move(key));
        }
        return keys;
    }
    return {spec.workloadPath.empty() ? "name:" + spec.network
                                      : "file:" + spec.workloadPath};
}

ParetoFront::Insertion
ParetoFront::insert(std::size_t index, const std::vector<double>& row)
{
    CIM_ASSERT(row.size() == dims_,
               "pareto rows must have equal dimensionality");
    auto dominates = [this](const std::vector<double>& a,
                            const std::vector<double>& b) {
        bool strict = false;
        for (std::size_t k = 0; k < dims_; ++k) {
            if (a[k] > b[k])
                return false;
            if (a[k] < b[k])
                strict = true;
        }
        return strict;
    };
    Insertion out;
    for (const Member& m : members_) {
        if (dominates(m.row, row))
            return out;
    }
    std::size_t w = 0;
    for (std::size_t r = 0; r < members_.size(); ++r) {
        if (dominates(row, members_[r].row)) {
            out.evicted.push_back(members_[r].index);
            continue;
        }
        if (w != r) // self-move would empty the row
            members_[w] = std::move(members_[r]);
        ++w;
    }
    members_.resize(w);
    members_.push_back({index, row});
    out.added = true;
    return out;
}

std::vector<std::size_t>
ParetoFront::indices() const
{
    std::vector<std::size_t> out;
    out.reserve(members_.size());
    for (const Member& m : members_)
        out.push_back(m.index);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::size_t>
paretoIndices(const std::vector<std::vector<double>>& objectives)
{
    if (objectives.empty())
        return {};
    ParetoFront front(objectives.front().size());
    for (std::size_t i = 0; i < objectives.size(); ++i)
        front.insert(i, objectives[i]);
    return front.indices();
}

const PointResult*
SweepResult::findPoint(std::size_t index) const
{
    auto it = std::lower_bound(
        points.begin(), points.end(), index,
        [](const PointResult& pr, std::size_t i) {
            return pr.point.index < i;
        });
    if (it == points.end() || it->point.index != index)
        return nullptr;
    return &*it;
}

SweepResult
runSweep(const SweepSpec& spec, const SweepOptions& opts)
{
    static obs::Counter& c_total = obs::counter("dse.points_total");
    static obs::Counter& c_eval = obs::counter("dse.points_evaluated");
    static obs::Counter& c_failed = obs::counter("dse.points_failed");
    static obs::Counter& c_skipped = obs::counter("dse.points_skipped");
    static obs::Counter& c_pareto = obs::counter("dse.points_pareto");
    static obs::Counter& c_hits = obs::counter("dse.cache.hits");
    static obs::Counter& c_misses = obs::counter("dse.cache.misses");
    static obs::Counter& c_chunks_total =
        obs::counter("dse.chunks_total");
    static obs::Counter& c_chunks_exec =
        obs::counter("dse.chunks_executed");
    static obs::Counter& c_chunks_resumed =
        obs::counter("dse.chunks_resumed");
    static obs::Counter& c_resume_skip =
        obs::counter("dse.resume.points_skipped");

    spec.validate();
    CIM_SPAN("dse.sweep");
    const std::size_t n = spec.pointCount();
    const auto networks = preloadNetworks(spec);

    SweepResult result;
    result.name = spec.name;
    result.paretoObjectives = spec.paretoObjectives;
    for (const Axis& axis : spec.axes)
        result.axisFields.push_back(axis.field);
    result.totalPoints = n;

    const std::size_t chunkSize = std::min<std::size_t>(
        std::max<std::size_t>(n, 1),
        opts.chunkSize ? opts.chunkSize : kDefaultChunkSize);
    result.chunksTotal = (n + chunkSize - 1) / chunkSize;
    const bool bounded = n > opts.maxPointsInMemory;
    result.pointsStored = !bounded;
    if (!bounded)
        result.points.reserve(n);

    std::optional<SweepJournal> journal;
    if (!opts.resumeDir.empty()) {
        journal.emplace(opts.resumeDir, specFingerprint(spec), n,
                        chunkSize, spec.name);
    }

    const int threads = std::max(1, opts.threads);

    ParetoFront front(spec.paretoObjectives.size());
    std::map<std::size_t, PointResult> frontierPoints; // bounded mode
    std::unordered_set<std::uint64_t> designsSeen;
    std::uint64_t lookups = 0;
    std::uint64_t misses = 0;
    std::size_t bestIdx = static_cast<std::size_t>(-1);
    double bestVal = 0.0;

    auto layerCount = [&](const SweepPoint& point) -> std::uint64_t {
        auto it = networks.find(networkKey(point));
        return it == networks.end() ? 0 : it->second.layers.size();
    };

    // Folds one point — live or journal-restored — into counts,
    // frontier, best, cache economy, and storage. Called in grid
    // order only.
    auto foldPoint = [&](PointResult&& pr) {
        switch (pr.status) {
        case PointStatus::Ok:
            ++result.evaluated;
            break;
        case PointStatus::Failed:
            ++result.failed;
            break;
        case PointStatus::Skipped:
            ++result.skipped;
            break;
        }
        if (pr.engineTouched) {
            const std::uint64_t layers = layerCount(pr.point);
            lookups += layers;
            if (designsSeen.insert(fnv1a64(designSignature(pr.point)))
                    .second) {
                misses += layers;
            }
        }
        if (pr.status == PointStatus::Ok) {
            std::vector<double> row;
            row.reserve(spec.paretoObjectives.size());
            for (const std::string& name : spec.paretoObjectives)
                row.push_back(objectiveValue(pr, name));
            if (bestIdx == static_cast<std::size_t>(-1) ||
                row[0] < bestVal) {
                bestIdx = pr.point.index;
                bestVal = row[0];
            }
            const ParetoFront::Insertion ins =
                front.insert(pr.point.index, row);
            if (bounded) {
                for (std::size_t ev : ins.evicted)
                    frontierPoints.erase(ev);
                if (ins.added)
                    frontierPoints.emplace(pr.point.index,
                                           std::move(pr));
                return;
            }
        } else if (bounded &&
                   result.failureSamples.size() < kFailureSampleCap) {
            result.failureSamples.push_back(pr);
        }
        if (!bounded)
            result.points.push_back(std::move(pr));
    };

    for (std::size_t chunk = 0; chunk < result.chunksTotal; ++chunk) {
        const std::size_t from = chunk * chunkSize;
        const std::size_t to = std::min(n, from + chunkSize);
        if (journal && journal->chunkCompleted(chunk)) {
            for (std::size_t i = from; i < to; ++i) {
                const JournalRecord* rec = journal->record(i);
                foldPoint(rec ? restoreRecord(spec, *rec)
                              : restoreSkipped(spec, i,
                                               journal->dir()));
            }
            ++result.chunksResumed;
            result.resumedPoints += to - from;
            continue;
        }
        if (opts.maxChunks &&
            result.chunksExecuted >= opts.maxChunks) {
            result.stoppedEarly = true;
            break;
        }
        // The chunk boundary is the only place the sweep acts on its
        // token: the chunk that was in flight when the token fired has
        // already committed (journal and fold alike), so stopping here is
        // indistinguishable from a maxChunks stop — the journal holds
        // only whole chunks and a resumed run reproduces the
        // uninterrupted bytes.
        if (opts.cancel.cancelled()) {
            result.stoppedEarly = true;
            result.cancelled = true;
            static obs::Counter& c_cancelled =
                obs::counter("dse.cancelled");
            c_cancelled.add();
            break;
        }

        // Points fan out first; leftover threads split each point's
        // per-layer/mapping work (same policy as
        // evaluateNetworkParallel).
        const std::size_t count = to - from;
        const int outer =
            static_cast<int>(std::min<std::size_t>(threads, count));
        const int inner = std::max(1, threads / outer);
        std::vector<PointResult> chunkResults(count);
        std::vector<WorkerError> errors =
            parallelForAll(outer, count, [&](std::size_t j) {
                PointResult& pr = chunkResults[j];
                pr.point = materializePoint(spec, from + j);
                evaluatePoint(spec, networks, inner, pr);
            });
        // evaluatePoint() swallows everything, so only
        // materializePoint() can leak an exception here; record it as
        // a point failure labeled with the shell's axis values rather
        // than aborting a mostly-finished sweep.
        for (const WorkerError& we : errors) {
            PointResult& pr = chunkResults[we.index];
            pr = PointResult{};
            pr.point = pointShell(spec, from + we.index);
            pr.status = PointStatus::Failed;
            pr.statusDetail = classifyFailure(we.error);
        }
        if (journal)
            journal->appendChunk(chunk, from, to, chunkResults);
        for (PointResult& pr : chunkResults)
            foldPoint(std::move(pr));
        ++result.chunksExecuted;
    }

    result.frontier = front.indices();
    if (!bounded) {
        for (std::size_t idx : result.frontier) {
            CIM_ASSERT(idx < result.points.size() &&
                           result.points[idx].point.index == idx,
                       "stored sweep points must be in grid order");
            result.points[idx].onFrontier = true;
        }
    } else {
        result.points.reserve(frontierPoints.size());
        for (auto& [idx, pr] : frontierPoints) {
            (void)idx;
            pr.onFrontier = true;
            result.points.push_back(std::move(pr));
        }
    }
    result.bestIndex = bestIdx;
    result.cacheMisses = misses;
    result.cacheHits = lookups - misses;

    c_total.add(n);
    c_eval.add(result.evaluated);
    c_failed.add(result.failed);
    c_skipped.add(result.skipped);
    c_pareto.add(result.frontier.size());
    c_hits.add(result.cacheHits);
    c_misses.add(result.cacheMisses);
    c_chunks_total.add(result.chunksTotal);
    c_chunks_exec.add(result.chunksExecuted);
    c_chunks_resumed.add(result.chunksResumed);
    c_resume_skip.add(result.resumedPoints);
    return result;
}

std::vector<PointResult>
forEachPoint(const SweepSpec& spec, int threads,
             const std::function<void(const SweepPoint&)>& fn)
{
    spec.validateGrid();
    const std::size_t n = spec.pointCount();
    std::vector<PointResult> results(n);
    parallelForAll(std::max(1, threads), n, [&](std::size_t i) {
        PointResult& pr = results[i];
        pr.point = materializePoint(spec, i);
        std::string reason;
        if (!pointIsValid(spec, pr.point, &reason)) {
            pr.status = PointStatus::Skipped;
            pr.statusDetail = reason;
            return;
        }
        try {
            fn(pr.point);
            pr.status = PointStatus::Ok;
        } catch (...) {
            pr.status = PointStatus::Failed;
            pr.statusDetail = classifyFailure(std::current_exception());
        }
    });
    return results;
}

} // namespace cimloop::dse
