/**
 * @file
 * The parallel sweep executor and Pareto extraction.
 *
 * Determinism: points are claimed dynamically but every worker writes
 * only its own slot of the result vector, and every order-sensitive
 * step — counting, frontier extraction, best-point selection, counter
 * bumps, cache-delta measurement — happens on the calling thread after
 * the join, over the slots in grid order. Combined with the engine's
 * scheduling-invariant search and single-flight per-action cache, a
 * sweep's table, CSV/JSON artifacts, and obs counters are byte-identical
 * for any --threads at a fixed seed.
 */
#include "cimloop/dse/dse.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "cimloop/common/error.hh"
#include "cimloop/common/parallel.hh"
#include "cimloop/obs/obs.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::dse {

namespace {

/** Key of the network a point runs ("name:mvm" / "file:net.yaml"). */
std::string
networkKey(const SweepPoint& point)
{
    return point.workloadPath.empty() ? "name:" + point.networkName
                                      : "file:" + point.workloadPath;
}

/**
 * Loads every distinct network the grid can reference, serially and up
 * front: a bad network name or unreadable workload file is a spec-level
 * error (fatal before any point runs), not a per-point failure, and
 * workers then share immutable Network objects.
 */
std::map<std::string, workload::Network>
preloadNetworks(const SweepSpec& spec)
{
    std::map<std::string, workload::Network> nets;
    auto load = [&](const SweepPoint& point) {
        std::string key = networkKey(point);
        if (nets.count(key))
            return;
        nets.emplace(key, point.workloadPath.empty()
                              ? workload::networkByName(point.networkName)
                              : workload::networkFromFile(
                                    point.workloadPath));
    };
    bool hasNetworkAxis = false;
    for (const Axis& axis : spec.axes)
        hasNetworkAxis = hasNetworkAxis || axis.field == "network";
    if (!hasNetworkAxis) {
        load(materializePoint(spec, 0));
        return nets;
    }
    // One probe per network-axis value is enough: the network choice
    // depends only on that axis's coordinate.
    for (std::size_t i = 0; i < spec.pointCount(); ++i)
        load(materializePoint(spec, i));
    return nets;
}

/**
 * Prefixes a message with its kind unless the message already starts
 * with it — CIM_FATAL/CIM_PANIC texts carry "fatal: "/"panic: ".
 */
std::string
kindPrefixed(const std::string& kind, const std::string& message)
{
    const std::string prefix = kind + ": ";
    if (message.rfind(prefix, 0) == 0)
        return message;
    return prefix + message;
}

/** "layer 3 (conv4_x): fatal: ..." summary of keep-going diagnostics. */
std::string
describeDiagnostics(const std::vector<engine::LayerDiagnostic>& diags)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < diags.size(); ++i) {
        if (i)
            oss << "; ";
        oss << "layer " << diags[i].layerIndex << " (" << diags[i].layer
            << "): " << kindPrefixed(diags[i].kind, diags[i].message);
    }
    return oss.str();
}

/** Classifies a caught exception the way LayerDiagnostic.kind does. */
std::string
classifyFailure(std::exception_ptr error)
{
    try {
        std::rethrow_exception(error);
    } catch (const FatalError& e) {
        return kindPrefixed("fatal", e.what());
    } catch (const PanicError& e) {
        return kindPrefixed("panic", e.what());
    } catch (const std::exception& e) {
        return kindPrefixed("exception", e.what());
    }
}

/** Reads one Pareto objective off an evaluated point. */
double
objectiveValue(const PointResult& pr, const std::string& name)
{
    if (name == "energy")
        return pr.energyPj;
    if (name == "energy_per_mac")
        return pr.energyPerMacPj;
    if (name == "latency")
        return pr.latencyNs;
    if (name == "area")
        return pr.areaUm2;
    if (name == "accuracy")
        return pr.accuracyLoss;
    CIM_PANIC("unvalidated pareto objective '", name, "'");
}

/** Evaluates one point in place; never throws. */
void
evaluatePoint(const SweepSpec& spec,
              const std::map<std::string, workload::Network>& networks,
              int inner_threads, PointResult& pr)
{
    std::string reason;
    if (!pointIsValid(spec, pr.point, &reason)) {
        pr.status = PointStatus::Skipped;
        pr.statusDetail = reason;
        return;
    }
    try {
        // Per-point fault values come from axes, so out-of-range ones
        // are a point failure (with the axis values in the label), not
        // a spec failure.
        pr.point.faults.validate();
        engine::Arch arch =
            macros::macroByName(pr.point.macroName, pr.point.params);
        arch.faults = pr.point.faults;
        const workload::Network& net =
            networks.at(networkKey(pr.point));
        engine::NetworkEvaluation ev = engine::evaluateNetworkParallel(
            arch, net, inner_threads, pr.point.mappings, pr.point.seed,
            pr.point.objective, /*keep_going=*/true);
        if (!ev.complete()) {
            pr.status = PointStatus::Failed;
            pr.layerDiagnostics = ev.diagnostics;
            pr.statusDetail = describeDiagnostics(ev.diagnostics);
            return;
        }
        pr.status = PointStatus::Ok;
        pr.energyPj = ev.energyPj;
        pr.energyPerMacPj = ev.energyPerMacPj();
        pr.latencyNs = ev.latencyNs;
        pr.areaUm2 = ev.areaUm2;
        pr.macs = ev.macs;
        pr.topsPerWatt = ev.topsPerWatt();
        pr.accuracyLoss =
            accuracyLossProxy(pr.point.params, pr.point.faults);
    } catch (...) {
        pr.status = PointStatus::Failed;
        pr.statusDetail = classifyFailure(std::current_exception());
    }
}

} // namespace

std::vector<std::size_t>
paretoIndices(const std::vector<std::vector<double>>& objectives)
{
    const std::size_t n = objectives.size();
    if (n == 0)
        return {};
    for (const std::vector<double>& row : objectives) {
        CIM_ASSERT(row.size() == objectives.front().size(),
                   "pareto rows must have equal dimensionality");
    }
    auto dominates = [&](std::size_t a, std::size_t b) {
        bool strict = false;
        for (std::size_t k = 0; k < objectives[a].size(); ++k) {
            if (objectives[a][k] > objectives[b][k])
                return false;
            if (objectives[a][k] < objectives[b][k])
                strict = true;
        }
        return strict;
    };
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < n; ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < n && !dominated; ++j)
            dominated = j != i && dominates(j, i);
        if (!dominated)
            out.push_back(i);
    }
    return out;
}

SweepResult
runSweep(const SweepSpec& spec, const SweepOptions& opts)
{
    static obs::Counter& c_total = obs::counter("dse.points_total");
    static obs::Counter& c_eval = obs::counter("dse.points_evaluated");
    static obs::Counter& c_failed = obs::counter("dse.points_failed");
    static obs::Counter& c_skipped = obs::counter("dse.points_skipped");
    static obs::Counter& c_pareto = obs::counter("dse.points_pareto");
    static obs::Counter& c_hits = obs::counter("dse.cache.hits");
    static obs::Counter& c_misses = obs::counter("dse.cache.misses");

    spec.validate();
    CIM_SPAN("dse.sweep");
    const std::size_t n = spec.pointCount();
    const auto networks = preloadNetworks(spec);

    SweepResult result;
    result.name = spec.name;
    result.paretoObjectives = spec.paretoObjectives;
    for (const Axis& axis : spec.axes)
        result.axisFields.push_back(axis.field);

    const engine::PerActionCacheStats before =
        engine::perActionCacheStats();

    // Points fan out first; leftover threads split each point's
    // per-layer/mapping work (same policy as evaluateNetworkParallel).
    const int threads = std::max(1, opts.threads);
    const int outer = static_cast<int>(std::min<std::size_t>(
        threads, std::max<std::size_t>(n, 1)));
    const int inner = std::max(1, threads / outer);

    result.points.resize(n);
    std::vector<WorkerError> errors =
        parallelForAll(outer, n, [&](std::size_t i) {
            PointResult& pr = result.points[i];
            pr.point = materializePoint(spec, i);
            evaluatePoint(spec, networks, inner, pr);
        });
    // evaluatePoint() swallows everything, so only materializePoint()
    // can leak an exception here; record it as a point failure rather
    // than aborting a mostly-finished sweep.
    for (const WorkerError& we : errors) {
        PointResult& pr = result.points[we.index];
        pr.status = PointStatus::Failed;
        pr.statusDetail = classifyFailure(we.error);
    }

    // Everything below runs post-join in grid order, so counts,
    // frontier, best point, and counters are scheduling-invariant.
    for (const PointResult& pr : result.points) {
        switch (pr.status) {
        case PointStatus::Ok:
            ++result.evaluated;
            break;
        case PointStatus::Failed:
            ++result.failed;
            break;
        case PointStatus::Skipped:
            ++result.skipped;
            break;
        }
    }

    std::vector<std::size_t> okIndices;
    std::vector<std::vector<double>> objectives;
    for (std::size_t i = 0; i < n; ++i) {
        const PointResult& pr = result.points[i];
        if (pr.status != PointStatus::Ok)
            continue;
        okIndices.push_back(i);
        std::vector<double> row;
        row.reserve(spec.paretoObjectives.size());
        for (const std::string& name : spec.paretoObjectives)
            row.push_back(objectiveValue(pr, name));
        objectives.push_back(std::move(row));
    }
    for (std::size_t row : paretoIndices(objectives)) {
        result.frontier.push_back(okIndices[row]);
        result.points[okIndices[row]].onFrontier = true;
    }
    for (std::size_t row = 0; row < okIndices.size(); ++row) {
        if (result.bestIndex == static_cast<std::size_t>(-1) ||
            objectives[row][0] <
                objectiveValue(result.points[result.bestIndex],
                               spec.paretoObjectives[0])) {
            result.bestIndex = okIndices[row];
        }
    }

    const engine::PerActionCacheStats after =
        engine::perActionCacheStats();
    result.cacheHits = after.hits - before.hits;
    result.cacheMisses = after.misses - before.misses;

    c_total.add(n);
    c_eval.add(result.evaluated);
    c_failed.add(result.failed);
    c_skipped.add(result.skipped);
    c_pareto.add(result.frontier.size());
    c_hits.add(result.cacheHits);
    c_misses.add(result.cacheMisses);
    return result;
}

std::vector<PointResult>
forEachPoint(const SweepSpec& spec, int threads,
             const std::function<void(const SweepPoint&)>& fn)
{
    spec.validateGrid();
    const std::size_t n = spec.pointCount();
    std::vector<PointResult> results(n);
    parallelForAll(std::max(1, threads), n, [&](std::size_t i) {
        PointResult& pr = results[i];
        pr.point = materializePoint(spec, i);
        std::string reason;
        if (!pointIsValid(spec, pr.point, &reason)) {
            pr.status = PointStatus::Skipped;
            pr.statusDetail = reason;
            return;
        }
        try {
            fn(pr.point);
            pr.status = PointStatus::Ok;
        } catch (...) {
            pr.status = PointStatus::Failed;
            pr.statusDetail = classifyFailure(std::current_exception());
        }
    });
    return results;
}

} // namespace cimloop::dse
