#include "cimloop/engine/arch.hh"

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::engine {

int
Arch::inputBitsFor(const workload::Layer& layer) const
{
    return rep.inputBits > 0 ? rep.inputBits : layer.inputBits;
}

int
Arch::weightBitsFor(const workload::Layer& layer) const
{
    return rep.weightBits > 0 ? rep.weightBits : layer.weightBits;
}

std::int64_t
Arch::inputSlices(const workload::Layer& layer) const
{
    CIM_ASSERT(rep.dacBits >= 1, "dacBits must be >= 1");
    return ceilDiv(inputBitsFor(layer), rep.dacBits);
}

std::int64_t
Arch::weightSlices(const workload::Layer& layer) const
{
    CIM_ASSERT(rep.cellBits >= 1, "cellBits must be >= 1");
    return ceilDiv(weightBitsFor(layer), rep.cellBits);
}

workload::Layer
Arch::extendLayer(const workload::Layer& layer) const
{
    workload::Layer ext = layer;
    ext.dims[workload::dimIndex(workload::Dim::IB)] = inputSlices(layer);
    ext.dims[workload::dimIndex(workload::Dim::WB)] = weightSlices(layer);
    ext.inputBits = inputBitsFor(layer);
    ext.weightBits = weightBitsFor(layer);
    ext.outputBits = rep.outputBits;
    return ext;
}

} // namespace cimloop::engine
