#include "cimloop/engine/evaluate.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <limits>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "cimloop/common/arena.hh"
#include "cimloop/common/error.hh"
#include "cimloop/common/log.hh"
#include "cimloop/common/parallel.hh"
#include "cimloop/common/request_context.hh"
#include "cimloop/common/util.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/layout/layout.hh"
#include "cimloop/models/bankconflict.hh"
#include "cimloop/obs/obs.hh"

namespace cimloop::engine {

using dist::EncodedTensor;
using spec::tensorIndex;
using workload::TensorKind;

namespace {

constexpr int kI = tensorIndex(TensorKind::Input);
constexpr int kW = tensorIndex(TensorKind::Weight);
constexpr int kO = tensorIndex(TensorKind::Output);

} // namespace

PerActionTable
precompute(const Arch& arch, const workload::Layer& layer,
           const dist::OperandProfile* profile_override)
{
    CIM_SPAN("engine.precompute");
    // Precompute is the heaviest Pmf churn site (three encodes, two slice
    // mixtures, fault perturbation): one arena scope bounds all the
    // lattice-kernel scratch the nested dist calls allocate, so the
    // thread's arena is rewound in one step when the table is built.
    ArenaScope scratch(scratchArena());
    PerActionTable table;
    table.extLayer = arch.extendLayer(layer);

    if (profile_override) {
        table.profile = *profile_override;
    } else {
        const std::string network =
            layer.network.empty() ? layer.name : layer.network;
        table.profile = dist::synthesizeOperands(
            network, layer.index,
            std::max(layer.networkLayers, layer.index + 1),
            arch.inputBitsFor(layer), arch.weightBitsFor(layer));
    }

    // Encode at full precision, then slice per the representation spec.
    EncodedTensor in_full = dist::encodeOperands(
        table.profile.inputs, arch.rep.inputEncoding,
        arch.inputBitsFor(layer));
    EncodedTensor wt_full = dist::encodeOperands(
        table.profile.weights, arch.rep.weightEncoding,
        arch.weightBitsFor(layer));
    EncodedTensor out_full = dist::encodeOperands(
        table.profile.outputs, dist::Encoding::TwosComplement,
        arch.rep.outputBits);

    EncodedTensor in_sliced = dist::sliceMixture(in_full, arch.rep.dacBits);
    EncodedTensor wt_sliced = dist::sliceMixture(wt_full, arch.rep.cellBits);

    // Device faults perturb what the ANALOG domain sees: the weight-slice
    // codes gain stuck-at atoms and variance-inflated levels. Digital
    // storage (buffers, DRAM, shift-add) keeps the ideal representation —
    // faults live in the array, not in what was written to it.
    EncodedTensor wt_faulty = wt_sliced;
    if (arch.faults.cellFaultsEnabled()) {
        wt_faulty.codes = faults::perturbedCellCodes(
            arch.faults, wt_sliced.codes, wt_sliced.maxCode());
    }

    models::PluginRegistry& registry = models::PluginRegistry::instance();
    table.nodes.reserve(arch.hierarchy.nodes.size());

    for (const spec::SpecNode& node : arch.hierarchy.nodes) {
        std::string klass = node.klass.empty() ? "Wire" : node.klass;
        std::string klass_lower = toLower(klass);
        bool analog = klass_lower == "sramcell" ||
                      klass_lower == "reramcell" ||
                      klass_lower == "capacitormac" ||
                      klass_lower == "analogadder" ||
                      klass_lower == "analogaccumulator" ||
                      klass_lower == "adc";

        models::ComponentContext ctx;
        ctx.node = &node;
        ctx.technologyNm = arch.technologyNm;
        ctx.supplyVoltage = arch.supplyVoltage;

        // Input/weight traffic is counted in slice units everywhere (the
        // IB/WB dims are tensor-relevant), so every component sees the
        // per-slice representation; output traffic is whole partial
        // words. The ADC digitizes column sums at its own resolution.
        ctx.tensors[kI] = in_sliced;
        ctx.tensors[kW] = analog ? wt_faulty : wt_sliced;
        ctx.tensors[kO] = out_full;
        if (klass_lower == "adc") {
            int res = static_cast<int>(node.attrInt("resolution", 8));
            ctx.tensors[kO] = dist::encodeOperands(
                table.profile.outputs, dist::Encoding::Offset, res);
            if (arch.faults.adcFaultsEnabled()) {
                ctx.tensors[kO].codes = faults::perturbedAdcCodes(
                    arch.faults, ctx.tensors[kO].codes,
                    ctx.tensors[kO].maxCode());
            }
        }

        table.nodes.push_back(registry.require(klass).estimate(ctx));
    }
    return table;
}

std::string
archCacheKey(const Arch& arch)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << arch.name << '\x1f' << arch.hierarchy.toYamlText() << '\x1f'
        << static_cast<int>(arch.rep.inputEncoding) << ' '
        << static_cast<int>(arch.rep.weightEncoding) << ' '
        << arch.rep.inputBits << ' ' << arch.rep.weightBits << ' '
        << arch.rep.outputBits << ' ' << arch.rep.dacBits << ' '
        << arch.rep.cellBits << ' ' << arch.technologyNm << ' '
        << arch.supplyVoltage << ' ' << arch.includeLeakage << '\x1f'
        << arch.faults.stuckOffRate << ' ' << arch.faults.stuckOnRate << ' '
        << arch.faults.conductanceSigma << ' ' << arch.faults.adcOffset
        << ' ' << arch.faults.adcNoiseSigma << ' ' << arch.faults.seed;
    return oss.str();
}

std::string
perActionKey(const Arch& arch, const workload::Layer& layer)
{
    std::ostringstream oss;
    oss << archCacheKey(arch) << '\x1f'
        << layer.network << '\x1f' << layer.name << '\x1f' << layer.index
        << ' ' << layer.networkLayers << ' ' << layer.inputBits << ' '
        << layer.weightBits << ' ' << layer.outputBits;
    for (std::int64_t d : layer.dims)
        oss << ' ' << d;
    return oss.str();
}

std::size_t
perActionTableFootprint(const PerActionTable& table)
{
    // Approximate heap bytes: the three operand PMFs dominate (16 bytes
    // per support point), plus the component estimates and the layer's
    // strings. The constant covers map-node and future overhead; the
    // budget is a capacity-planning knob, not an allocator audit.
    std::size_t bytes = 256;
    bytes += 16 * (table.profile.inputs.size() +
                   table.profile.weights.size() +
                   table.profile.outputs.size());
    bytes += table.nodes.size() * sizeof(models::ComponentEstimate);
    bytes += table.extLayer.name.size() + table.extLayer.network.size();
    return bytes;
}

namespace {

struct PerActionCache
{
    struct Entry
    {
        // Single-flight: the entry is a shared future so concurrent
        // misses on one key compute the table exactly once (the claimer)
        // while racers wait on the result. Besides deduplicating work,
        // this makes hit and miss counts scheduling-invariant
        // (misses == unique keys while nothing is evicted), which the
        // metrics determinism test relies on.
        std::shared_future<std::shared_ptr<const PerActionTable>> future;
        std::uint64_t lastUsed = 0; //!< recency tick (hits refresh it)
        std::size_t bytes = 0;      //!< footprint once completed
        bool ready = false;         //!< completed (evictable) vs in flight
    };

    std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t tick = 0;        //!< monotonic recency clock
    std::size_t totalBytes = 0;    //!< sum over completed entries
    std::size_t budgetBytes = 0;   //!< 0 = unlimited

    /** Evicts completed LRU entries until the budget fits. Caller holds
     *  the mutex. In-flight entries are pinned (their size is unknown
     *  and a waiter holds the future anyway). */
    void enforceBudgetLocked()
    {
        static obs::Counter& obs_evictions =
            obs::counter("engine.per_action_cache.evictions");
        if (budgetBytes == 0)
            return;
        while (totalBytes > budgetBytes) {
            auto victim = entries.end();
            for (auto it = entries.begin(); it != entries.end(); ++it) {
                if (!it->second.ready)
                    continue;
                if (victim == entries.end() ||
                    it->second.lastUsed < victim->second.lastUsed)
                    victim = it;
            }
            if (victim == entries.end())
                break; // everything resident is still in flight
            totalBytes -= victim->second.bytes;
            entries.erase(victim);
            ++evictions;
            obs_evictions.add();
        }
    }
};

PerActionCache&
perActionCache()
{
    static PerActionCache cache;
    return cache;
}

} // namespace

std::shared_ptr<const PerActionTable>
cachedPrecompute(const Arch& arch, const workload::Layer& layer)
{
    static obs::Counter& obs_hits =
        obs::counter("engine.per_action_cache.hits");
    static obs::Counter& obs_misses =
        obs::counter("engine.per_action_cache.misses");
    PerActionCache& cache = perActionCache();
    const std::string key = perActionKey(arch, layer);
    std::promise<std::shared_ptr<const PerActionTable>> promise;
    std::shared_future<std::shared_ptr<const PerActionTable>> future;
    RequestStats* request_stats = currentRequestStats();
    bool claimed = false;
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto [it, inserted] = cache.entries.try_emplace(key);
        it->second.lastUsed = ++cache.tick;
        if (inserted) {
            it->second.future = promise.get_future().share();
            claimed = true;
            ++cache.misses;
            obs_misses.add();
            if (request_stats)
                request_stats->cacheMisses.fetch_add(
                    1, std::memory_order_relaxed);
        } else {
            ++cache.hits;
            obs_hits.add();
            if (request_stats)
                request_stats->cacheHits.fetch_add(
                    1, std::memory_order_relaxed);
        }
        future = it->second.future;
    }
    if (claimed) {
        // Synthesize outside the lock; waiters block on the future.
        std::size_t bytes = 64 + key.size();
        try {
            auto table = std::make_shared<const PerActionTable>(
                precompute(arch, layer));
            bytes += perActionTableFootprint(*table);
            promise.set_value(std::move(table));
        } catch (...) {
            // Keep the poisoned entry: the inputs are immutable, so a
            // retry would fail identically, and dropping it would make
            // hit/miss counts depend on whether a second caller arrived
            // before or after the failure — breaking the
            // misses == unique keys invariant sweeps over failing
            // design points rely on. Later callers rethrow the cached
            // exception (and count as hits).
            promise.set_exception(std::current_exception());
        }
        // Mark the entry completed and charge its footprint; the entry
        // may already be gone when clearPerActionCache() raced with the
        // computation. Eviction runs only now that the size is known.
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.entries.find(key);
        if (it != cache.entries.end() && !it->second.ready) {
            it->second.ready = true;
            it->second.bytes = bytes;
            cache.totalBytes += bytes;
            cache.enforceBudgetLocked();
        }
    }
    return future.get();
}

void
setPerActionCacheBudget(std::size_t bytes)
{
    PerActionCache& cache = perActionCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.budgetBytes = bytes;
    cache.enforceBudgetLocked();
}

bool
perActionCacheContains(const std::string& key)
{
    PerActionCache& cache = perActionCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.entries.find(key) != cache.entries.end();
}

PerActionCacheStats
perActionCacheStats()
{
    PerActionCache& cache = perActionCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return {cache.hits,      cache.misses,      cache.entries.size(),
            cache.totalBytes, cache.evictions,
            static_cast<std::uint64_t>(cache.budgetBytes)};
}

void
clearPerActionCache()
{
    PerActionCache& cache = perActionCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.entries.clear();
    cache.hits = 0;
    cache.misses = 0;
    cache.evictions = 0;
    cache.totalBytes = 0;
    // The budget is configuration, not state: it survives a clear.
}

double
Evaluation::energyPerMacPj() const
{
    return macs > 0.0 ? energyPj / macs : 0.0;
}

double
Evaluation::topsPerWatt() const
{
    // TOPS/W = (2 ops/MAC x MACs) / (energy in pJ) exactly.
    return energyPj > 0.0 ? 2.0 * macs / energyPj : 0.0;
}

double
Evaluation::macsPerSecond() const
{
    return latencyNs > 0.0 ? macs / (latencyNs * 1e-9) : 0.0;
}

double
Evaluation::topsPerMm2() const
{
    double tops = 2.0 * macsPerSecond() / 1e12;
    double mm2 = areaUm2 / 1e6;
    return mm2 > 0.0 ? tops / mm2 : 0.0;
}

Evaluation
evaluate(const Arch& arch, const PerActionTable& table,
         const mapping::Mapping& mapping)
{
    if (arch.layout.empty())
        return evaluate(arch, table, mapping, nullptr);
    layout::ResolvedLayout resolved =
        layout::resolveLayout(arch.hierarchy, arch.layout);
    return evaluate(arch, table, mapping, &resolved);
}

Evaluation
evaluate(const Arch& arch, const PerActionTable& table,
         const mapping::Mapping& mapping,
         const layout::ResolvedLayout* layout)
{
    Evaluation ev;
    mapping::NestResult nest =
        mapping::analyzeNest(arch.hierarchy, mapping, table.extLayer);
    if (!nest.valid) {
        ev.invalidReason = nest.invalidReason;
        return ev;
    }

    const std::size_t n = arch.hierarchy.nodes.size();
    CIM_ASSERT(table.nodes.size() == n,
               "per-action table does not match the hierarchy");

    ev.valid = true;
    ev.steps = nest.steps;
    ev.utilization = nest.nodes.back().utilization;
    ev.nodeEnergyPj.assign(n, 0.0);
    ev.nodeAreaUm2.assign(n, 0.0);

    std::int64_t slice_ops = table.extLayer.size(workload::Dim::IB) *
                             table.extLayer.size(workload::Dim::WB);
    ev.macs = nest.totalOps / static_cast<double>(slice_ops);

    double step_time_ns = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const models::ComponentEstimate& est = table.nodes[i];
        const mapping::NodeCounts& counts = nest.nodes[i];

        double node_energy = 0.0;
        double node_actions = 0.0;
        for (TensorKind t : workload::kAllTensors) {
            int ti = tensorIndex(t);
            const mapping::TensorCounts& tc = counts.tensors[ti];
            node_energy += tc.reads * est.readEnergyPj[ti];
            node_energy += tc.fills * est.fillEnergyPj[ti];
            node_energy += tc.actions * est.actionEnergyPj[ti];
            node_actions += tc.reads + tc.fills + tc.actions;
        }

        // Analog arrays activate whole rows/columns: cells the mapping
        // leaves idle still conduct at a fraction of the active-cell
        // cost. This is what makes oversized arrays lose at the macro
        // level when tensors underutilize them (paper Fig. 2a).
        double idle_fraction =
            arch.hierarchy.nodes[i].attrDouble("idle_fraction", 0.0);
        if (idle_fraction > 0.0 &&
            counts.usedInstances < counts.totalInstances) {
            double idle_ratio =
                static_cast<double>(counts.totalInstances) /
                    static_cast<double>(std::max<std::int64_t>(
                        counts.usedInstances, 1)) -
                1.0;
            node_energy *= 1.0 + idle_fraction * idle_ratio;
        }
        ev.nodeEnergyPj[i] = node_energy;
        ev.energyPj += node_energy;

        ev.nodeAreaUm2[i] =
            est.areaUm2 * static_cast<double>(counts.totalInstances);
        ev.areaUm2 += ev.nodeAreaUm2[i];

        // Physical layouts serialize bank-conflicting accesses: the node
        // issues extra cycles to serve the same traffic, so its timing
        // demand (not its energy) scales by the per-tensor slowdown.
        double timed_actions = node_actions;
        if (layout && layout->any && layout->nodeAny(i)) {
            spec::PerTensor<double> slow = models::bankConflictSlowdowns(
                *layout, arch.hierarchy, i, mapping);
            timed_actions = 0.0;
            for (TensorKind t : workload::kAllTensors) {
                int ti = tensorIndex(t);
                const mapping::TensorCounts& tc = counts.tensors[ti];
                timed_actions +=
                    (tc.reads + tc.fills + tc.actions) * slow[ti];
            }
            ev.bankConflictCycles +=
                (timed_actions - node_actions) /
                static_cast<double>(
                    std::max<std::int64_t>(counts.usedInstances, 1));
        }

        // Throughput: every component must keep pace; the step time is
        // set by the slowest (latency x actions per step per instance).
        if (est.latencyNs > 0.0 && timed_actions > 0.0) {
            double per_step_per_instance =
                timed_actions /
                (static_cast<double>(nest.steps) *
                 static_cast<double>(std::max<std::int64_t>(
                     counts.usedInstances, 1)));
            step_time_ns = std::max(step_time_ns,
                                    est.latencyNs * per_step_per_instance);
        }
    }
    ev.latencyNs = static_cast<double>(nest.steps) * step_time_ns;

    // Leakage: static power of every built instance over the execution
    // time (uW x ns = fJ). Charged per node so breakdowns include it.
    if (arch.includeLeakage && ev.latencyNs > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
            double leak_pj = table.nodes[i].staticPowerUw *
                             static_cast<double>(
                                 nest.nodes[i].totalInstances) *
                             ev.latencyNs * 1e-3;
            ev.nodeEnergyPj[i] += leak_pj;
            ev.energyPj += leak_pj;
        }
    }
    return ev;
}

namespace {

double
objectiveValue(Objective obj, const Evaluation& ev)
{
    switch (obj) {
      case Objective::Energy:
        return ev.energyPj;
      case Objective::Edp:
        return ev.energyPj * ev.latencyNs;
      case Objective::Delay:
        return ev.latencyNs;
    }
    CIM_PANIC("unknown objective");
}

/**
 * Shards per search. Fixed (never a function of the thread count or the
 * budget split) so the sampled mapspace — and therefore the winner — is
 * the same no matter how shards are scheduled over threads.
 */
constexpr int kSearchShards = 16;

/** One shard's best under the (value, shard, sample) total order. */
struct ShardOutcome
{
    bool have = false;
    double value = 0.0;
    mapping::Mapping best;
    Evaluation eval;
    int evaluated = 0;
    int invalid = 0;
    int rejected = 0;
    bool exhausted = false;
};

ShardOutcome
runSearchShard(const Arch& arch, const PerActionTable& table,
               const mapping::Mapper& mapper, Objective objective,
               std::uint64_t seed, int shard, int budget,
               const layout::ResolvedLayout* layout,
               const CancelToken* cancel)
{
    ShardOutcome out;
    Rng rng = Rng::forStream(seed, static_cast<std::uint64_t>(shard));
    for (int i = 0; i < budget; ++i) {
        // Poll between samples, not mid-evaluation. The shard just stops
        // drawing; searchMappings notices the token after the join and
        // abandons the whole search, so a cancelled search never leaks a
        // best computed from a truncated sample set.
        if (cancel && cancel->cancelled())
            break;
        std::optional<mapping::Mapping> m = mapper.next(rng, out.rejected);
        if (!m) {
            out.exhausted = true;
            break;
        }
        Evaluation ev = evaluate(arch, table, *m, layout);
        if (!ev.valid) {
            ++out.invalid;
            continue;
        }
        ++out.evaluated;
        double value = objectiveValue(objective, ev);
        // Strict < keeps the lowest sample index among equal values.
        if (!out.have || value < out.value) {
            out.have = true;
            out.value = value;
            out.eval = std::move(ev);
            out.best = std::move(*m);
        }
    }
    return out;
}

} // namespace

SearchResult
searchMappings(const Arch& arch, const workload::Layer& layer,
               int num_mappings, std::uint64_t seed, Objective objective,
               int threads, const CancelToken* cancel)
{
    CIM_SPAN("engine.search_layer");
    if (cancel)
        cancel->throwIfCancelled("mapping search for layer '" + layer.name +
                                 "'");
    std::shared_ptr<const PerActionTable> table =
        cachedPrecompute(arch, layer);
    const mapping::Mapper mapper(arch.hierarchy, table->extLayer,
                                 {.seed = seed});

    // Layout candidates: the co-search's outer enumeration, the single
    // fixed arch.layout, or the single empty "no layout" spec. The
    // candidate order is fixed (part of the determinism contract) and
    // every candidate is resolved once, up front.
    std::vector<layout::LayoutSpec> candidates;
    if (arch.layoutSearch)
        candidates = layout::enumerateLayouts(arch.hierarchy);
    if (candidates.empty())
        candidates.push_back(arch.layout);
    const bool layouts_active = arch.layoutSearch || !arch.layout.empty();
    std::vector<layout::ResolvedLayout> resolved;
    resolved.reserve(candidates.size());
    for (const layout::LayoutSpec& c : candidates)
        resolved.push_back(layout::resolveLayout(arch.hierarchy, c));
    auto layout_of = [&](std::size_t l) -> const layout::ResolvedLayout* {
        return resolved[l].any ? &resolved[l] : nullptr;
    };

    SearchResult result;
    bool have_best = false;
    double best_value = 0.0;
    std::size_t best_layout = 0;

    const std::size_t num_layouts = candidates.size();
    const int shards = std::min(kSearchShards, std::max(num_mappings, 0));

    // One work unit per (layout, shard). Each shard re-draws the SAME
    // Rng stream (seed, shard) for every layout candidate, so every
    // candidate scores the identical mapping sample set and the winner
    // is a joint optimum over layout x mapping — and, because the unit
    // decomposition is scheduling-independent, results stay
    // bit-identical for any thread count.
    std::vector<ShardOutcome> outcomes(num_layouts *
                                       static_cast<std::size_t>(shards));
    parallelFor(threads, outcomes.size(),
                [&](std::size_t u) {
                    std::size_t l = u / static_cast<std::size_t>(shards);
                    int shard = static_cast<int>(
                        u % static_cast<std::size_t>(shards));
                    int budget = num_mappings / shards +
                                 (shard < num_mappings % shards ? 1 : 0);
                    outcomes[u] = runSearchShard(arch, *table, mapper,
                                                 objective, seed, shard,
                                                 budget, layout_of(l),
                                                 cancel);
                },
                cancel);

    // All-or-nothing: a token observed mid-search (by a shard's sample
    // loop, after parallelFor's own poll let every shard start) abandons
    // the search before any counter bumps, so cancelled searches leave no
    // trace in the deterministic obs counters.
    if (cancel)
        cancel->throwIfCancelled("mapping search for layer '" + layer.name +
                                 "'");

    // Deterministic merge realizing the (value, layout, shard, sample)
    // total order: layouts ascending; within a layout the greedy
    // heuristic ahead of every shard (it wins ties), then shards
    // ascending; strict improvement only.
    const mapping::Mapping greedy = mapper.greedy();
    for (std::size_t l = 0; l < num_layouts; ++l) {
        Evaluation ev = evaluate(arch, *table, greedy, layout_of(l));
        if (ev.valid) {
            ++result.evaluated;
            double value = objectiveValue(objective, ev);
            if (!have_best || value < best_value) {
                have_best = true;
                best_value = value;
                best_layout = l;
                result.best = std::move(ev);
                result.bestMapping = greedy;
            }
        } else {
            ++result.invalid;
        }
        for (int s = 0; s < shards; ++s) {
            ShardOutcome& out =
                outcomes[l * static_cast<std::size_t>(shards) +
                         static_cast<std::size_t>(s)];
            result.evaluated += out.evaluated;
            result.invalid += out.invalid;
            result.rejected += out.rejected;
            result.exhausted += out.exhausted ? 1 : 0;
            if (out.have && (!have_best || out.value < best_value)) {
                have_best = true;
                best_value = out.value;
                best_layout = l;
                result.best = std::move(out.eval);
                result.bestMapping = std::move(out.best);
            }
        }
    }
    if (layouts_active) {
        result.layoutsEvaluated = static_cast<int>(num_layouts);
        if (have_best)
            result.bestLayout = candidates[best_layout];
    }

    // Counted once, post-merge, so the totals are scheduling-invariant.
    static obs::Counter& c_eval = obs::counter("mapping.search.evaluated");
    static obs::Counter& c_invalid = obs::counter("mapping.search.invalid");
    static obs::Counter& c_rej = obs::counter("mapping.search.rejected");
    static obs::Counter& c_exh =
        obs::counter("mapping.search.exhausted_shards");
    c_eval.add(static_cast<std::uint64_t>(result.evaluated));
    c_invalid.add(static_cast<std::uint64_t>(result.invalid));
    c_rej.add(static_cast<std::uint64_t>(result.rejected));
    c_exh.add(static_cast<std::uint64_t>(result.exhausted));
    // The layout counters register lazily, like engine.cancelled_layers:
    // layout-free runs keep their golden-pinned counter set byte-for-byte.
    if (layouts_active) {
        static obs::Counter& c_layouts =
            obs::counter("mapping.layouts_evaluated");
        static obs::Counter& c_conflict =
            obs::counter("engine.bank_conflict_cycles");
        c_layouts.add(static_cast<std::uint64_t>(num_layouts));
        c_conflict.add(static_cast<std::uint64_t>(std::llround(
            std::max(result.best.bankConflictCycles, 0.0))));
    }

    if (result.exhausted > 0) {
        warn("mapping search for layer '", layer.name, "' on arch '",
             arch.name, "' stopped early in ", result.exhausted, " of ",
             static_cast<int>(num_layouts) * shards, " shards: drew ",
             result.evaluated + result.invalid, " of ",
             static_cast<int>(num_layouts) * (num_mappings + 1),
             " budgeted samples (", result.rejected,
             " rejected by the mapper)");
    }
    if (!have_best) {
        CIM_FATAL("no valid mapping found for layer '", layer.name,
                  "' on arch '", arch.name, "' (", result.invalid,
                  " invalid samples, ", result.rejected, " rejected)");
    }
    return result;
}

namespace {

/** Classifies a captured exception for a LayerDiagnostic. */
LayerDiagnostic
classifyLayerError(std::size_t index, const workload::Layer& layer,
                   std::exception_ptr error)
{
    LayerDiagnostic diag;
    diag.layerIndex = index;
    diag.layer = layer.name;
    try {
        std::rethrow_exception(error);
    } catch (const FatalError& e) {
        diag.kind = "fatal";
        diag.message = e.what();
    } catch (const PanicError& e) {
        diag.kind = "panic";
        diag.message = e.what();
    } catch (const CancelledError& e) {
        diag.kind = "cancelled";
        diag.message = e.what();
    } catch (const std::exception& e) {
        diag.kind = "exception";
        diag.message = e.what();
    } catch (...) {
        diag.kind = "exception";
        diag.message = "unknown exception";
    }
    return diag;
}

/** Folds per-layer results (skipping invalid slots) into totals. */
NetworkEvaluation
accumulateNetwork(const workload::Network& network,
                  std::vector<SearchResult> results,
                  std::vector<LayerDiagnostic> diagnostics)
{
    static obs::Counter& c_ok = obs::counter("engine.layers.evaluated");
    static obs::Counter& c_failed = obs::counter("engine.layers.failed");
    NetworkEvaluation net;
    net.layers.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].best.valid) {
            c_ok.add();
            double reps = static_cast<double>(network.layers[i].count);
            net.energyPj += results[i].best.energyPj * reps;
            net.latencyNs += results[i].best.latencyNs * reps;
            net.macs += results[i].best.macs * reps;
            net.areaUm2 = std::max(net.areaUm2, results[i].best.areaUm2);
        }
        net.layers.push_back(std::move(results[i]));
    }
    // Cancelled layers are not failures: they would have succeeded given
    // time. Counting them apart keeps engine.layers.failed meaningful,
    // and the cancelled counter registers lazily so it never appears in
    // the (golden-pinned) counter set of uncancelled runs.
    std::size_t cancelled = 0;
    for (const LayerDiagnostic& d : diagnostics)
        cancelled += d.kind == "cancelled" ? 1 : 0;
    c_failed.add(diagnostics.size() - cancelled);
    if (cancelled > 0) {
        static obs::Counter& c_cancelled =
            obs::counter("engine.cancelled_layers");
        c_cancelled.add(cancelled);
    }
    net.diagnostics = std::move(diagnostics);
    // Library users get the run's metrics without going through the CLI.
    net.metrics = obs::snapshot();
    return net;
}

} // namespace

NetworkEvaluation
evaluateNetwork(const Arch& arch, const workload::Network& network,
                int mappings_per_layer, std::uint64_t seed,
                Objective objective, bool keep_going,
                const CancelToken* cancel)
{
    CIM_SPAN("engine.evaluate_network");
    std::vector<SearchResult> results(network.layers.size());
    std::vector<LayerDiagnostic> diagnostics;
    for (std::size_t i = 0; i < network.layers.size(); ++i) {
        const workload::Layer& layer = network.layers[i];
        // The layer boundary is where cancellation acts: layers already
        // searched keep their byte-identical results; this layer and the
        // rest are abandoned whole.
        if (cancel && cancel->cancelled()) {
            if (!keep_going)
                cancel->throwIfCancelled("network evaluation at layer '" +
                                         layer.name + "'");
            for (std::size_t j = i; j < network.layers.size(); ++j) {
                diagnostics.push_back(classifyLayerError(
                    j, network.layers[j],
                    std::make_exception_ptr(CancelledError(
                        cancel->reason(),
                        "layer '" + network.layers[j].name + "'"))));
            }
            break;
        }
        if (!keep_going) {
            results[i] = searchMappings(arch, layer, mappings_per_layer,
                                        seed + layer.index, objective, 1,
                                        cancel);
            continue;
        }
        try {
            results[i] = searchMappings(arch, layer, mappings_per_layer,
                                        seed + layer.index, objective, 1,
                                        cancel);
        } catch (...) {
            diagnostics.push_back(classifyLayerError(
                i, layer, std::current_exception()));
        }
    }
    return accumulateNetwork(network, std::move(results),
                             std::move(diagnostics));
}

NetworkEvaluation
evaluateNetworkParallel(const Arch& arch, const workload::Network& network,
                        int threads, int mappings_per_layer,
                        std::uint64_t seed, Objective objective,
                        bool keep_going, const CancelToken* cancel)
{
    if (threads <= 1 || network.layers.empty())
        return evaluateNetwork(arch, network, mappings_per_layer, seed,
                               objective, keep_going, cancel);

    // Layers fan out first; when the network has fewer distinct layers
    // than threads (one repeated transformer block, say), the leftover
    // threads split each layer's sample budget instead of idling.
    const std::size_t n = network.layers.size();
    const int outer = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads), n));
    const int inner = std::max(1, threads / outer);

    std::vector<SearchResult> results(n);
    auto work = [&](std::size_t i) {
        const workload::Layer& layer = network.layers[i];
        results[i] = searchMappings(arch, layer, mappings_per_layer,
                                    seed + layer.index, objective, inner,
                                    cancel);
    };

    std::vector<LayerDiagnostic> diagnostics;
    if (keep_going) {
        // Every layer runs regardless of failures; each failure becomes
        // a diagnostic on the result instead of an exception. A fired
        // cancel token makes the unrun layers come back as CancelledError
        // worker errors, which classify as kind-"cancelled" diagnostics.
        for (const WorkerError& we : parallelForAll(outer, n, work, cancel)) {
            diagnostics.push_back(classifyLayerError(
                we.index, network.layers[we.index], we.error));
        }
    } else {
        // parallelFor aggregates the captured worker exceptions and
        // rethrows after joining, so unmappable layers surface as the
        // same FatalError surface the serial path gives instead of
        // std::terminate.
        parallelFor(outer, n, work, cancel);
    }

    return accumulateNetwork(network, std::move(results),
                             std::move(diagnostics));
}

std::string
formatReport(const Arch& arch, const Evaluation& ev)
{
    std::ostringstream oss;
    oss << "=== " << arch.name << " ===\n";
    if (!ev.valid) {
        oss << "invalid mapping: " << ev.invalidReason << "\n";
        return oss.str();
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%-20s %14s %8s %12s\n", "component",
                  "energy (pJ)", "share", "area (um^2)");
    oss << line;
    for (std::size_t i = 0; i < arch.hierarchy.nodes.size(); ++i) {
        const spec::SpecNode& node = arch.hierarchy.nodes[i];
        if (node.kind == spec::SpecNode::Kind::Container &&
            ev.nodeEnergyPj[i] == 0.0) {
            continue; // free structural nodes clutter the report
        }
        double share = ev.energyPj > 0.0
            ? 100.0 * ev.nodeEnergyPj[i] / ev.energyPj
            : 0.0;
        double area = i < ev.nodeAreaUm2.size() ? ev.nodeAreaUm2[i] : 0.0;
        std::snprintf(line, sizeof(line), "%-20s %14.4g %7.1f%% %12.4g\n",
                      node.name.c_str(), ev.nodeEnergyPj[i], share, area);
        oss << line;
    }
    std::snprintf(line, sizeof(line),
                  "total: %.4g pJ | %.4g pJ/MAC | %.4g TOPS/W | "
                  "%.4g mm^2 | %.4g ms | util %.0f%%\n",
                  ev.energyPj, ev.energyPerMacPj(), ev.topsPerWatt(),
                  ev.areaUm2 / 1e6, ev.latencyNs / 1e6,
                  100.0 * ev.utilization);
    oss << line;
    return oss.str();
}

std::vector<ParetoPoint>
paretoFrontier(const Arch& arch, const workload::Layer& layer,
               int num_mappings, std::uint64_t seed)
{
    std::shared_ptr<const PerActionTable> table =
        cachedPrecompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table->extLayer, {.seed = seed});

    std::vector<ParetoPoint> points;
    auto consider = [&](const mapping::Mapping& m) {
        Evaluation ev = evaluate(arch, *table, m);
        if (ev.valid)
            points.push_back({m, std::move(ev)});
    };
    consider(mapper.greedy());
    // Same shard-stream decomposition as searchMappings, so for one seed
    // the frontier explores exactly the sample set the search ranks.
    const int shards = std::min(kSearchShards, std::max(num_mappings, 0));
    for (int shard = 0; shard < shards; ++shard) {
        int budget = num_mappings / shards +
                     (shard < num_mappings % shards ? 1 : 0);
        Rng rng = Rng::forStream(seed, static_cast<std::uint64_t>(shard));
        int rejected = 0;
        for (int i = 0; i < budget; ++i) {
            std::optional<mapping::Mapping> m = mapper.next(rng, rejected);
            if (!m)
                break;
            consider(*m);
        }
    }
    if (points.empty())
        CIM_FATAL("no valid mapping found for layer '", layer.name,
                  "' on arch '", arch.name, "'");

    std::sort(points.begin(), points.end(),
              [](const ParetoPoint& a, const ParetoPoint& b) {
                  if (a.eval.energyPj != b.eval.energyPj)
                      return a.eval.energyPj < b.eval.energyPj;
                  return a.eval.latencyNs < b.eval.latencyNs;
              });
    // Sweep in energy order keeping strict latency improvements.
    std::vector<ParetoPoint> frontier;
    double best_latency = std::numeric_limits<double>::infinity();
    for (ParetoPoint& p : points) {
        if (p.eval.latencyNs < best_latency) {
            best_latency = p.eval.latencyNs;
            frontier.push_back(std::move(p));
        }
    }
    return frontier;
}

std::string
toCsv(const NetworkEvaluation& ev, const workload::Network& network)
{
    CIM_ASSERT(ev.layers.size() == network.layers.size(),
               "evaluation does not match the network");
    std::ostringstream oss;
    oss << "layer,count,macs,energy_pj,latency_ns,utilization,"
           "tops_per_watt\n";
    char line[256];
    for (std::size_t i = 0; i < ev.layers.size(); ++i) {
        const Evaluation& e = ev.layers[i].best;
        std::snprintf(line, sizeof(line),
                      "%s,%lld,%.0f,%.6g,%.6g,%.4f,%.6g\n",
                      network.layers[i].name.c_str(),
                      static_cast<long long>(network.layers[i].count),
                      e.macs, e.energyPj, e.latencyNs, e.utilization,
                      e.topsPerWatt());
        oss << line;
    }
    std::snprintf(line, sizeof(line),
                  "TOTAL,,%.0f,%.6g,%.6g,,%.6g\n", ev.macs, ev.energyPj,
                  ev.latencyNs, ev.topsPerWatt());
    oss << line;
    return oss.str();
}

std::string
toYamlErt(const Arch& arch, const PerActionTable& table)
{
    CIM_ASSERT(table.nodes.size() == arch.hierarchy.nodes.size(),
               "per-action table does not match the hierarchy");
    std::ostringstream oss;
    oss << "# energy reference table for arch '" << arch.name
        << "', layer '" << table.extLayer.name << "'\n";
    oss << "ert:\n";
    char line[160];
    for (std::size_t i = 0; i < table.nodes.size(); ++i) {
        const spec::SpecNode& node = arch.hierarchy.nodes[i];
        const models::ComponentEstimate& est = table.nodes[i];
        oss << "  - node: " << node.name << "\n";
        if (!node.klass.empty())
            oss << "    class: " << node.klass << "\n";
        auto emit = [&](const char* action,
                        const spec::PerTensor<double>& e) {
            for (workload::TensorKind t : workload::kAllTensors) {
                double pj = e[spec::tensorIndex(t)];
                if (pj <= 0.0)
                    continue;
                std::snprintf(line, sizeof(line),
                              "    %s_%s_pj: %.6g\n", action,
                              toLower(workload::tensorName(t)).c_str(),
                              pj);
                oss << line;
            }
        };
        emit("read", est.readEnergyPj);
        emit("fill", est.fillEnergyPj);
        emit("action", est.actionEnergyPj);
        if (est.areaUm2 > 0.0) {
            std::snprintf(line, sizeof(line), "    area_um2: %.6g\n",
                          est.areaUm2);
            oss << line;
        }
        if (est.latencyNs > 0.0) {
            std::snprintf(line, sizeof(line), "    latency_ns: %.6g\n",
                          est.latencyNs);
            oss << line;
        }
        if (est.staticPowerUw > 0.0) {
            std::snprintf(line, sizeof(line), "    static_uw: %.6g\n",
                          est.staticPowerUw);
            oss << line;
        }
    }
    return oss.str();
}

double
NetworkEvaluation::energyPerMacPj() const
{
    return macs > 0.0 ? energyPj / macs : 0.0;
}

double
NetworkEvaluation::topsPerWatt() const
{
    return energyPj > 0.0 ? 2.0 * macs / energyPj : 0.0;
}

} // namespace cimloop::engine
