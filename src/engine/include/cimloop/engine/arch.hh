/**
 * @file
 * An evaluable architecture: a container-hierarchy plus the hardware data
 * representation (encodings and bit slicing) and operating point.
 */
#ifndef CIMLOOP_ENGINE_ARCH_HH
#define CIMLOOP_ENGINE_ARCH_HH

#include <string>

#include "cimloop/dist/encoding.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/layout/layout.hh"
#include "cimloop/spec/hierarchy.hh"
#include "cimloop/workload/layer.hh"

namespace cimloop::engine {

/**
 * How operands are represented in hardware (paper Sec. III-C1b). Slicing
 * widths determine the IB / WB pseudo-dimensions the mapper schedules.
 */
struct RepresentationSpec
{
    dist::Encoding inputEncoding = dist::Encoding::Offset;
    dist::Encoding weightEncoding = dist::Encoding::Offset;

    /** Operand precisions; 0 means "use the layer's bits". */
    int inputBits = 0;
    int weightBits = 0;

    /** Digital partial-sum width at accumulators/buffers. */
    int outputBits = 16;

    /** Bits per input slice (DAC resolution). IB = ceil(in/dac). */
    int dacBits = 1;

    /** Bits per weight slice (bits per memory cell). WB = ceil(wt/cell). */
    int cellBits = 1;
};

/** A complete architecture to evaluate. */
struct Arch
{
    std::string name = "arch";
    spec::Hierarchy hierarchy;
    RepresentationSpec rep;

    /** Process node in nm. */
    double technologyNm = 65.0;

    /** Supply voltage in V; 0 = the node's nominal. */
    double supplyVoltage = 0.0;

    /** Charge static (leakage) power over the layer execution time. */
    bool includeLeakage = true;

    /**
     * Device fault / variation injection (default: none). precompute()
     * applies it analytically: analog components (cell arrays, analog
     * adders/accumulators, the ADC) see the weight-slice PMF perturbed
     * with stuck-at atoms and variance-inflated levels, and the ADC's
     * output codes absorb the offset/noise; digital storage keeps the
     * ideal codes (faults live in the analog array, not the buffers).
     */
    faults::FaultModel faults;

    /**
     * Physical data layout for storage nodes (default: none). When set,
     * evaluate() folds the analytical bank-conflict slowdown into each
     * layer's latency; when empty, buffers stay idealized and results
     * are byte-identical to a layout-unaware build. Layouts change the
     * nest-time model only — per-action energies (precompute) are
     * layout-invariant, so the per-action cache is shared across
     * layouts.
     */
    layout::LayoutSpec layout;

    /**
     * Co-search layouts with mappings: searchMappings() evaluates every
     * enumerateLayouts() candidate against the same sharded sample set
     * and returns the jointly best (layout, mapping). Overrides
     * `layout` when set.
     */
    bool layoutSearch = false;

    /** Effective operand precisions for a layer (rep overrides layer). */
    int inputBitsFor(const workload::Layer& layer) const;
    int weightBitsFor(const workload::Layer& layer) const;

    /** Input slices per operand for a layer. */
    std::int64_t inputSlices(const workload::Layer& layer) const;

    /** Weight slices per operand for a layer. */
    std::int64_t weightSlices(const workload::Layer& layer) const;

    /**
     * Copies @p layer and sets the IB / WB dimensions from the slicing
     * widths, exposing bit slices to the mapper (paper Sec. III-C1b).
     */
    workload::Layer extendLayer(const workload::Layer& layer) const;
};

} // namespace cimloop::engine

#endif // CIMLOOP_ENGINE_ARCH_HH
