/**
 * @file
 * The CiMLoop evaluation engine.
 *
 * Fast statistical pipeline (paper Sec. III-D):
 *  1. precompute() profiles the layer's operand PMFs, applies the
 *     architecture's encodings and slicing, and asks every component
 *     plug-in for its average per-action energy — ONCE per (arch, layer).
 *  2. evaluate() runs the nest analysis for a mapping and multiplies
 *     per-action energies by action counts — no per-value work, so its
 *     cost is independent of tensor sizes and array dimensions, and the
 *     step-1 cost amortizes over thousands of mappings.
 */
#ifndef CIMLOOP_ENGINE_EVALUATE_HH
#define CIMLOOP_ENGINE_EVALUATE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cimloop/common/cancel.hh"
#include "cimloop/dist/operands.hh"
#include "cimloop/engine/arch.hh"
#include "cimloop/mapping/mapper.hh"
#include "cimloop/mapping/nest.hh"
#include "cimloop/models/component.hh"
#include "cimloop/obs/obs.hh"

namespace cimloop::engine {

/** Mapping-invariant per-action energies for one (arch, layer) pair. */
struct PerActionTable
{
    workload::Layer extLayer;       //!< layer with IB/WB dims set
    dist::OperandProfile profile;   //!< operand PMFs used
    std::vector<models::ComponentEstimate> nodes; //!< per hierarchy node
};

/**
 * Computes the per-action table (paper Algorithm 1, lines 3-7).
 * @p profile_override replaces the synthesized operand PMFs; the paper's
 * validation sweeps (Figs. 7, 11) drive macros with specific small/large
 * data values this way.
 */
PerActionTable precompute(const Arch& arch, const workload::Layer& layer,
                          const dist::OperandProfile* profile_override
                          = nullptr);

/**
 * Thread-safe, process-wide cache in front of precompute() (synthesized
 * PMFs only; profile overrides bypass it). The key fingerprints everything
 * the table depends on — the serialized hierarchy, representation spec,
 * operating point, and the layer's identity (network, index, dims, bits) —
 * so repeated searches over the same (arch, layer), e.g. voltage sweeps
 * re-evaluating a network or per-layer searches inside evaluateNetwork,
 * stop re-synthesizing PMFs and re-running plugin estimation. Entries are
 * immutable and shared; they stay alive while any caller holds the pointer
 * even across clearPerActionCache() and LRU eviction.
 *
 * When the calling thread carries a RequestStats context (see
 * cimloop/common/request_context.hh — `cimloop serve` installs one per
 * request, and parallelFor propagates it into workers), every lookup
 * additionally bumps that block's cacheHits/cacheMisses, giving the
 * daemon per-client cache accounting next to the global counters.
 */
std::shared_ptr<const PerActionTable>
cachedPrecompute(const Arch& arch, const workload::Layer& layer);

/**
 * Arms (or, with 0, disarms) a byte budget on the per-action cache,
 * turning it into an explicitly bounded cross-request cache: whenever
 * completed entries exceed the budget, least-recently-used entries are
 * evicted until it fits (entries still being computed are pinned; a hit
 * refreshes recency). Eviction only drops the cache's reference — a
 * caller holding the shared_ptr keeps its table. A re-request of an
 * evicted key is a fresh miss, so with a budget armed the
 * "misses == unique keys" invariant holds only while the working set
 * fits; the one-shot CLI and the sweep engine run unbudgeted (0, the
 * default) and keep the strict invariant. Under concurrent requests the
 * eviction *order* depends on completion timing; with sequential
 * requests it is pinned (pure LRU), which the serve cache tests rely
 * on. Setting a budget below the current footprint evicts immediately.
 */
void setPerActionCacheBudget(std::size_t bytes);

/** True when @p key (a perActionKey()) is currently resident. */
bool perActionCacheContains(const std::string& key);

/** Approximate heap footprint the cache charges one table against the
 *  budget for (exposed so tests can pick byte-accurate tiny budgets). */
std::size_t perActionTableFootprint(const PerActionTable& table);

/**
 * The architecture half of the per-action cache key: everything
 * precompute() reads off the Arch (serialized hierarchy, representation,
 * operating point, fault model), at full double precision so operating
 * points one ULP apart do not alias. Two arches with equal keys produce
 * identical per-action tables for every layer. The DSE journal and the
 * sweep's cross-point cache-economy accounting reuse this fingerprint.
 */
std::string archCacheKey(const Arch& arch);

/** Full cachedPrecompute() key: archCacheKey(arch) plus the layer's
 *  identity (network, name, index, dims, bits). */
std::string perActionKey(const Arch& arch, const workload::Layer& layer);

/** Cache counters for benchmarks and tests. */
struct PerActionCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;       //!< footprint of completed entries
    std::uint64_t evictions = 0;   //!< entries dropped by the LRU budget
    std::uint64_t budgetBytes = 0; //!< armed budget (0 = unlimited)
};

/** Current cachedPrecompute() counters. */
PerActionCacheStats perActionCacheStats();

/** Drops all cached per-action tables and resets the counters. */
void clearPerActionCache();

/** Energy/area/performance results for one mapping of one layer. */
struct Evaluation
{
    bool valid = false;
    std::string invalidReason;

    double energyPj = 0.0;    //!< total layer energy
    double areaUm2 = 0.0;     //!< built area (all instances)
    double latencyNs = 0.0;   //!< layer execution time
    double macs = 0.0;        //!< workload MACs (slice dims excluded)
    std::int64_t steps = 1;   //!< temporal steps
    double utilization = 1.0; //!< innermost-mesh utilization

    /**
     * Extra serialized accesses charged by the bank-conflict model,
     * summed over storage nodes (per instance). Exactly 0 when no
     * layout is in effect or the layout is conflict-free.
     */
    double bankConflictCycles = 0.0;

    /** Per-node energy breakdown, parallel to hierarchy nodes. */
    std::vector<double> nodeEnergyPj;

    /** Per-node built area (all instances), parallel to hierarchy nodes. */
    std::vector<double> nodeAreaUm2;

    /** Energy per MAC, pJ. */
    double energyPerMacPj() const;

    /** TOPS/W counting 2 ops per MAC. */
    double topsPerWatt() const;

    /** MACs per second. */
    double macsPerSecond() const;

    /** TOPS/mm^2 counting 2 ops per MAC. */
    double topsPerMm2() const;
};

/**
 * Evaluates one mapping using a precomputed table (Algorithm 1, 8-10).
 * When arch.layout is non-empty it is resolved against the hierarchy
 * and the bank-conflict slowdown folds into the latency; per-action
 * energies never depend on the layout.
 */
Evaluation evaluate(const Arch& arch, const PerActionTable& table,
                    const mapping::Mapping& mapping);

/**
 * Same, with an already-resolved layout (nullptr = none). The search
 * loop resolves each layout candidate once and reuses it across every
 * sample; the three-argument overload resolves arch.layout per call.
 */
Evaluation evaluate(const Arch& arch, const PerActionTable& table,
                    const mapping::Mapping& mapping,
                    const layout::ResolvedLayout* layout);

/** Search objective. */
enum class Objective { Energy, Edp, Delay };

/** Outcome of a mapping search for one layer. */
struct SearchResult
{
    mapping::Mapping bestMapping;
    Evaluation best;
    int evaluated = 0; //!< valid mappings evaluated
    int invalid = 0;   //!< samples evaluated but structurally invalid
    int rejected = 0;  //!< mapper samples that failed validation
    int exhausted = 0; //!< shards that gave up before spending their budget

    /**
     * Layout of the winning evaluation: the fixed arch.layout, the
     * winning co-search candidate, or empty when layouts are off.
     */
    layout::LayoutSpec bestLayout;

    /** Layout candidates considered (1 fixed, N co-search, 0 off). */
    int layoutsEvaluated = 0;
};

/**
 * Searches @p num_mappings random mappings (plus the greedy heuristic)
 * and returns the best under @p objective. Fatal when no valid mapping is
 * found at all.
 *
 * The sample budget is split over a fixed set of shards, each drawing
 * from its own counter-derived RNG stream (Rng::forStream(seed, shard)),
 * and shard-local bests merge under the total order (objective value,
 * shard, sample index) with the greedy heuristic ordered before every
 * shard. Shards run on up to @p threads workers; because the shard
 * decomposition and the merge order are independent of scheduling, the
 * returned best mapping, objective value, and sample counters are
 * bit-identical for any thread count, including 1.
 *
 * With arch.layoutSearch, the layout candidate set becomes an outer
 * enumeration over the same shard streams: every candidate scores the
 * identical sample set (each (layout, shard) unit re-draws
 * Rng::forStream(seed, shard)), and bests merge under (value, layout,
 * shard, sample) — still bit-identical at any thread count. A fixed
 * arch.layout is the one-candidate special case.
 *
 * With a @p cancel token, shards poll it between samples. A search is
 * all-or-nothing: a token that fires mid-search abandons the whole
 * search with CancelledError rather than returning a best from fewer
 * samples — a partial search result would not be byte-identical to an
 * uninterrupted run's.
 */
SearchResult searchMappings(const Arch& arch, const workload::Layer& layer,
                            int num_mappings, std::uint64_t seed = 1,
                            Objective objective = Objective::Energy,
                            int threads = 1,
                            const CancelToken* cancel = nullptr);

/**
 * One captured per-layer failure from a keep-going network evaluation:
 * which layer failed, how (user error vs. internal bug), and the message.
 */
struct LayerDiagnostic
{
    std::size_t layerIndex = 0; //!< position in network.layers
    std::string layer;          //!< layer name
    std::string kind;   //!< "fatal" | "panic" | "exception" | "cancelled"
    std::string message;        //!< the exception's what()
};

/** Whole-network evaluation: best mapping per layer, then totals. */
struct NetworkEvaluation
{
    std::vector<SearchResult> layers; //!< parallel to network.layers
    double energyPj = 0.0;            //!< total (respecting layer counts)
    double latencyNs = 0.0;
    double macs = 0.0;
    double areaUm2 = 0.0;             //!< max over layers (same hardware)

    /**
     * Per-layer failures captured under keep-going evaluation, in layer
     * order. Empty on a fully successful run. A failed layer's
     * SearchResult slot stays default-constructed (best.valid == false)
     * and contributes nothing to the totals.
     */
    std::vector<LayerDiagnostic> diagnostics;

    /**
     * Observability snapshot taken when the totals were folded: every
     * registered counter plus span aggregates (spans only when timing
     * was enabled). Counter values are process-cumulative — call
     * obs::resetAll() before the run for per-run numbers, as the CLI
     * does. Counters are deterministic at fixed seed for any thread
     * count; span times are wall-clock and are not.
     */
    obs::MetricsSnapshot metrics;

    /** True when every layer evaluated successfully. */
    bool complete() const { return diagnostics.empty(); }

    double energyPerMacPj() const;
    double topsPerWatt() const;
};

/**
 * Runs searchMappings for every layer of @p network.
 *
 * With @p keep_going, a layer whose search fails (unmappable layer, bad
 * spec, internal bug) is captured as a LayerDiagnostic and evaluation
 * continues with the remaining layers — the production-sweep behavior
 * where one broken layer must not abort a large design-space run.
 * Without it, the first failure propagates as before.
 *
 * With a @p cancel token, the layer loop polls it between layers —
 * layers already searched keep their byte-identical results. A fired
 * token throws CancelledError; under keep_going the remaining layers
 * are instead recorded as kind-"cancelled" diagnostics and the totals
 * fold only the completed layers.
 */
NetworkEvaluation evaluateNetwork(const Arch& arch,
                                  const workload::Network& network,
                                  int mappings_per_layer = 200,
                                  std::uint64_t seed = 1,
                                  Objective objective = Objective::Energy,
                                  bool keep_going = false,
                                  const CancelToken* cancel = nullptr);

/**
 * Same as evaluateNetwork but distributes the work over @p threads worker
 * threads: layers fan out first (independent searches), and when the
 * network has fewer distinct layers than threads (e.g. one repeated
 * transformer block), the leftover threads split each layer's sample
 * budget via the sharded intra-layer search. Results are bit-identical to
 * the sequential version for the same seed. threads <= 1 falls through to
 * evaluateNetwork. A worker that hits an unmappable layer does not
 * terminate the process: without @p keep_going every captured worker
 * exception is aggregated and rethrown (the same FatalError surface the
 * serial path gives, now listing every failing layer); with it, failures
 * become per-layer diagnostics and every remaining layer still runs.
 */
NetworkEvaluation evaluateNetworkParallel(
    const Arch& arch, const workload::Network& network, int threads,
    int mappings_per_layer = 200, std::uint64_t seed = 1,
    Objective objective = Objective::Energy, bool keep_going = false,
    const CancelToken* cancel = nullptr);

/**
 * Renders a per-node report of one evaluation: energy share, accesses
 * served, area — the Accelergy-style output table.
 */
std::string formatReport(const Arch& arch, const Evaluation& ev);

/** One nondominated mapping from an energy/latency exploration. */
struct ParetoPoint
{
    mapping::Mapping mapping;
    Evaluation eval;
};

/**
 * Samples @p num_mappings mappings (plus the greedy heuristic) and
 * returns the energy/latency Pareto frontier, sorted by ascending
 * energy (therefore descending latency). Design-space explorations use
 * this to expose the trade space rather than a single optimum.
 */
std::vector<ParetoPoint> paretoFrontier(const Arch& arch,
                                        const workload::Layer& layer,
                                        int num_mappings,
                                        std::uint64_t seed = 1);

/**
 * Serializes a network evaluation as CSV (one row per layer plus a
 * totals row) for plotting: layer, macs, energy_pj, latency_ns,
 * utilization, tops_per_watt.
 */
std::string toCsv(const NetworkEvaluation& ev,
                  const workload::Network& network);

/**
 * Renders the per-action energy table as YAML — Accelergy's "energy
 * reference table" (ERT). One entry per hierarchy node with its
 * per-tensor read/fill/action energies (pJ), area, latency, and static
 * power, so users can inspect exactly what the statistical pipeline
 * computed for an (architecture, layer) pair.
 */
std::string toYamlErt(const Arch& arch, const PerActionTable& table);

} // namespace cimloop::engine

#endif // CIMLOOP_ENGINE_EVALUATE_HH
