#include "cimloop/faults/faults.hh"

#include <cmath>
#include <utility>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"
#include "cimloop/dist/operands.hh"
#include "cimloop/obs/obs.hh"
#include "cimloop/yaml/node.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::faults {

using dist::Pmf;

bool
FaultModel::enabled() const
{
    return cellFaultsEnabled() || adcFaultsEnabled();
}

bool
FaultModel::cellFaultsEnabled() const
{
    return stuckOffRate > 0.0 || stuckOnRate > 0.0 ||
           conductanceSigma > 0.0;
}

bool
FaultModel::adcFaultsEnabled() const
{
    return adcOffset != 0.0 || adcNoiseSigma > 0.0;
}

double
FaultModel::varianceFactor() const
{
    return std::exp(conductanceSigma * conductanceSigma);
}

void
FaultModel::validate() const
{
    auto rate = [](const char* key, double v) {
        if (!(v >= 0.0 && v <= 1.0)) {
            CIM_FATAL("faults.", key, " must be within [0, 1], got ", v);
        }
    };
    rate("stuck_off_rate", stuckOffRate);
    rate("stuck_on_rate", stuckOnRate);
    if (stuckOffRate + stuckOnRate > 1.0) {
        CIM_FATAL("faults.stuck_off_rate + faults.stuck_on_rate must not "
                  "exceed 1, got ", stuckOffRate + stuckOnRate);
    }
    if (!(conductanceSigma >= 0.0 && conductanceSigma <= 0.8)) {
        CIM_FATAL("faults.conductance_sigma must be within [0, 0.8], got ",
                  conductanceSigma,
                  " (the two-point analytic inflation needs "
                  "exp(sigma^2) - 1 <= 1)");
    }
    if (!(adcOffset >= -1.0 && adcOffset <= 1.0)) {
        CIM_FATAL("faults.adc_offset must be within [-1, 1] (fraction of "
                  "full scale), got ", adcOffset);
    }
    if (!(adcNoiseSigma >= 0.0 && adcNoiseSigma <= 1.0)) {
        CIM_FATAL("faults.adc_noise_sigma must be within [0, 1] (fraction "
                  "of full scale), got ", adcNoiseSigma);
    }
}

FaultModel
FaultModel::fromYaml(const yaml::Node& node)
{
    if (!node.isMapping())
        CIM_FATAL("fault spec must be a YAML mapping holding a 'faults:' "
                  "key or the fault keys themselves (stuck_off_rate, "
                  "stuck_on_rate, conductance_sigma, adc_offset, "
                  "adc_noise_sigma, seed)");
    const yaml::Node* body = node.find("faults");
    const yaml::Node& map = body ? *body : node;
    if (!map.isMapping())
        CIM_FATAL("'faults' must hold a YAML mapping of fault keys, not "
                  "a scalar or sequence");

    // Re-raise kind mismatches from the YAML layer with the offending
    // key path attached, so "expected number" names the bad key.
    auto num = [](const std::string& key,
                  const yaml::Node& value) -> double {
        try {
            return value.asDouble();
        } catch (const FatalError& e) {
            CIM_FATAL("faults.", key, ": ", e.what());
        }
    };

    FaultModel m;
    for (const auto& [key, value] : map.items()) {
        if (key == "stuck_off_rate") {
            m.stuckOffRate = num(key, value);
        } else if (key == "stuck_on_rate") {
            m.stuckOnRate = num(key, value);
        } else if (key == "conductance_sigma") {
            m.conductanceSigma = num(key, value);
        } else if (key == "adc_offset") {
            m.adcOffset = num(key, value);
        } else if (key == "adc_noise_sigma") {
            m.adcNoiseSigma = num(key, value);
        } else if (key == "seed") {
            std::int64_t s = 0;
            try {
                s = value.asInt();
            } catch (const FatalError& e) {
                CIM_FATAL("faults.seed: ", e.what());
            }
            if (s < 0)
                CIM_FATAL("faults.seed must be >= 0, got ", s);
            m.seed = static_cast<std::uint64_t>(s);
        } else {
            CIM_FATAL("unknown fault spec key 'faults.", key,
                      "' (known: stuck_off_rate, stuck_on_rate, "
                      "conductance_sigma, adc_offset, adc_noise_sigma, "
                      "seed)");
        }
    }
    m.validate();
    return m;
}

FaultModel
FaultModel::fromFile(const std::string& path)
{
    return fromYaml(yaml::parseFile(path));
}

std::uint64_t
layerFaultSeed(const FaultModel& model, const std::string& layer_name,
               int layer_index)
{
    return model.seed ^ dist::stableHash(layer_name) ^
           (0x9E3779B97F4A7C15ull *
            static_cast<std::uint64_t>(layer_index + 1));
}

void
perturbConductances(const FaultModel& model, std::uint64_t fault_seed,
                    std::vector<double>& g_norm)
{
    if (!model.cellFaultsEnabled())
        return;
    static obs::Counter& c_total = obs::counter("faults.cells.total");
    static obs::Counter& c_off = obs::counter("faults.cells.stuck_off");
    static obs::Counter& c_on = obs::counter("faults.cells.stuck_on");
    static obs::Counter& c_varied = obs::counter("faults.cells.varied");
    const double p_off = model.stuckOffRate;
    const double p_on = model.stuckOnRate;
    const double sigma = model.conductanceSigma;
    const double log_shift = -0.5 * sigma * sigma; // mean-preserving
    std::uint64_t n_off = 0, n_on = 0, n_varied = 0;
    for (std::size_t i = 0; i < g_norm.size(); ++i) {
        Rng rng = Rng::forStream(fault_seed, i);
        double u = rng.uniform();
        if (u < p_off) {
            g_norm[i] = 0.0;
            ++n_off;
        } else if (u < p_off + p_on) {
            g_norm[i] = 1.0;
            ++n_on;
        } else if (sigma > 0.0) {
            g_norm[i] *= std::exp(sigma * rng.gaussian() + log_shift);
            ++n_varied;
        }
    }
    c_total.add(g_norm.size());
    c_off.add(n_off);
    c_on.add(n_on);
    c_varied.add(n_varied);
}

namespace {

/**
 * Mean-preserving two-point inflation: each atom v splits into
 * v * (1 -/+ sqrt(exp(sigma^2) - 1)) at half its mass, matching the
 * lognormal variation's first and second moments exactly.
 */
std::vector<Pmf::Point>
inflatedPoints(const Pmf& levels, double sigma)
{
    const double spread =
        std::sqrt(std::exp(sigma * sigma) - 1.0);
    std::vector<Pmf::Point> pts;
    pts.reserve(2 * levels.size());
    for (const Pmf::Point& pt : levels.points()) {
        pts.push_back({pt.value * (1.0 - spread), 0.5 * pt.prob});
        pts.push_back({pt.value * (1.0 + spread), 0.5 * pt.prob});
    }
    return pts;
}

} // namespace

Pmf
perturbedCellLevels(const FaultModel& model, const Pmf& levels,
                    double max_level)
{
    if (!model.cellFaultsEnabled())
        return levels;
    const double survivors = model.survivorRate();
    std::vector<Pmf::Point> pts =
        model.conductanceSigma > 0.0
            ? inflatedPoints(levels, model.conductanceSigma)
            : levels.points();
    for (Pmf::Point& pt : pts)
        pt.prob *= survivors;
    if (model.stuckOffRate > 0.0)
        pts.push_back({0.0, model.stuckOffRate});
    if (model.stuckOnRate > 0.0)
        pts.push_back({max_level, model.stuckOnRate});
    return Pmf::fromPoints(std::move(pts));
}

namespace {

/** Rounds and clamps perturbed points back onto the code lattice. */
Pmf
quantizedToCodes(std::vector<Pmf::Point> pts, double max_code)
{
    for (Pmf::Point& pt : pts) {
        double v = std::round(pt.value);
        pt.value = std::min(std::max(v, 0.0), max_code);
    }
    return Pmf::fromPoints(std::move(pts));
}

} // namespace

Pmf
perturbedCellCodes(const FaultModel& model, const Pmf& codes,
                   double max_code)
{
    if (!model.cellFaultsEnabled())
        return codes;
    static obs::Counter& c =
        obs::counter("faults.pmf.cell_perturbations");
    c.add();
    Pmf continuous = perturbedCellLevels(model, codes, max_code);
    return quantizedToCodes(continuous.points(), max_code);
}

Pmf
perturbedAdcCodes(const FaultModel& model, const Pmf& codes,
                  double max_code)
{
    if (!model.adcFaultsEnabled())
        return codes;
    static obs::Counter& c =
        obs::counter("faults.pmf.adc_perturbations");
    c.add();
    const double shift = model.adcOffset * max_code;
    const double kick = model.adcNoiseSigma * max_code;
    std::vector<Pmf::Point> pts;
    pts.reserve(2 * codes.size());
    for (const Pmf::Point& pt : codes.points()) {
        if (kick > 0.0) {
            pts.push_back({pt.value + shift - kick, 0.5 * pt.prob});
            pts.push_back({pt.value + shift + kick, 0.5 * pt.prob});
        } else {
            pts.push_back({pt.value + shift, pt.prob});
        }
    }
    return quantizedToCodes(std::move(pts), max_code);
}

} // namespace cimloop::faults
