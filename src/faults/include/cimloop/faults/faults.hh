/**
 * @file
 * Device fault and variation injection (NeuroSim / MICSim-style
 * non-idealities).
 *
 * Real CiM macros suffer device non-idealities the ideal energy model
 * ignores: cells stuck at G_on / G_off, lot-to-lot conductance variation,
 * and ADC offset / thermal noise. This module provides one FaultModel
 * specification consumed by BOTH evaluation paths:
 *
 *  - The value-level reference simulator perturbs every cell of its
 *    precomputed conductance array using counter-derived
 *    Rng::forStream(fault_seed, cell_index) streams, so the injected
 *    fault pattern is bit-identical for any thread count.
 *  - The statistical pipeline applies the same model analytically as a
 *    PMF perturbation: a mixture with stuck-at atoms plus a
 *    mean-preserving variance inflation of the conductance levels, so
 *    truth-vs-model comparison still works under faults.
 *
 * Conductance variation is mean-preserving lognormal: a surviving cell's
 * level g becomes g * exp(sigma * Z - sigma^2 / 2), which keeps E[g]
 * unchanged and multiplies E[g^2] by exp(sigma^2). No clamping is applied
 * at the value level (a strong device simply conducts above nominal
 * G_on), which is what keeps the analytic second moment exact.
 */
#ifndef CIMLOOP_FAULTS_FAULTS_HH
#define CIMLOOP_FAULTS_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cimloop/dist/pmf.hh"

namespace cimloop::yaml {
class Node;
} // namespace cimloop::yaml

namespace cimloop::faults {

/** Device fault / variation specification for one evaluation. */
struct FaultModel
{
    /** P(cell stuck at G_off), i.e. reads as level 0. In [0, 1]. */
    double stuckOffRate = 0.0;

    /** P(cell stuck at G_on), i.e. reads as the full level. In [0, 1]. */
    double stuckOnRate = 0.0;

    /**
     * Lognormal sigma of the mean-preserving conductance variation on
     * surviving cells. In [0, 0.8] (beyond that the two-point analytic
     * inflation would need negative levels).
     */
    double conductanceSigma = 0.0;

    /** Additive ADC input offset as a fraction of full scale, [-1, 1]. */
    double adcOffset = 0.0;

    /** Gaussian ADC input noise sigma as a fraction of full scale, >= 0. */
    double adcNoiseSigma = 0.0;

    /** Seed of the injected fault pattern (independent of data seeds). */
    std::uint64_t seed = 1;

    /** True when any fault or variation mechanism is active. */
    bool enabled() const;

    /** True when cell-level mechanisms (stuck-at, variation) are active. */
    bool cellFaultsEnabled() const;

    /** True when ADC offset or noise is active. */
    bool adcFaultsEnabled() const;

    /** Fraction of cells that are neither stuck on nor stuck off. */
    double survivorRate() const { return 1.0 - stuckOffRate - stuckOnRate; }

    /** E[g'^2] / E[g^2] of the variation alone: exp(sigma^2). */
    double varianceFactor() const;

    /**
     * Range-checks every field; CIM_FATAL naming the offending YAML key
     * (faults.stuck_off_rate, faults.conductance_sigma, ...) on failure.
     */
    void validate() const;

    /**
     * Parses a fault spec from YAML. Accepts either the bare mapping or a
     * document with a top-level `faults:` key:
     *
     *   faults:
     *     stuck_off_rate: 0.01     # all keys optional
     *     stuck_on_rate: 0.002
     *     conductance_sigma: 0.15
     *     adc_offset: 0.02
     *     adc_noise_sigma: 0.01
     *     seed: 7
     *
     * Fatal on unknown keys, non-numeric values, negative seeds, or
     * out-of-range rates (via validate()).
     */
    static FaultModel fromYaml(const yaml::Node& node);

    /** Loads a fault spec from a YAML file; fatal when unreadable. */
    static FaultModel fromFile(const std::string& path);
};

/**
 * Deterministic per-layer fault seed: mixes the model's seed with the
 * layer identity so every layer receives an independent fault pattern
 * while staying reproducible run to run.
 */
std::uint64_t layerFaultSeed(const FaultModel& model,
                             const std::string& layer_name, int layer_index);

/**
 * Perturbs a flat array of normalized conductance levels in place. Cell i
 * draws from its own counter-derived stream Rng::forStream(fault_seed, i),
 * so the injected pattern depends only on (model, fault_seed, i) — never
 * on iteration order or thread scheduling. No-op when no cell-level
 * mechanism is active.
 */
void perturbConductances(const FaultModel& model, std::uint64_t fault_seed,
                         std::vector<double>& g_norm);

/**
 * Analytic counterpart of perturbConductances for the statistical
 * pipeline: mixture of stuck-at atoms (level 0 with stuckOffRate,
 * @p max_level with stuckOnRate) and the survivor mass under a
 * mean-preserving two-point variance inflation whose first and second
 * moments exactly match the lognormal variation. Support points are NOT
 * clamped or quantized — use perturbedCellCodes() when downstream
 * consumers need integer codes.
 */
dist::Pmf perturbedCellLevels(const FaultModel& model,
                              const dist::Pmf& levels, double max_level);

/**
 * Integer-lattice variant of perturbedCellLevels for component plug-ins
 * that interpret values as binary codes (bitOnProbs etc.): inflated
 * points are rounded and clamped into [0, max_code].
 */
dist::Pmf perturbedCellCodes(const FaultModel& model, const dist::Pmf& codes,
                             double max_code);

/**
 * ADC readout perturbation on an integer code PMF: shifts every code by
 * adcOffset * max_code and spreads it by a two-point +/- adcNoiseSigma *
 * max_code kick, rounded and clamped into [0, max_code].
 */
dist::Pmf perturbedAdcCodes(const FaultModel& model, const dist::Pmf& codes,
                            double max_code);

} // namespace cimloop::faults

#endif // CIMLOOP_FAULTS_FAULTS_HH
