/**
 * @file
 * Physical data layouts for storage nodes.
 *
 * The engine's default buffer model is idealized: every concurrent
 * requester is served in the same cycle. Real SRAM/DRAM buffers are
 * banked, and how a dataspace is physically linearized decides whether
 * parallel requests spread over banks or pile onto one (LayoutLoop /
 * SquareLoop). A LayoutSpec makes that physical choice explicit:
 *
 *   layout:
 *     name: banked4
 *     nodes:
 *       - node: buffer
 *         tensors:
 *           - tensor: Inputs
 *             rank_order: [C]    # dims pulled innermost (contiguous)
 *             banks: 4           # independent banks (default 1)
 *             interleave: 1      # elements per bank line (default 1)
 *
 * Per tensor, the physical order starts from the canonical rank order
 * of the tensor's index dimensions; dims listed in rank_order are
 * pulled out and placed innermost (last listed = fastest varying).
 * `banks` is the number of independently addressable banks; addresses
 * interleave over banks in lines of `interleave` elements.
 *
 * An empty LayoutSpec means "no physical layout modeled": the engine
 * keeps its idealized conflict-free buffers and produces byte-identical
 * results to a build without this subsystem.
 */
#ifndef CIMLOOP_LAYOUT_LAYOUT_HH
#define CIMLOOP_LAYOUT_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cimloop/spec/hierarchy.hh"
#include "cimloop/workload/layer.hh"

namespace cimloop::yaml {
class Node;
} // namespace cimloop::yaml

namespace cimloop::layout {

/**
 * Index dimensions of one tensor, canonical (enum) order. Inputs are
 * indexed by their halo'd spatial extents, so R and S fold into P and Q
 * rather than appearing as ranks of their own.
 */
std::vector<workload::Dim> tensorRankDims(workload::TensorKind t);

/** Physical placement of one dataspace within one storage node. */
struct TensorLayout
{
    workload::TensorKind tensor = workload::TensorKind::Input;

    /**
     * Dims pulled innermost, outermost-listed first (the last listed dim
     * is contiguous). Dims not listed stay outside in canonical order.
     * Every listed dim must be an index dim of the tensor (see
     * tensorRankDims); empty = fully canonical order.
     */
    std::vector<workload::Dim> rankOrder;

    std::int64_t banks = 1;      //!< independent banks, [1, 4096]
    std::int64_t interleave = 1; //!< elements per bank line, >= 1
};

/** Layouts for the dataspaces one storage node holds. */
struct NodeLayout
{
    std::string node; //!< hierarchy node name
    std::vector<TensorLayout> tensors;
};

/** A complete physical-layout specification for an architecture. */
struct LayoutSpec
{
    std::string name = "layout";
    std::vector<NodeLayout> nodes;

    /** True when no layout is specified (idealized buffers). */
    bool empty() const { return nodes.empty(); }

    /** Checks ranges and per-tensor rank validity. Fatal with
     *  `layout.nodes[i].tensors[j].<key>` paths on violation. */
    void validate() const;

    /** Compact one-line description for reports and CLI output. */
    std::string summary() const;

    /**
     * Parses a spec from a YAML mapping holding a `layout:` key or the
     * layout keys themselves (name, nodes). Fatal on unknown keys,
     * with the offending key path attached.
     */
    static LayoutSpec fromYaml(const yaml::Node& node);

    /** Loads a spec from a YAML file. */
    static LayoutSpec fromFile(const std::string& path);
};

/**
 * A LayoutSpec resolved against a hierarchy: one per-tensor slot per
 * hierarchy node, index-aligned with hierarchy.nodes. Slots without a
 * layout are -1. Resolution is fatal when a spec names an unknown node,
 * a node that stores no tensors, or a tensor the node does not store.
 */
struct ResolvedLayout
{
    /** Indices into `tensors`, or -1; [node][tensorIndex]. */
    std::vector<spec::PerTensor<int>> slots;
    std::vector<TensorLayout> tensors;
    bool any = false; //!< at least one (node, tensor) has a layout

    const TensorLayout*
    at(std::size_t node, workload::TensorKind t) const
    {
        int s = slots[node][spec::tensorIndex(t)];
        return s >= 0 ? &tensors[static_cast<std::size_t>(s)] : nullptr;
    }

    /** True when node @p i lays out at least one tensor. */
    bool
    nodeAny(std::size_t i) const
    {
        return slots[i][0] >= 0 || slots[i][1] >= 0 || slots[i][2] >= 0;
    }
};

/** Resolves @p spec against @p hierarchy (validates the spec first). */
ResolvedLayout resolveLayout(const spec::Hierarchy& hierarchy,
                             const LayoutSpec& spec);

/**
 * True when @p node can carry a physical layout: an SRAM or DRAM
 * component that stores at least one tensor. Cell arrays, registers and
 * pass-through components are not banked memories.
 */
bool layoutEligible(const spec::SpecNode& node);

/**
 * The naive physical layout: canonical rank order, one bank, for every
 * eligible node and every tensor it stores. This is the baseline a
 * co-search must beat — all concurrent requesters serialize on the
 * single bank.
 */
LayoutSpec defaultLayout(const spec::Hierarchy& hierarchy);

/**
 * Deterministic layout candidate set for co-search, in a fixed order
 * that is part of the determinism contract: candidate 0 is
 * defaultLayout(), followed by progressively more banked and reordered
 * variants applied uniformly to every eligible node. Empty only when
 * the hierarchy has no eligible node.
 */
std::vector<LayoutSpec> enumerateLayouts(const spec::Hierarchy& hierarchy);

/** Names accepted by presetLayout, comma-separated (for messages). */
std::string presetNames();

/**
 * Builds a named preset against a hierarchy: "default" (canonical,
 * 1 bank), "banked2" / "banked4" / "banked8" (canonical order, N
 * banks), "banked4-rev" / "banked8-rev" (reversed rank order),
 * "banked8-i4" (8 banks, interleave 4). Fatal on unknown names. The
 * "none" / "search" values are handled by callers (no spec to build).
 */
LayoutSpec presetLayout(const std::string& name,
                        const spec::Hierarchy& hierarchy);

/** True when @p name is a valid DSE layout axis value: "none",
 *  "search", a preset name, or a path ending in ".yaml"/".yml". */
bool isLayoutValueName(const std::string& name);

} // namespace cimloop::layout

#endif // CIMLOOP_LAYOUT_LAYOUT_HH
