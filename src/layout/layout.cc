#include "cimloop/layout/layout.hh"

#include <algorithm>
#include <sstream>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"
#include "cimloop/yaml/node.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::layout {

using workload::Dim;
using workload::TensorKind;

namespace {

constexpr std::int64_t kMaxBanks = 4096;
constexpr std::int64_t kMaxInterleave = 1 << 20;

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

std::vector<Dim>
tensorRankDims(TensorKind t)
{
    switch (t) {
      case TensorKind::Input:
        // Halo'd spatial extents: R and S fold into P and Q.
        return {Dim::N, Dim::C, Dim::P, Dim::Q, Dim::IB};
      case TensorKind::Weight:
        return {Dim::K, Dim::C, Dim::R, Dim::S, Dim::WB};
      case TensorKind::Output:
        return {Dim::N, Dim::K, Dim::P, Dim::Q};
    }
    CIM_PANIC("unknown tensor kind");
}

void
LayoutSpec::validate() const
{
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeLayout& nl = nodes[i];
        if (nl.node.empty())
            CIM_FATAL("layout.nodes[", i, "].node must name a hierarchy "
                      "node");
        for (std::size_t k = i + 1; k < nodes.size(); ++k) {
            if (nodes[k].node == nl.node)
                CIM_FATAL("layout.nodes[", k, "]: duplicate entry for "
                          "node '", nl.node, "'");
        }
        if (nl.tensors.empty())
            CIM_FATAL("layout.nodes[", i, "].tensors must list at least "
                      "one tensor layout");
        for (std::size_t j = 0; j < nl.tensors.size(); ++j) {
            const TensorLayout& tl = nl.tensors[j];
            const std::string path = "layout.nodes[" + std::to_string(i) +
                                     "].tensors[" + std::to_string(j) + "]";
            for (std::size_t k = j + 1; k < nl.tensors.size(); ++k) {
                if (nl.tensors[k].tensor == tl.tensor)
                    CIM_FATAL("layout.nodes[", i, "].tensors[", k,
                              "]: duplicate entry for tensor ",
                              workload::tensorName(tl.tensor));
            }
            if (tl.banks < 1 || tl.banks > kMaxBanks)
                CIM_FATAL(path, ".banks must be within [1, ", kMaxBanks,
                          "], got ", tl.banks);
            if (tl.interleave < 1 || tl.interleave > kMaxInterleave)
                CIM_FATAL(path, ".interleave must be within [1, ",
                          kMaxInterleave, "], got ", tl.interleave);
            std::vector<Dim> ranks = tensorRankDims(tl.tensor);
            for (std::size_t k = 0; k < tl.rankOrder.size(); ++k) {
                Dim d = tl.rankOrder[k];
                if (std::find(ranks.begin(), ranks.end(), d) == ranks.end())
                    CIM_FATAL(path, ".rank_order: ", workload::dimName(d),
                              " is not an index dimension of ",
                              workload::tensorName(tl.tensor),
                              " (Inputs fold R/S into the halo'd P/Q)");
                for (std::size_t m = k + 1; m < tl.rankOrder.size(); ++m) {
                    if (tl.rankOrder[m] == d)
                        CIM_FATAL(path, ".rank_order lists ",
                                  workload::dimName(d), " twice");
                }
            }
        }
    }
}

std::string
LayoutSpec::summary() const
{
    if (empty())
        return "none (idealized, conflict-free)";
    std::ostringstream oss;
    oss << name << " {";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (i)
            oss << "; ";
        oss << nodes[i].node << ":";
        for (std::size_t j = 0; j < nodes[i].tensors.size(); ++j) {
            const TensorLayout& tl = nodes[i].tensors[j];
            oss << (j ? "," : "") << " "
                << workload::tensorName(tl.tensor) << " banks=" << tl.banks;
            if (tl.interleave != 1)
                oss << " il=" << tl.interleave;
            if (!tl.rankOrder.empty()) {
                oss << " order=[";
                for (std::size_t k = 0; k < tl.rankOrder.size(); ++k)
                    oss << (k ? " " : "")
                        << workload::dimName(tl.rankOrder[k]);
                oss << "]";
            }
        }
    }
    oss << "}";
    return oss.str();
}

namespace {

TensorLayout
tensorLayoutFromYaml(const yaml::Node& map, const std::string& path)
{
    if (!map.isMapping())
        CIM_FATAL(path, " must be a YAML mapping (tensor, rank_order, "
                  "banks, interleave)");
    TensorLayout tl;
    bool have_tensor = false;
    auto integer = [&path](const std::string& key,
                           const yaml::Node& value) -> std::int64_t {
        try {
            return value.asInt();
        } catch (const FatalError& e) {
            CIM_FATAL(path, ".", key, ": ", e.what());
        }
    };
    for (const auto& [key, value] : map.items()) {
        if (key == "tensor") {
            tl.tensor = workload::tensorFromString(value.asString());
            have_tensor = true;
        } else if (key == "rank_order") {
            if (!value.isSequence())
                CIM_FATAL(path, ".rank_order must be a sequence of "
                          "dimension names");
            for (const yaml::Node& el : value.elements())
                tl.rankOrder.push_back(
                    workload::dimFromString(el.asString()));
        } else if (key == "banks") {
            tl.banks = integer(key, value);
        } else if (key == "interleave") {
            tl.interleave = integer(key, value);
        } else {
            CIM_FATAL("unknown layout key '", path, ".", key,
                      "' (known: tensor, rank_order, banks, interleave)");
        }
    }
    if (!have_tensor)
        CIM_FATAL(path, " must name its tensor (Inputs, Weights, or "
                  "Outputs)");
    return tl;
}

NodeLayout
nodeLayoutFromYaml(const yaml::Node& map, const std::string& path)
{
    if (!map.isMapping())
        CIM_FATAL(path, " must be a YAML mapping (node, tensors)");
    NodeLayout nl;
    for (const auto& [key, value] : map.items()) {
        if (key == "node") {
            nl.node = value.asString();
        } else if (key == "tensors") {
            if (!value.isSequence())
                CIM_FATAL(path, ".tensors must be a sequence of tensor "
                          "layouts");
            const auto& els = value.elements();
            for (std::size_t j = 0; j < els.size(); ++j) {
                nl.tensors.push_back(tensorLayoutFromYaml(
                    els[j], path + ".tensors[" + std::to_string(j) + "]"));
            }
        } else {
            CIM_FATAL("unknown layout key '", path, ".", key,
                      "' (known: node, tensors)");
        }
    }
    return nl;
}

} // namespace

LayoutSpec
LayoutSpec::fromYaml(const yaml::Node& node)
{
    if (!node.isMapping())
        CIM_FATAL("layout spec must be a YAML mapping holding a 'layout:' "
                  "key or the layout keys themselves (name, nodes)");
    const yaml::Node* body = node.find("layout");
    const yaml::Node& map = body ? *body : node;
    if (!map.isMapping())
        CIM_FATAL("'layout' must hold a YAML mapping of layout keys, not "
                  "a scalar or sequence");

    LayoutSpec spec;
    for (const auto& [key, value] : map.items()) {
        if (key == "name") {
            spec.name = value.asString();
        } else if (key == "nodes") {
            if (!value.isSequence())
                CIM_FATAL("layout.nodes must be a sequence of per-node "
                          "layouts");
            const auto& els = value.elements();
            for (std::size_t i = 0; i < els.size(); ++i) {
                spec.nodes.push_back(nodeLayoutFromYaml(
                    els[i], "layout.nodes[" + std::to_string(i) + "]"));
            }
        } else {
            CIM_FATAL("unknown layout spec key 'layout.", key,
                      "' (known: name, nodes)");
        }
    }
    spec.validate();
    return spec;
}

LayoutSpec
LayoutSpec::fromFile(const std::string& path)
{
    return fromYaml(yaml::parseFile(path));
}

ResolvedLayout
resolveLayout(const spec::Hierarchy& hierarchy, const LayoutSpec& spec)
{
    spec.validate();
    ResolvedLayout resolved;
    resolved.slots.assign(hierarchy.nodes.size(), {-1, -1, -1});
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
        const NodeLayout& nl = spec.nodes[i];
        int node_index = hierarchy.indexOf(nl.node);
        if (node_index < 0)
            CIM_FATAL("layout.nodes[", i, "]: hierarchy '", hierarchy.name,
                      "' has no node named '", nl.node, "'");
        const spec::SpecNode& node =
            hierarchy.nodes[static_cast<std::size_t>(node_index)];
        for (const TensorLayout& tl : nl.tensors) {
            if (!node.stores(tl.tensor))
                CIM_FATAL("layout.nodes[", i, "]: node '", nl.node,
                          "' does not store ",
                          workload::tensorName(tl.tensor),
                          " (layouts describe stored dataspaces)");
            resolved.slots[static_cast<std::size_t>(node_index)]
                          [spec::tensorIndex(tl.tensor)] =
                static_cast<int>(resolved.tensors.size());
            resolved.tensors.push_back(tl);
            resolved.any = true;
        }
    }
    return resolved;
}

bool
layoutEligible(const spec::SpecNode& node)
{
    std::string klass = toLower(node.klass);
    if (klass != "sram" && klass != "dram")
        return false;
    for (TensorKind t : workload::kAllTensors) {
        if (node.stores(t))
            return true;
    }
    return false;
}

namespace {

/** One candidate: every eligible node, every stored tensor, uniformly. */
LayoutSpec
uniformLayout(const spec::Hierarchy& hierarchy, const std::string& name,
              std::int64_t banks, std::int64_t interleave, bool reversed)
{
    LayoutSpec spec;
    spec.name = name;
    for (const spec::SpecNode& node : hierarchy.nodes) {
        if (!layoutEligible(node))
            continue;
        NodeLayout nl;
        nl.node = node.name;
        for (TensorKind t : workload::kAllTensors) {
            if (!node.stores(t))
                continue;
            TensorLayout tl;
            tl.tensor = t;
            tl.banks = banks;
            tl.interleave = interleave;
            if (reversed) {
                tl.rankOrder = tensorRankDims(t);
                std::reverse(tl.rankOrder.begin(), tl.rankOrder.end());
            }
            nl.tensors.push_back(tl);
        }
        spec.nodes.push_back(std::move(nl));
    }
    return spec;
}

} // namespace

LayoutSpec
defaultLayout(const spec::Hierarchy& hierarchy)
{
    return uniformLayout(hierarchy, "default", 1, 1, false);
}

std::vector<LayoutSpec>
enumerateLayouts(const spec::Hierarchy& hierarchy)
{
    // Fixed candidate set and order: part of the determinism contract.
    // Candidate 0 is the naive baseline the co-search must beat.
    std::vector<LayoutSpec> out;
    LayoutSpec base = defaultLayout(hierarchy);
    if (base.empty())
        return out;
    out.push_back(std::move(base));
    out.push_back(uniformLayout(hierarchy, "banked2", 2, 1, false));
    out.push_back(uniformLayout(hierarchy, "banked4", 4, 1, false));
    out.push_back(uniformLayout(hierarchy, "banked8", 8, 1, false));
    out.push_back(uniformLayout(hierarchy, "banked4-rev", 4, 1, true));
    out.push_back(uniformLayout(hierarchy, "banked8-rev", 8, 1, true));
    out.push_back(uniformLayout(hierarchy, "banked8-i4", 8, 4, false));
    return out;
}

std::string
presetNames()
{
    return "default, banked2, banked4, banked8, banked4-rev, banked8-rev, "
           "banked8-i4";
}

LayoutSpec
presetLayout(const std::string& name, const spec::Hierarchy& hierarchy)
{
    struct Preset
    {
        const char* name;
        std::int64_t banks;
        std::int64_t interleave;
        bool reversed;
    };
    static constexpr Preset kPresets[] = {
        {"default", 1, 1, false},    {"banked2", 2, 1, false},
        {"banked4", 4, 1, false},    {"banked8", 8, 1, false},
        {"banked4-rev", 4, 1, true}, {"banked8-rev", 8, 1, true},
        {"banked8-i4", 8, 4, false},
    };
    for (const Preset& p : kPresets) {
        if (name == p.name)
            return uniformLayout(hierarchy, p.name, p.banks, p.interleave,
                                 p.reversed);
    }
    CIM_FATAL("unknown layout preset '", name, "' (known: ", presetNames(),
              ", or a .yaml layout spec file)");
}

bool
isLayoutValueName(const std::string& name)
{
    if (name == "none" || name == "search" || name == "default")
        return true;
    if (endsWith(name, ".yaml") || endsWith(name, ".yml"))
        return true;
    static const char* kNames[] = {"banked2",     "banked4",
                                   "banked8",     "banked4-rev",
                                   "banked8-rev", "banked8-i4"};
    for (const char* n : kNames) {
        if (name == n)
            return true;
    }
    return false;
}

} // namespace cimloop::layout
