/**
 * @file
 * Models of the published CiM macros used in the paper's case studies
 * (Sec. V, Table III, Fig. 3), built with the container-hierarchy spec:
 *
 *  - Base macro [Lu/NeuroSim]: rows sum outputs on each column wire, one
 *    ADC convert per column, bit-serial DAC inputs.
 *  - Macro A [Jia, 65 nm SRAM 768x768]: outputs additionally summed on
 *    wires across groups of columns holding *different weights*; costs
 *    input reuse (each group member gets its own DAC converts).
 *  - Macro B [Sinangil, 7 nm SRAM 64x64]: an analog adder sums groups of
 *    columns holding *different bits of the same weight* before one ADC.
 *  - Macro C [Wan, 130 nm ReRAM 256x256]: an analog accumulator
 *    integrates partial sums across input-bit cycles, so the ADC converts
 *    each output once instead of once per cycle.
 *  - Macro D [Wang, 22 nm SRAM 512x128]: C-2C ladder analog MAC units
 *    compute full 8b x 8b products; a 512-row weight bank feeds the 64
 *    active rows.
 *  - Digital CiM [Kim/Colonnade]: bit-serial digital MACs and an adder
 *    tree; no DAC/ADC at all.
 */
#ifndef CIMLOOP_MACROS_MACROS_HH
#define CIMLOOP_MACROS_MACROS_HH

#include "cimloop/engine/arch.hh"
#include "cimloop/engine/evaluate.hh"

namespace cimloop::spec {
class HierarchyBuilder;
} // namespace cimloop::spec

namespace cimloop::macros {

/** Knobs shared by the macro builders (defaults = Table III values,
 *  overridable for the paper's sweeps). */
struct MacroParams
{
    std::int64_t rows = 256;  //!< CiM array rows
    std::int64_t cols = 256;  //!< CiM array columns

    int inputBits = 8;   //!< operand precision presented to the macro
    int weightBits = 8;
    int dacBits = 1;     //!< input slice width (DAC resolution)
    int cellBits = 1;    //!< weight bits per cell / per MAC unit
    int adcBits = 8;     //!< ADC resolution

    double technologyNm = 65.0;
    double supplyVoltage = 0.0; //!< 0 = nominal for the node

    dist::Encoding inputEncoding = dist::Encoding::Offset;
    dist::Encoding weightEncoding = dist::Encoding::Offset;

    std::int64_t bufferKb = 64; //!< local SRAM buffer capacity

    int outputReuseCols = 1; //!< Macro A: columns summed per output group
    int adderOperands = 4;   //!< Macro B: analog adder width
    std::int64_t weightBankRows = 0; //!< Macro D: stored rows (0 = rows)
};

/** Table III defaults for each macro. */
MacroParams baseDefaults();
MacroParams macroADefaults();
MacroParams macroBDefaults();
MacroParams macroCDefaults();
MacroParams macroDDefaults();
MacroParams digitalCimDefaults();

/** @name Macro builders; each returns a complete evaluable Arch. @{ */
engine::Arch baseMacro(const MacroParams& p = baseDefaults());
engine::Arch macroA(const MacroParams& p = macroADefaults());
engine::Arch macroB(const MacroParams& p = macroBDefaults());
engine::Arch macroC(const MacroParams& p = macroCDefaults());
engine::Arch macroD(const MacroParams& p = macroDDefaults());
engine::Arch digitalCim(const MacroParams& p = digitalCimDefaults());
/** @} */

/** Builds a macro by letter ("base", "A".."D", "digital"); fatal when
 *  unknown. */
engine::Arch macroByName(const std::string& name);

/** Same, but with explicit params instead of the Table III defaults —
 *  the design-space sweeps resolve (axis macro name, swept params)
 *  pairs through this. */
engine::Arch macroByName(const std::string& name, const MacroParams& p);

/** Table III defaults by the same names. */
MacroParams defaultsByName(const std::string& name);

/**
 * Appends one macro instance (its local buffer and everything inside) to
 * an existing hierarchy builder — used to embed macros in larger systems
 * (paper Fig. 15). @p kind selects the macro as in macroByName().
 */
void appendMacro(spec::HierarchyBuilder& builder, const MacroParams& p,
                 const std::string& kind);

/** Fills an Arch's representation/operating point from macro params. */
void applyMacroParams(engine::Arch& arch, const MacroParams& p);

/**
 * ADC resolution required to digitize a rows-long analog column sum at a
 * fixed truncation level: grows as log2(rows) (the Titanium-law scaling
 * the paper's array-size studies rely on). @p bits_at_128 anchors the
 * scale (NeuroSim's validated macro uses 5b at 128 rows).
 */
int scaledAdcBits(std::int64_t rows, int bits_at_128 = 5);

/**
 * Energy of the macro proper — nodes at or inside the "macro" container
 * — excluding the local buffer. The paper defines a macro as "an array
 * of memory cells plus the additional components needed to compute full
 * MAC operations"; published macro TOPS/W figures (Table III, Figs.
 * 7-11, 16) exclude the memory hierarchy, so validation uses this.
 */
double macroOnlyEnergyPj(const engine::Arch& arch,
                         const engine::Evaluation& ev);

/** Macro-level TOPS/W (2 ops per MAC, macro-only energy). */
double macroTopsPerWatt(const engine::Arch& arch,
                        const engine::Evaluation& ev);

} // namespace cimloop::macros

#endif // CIMLOOP_MACROS_MACROS_HH
