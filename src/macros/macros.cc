#include "cimloop/macros/macros.hh"

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"
#include "cimloop/spec/builder.hh"

namespace cimloop::macros {

using spec::HierarchyBuilder;
using workload::Dim;
using workload::TensorKind;

namespace {

constexpr TensorKind kIn = TensorKind::Input;
constexpr TensorKind kWt = TensorKind::Weight;
constexpr TensorKind kOut = TensorKind::Output;

/** Buffer capacity in elements (~8b each) from a KB capacity. */
std::int64_t
bufferEntries(const MacroParams& p)
{
    return p.bufferKb * 1024;
}

/** The local input/output buffer every macro starts with. */
void
appendLocalBuffer(HierarchyBuilder& b, const MacroParams& p)
{
    b.component("buffer", "SRAM")
        .temporalReuse({kIn, kOut})
        .attr("entries", bufferEntries(p))
        .attr("width", std::int64_t{64});
}

void
appendBase(HierarchyBuilder& b, const MacroParams& p)
{
    CIM_ASSERT(p.rows >= 1 && p.cols >= 1, "macro needs a non-empty array");
    appendLocalBuffer(b, p);
    b.container("macro")
        .component("shift_add", "ShiftAdd")
            .coalesce({kOut})
            .attr("width", std::int64_t{24})
        .component("dac_bank", "DAC")
            .noCoalesce({kIn})
            .attr("resolution", std::int64_t{p.dacBits})
        .container("column")
            .spatial(p.cols, 1)
            .spatialReuse({kIn})
            .spatialDims({Dim::K, Dim::WB})
        .component("adc", "ADC")
            .noCoalesce({kOut})
            .attr("resolution", std::int64_t{p.adcBits})
        .component("cells", "ReRAMCell")
            .spatial(1, p.rows)
            .temporalReuse({kWt})
            .spatialReuse({kOut})
            .spatialDims({Dim::C, Dim::R, Dim::S})
            .attr("idle_fraction", 0.25);
}

void
appendA(HierarchyBuilder& b, const MacroParams& p)
{
    CIM_ASSERT(p.outputReuseCols >= 1, "outputReuseCols must be >= 1");
    CIM_ASSERT(p.cols % p.outputReuseCols == 0,
               "columns (", p.cols, ") must divide into output-reuse "
               "groups of ", p.outputReuseCols);
    appendLocalBuffer(b, p);
    // Output-reuse groups: each group of columns holds *different
    // weights* whose outputs sum on a wire (Fig. 3, Macro A). Inputs are
    // unicast within a group — the traded-off input reuse.
    b.container("macro")
        .component("shift_add", "ShiftAdd")
            .coalesce({kOut})
            .attr("width", std::int64_t{24})
        .component("dac_bank", "DAC")
            .noCoalesce({kIn})
            .attr("resolution", std::int64_t{p.dacBits})
        .container("column_groups")
            .spatial(p.cols / p.outputReuseCols, 1)
            .spatialReuse({kIn})
            .spatialDims({Dim::K, Dim::WB})
        .component("adc", "ADC")
            .noCoalesce({kOut})
            .attr("resolution", std::int64_t{p.adcBits})
        .container("group")
            .spatial(p.outputReuseCols, 1)
            .spatialReuse({kOut})
            .spatialDims({Dim::C, Dim::R, Dim::S})
        .component("cells", "SRAMCell")
            .spatial(1, p.rows)
            .temporalReuse({kWt})
            .spatialReuse({kOut})
            .spatialDims({Dim::C, Dim::R, Dim::S})
            .attr("idle_fraction", 0.25);
}

void
appendB(HierarchyBuilder& b, const MacroParams& p)
{
    CIM_ASSERT(p.adderOperands >= 1, "adderOperands must be >= 1");
    CIM_ASSERT(p.cols % p.adderOperands == 0,
               "columns (", p.cols, ") must divide into adder groups of ",
               p.adderOperands);
    // The ADC digitizes the analog sum of `adderOperands` weighted
    // columns; its resolution must track that dynamic range. Anchored so
    // the published 4-operand configuration keeps its 4b ADC.
    int adc_bits = p.adcBits +
                   bitsForCount(std::max(p.adderOperands, 2)) -
                   bitsForCount(4);
    adc_bits = std::max(2, std::min(12, adc_bits));
    appendLocalBuffer(b, p);
    b.container("macro")
        .component("shift_add", "ShiftAdd")
            .coalesce({kOut})
            .attr("width", std::int64_t{16})
        .component("dac_bank", "DAC")
            .noCoalesce({kIn})
            .attr("resolution", std::int64_t{p.dacBits})
            .attr("unit_cap_energy_fj", 40.0)
        .container("adder_groups")
            .spatial(p.cols / p.adderOperands, 1)
            .spatialReuse({kIn})
            .spatialDims({Dim::K})
        .component("adc", "ADC")
            .noCoalesce({kOut})
            .attr("resolution", std::int64_t{adc_bits})
            .attr("fom_fj_per_step", 50.0)
            .attr("fom_thermal_fj", 0.2)
        .component("analog_adder", "AnalogAdder")
            .coalesce({kOut})
            .attr("operands", std::int64_t{p.adderOperands})
            .attr("unit_energy_fj", 20.0)
        .container("group")
            .spatial(p.adderOperands, 1)
            .spatialReuse({kIn})
            .spatialDims({Dim::WB})
        .component("cells", "SRAMCell")
            .spatial(1, p.rows)
            .temporalReuse({kWt})
            .spatialReuse({kOut})
            .spatialDims({Dim::C, Dim::R, Dim::S})
            .attr("mac_energy_fj", 20.0)
            .attr("idle_fraction", 0.25);
}

void
appendC(HierarchyBuilder& b, const MacroParams& p)
{
    appendLocalBuffer(b, p);
    b.container("macro")
        .component("dac_bank", "DAC")
            .noCoalesce({kIn})
            .attr("resolution", std::int64_t{p.dacBits})
        .container("column")
            .spatial(p.cols, 1)
            .spatialReuse({kIn})
            .spatialDims({Dim::K})
        .component("adc", "ADC")
            .noCoalesce({kOut})
            .attr("resolution", std::int64_t{p.adcBits})
            .attr("fom_fj_per_step", 4.0)
            .attr("fom_thermal_fj", 0.005)
        .component("analog_accumulator", "AnalogAccumulator")
            .temporalReuse({kOut})
        .component("cells", "ReRAMCell")
            .spatial(1, p.rows)
            .temporalReuse({kWt})
            .spatialReuse({kOut})
            .spatialDims({Dim::C, Dim::R, Dim::S})
            .attr("v_read", 0.2)
            .attr("t_read_ns", 4.0)
            .attr("g_on_us", 50.0)
            .attr("idle_fraction", 0.25);
}

void
appendD(HierarchyBuilder& b, const MacroParams& p)
{
    std::int64_t bank_rows =
        p.weightBankRows > 0 ? p.weightBankRows : p.rows;
    appendLocalBuffer(b, p);
    b.container("macro")
        .component("shift_add", "ShiftAdd")
            .coalesce({kOut})
            .attr("width", std::int64_t{24})
        .component("dac_bank", "DAC")
            .noCoalesce({kIn})
            .attr("resolution", std::int64_t{p.dacBits})
        .component("weight_bank", "SRAM")
            .temporalReuse({kWt})
            .attr("entries", bank_rows * p.cols)
            .attr("width", std::int64_t{p.weightBits})
        .container("column")
            .spatial(p.cols, 1)
            .spatialReuse({kIn})
            .spatialDims({Dim::K})
        .component("adc", "ADC")
            .noCoalesce({kOut})
            .attr("resolution", std::int64_t{p.adcBits})
            .attr("fom_fj_per_step", 40.0)
            .attr("fom_thermal_fj", 0.07)
        .component("mac_units", "CapacitorMac")
            .spatial(1, p.rows)
            .temporalReuse({kWt})
            .spatialReuse({kOut})
            .spatialDims({Dim::C, Dim::R, Dim::S})
            .attr("bits", std::int64_t{p.cellBits})
            .attr("unit_energy_fj", 26.0)
            .attr("area_per_bit_um2", 10.0)
            .attr("idle_fraction", 0.25);
}

void
appendDigital(HierarchyBuilder& b, const MacroParams& p)
{
    appendLocalBuffer(b, p);
    b.container("macro")
        .component("adder_tree", "DigitalAdder")
            .coalesce({kOut})
            .attr("width", std::int64_t{24})
        .container("column")
            .spatial(p.cols, 1)
            .spatialReuse({kIn})
            .spatialDims({Dim::K, Dim::WB})
        .component("mac_units", "DigitalMac")
            .spatial(1, p.rows)
            .temporalReuse({kWt})
            .spatialDims({Dim::C, Dim::R, Dim::S});
}

/** Finishes an Arch around a built hierarchy. */
engine::Arch
wrap(const MacroParams& p, const std::string& name, spec::Hierarchy h)
{
    engine::Arch arch;
    arch.name = name;
    arch.hierarchy = std::move(h);
    applyMacroParams(arch, p);
    return arch;
}

} // namespace

void
applyMacroParams(engine::Arch& arch, const MacroParams& p)
{
    arch.technologyNm = p.technologyNm;
    arch.supplyVoltage = p.supplyVoltage;
    arch.rep.inputEncoding = p.inputEncoding;
    arch.rep.weightEncoding = p.weightEncoding;
    arch.rep.inputBits = p.inputBits;
    arch.rep.weightBits = p.weightBits;
    arch.rep.dacBits = p.dacBits;
    arch.rep.cellBits = p.cellBits;
    arch.rep.outputBits =
        p.inputBits + p.weightBits +
        bitsForCount(std::max<std::int64_t>(p.rows, 2));
}

double
macroOnlyEnergyPj(const engine::Arch& arch, const engine::Evaluation& ev)
{
    CIM_ASSERT(ev.nodeEnergyPj.size() == arch.hierarchy.nodes.size(),
               "evaluation does not match the architecture");
    int start = arch.hierarchy.indexOf("macro");
    if (start < 0)
        start = 0;
    double total = 0.0;
    for (std::size_t i = start; i < ev.nodeEnergyPj.size(); ++i)
        total += ev.nodeEnergyPj[i];
    return total;
}

double
macroTopsPerWatt(const engine::Arch& arch, const engine::Evaluation& ev)
{
    double macro_pj = macroOnlyEnergyPj(arch, ev);
    return macro_pj > 0.0 ? 2.0 * ev.macs / macro_pj : 0.0;
}

int
scaledAdcBits(std::int64_t rows, int bits_at_128)
{
    CIM_ASSERT(rows >= 1, "scaledAdcBits needs rows >= 1");
    int delta = bitsForCount(std::max<std::int64_t>(rows, 2)) -
                bitsForCount(128);
    return std::max(2, std::min(12, bits_at_128 + delta));
}

void
appendMacro(HierarchyBuilder& builder, const MacroParams& p,
            const std::string& kind)
{
    std::string n = toLower(kind);
    if (n == "base")
        appendBase(builder, p);
    else if (n == "a" || n == "macro_a")
        appendA(builder, p);
    else if (n == "b" || n == "macro_b")
        appendB(builder, p);
    else if (n == "c" || n == "macro_c")
        appendC(builder, p);
    else if (n == "d" || n == "macro_d")
        appendD(builder, p);
    else if (n == "digital" || n == "digital_cim")
        appendDigital(builder, p);
    else
        CIM_FATAL("unknown macro '", kind,
                  "' (expected base, A, B, C, D, or digital)");
}

MacroParams
baseDefaults()
{
    // NeuroSim's validated 40 nm ReRAM macro [Lu et al.].
    MacroParams p;
    p.rows = 128;
    p.cols = 128;
    p.technologyNm = 40.0;
    p.dacBits = 1;
    p.cellBits = 1;
    p.adcBits = 5;
    p.bufferKb = 16;
    return p;
}

MacroParams
macroADefaults()
{
    // Jia et al., JSSC 2020: 65 nm SRAM, 768x768 binary cells, 8b ADC,
    // bit-serial 1b inputs, XNOR binary encoding, 3-column output reuse.
    MacroParams p;
    p.rows = 768;
    p.cols = 768;
    p.technologyNm = 65.0;
    p.inputBits = 8;
    p.weightBits = 8;
    p.dacBits = 1;
    p.cellBits = 1;
    p.adcBits = 8;
    p.outputReuseCols = 3;
    p.bufferKb = 64;
    p.inputEncoding = dist::Encoding::Xnor;
    p.weightEncoding = dist::Encoding::Xnor;
    return p;
}

MacroParams
macroBDefaults()
{
    // Sinangil et al., JSSC 2021: 7 nm SRAM, 64x64, 4b in/wt/out, analog
    // adder over 4 columns storing different bits of the same weight.
    MacroParams p;
    p.rows = 64;
    p.cols = 64;
    p.technologyNm = 7.0;
    p.inputBits = 4;
    p.weightBits = 4;
    p.dacBits = 4;
    p.cellBits = 1;
    p.adcBits = 4;
    p.adderOperands = 4;
    p.bufferKb = 2;
    return p;
}

MacroParams
macroCDefaults()
{
    // Wan et al., ISSCC 2020 / Nature 2022: 130 nm CMOS-ReRAM, 256x256,
    // analog weights (one cell per weight), bit-serial inputs integrated
    // on an analog accumulator, 8b ADC nominal (paper sweeps 1-10).
    MacroParams p;
    p.rows = 256;
    p.cols = 256;
    p.technologyNm = 130.0;
    p.inputBits = 8;
    p.weightBits = 8;
    p.dacBits = 1;
    p.cellBits = 8; // analog cell stores the full weight
    p.adcBits = 8;
    p.bufferKb = 4;
    return p;
}

MacroParams
macroDDefaults()
{
    // Wang et al., JSSC 2023: 22 nm SRAM, C-2C ladder 8b MAC units,
    // 512x128 array with a 64x128 active subset.
    MacroParams p;
    p.rows = 64; // active rows
    p.cols = 128;
    p.technologyNm = 22.0;
    p.inputBits = 8;
    p.weightBits = 8;
    p.dacBits = 8;
    p.cellBits = 8;
    p.adcBits = 8;
    p.weightBankRows = 512;
    p.bufferKb = 8;
    return p;
}

MacroParams
digitalCimDefaults()
{
    // Kim et al. "Colonnade", JSSC 2021: 65 nm bit-serial digital CiM.
    MacroParams p;
    p.rows = 128;
    p.cols = 128;
    p.technologyNm = 65.0;
    p.inputBits = 8;
    p.weightBits = 8;
    p.dacBits = 1;
    p.cellBits = 1;
    p.adcBits = 0; // no ADC at all
    return p;
}

engine::Arch
baseMacro(const MacroParams& p)
{
    HierarchyBuilder b("base_macro");
    appendBase(b, p);
    return wrap(p, "base_macro", b.build());
}

engine::Arch
macroA(const MacroParams& p)
{
    HierarchyBuilder b("macro_A");
    appendA(b, p);
    return wrap(p, "macro_A", b.build());
}

engine::Arch
macroB(const MacroParams& p)
{
    HierarchyBuilder b("macro_B");
    appendB(b, p);
    return wrap(p, "macro_B", b.build());
}

engine::Arch
macroC(const MacroParams& p)
{
    HierarchyBuilder b("macro_C");
    appendC(b, p);
    return wrap(p, "macro_C", b.build());
}

engine::Arch
macroD(const MacroParams& p)
{
    HierarchyBuilder b("macro_D");
    appendD(b, p);
    return wrap(p, "macro_D", b.build());
}

engine::Arch
digitalCim(const MacroParams& p)
{
    HierarchyBuilder b("digital_cim");
    appendDigital(b, p);
    return wrap(p, "digital_cim", b.build());
}

MacroParams
defaultsByName(const std::string& name)
{
    std::string n = toLower(name);
    if (n == "base")
        return baseDefaults();
    if (n == "a" || n == "macro_a")
        return macroADefaults();
    if (n == "b" || n == "macro_b")
        return macroBDefaults();
    if (n == "c" || n == "macro_c")
        return macroCDefaults();
    if (n == "d" || n == "macro_d")
        return macroDDefaults();
    if (n == "digital" || n == "digital_cim")
        return digitalCimDefaults();
    CIM_FATAL("unknown macro '", name,
              "' (expected base, A, B, C, D, or digital)");
}

engine::Arch
macroByName(const std::string& name)
{
    return macroByName(name, defaultsByName(name));
}

engine::Arch
macroByName(const std::string& name, const MacroParams& p)
{
    std::string n = toLower(name);
    if (n == "base")
        return baseMacro(p);
    if (n == "a" || n == "macro_a")
        return macroA(p);
    if (n == "b" || n == "macro_b")
        return macroB(p);
    if (n == "c" || n == "macro_c")
        return macroC(p);
    if (n == "d" || n == "macro_d")
        return macroD(p);
    if (n == "digital" || n == "digital_cim")
        return digitalCim(p);
    CIM_FATAL("unknown macro '", name,
              "' (expected base, A, B, C, D, or digital)");
}

} // namespace cimloop::macros
