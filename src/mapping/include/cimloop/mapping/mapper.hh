/**
 * @file
 * Mapspace search (paper Sec. III-A: Timeloop-style mapping search).
 *
 * The mapper generates valid mappings of a layer onto a hierarchy:
 *  - a greedy heuristic that maximizes array (innermost mesh) utilization
 *    and keeps weights stationary, and
 *  - seeded random sampling of the mapspace for search loops that
 *    evaluate thousands of mappings per layer (paper Sec. II-E).
 */
#ifndef CIMLOOP_MAPPING_MAPPER_HH
#define CIMLOOP_MAPPING_MAPPER_HH

#include <cstdint>
#include <optional>

#include "cimloop/common/util.hh"
#include "cimloop/mapping/mapping.hh"

namespace cimloop::mapping {

/** Mapper knobs. */
struct MapperOptions
{
    std::uint64_t seed = 1;   //!< RNG seed; same seed, same mappings
    int maxAttempts = 64;     //!< resamples per next() before giving up
};

/**
 * Generates mappings for one (hierarchy, layer) pair. Spatial factors are
 * drawn only over dims each node allows (spatial_dims constraint and the
 * hard wire-sharing rule); temporal loops live at storage nodes and the
 * outermost node.
 *
 * Thread safety: the const methods (greedy() and the next()/sample()
 * overloads taking a caller-owned Rng) touch no mapper state, so one
 * Mapper may be shared by concurrent search shards as long as each shard
 * draws from its own Rng stream (see Rng::forStream). The argument-less
 * next() uses the mapper's internal stream and is single-threaded.
 */
class Mapper
{
  public:
    Mapper(const spec::Hierarchy& hierarchy, const Layer& layer,
           MapperOptions options = {});

    /**
     * Deterministic high-utilization mapping: fills every mesh innermost-
     * first with the largest allowed factors, then places leftover loops
     * temporally at the outermost storage. Fatal when even this mapping
     * is structurally invalid.
     */
    Mapping greedy() const;

    /**
     * Draws the next random valid mapping, or nullopt when maxAttempts
     * samples in a row fail validation.
     */
    std::optional<Mapping> next();

    /**
     * Thread-safe next(): draws from the caller-owned @p rng instead of
     * the mapper's internal stream, adding each sample that failed
     * validation to @p rejected. Does not advance generated().
     */
    std::optional<Mapping> next(Rng& rng, int& rejected) const;

    /**
     * Enumerates the COMPLETE mapspace — every valid combination of
     * spatial factors, temporal splits, and per-node loop permutations —
     * for small layers/hierarchies. Fatal when the space exceeds
     * @p limit (use random search instead). The exhaustive optimum
     * bounds what any search can achieve, which the test suite uses to
     * validate the greedy/random mappers.
     */
    std::vector<Mapping> exhaustive(std::size_t limit = 200000);

    /** Mappings drawn so far (valid ones). */
    std::int64_t generated() const { return num_generated; }

  private:
    const spec::Hierarchy& hierarchy;
    const Layer& layer;
    MapperOptions options;
    Rng rng;
    std::int64_t num_generated = 0;

    /** Dims that node @p i may map spatially. */
    std::vector<Dim> allowedSpatialDims(int i) const;

    /** One random sample from @p rng (may be invalid). */
    Mapping sample(Rng& rng) const;
};

} // namespace cimloop::mapping

#endif // CIMLOOP_MAPPING_MAPPER_HH
