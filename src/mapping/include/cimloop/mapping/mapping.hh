/**
 * @file
 * Loop-nest mappings: the spatial and temporal scheduling of a workload
 * layer onto a container-hierarchy (paper Sec. II-B "Mapping").
 *
 * A mapping assigns, to every hierarchy node, per-dimension spatial and
 * temporal tiling factors plus a temporal loop permutation. The product of
 * all factors of a dimension across all nodes must equal the layer's
 * extent for that dimension.
 */
#ifndef CIMLOOP_MAPPING_MAPPING_HH
#define CIMLOOP_MAPPING_MAPPING_HH

#include <string>
#include <vector>

#include "cimloop/spec/hierarchy.hh"
#include "cimloop/workload/layer.hh"
#include "cimloop/yaml/node.hh"

namespace cimloop::mapping {

using workload::Dim;
using workload::DimSizes;
using workload::Layer;
using workload::TensorKind;

/** Tiling decisions at one hierarchy node. */
struct LevelMapping
{
    /** Temporal loop factors per dimension (1 = no loop). */
    DimSizes temporal = workload::onesDims();

    /** Spatial factors per dimension; their product must fit the mesh. */
    DimSizes spatial = workload::onesDims();

    /**
     * Temporal loop order, outermost first. Dimensions with factor 1 may
     * be omitted; omitted dims with factor > 1 are appended innermost in
     * canonical (enum) order.
     */
    std::vector<Dim> order;

    /** Product of spatial factors. */
    std::int64_t spatialUsed() const;

    /** Product of temporal factors. */
    std::int64_t temporalSteps() const;

    /**
     * Temporal loop order with defaults applied: every dim with factor
     * > 1 appears exactly once, outermost first.
     */
    std::vector<Dim> effectiveOrder() const;

    /** Exact structural equality (factors and literal order lists). */
    bool operator==(const LevelMapping&) const = default;
};

/** A full mapping: one LevelMapping per hierarchy node (same order). */
struct Mapping
{
    std::vector<LevelMapping> levels;

    /** Builds an identity mapping (all factors 1) for @p hierarchy. */
    static Mapping identity(const spec::Hierarchy& hierarchy);

    /** Product of temporal steps across all levels (total timesteps). */
    std::int64_t totalSteps() const;

    /**
     * Checks this mapping against the hierarchy and layer:
     *  - factor products per dimension equal the layer extents,
     *  - spatial products fit each node's mesh,
     *  - spatial dims honor each node's spatial_dims constraint,
     *  - hard wire-sharing: nodes with spatial_reuse for a tensor may only
     *    map dims irrelevant to that tensor spatially (unless
     *    flexible_spatial).
     *
     * Returns an empty string when valid, else a description of the first
     * violation.
     */
    std::string check(const spec::Hierarchy& hierarchy,
                      const Layer& layer) const;

    /** Fatal wrapper around check(). */
    void validate(const spec::Hierarchy& hierarchy,
                  const Layer& layer) const;

    /** Human-readable nest listing. */
    std::string toString(const spec::Hierarchy& hierarchy) const;

    /**
     * Serializes the mapping as YAML (Timeloop-style fixed mapping):
     *
     *   mapping:
     *     - node: buffer
     *       temporal: {C: 2, P: 4}
     *       order: [C, P]
     *     - node: cells
     *       spatial: {C: 64}
     *
     * Nodes with no loops are omitted. fromYaml() reconstructs it.
     */
    std::string toYamlText(const spec::Hierarchy& hierarchy) const;

    /** Parses a mapping serialized by toYamlText(); fatal on unknown
     *  nodes/dims or malformed structure. */
    static Mapping fromYaml(const spec::Hierarchy& hierarchy,
                            const yaml::Node& doc);

    /** Parses a mapping from YAML text. */
    static Mapping fromText(const spec::Hierarchy& hierarchy,
                            const std::string& text);

    /** Exact structural equality, level by level. */
    bool operator==(const Mapping&) const = default;
};

} // namespace cimloop::mapping

#endif // CIMLOOP_MAPPING_MAPPING_HH
