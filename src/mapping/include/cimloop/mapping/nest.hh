/**
 * @file
 * Nest analysis: given (hierarchy, mapping, layer), compute how many times
 * every component moves each tensor, accounting for temporal reuse,
 * spatial multicast/reduction, coalescing, and bypass (paper Sec. III-B1).
 *
 * Counting model (dense workloads; paper Sec. III-D3 assumes mappings are
 * regular loop nests):
 *
 *  - Demand starts at compute: every unit operation (MAC x input-slice x
 *    weight-slice) uses one slice of each operand and emits one partial
 *    output.
 *  - A storage node (temporal_reuse) for tensor T filters demand: its
 *    parent-side traffic ("fills" for Inputs/Weights, "writebacks" for
 *    Outputs) is tile x copies x evictions, where evictions follow the
 *    permutation-aware rule: an outer temporal loop over a T-irrelevant
 *    dimension forces refetch only when a T-relevant temporal loop sits
 *    inside it; the innermost contiguous block of irrelevant loops leaves
 *    the tile stationary.
 *  - Crossing a node with spatial_reuse for T divides the stream by the
 *    irrelevant spatial fan (multicast for Inputs/Weights, wired
 *    reduction for Outputs).
 *  - A coalesce node merges all spatially-pending partial outputs into
 *    one value per datum.
 *  - A no_coalesce node performs one action per datum streamed through it.
 *
 * All counts are whole-layer, system-wide totals (summed over instances).
 */
#ifndef CIMLOOP_MAPPING_NEST_HH
#define CIMLOOP_MAPPING_NEST_HH

#include <string>
#include <vector>

#include "cimloop/mapping/mapping.hh"

namespace cimloop::mapping {

/** Per-node, per-tensor access counts. */
struct TensorCounts
{
    /** Storage: accesses served to the child side (reads for
     *  Inputs/Weights; for Outputs this counts arriving updates). */
    double reads = 0.0;

    /** Storage: traffic on the parent side — fills for Inputs/Weights,
     *  writebacks for Outputs. */
    double fills = 0.0;

    /** Pass-through (coalesce / no_coalesce): actions performed
     *  (converts, adds, transfers). */
    double actions = 0.0;

    /** Per-instance tile footprint, in slice units. */
    std::int64_t tile = 0;
};

/** Counts and occupancy for one hierarchy node. */
struct NodeCounts
{
    spec::PerTensor<TensorCounts> tensors = {};

    /** Instances of this node that the mapping uses, system-wide. */
    std::int64_t usedInstances = 1;

    /** Instances physically present, system-wide. */
    std::int64_t totalInstances = 1;

    /** usedInstances / totalInstances. */
    double utilization = 1.0;
};

/** The result of analyzing one (hierarchy, mapping, layer) triple. */
struct NestResult
{
    bool valid = false;
    std::string invalidReason;

    std::vector<NodeCounts> nodes; //!< parallel to hierarchy.nodes

    /** Total unit operations (MACs x input slices x weight slices). */
    double totalOps = 0.0;

    /** Total temporal steps (product of all temporal factors). */
    std::int64_t steps = 1;

    /** Used instances of the innermost node (peak spatial parallelism). */
    std::int64_t innermostParallelism = 1;
};

/**
 * Runs the nest analysis. Returns an invalid result (with a reason) when
 * the mapping fails validation or a storage capacity ("entries"
 * attribute) is exceeded; never throws for mapping-shaped problems.
 */
NestResult analyzeNest(const spec::Hierarchy& hierarchy,
                       const Mapping& mapping, const Layer& layer);

} // namespace cimloop::mapping

#endif // CIMLOOP_MAPPING_NEST_HH
