#include "cimloop/mapping/mapper.hh"

#include <algorithm>

#include "cimloop/common/error.hh"
#include "cimloop/obs/obs.hh"

namespace cimloop::mapping {

using spec::SpecNode;
using spec::tensorIndex;
using workload::dimIndex;
using workload::dimRelevantTo;
using workload::kAllDims;
using workload::kAllTensors;

Mapper::Mapper(const spec::Hierarchy& h, const Layer& l, MapperOptions opts)
    : hierarchy(h), layer(l), options(opts), rng(opts.seed ? opts.seed : 1)
{
    CIM_ASSERT(!hierarchy.nodes.empty(), "mapper needs a hierarchy");
}

namespace {

/** True when node @p n permits a temporal loop over @p d. */
bool
allowsTemporal(const SpecNode& n, Dim d)
{
    return n.temporalDims.empty() ||
           std::find(n.temporalDims.begin(), n.temporalDims.end(), d) !=
               n.temporalDims.end();
}

} // namespace

std::vector<Dim>
Mapper::allowedSpatialDims(int i) const
{
    const SpecNode& node = hierarchy.nodes[i];
    std::vector<Dim> allowed;
    for (Dim d : kAllDims) {
        if (!node.spatialDims.empty() &&
            std::find(node.spatialDims.begin(), node.spatialDims.end(), d) ==
                node.spatialDims.end()) {
            continue;
        }
        bool conflict = false;
        if (!node.flexibleSpatial) {
            for (TensorKind t : kAllTensors) {
                if (node.spatialReuse[tensorIndex(t)] &&
                    dimRelevantTo(t, d)) {
                    conflict = true; // shared wire cannot carry distinct data
                }
            }
        }
        if (!conflict)
            allowed.push_back(d);
    }
    return allowed;
}

Mapping
Mapper::greedy() const
{
    Mapping m = Mapping::identity(hierarchy);
    DimSizes remaining = layer.dims;

    const int num_nodes = static_cast<int>(hierarchy.nodes.size());

    // Spatial: innermost mesh first, largest allowed divisors.
    for (int i = num_nodes - 1; i >= 0; --i) {
        const SpecNode& node = hierarchy.nodes[i];
        std::int64_t budget = node.spatialFanout();
        if (budget <= 1)
            continue;
        for (Dim d : allowedSpatialDims(i)) {
            if (budget <= 1)
                break;
            std::int64_t rem = remaining[dimIndex(d)];
            if (rem <= 1)
                continue;
            // Largest divisor of rem that fits the budget.
            std::int64_t best = 1;
            for (std::int64_t f : divisorsOf(rem)) {
                if (f <= budget)
                    best = f;
            }
            if (best > 1) {
                m.levels[i].spatial[dimIndex(d)] = best;
                remaining[dimIndex(d)] /= best;
                budget /= best;
            }
        }
    }

    // Temporal: each leftover dimension goes to the outermost storage
    // node whose temporal_dims constraint permits it (node 0 as the
    // fallback host when it stores nothing).
    std::vector<int> eligible;
    for (int i = 0; i < num_nodes; ++i) {
        bool stores_any = false;
        for (TensorKind t : kAllTensors)
            stores_any = stores_any || hierarchy.nodes[i].stores(t);
        if (stores_any || i == 0)
            eligible.push_back(i);
    }
    for (Dim d : kAllDims) {
        if (remaining[dimIndex(d)] <= 1)
            continue;
        bool placed = false;
        for (int i : eligible) {
            if (allowsTemporal(hierarchy.nodes[i], d)) {
                m.levels[i].temporal[dimIndex(d)] =
                    remaining[dimIndex(d)];
                placed = true;
                break;
            }
        }
        if (!placed) {
            CIM_FATAL("no storage node permits a temporal loop over ",
                      workload::dimName(d), " for layer '", layer.name,
                      "' on hierarchy '", hierarchy.name, "'");
        }
    }

    // Weight-stationary loop order everywhere: weight-relevant dims
    // outermost so the innermost block of weight-irrelevant loops
    // (N, P, Q, IB) keeps the array's weights resident.
    for (int i : eligible) {
        m.levels[i].order = {Dim::C, Dim::K, Dim::R, Dim::S, Dim::WB,
                             Dim::N, Dim::P, Dim::Q, Dim::IB};
    }

    m.validate(hierarchy, layer);
    return m;
}

Mapping
Mapper::sample(Rng& rng) const
{
    Mapping m = Mapping::identity(hierarchy);
    DimSizes remaining = layer.dims;
    const int num_nodes = static_cast<int>(hierarchy.nodes.size());

    // Spatial factors, innermost first. Bias toward high utilization
    // (the published macros' mappers do the same) but keep the space open.
    for (int i = num_nodes - 1; i >= 0; --i) {
        const SpecNode& node = hierarchy.nodes[i];
        std::int64_t budget = node.spatialFanout();
        if (budget <= 1)
            continue;
        std::vector<Dim> allowed = allowedSpatialDims(i);
        // Visit allowed dims in random order.
        for (std::size_t a = allowed.size(); a > 1; --a)
            std::swap(allowed[a - 1], allowed[rng.below(a)]);
        for (Dim d : allowed) {
            if (budget <= 1)
                break;
            std::int64_t rem = remaining[dimIndex(d)];
            if (rem <= 1)
                continue;
            std::vector<std::int64_t> divs;
            for (std::int64_t f : divisorsOf(rem)) {
                if (f <= budget)
                    divs.push_back(f);
            }
            std::int64_t f = 1;
            if (rng.uniform() < 0.7) {
                f = divs.back(); // largest fitting divisor
            } else {
                f = divs[rng.below(divs.size())];
            }
            if (f > 1) {
                m.levels[i].spatial[dimIndex(d)] = f;
                remaining[dimIndex(d)] /= f;
                budget /= f;
            }
        }
    }

    // Temporal factors: split what remains of each dim across the storage
    // nodes (inner ones take random divisors; the outermost eligible node
    // takes the rest).
    std::vector<int> eligible; // ascending = outermost first
    for (int i = 0; i < num_nodes; ++i) {
        bool stores_any = false;
        for (TensorKind t : kAllTensors)
            stores_any = stores_any || hierarchy.nodes[i].stores(t);
        if (stores_any || i == 0)
            eligible.push_back(i);
    }
    for (Dim d : kAllDims) {
        std::int64_t rem = remaining[dimIndex(d)];
        if (rem <= 1)
            continue;
        // The outermost node permitting d takes whatever is left.
        int rest_taker = -1;
        for (int i : eligible) {
            if (allowsTemporal(hierarchy.nodes[i], d)) {
                rest_taker = i;
                break;
            }
        }
        if (rest_taker < 0)
            return m; // unmappable dim; caller's check() rejects it
        // Walk eligible nodes innermost-first, peeling random factors.
        for (auto it = eligible.rbegin(); it != eligible.rend(); ++it) {
            int i = *it;
            if (i == rest_taker) {
                m.levels[i].temporal[dimIndex(d)] *= rem;
                rem = 1;
                break;
            }
            if (!allowsTemporal(hierarchy.nodes[i], d))
                continue;
            auto divs = divisorsOf(rem);
            std::int64_t f = divs[rng.below(divs.size())];
            if (f > 1) {
                m.levels[i].temporal[dimIndex(d)] = f;
                rem /= f;
            }
            if (rem == 1)
                break;
        }
        CIM_ASSERT(rem == 1, "temporal split left factor ", rem,
                   " unassigned for dim ", workload::dimName(d));
    }

    // Random permutation per node over the dims with temporal loops.
    for (int i = 0; i < num_nodes; ++i) {
        std::vector<Dim> order;
        for (Dim d : kAllDims) {
            if (m.levels[i].temporal[dimIndex(d)] > 1)
                order.push_back(d);
        }
        for (std::size_t a = order.size(); a > 1; --a)
            std::swap(order[a - 1], order[rng.below(a)]);
        m.levels[i].order = order;
    }
    return m;
}

namespace {

/** Recursion state for exhaustive enumeration. */
struct Enumerator
{
    const spec::Hierarchy& hierarchy;
    const Layer& layer;
    std::size_t limit;
    std::vector<Mapping>& out;
    std::vector<int> eligible; //!< temporal-loop hosts, outermost first

    void
    emit(Mapping& m)
    {
        if (m.check(hierarchy, layer).empty()) {
            if (out.size() >= limit) {
                CIM_FATAL("mapspace exceeds the exhaustive limit of ",
                          limit, " mappings; use random search");
            }
            out.push_back(m);
        }
    }

    /** Permutations of each node's active temporal dims, innermost
     *  choice last: recurse over eligible nodes. */
    void
    permutations(Mapping& m, std::size_t who)
    {
        if (who == eligible.size()) {
            emit(m);
            return;
        }
        int node = eligible[who];
        std::vector<Dim> active;
        for (Dim d : kAllDims) {
            if (m.levels[node].temporal[dimIndex(d)] > 1)
                active.push_back(d);
        }
        if (active.size() <= 1) {
            m.levels[node].order = active;
            permutations(m, who + 1);
            return;
        }
        std::sort(active.begin(), active.end());
        do {
            m.levels[node].order = active;
            permutations(m, who + 1);
        } while (std::next_permutation(active.begin(), active.end()));
    }

    /** Splits dim d's remaining extent across the eligible nodes. */
    void
    temporalSplit(Mapping& m, const DimSizes& remaining, int dim_idx)
    {
        if (dim_idx == workload::kNumDims) {
            permutations(m, 0);
            return;
        }
        Dim d = kAllDims[dim_idx];
        std::int64_t rem = remaining[dimIndex(d)];
        if (rem == 1) {
            temporalSplit(m, remaining, dim_idx + 1);
            return;
        }
        // Ordered factorizations of rem over the eligible nodes.
        splitOver(m, remaining, dim_idx, 0, rem);
    }

    void
    splitOver(Mapping& m, const DimSizes& remaining, int dim_idx,
              std::size_t who, std::int64_t rem)
    {
        Dim d = kAllDims[dim_idx];
        if (who == eligible.size()) {
            if (rem == 1)
                temporalSplit(m, remaining, dim_idx + 1);
            return;
        }
        int node = eligible[who];
        bool allowed = allowsTemporal(hierarchy.nodes[node], d);
        for (std::int64_t f : divisorsOf(rem)) {
            if (f > 1 && !allowed)
                break; // divisors ascend; only f == 1 is permitted
            m.levels[node].temporal[dimIndex(d)] = f;
            splitOver(m, remaining, dim_idx, who + 1, rem / f);
        }
        m.levels[node].temporal[dimIndex(d)] = 1;
    }

    /** Assigns spatial factors node by node, innermost first. */
    void
    spatial(Mapping& m, DimSizes remaining, int node_rev)
    {
        int num_nodes = static_cast<int>(hierarchy.nodes.size());
        if (node_rev == num_nodes) {
            temporalSplit(m, remaining, 0);
            return;
        }
        int node = num_nodes - 1 - node_rev;
        std::int64_t budget = hierarchy.nodes[node].spatialFanout();
        if (budget <= 1) {
            spatial(m, remaining, node_rev + 1);
            return;
        }
        spatialDims(m, remaining, node_rev, node, 0, budget);
    }

    void
    spatialDims(Mapping& m, DimSizes remaining, int node_rev, int node,
                int dim_idx, std::int64_t budget)
    {
        if (dim_idx == workload::kNumDims) {
            spatial(m, remaining, node_rev + 1);
            return;
        }
        Dim d = kAllDims[dim_idx];
        std::int64_t rem = remaining[dimIndex(d)];
        for (std::int64_t f : divisorsOf(rem)) {
            if (f > budget)
                break;
            m.levels[node].spatial[dimIndex(d)] = f;
            remaining[dimIndex(d)] = rem / f;
            spatialDims(m, remaining, node_rev, node, dim_idx + 1,
                        budget / f);
        }
        m.levels[node].spatial[dimIndex(d)] = 1;
        remaining[dimIndex(d)] = rem;
    }
};

} // namespace

std::vector<Mapping>
Mapper::exhaustive(std::size_t limit)
{
    std::vector<Mapping> out;
    std::vector<int> eligible;
    for (int i = 0; i < static_cast<int>(hierarchy.nodes.size()); ++i) {
        bool stores_any = false;
        for (TensorKind t : kAllTensors)
            stores_any = stores_any || hierarchy.nodes[i].stores(t);
        if (stores_any || i == 0)
            eligible.push_back(i);
    }
    Enumerator en{hierarchy, layer, limit, out, eligible};
    Mapping m = Mapping::identity(hierarchy);
    en.spatial(m, layer.dims, 0);
    return out;
}

std::optional<Mapping>
Mapper::next()
{
    int rejected = 0;
    std::optional<Mapping> m = next(rng, rejected);
    if (m)
        ++num_generated;
    return m;
}

std::optional<Mapping>
Mapper::next(Rng& rng, int& rejected) const
{
    static obs::Counter& samples = obs::counter("mapping.mapper.samples");
    for (int attempt = 0; attempt < options.maxAttempts; ++attempt) {
        samples.add();
        Mapping m = sample(rng);
        if (m.check(hierarchy, layer).empty())
            return m;
        ++rejected;
    }
    return std::nullopt;
}

} // namespace cimloop::mapping
