#include "cimloop/mapping/mapping.hh"

#include <algorithm>
#include <sstream>

#include "cimloop/common/error.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::mapping {

using workload::dimIndex;
using workload::dimName;
using workload::dimRelevantTo;
using workload::kAllDims;
using workload::kAllTensors;

std::int64_t
LevelMapping::spatialUsed() const
{
    std::int64_t used = 1;
    for (std::int64_t f : spatial)
        used *= f;
    return used;
}

std::int64_t
LevelMapping::temporalSteps() const
{
    std::int64_t steps = 1;
    for (std::int64_t f : temporal)
        steps *= f;
    return steps;
}

std::vector<Dim>
LevelMapping::effectiveOrder() const
{
    std::vector<Dim> out;
    auto contains = [&out](Dim d) {
        return std::find(out.begin(), out.end(), d) != out.end();
    };
    for (Dim d : order) {
        if (temporal[dimIndex(d)] > 1 && !contains(d))
            out.push_back(d);
    }
    for (Dim d : kAllDims) {
        if (temporal[dimIndex(d)] > 1 && !contains(d))
            out.push_back(d);
    }
    return out;
}

Mapping
Mapping::identity(const spec::Hierarchy& hierarchy)
{
    Mapping m;
    m.levels.resize(hierarchy.nodes.size());
    return m;
}

std::int64_t
Mapping::totalSteps() const
{
    std::int64_t steps = 1;
    for (const LevelMapping& lm : levels)
        steps *= lm.temporalSteps();
    return steps;
}

std::string
Mapping::check(const spec::Hierarchy& hierarchy, const Layer& layer) const
{
    std::ostringstream err;
    if (levels.size() != hierarchy.nodes.size()) {
        err << "mapping has " << levels.size() << " levels but hierarchy '"
            << hierarchy.name << "' has " << hierarchy.nodes.size()
            << " nodes";
        return err.str();
    }

    // Factor products must reconstruct the layer extents.
    for (Dim d : kAllDims) {
        std::int64_t product = 1;
        for (const LevelMapping& lm : levels)
            product *= lm.temporal[dimIndex(d)] * lm.spatial[dimIndex(d)];
        if (product != layer.size(d)) {
            err << "dimension " << dimName(d) << ": factors multiply to "
                << product << " but layer has extent " << layer.size(d);
            return err.str();
        }
    }

    for (std::size_t i = 0; i < levels.size(); ++i) {
        const LevelMapping& lm = levels[i];
        const spec::SpecNode& node = hierarchy.nodes[i];

        for (Dim d : kAllDims) {
            if (lm.temporal[dimIndex(d)] < 1 || lm.spatial[dimIndex(d)] < 1) {
                err << "node '" << node.name << "': non-positive factor for "
                    << dimName(d);
                return err.str();
            }
        }

        if (lm.spatialUsed() > node.spatialFanout()) {
            err << "node '" << node.name << "': spatial factors use "
                << lm.spatialUsed() << " instances but the mesh has only "
                << node.spatialFanout();
            return err.str();
        }

        for (Dim d : kAllDims) {
            if (lm.temporal[dimIndex(d)] > 1 &&
                !node.temporalDims.empty() &&
                std::find(node.temporalDims.begin(),
                          node.temporalDims.end(),
                          d) == node.temporalDims.end()) {
                err << "node '" << node.name << "': dimension "
                    << dimName(d)
                    << " is not in the node's temporal_dims constraint";
                return err.str();
            }
        }

        for (Dim d : kAllDims) {
            std::int64_t s = lm.spatial[dimIndex(d)];
            if (s <= 1)
                continue;
            // spatial_dims constraint.
            if (!node.spatialDims.empty() &&
                std::find(node.spatialDims.begin(), node.spatialDims.end(),
                          d) == node.spatialDims.end()) {
                err << "node '" << node.name << "': dimension " << dimName(d)
                    << " is not in the node's spatial_dims constraint";
                return err.str();
            }
            // Hard wire-sharing: a shared wire (spatial_reuse) cannot carry
            // distinct data, so dims relevant to the reused tensor cannot
            // be spatial here.
            if (!node.flexibleSpatial) {
                for (TensorKind t : kAllTensors) {
                    if (node.spatialReuse[spec::tensorIndex(t)] &&
                        dimRelevantTo(t, d)) {
                        err << "node '" << node.name << "': "
                            << workload::tensorName(t)
                            << " is spatially reused (shared wire) but "
                            << dimName(d)
                            << " would put distinct data on the wire";
                        return err.str();
                    }
                }
            }
        }
    }
    return "";
}

void
Mapping::validate(const spec::Hierarchy& hierarchy, const Layer& layer) const
{
    std::string problem = check(hierarchy, layer);
    if (!problem.empty())
        CIM_FATAL("invalid mapping for layer '", layer.name, "': ", problem);
}

std::string
Mapping::toYamlText(const spec::Hierarchy& hierarchy) const
{
    CIM_ASSERT(levels.size() == hierarchy.nodes.size(),
               "mapping does not match the hierarchy");
    std::ostringstream oss;
    oss << "mapping:\n";
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const LevelMapping& lm = levels[i];
        bool any_temporal = lm.temporalSteps() > 1;
        bool any_spatial = lm.spatialUsed() > 1;
        if (!any_temporal && !any_spatial)
            continue;
        oss << "  - node: " << hierarchy.nodes[i].name << "\n";
        if (any_temporal) {
            oss << "    temporal: {";
            bool first = true;
            for (Dim d : kAllDims) {
                if (lm.temporal[dimIndex(d)] > 1) {
                    oss << (first ? "" : ", ") << dimName(d) << ": "
                        << lm.temporal[dimIndex(d)];
                    first = false;
                }
            }
            oss << "}\n";
            std::vector<Dim> order = lm.effectiveOrder();
            oss << "    order: [";
            for (std::size_t j = 0; j < order.size(); ++j)
                oss << (j ? ", " : "") << dimName(order[j]);
            oss << "]\n";
        }
        if (any_spatial) {
            oss << "    spatial: {";
            bool first = true;
            for (Dim d : kAllDims) {
                if (lm.spatial[dimIndex(d)] > 1) {
                    oss << (first ? "" : ", ") << dimName(d) << ": "
                        << lm.spatial[dimIndex(d)];
                    first = false;
                }
            }
            oss << "}\n";
        }
    }
    return oss.str();
}

Mapping
Mapping::fromYaml(const spec::Hierarchy& hierarchy, const yaml::Node& doc)
{
    Mapping m = Mapping::identity(hierarchy);
    const yaml::Node* seq = &doc;
    if (doc.isMapping() && doc.has("mapping"))
        seq = &doc["mapping"];
    if (!seq->isSequence())
        CIM_FATAL("mapping document must be a sequence of node entries");
    for (const yaml::Node& entry : seq->elements()) {
        if (!entry.isMapping() || !entry.has("node"))
            CIM_FATAL("mapping entry needs a 'node' key");
        std::string node_name = entry["node"].asString();
        int i = hierarchy.indexOf(node_name);
        if (i < 0)
            CIM_FATAL("mapping references unknown node '", node_name,
                      "'");
        LevelMapping& lm = m.levels[i];
        for (const auto& [key, value] : entry.items()) {
            if (key == "node")
                continue;
            if (key == "temporal" || key == "spatial") {
                if (!value.isMapping())
                    CIM_FATAL("mapping node '", node_name, "': ", key,
                              " must be a {dim: factor} mapping");
                for (const auto& [dk, dv] : value.items()) {
                    Dim d = workload::dimFromString(dk);
                    std::int64_t f = dv.asInt();
                    if (f < 1)
                        CIM_FATAL("mapping node '", node_name,
                                  "': factor for ", dk, " must be >= 1");
                    (key == "temporal" ? lm.temporal
                                       : lm.spatial)[dimIndex(d)] = f;
                }
            } else if (key == "order") {
                if (!value.isSequence())
                    CIM_FATAL("mapping node '", node_name,
                              "': order must be a list of dims");
                for (const yaml::Node& dn : value.elements())
                    lm.order.push_back(
                        workload::dimFromString(dn.asString()));
            } else {
                CIM_FATAL("mapping node '", node_name,
                          "': unknown key '", key, "'");
            }
        }
    }
    return m;
}

Mapping
Mapping::fromText(const spec::Hierarchy& hierarchy,
                  const std::string& text)
{
    return fromYaml(hierarchy, yaml::parse(text));
}

std::string
Mapping::toString(const spec::Hierarchy& hierarchy) const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const LevelMapping& lm = levels[i];
        const spec::SpecNode& node =
            i < hierarchy.nodes.size() ? hierarchy.nodes[i] : spec::SpecNode{};
        bool any = false;
        std::ostringstream line;
        line << node.name << ": ";
        for (Dim d : lm.effectiveOrder()) {
            line << "for " << dimName(d) << " in 0.."
                 << lm.temporal[dimIndex(d)] << " ";
            any = true;
        }
        for (Dim d : kAllDims) {
            if (lm.spatial[dimIndex(d)] > 1) {
                line << "par-for " << dimName(d) << " in 0.."
                     << lm.spatial[dimIndex(d)] << " ";
                any = true;
            }
        }
        if (any)
            oss << line.str() << "\n";
    }
    return oss.str();
}

} // namespace cimloop::mapping
