#include "cimloop/mapping/nest.hh"

#include <algorithm>

#include "cimloop/common/error.hh"

namespace cimloop::mapping {

using spec::SpecNode;
using spec::TemporalDirective;
using spec::tensorIndex;
using workload::dimIndex;
using workload::dimRelevantTo;
using workload::kAllDims;
using workload::kAllTensors;

namespace {

/** Product of all mapping factors (temporal x spatial) of node @p i for
 *  dims relevant / irrelevant to tensor @p t. */
std::int64_t
spatialRelevant(const LevelMapping& lm, TensorKind t)
{
    std::int64_t rel = 1;
    for (Dim d : kAllDims) {
        if (dimRelevantTo(t, d))
            rel *= lm.spatial[dimIndex(d)];
    }
    return rel;
}

std::int64_t
spatialIrrelevant(const LevelMapping& lm, TensorKind t)
{
    return lm.spatialUsed() / spatialRelevant(lm, t);
}

/** Extents covered strictly inside node @p i (all factors of nodes > i). */
DimSizes
extentsBelow(const Mapping& mapping, int i)
{
    DimSizes cum = workload::onesDims();
    for (std::size_t j = i + 1; j < mapping.levels.size(); ++j) {
        const LevelMapping& lm = mapping.levels[j];
        for (Dim d : kAllDims) {
            cum[dimIndex(d)] *=
                lm.temporal[dimIndex(d)] * lm.spatial[dimIndex(d)];
        }
    }
    return cum;
}

/**
 * Permutation-aware temporal eviction product for tensor @p t stored at
 * node @p b: the number of times node b's tile is (re)fetched due to the
 * temporal loops outside its storage (nodes 0..b, including b's own
 * temporal loops, which iterate over successive tiles).
 *
 * A relevant loop always multiplies (each iteration is new data). An
 * irrelevant loop multiplies only when a relevant temporal loop sits
 * strictly inside it — below it in its own node's order, or at any node
 * between it and the storage node — because then the tile sequence
 * repeats and must be refetched. Otherwise the tile is stationary.
 */
double
temporalEvictions(const spec::Hierarchy& hierarchy, const Mapping& mapping,
                  TensorKind t, int b)
{
    (void)hierarchy;
    // relevantInside[j] = true when a relevant temporal loop exists at any
    // node k with j < k <= b.
    std::vector<bool> relevant_inside(b + 2, false);
    for (int j = b; j >= 0; --j) {
        bool here = false;
        for (Dim d : kAllDims) {
            if (dimRelevantTo(t, d) &&
                mapping.levels[j].temporal[dimIndex(d)] > 1) {
                here = true;
            }
        }
        relevant_inside[j] = relevant_inside[j + 1] || here;
    }

    double product = 1.0;
    for (int j = 0; j <= b; ++j) {
        const LevelMapping& lm = mapping.levels[j];
        std::vector<Dim> order = lm.effectiveOrder(); // outermost first
        // Walk this node's loops innermost-first, tracking whether a
        // relevant loop lies inside the current position.
        bool relevant_below = relevant_inside[j + 1];
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            Dim d = *it;
            std::int64_t f = lm.temporal[dimIndex(d)];
            if (dimRelevantTo(t, d)) {
                product *= static_cast<double>(f);
                relevant_below = true;
            } else if (relevant_below) {
                product *= static_cast<double>(f);
            }
            // else: stationary tile; no refetch from this loop.
        }
    }
    return product;
}

/** True when tensor @p t can be multicast/reduced across node @p j. */
bool
reusesSpatially(const SpecNode& node, TensorKind t)
{
    return node.spatialReuse[tensorIndex(t)] || node.flexibleSpatial;
}

} // namespace

NestResult
analyzeNest(const spec::Hierarchy& hierarchy, const Mapping& mapping,
            const Layer& layer)
{
    NestResult result;
    result.invalidReason = mapping.check(hierarchy, layer);
    if (!result.invalidReason.empty())
        return result;

    const int num_nodes = static_cast<int>(hierarchy.nodes.size());
    result.nodes.resize(num_nodes);
    result.steps = mapping.totalSteps();

    result.totalOps = 1.0;
    for (Dim d : kAllDims)
        result.totalOps *= static_cast<double>(layer.size(d));

    // Instance counts: node i is replicated by the spatial factors of all
    // nodes scoping it (indices < i).
    for (int i = 0; i < num_nodes; ++i) {
        std::int64_t used = 1, total = 1;
        for (int j = 0; j < i; ++j) {
            used *= mapping.levels[j].spatialUsed();
            total *= hierarchy.nodes[j].spatialFanout();
        }
        // A node's own mesh also contributes to its own instance count.
        used *= mapping.levels[i].spatialUsed();
        total *= hierarchy.nodes[i].spatialFanout();
        result.nodes[i].usedInstances = used;
        result.nodes[i].totalInstances = total;
        result.nodes[i].utilization =
            static_cast<double>(used) / static_cast<double>(total);
    }
    result.innermostParallelism = result.nodes[num_nodes - 1].usedInstances;

    // Per-tensor traffic analysis.
    for (TensorKind t : kAllTensors) {
        const int ti = tensorIndex(t);

        // Storage nodes for t, ascending index (outermost first).
        std::vector<int> storages;
        for (int i = 0; i < num_nodes; ++i) {
            if (hierarchy.nodes[i].stores(t))
                storages.push_back(i);
        }
        CIM_ASSERT(!storages.empty(), "validate() guarantees storage for ",
                   workload::tensorName(t));

        // Tiles at storage nodes (per instance, slice units).
        for (int b : storages) {
            DimSizes below = extentsBelow(mapping, b);
            result.nodes[b].tensors[ti].tile =
                Layer::tensorTile(t, below);
        }

        // Demand segments run from each source (compute, or an inner
        // storage node) up to the next outer storage node (or the top).
        // sources[k] pairs with sink storages[k]; the innermost segment's
        // source is compute (index num_nodes, raw demand = totalOps).
        for (std::size_t seg = 0; seg <= storages.size(); ++seg) {
            // Segment seg: from source (inner) to sink (outer).
            //   seg == storages.size(): source = compute, sink =
            //     storages.back().
            //   otherwise: source = storages[seg], sink = storages[seg-1]
            //     (seg == 0: sink = top of hierarchy).
            int source; // node index of the source; num_nodes = compute
            int sink;   // node index of the sink; -1 = top
            double stream;
            double pending = 1.0; // unmerged spatial partials (Outputs)

            if (seg == storages.size()) {
                source = num_nodes;
                sink = storages.back();
                // Compute demand: every unit op touches the tensor once.
                // All mapping factors are already included in totalOps.
                stream = result.totalOps;
            } else {
                source = storages[seg];
                sink = seg == 0 ? -1 : storages[seg - 1];
                // Demand the source storage places on its parent side,
                // measured at its instance boundary (one term per
                // instance, copies included): tile x every spatial factor
                // at or outside the source x temporal evictions.
                const TensorCounts& tc = result.nodes[source].tensors[ti];
                stream = static_cast<double>(tc.tile);
                for (int j = 0; j <= source; ++j) {
                    stream *= static_cast<double>(
                        mapping.levels[j].spatialUsed());
                }
                stream *= temporalEvictions(hierarchy, mapping, t, source);
            }

            // Walk node boundaries from the source's own mesh boundary
            // outward to the sink.
            int start = (source == num_nodes) ? num_nodes - 1 : source;
            for (int k = start; k > sink; --k) {
                const SpecNode& node = hierarchy.nodes[k];
                const LevelMapping& lm = mapping.levels[k];
                std::int64_t s_irr = spatialIrrelevant(lm, t);

                // Crossing node k's mesh boundary: a shared wire
                // multicasts (Inputs/Weights) or sums (Outputs) the
                // s_irr same-datum crossings into one. Without reuse the
                // copies stay in flight; coalescers track them via
                // `pending`.
                if (s_irr > 1) {
                    if (reusesSpatially(node, t))
                        stream /= static_cast<double>(s_irr);
                    else
                        pending *= static_cast<double>(s_irr);
                }

                if (k == source) {
                    // Traffic on the wire directly above the source: its
                    // fills (Inputs/Weights) or writebacks (Outputs).
                    result.nodes[source].tensors[ti].fills = stream;
                    continue;
                }

                TemporalDirective dir = node.directiveFor(t);
                if (dir == TemporalDirective::NoCoalesce) {
                    result.nodes[k].tensors[ti].actions += stream;
                } else if (dir == TemporalDirective::Coalesce) {
                    result.nodes[k].tensors[ti].actions += stream;
                    stream /= pending;
                    pending = 1.0;
                }
            }

            if (sink >= 0) {
                // The sink serves this segment's demand on its child side
                // (reads for Inputs/Weights, arriving updates for
                // Outputs).
                result.nodes[sink].tensors[ti].reads += stream;
            }
        }
    }

    // Capacity checks: per-instance stored tiles must fit an 'entries'
    // attribute when present.
    for (int i = 0; i < num_nodes; ++i) {
        const SpecNode& node = hierarchy.nodes[i];
        if (!node.hasAttr("entries"))
            continue;
        std::int64_t entries = node.attrInt("entries", 0);
        std::int64_t occupied = 0;
        for (TensorKind t : kAllTensors) {
            if (node.stores(t))
                occupied += result.nodes[i].tensors[tensorIndex(t)].tile;
        }
        if (occupied > entries) {
            result.invalidReason = cimloop::detail::concatMessage(
                "node '", node.name, "': tile of ", occupied,
                " entries exceeds capacity ", entries);
            return result;
        }
    }

    result.valid = true;
    return result;
}

} // namespace cimloop::mapping
