#include "cimloop/models/bankconflict.hh"

#include <algorithm>
#include <vector>

#include "cimloop/common/error.hh"

namespace cimloop::models {

using workload::Dim;
using workload::DimSizes;
using workload::TensorKind;
using workload::dimIndex;

namespace {

/**
 * Tile extent and requester count of one physical rank. Inputs fold the
 * R/S reduction loops into the halo'd P/Q extents, matching the tensor
 * projection Inputs[n][c][p + r][q + s][ib].
 */
void
foldRank(TensorKind t, Dim d, const DimSizes& below,
         const DimSizes& parallel, std::int64_t& extent, std::int64_t& fan)
{
    extent = below[dimIndex(d)];
    fan = parallel[dimIndex(d)];
    if (t == TensorKind::Input && d == Dim::P) {
        extent = below[dimIndex(Dim::P)] + below[dimIndex(Dim::R)] - 1;
        fan = parallel[dimIndex(Dim::P)] * parallel[dimIndex(Dim::R)];
    } else if (t == TensorKind::Input && d == Dim::Q) {
        extent = below[dimIndex(Dim::Q)] + below[dimIndex(Dim::S)] - 1;
        fan = parallel[dimIndex(Dim::Q)] * parallel[dimIndex(Dim::S)];
    }
}

} // namespace

double
bankConflictSlowdown(const layout::TensorLayout& tl, const DimSizes& below,
                     const DimSizes& parallel)
{
    const std::vector<Dim> canonical = layout::tensorRankDims(tl.tensor);

    // Physical rank order: canonical ranks not listed stay outermost (in
    // canonical order); listed ranks move innermost, last listed fastest.
    std::vector<Dim> physical;
    physical.reserve(canonical.size());
    for (Dim d : canonical) {
        if (std::find(tl.rankOrder.begin(), tl.rankOrder.end(), d) ==
            tl.rankOrder.end())
            physical.push_back(d);
    }
    physical.insert(physical.end(), tl.rankOrder.begin(),
                    tl.rankOrder.end());

    // Element stride of each rank: product of the extents inside it.
    const std::size_t nr = physical.size();
    std::vector<std::int64_t> extent(nr), fan(nr), stride(nr);
    std::int64_t cum = 1;
    for (std::size_t r = nr; r-- > 0;) {
        foldRank(tl.tensor, physical[r], below, parallel, extent[r],
                 fan[r]);
        stride[r] = cum;
        cum *= std::max<std::int64_t>(extent[r], 1);
    }

    double requesters = 1.0;
    for (std::size_t r = 0; r < nr; ++r)
        requesters *= static_cast<double>(std::max<std::int64_t>(fan[r], 1));
    if (requesters <= 1.0)
        return 1.0; // a lone requester never conflicts

    // Distinct banks the requesters spread over. Parallel instances
    // along one rank own contiguous sub-tiles, so their base addresses
    // are separated by stride x sub-tile elements; the bank of element
    // a is floor(a / interleave) mod banks. Ranks are independent, so
    // the joint spread is the product, capped by the bank count (and by
    // the requester count — you cannot occupy more banks than requests).
    const std::int64_t banks = std::max<std::int64_t>(tl.banks, 1);
    const std::int64_t il = std::max<std::int64_t>(tl.interleave, 1);
    double distinct = 1.0;
    std::vector<char> seen(static_cast<std::size_t>(banks));
    for (std::size_t r = 0; r < nr && distinct < requesters; ++r) {
        if (fan[r] <= 1)
            continue;
        std::int64_t sep =
            stride[r] * std::max<std::int64_t>(extent[r] / fan[r], 1);
        std::fill(seen.begin(), seen.end(), 0);
        std::int64_t touched = 0;
        for (std::int64_t k = 0; k < fan[r]; ++k) {
            std::int64_t bank = (k * sep / il) % banks;
            if (!seen[static_cast<std::size_t>(bank)]) {
                seen[static_cast<std::size_t>(bank)] = 1;
                if (++touched == banks)
                    break; // all banks covered; no more spread possible
            }
        }
        distinct *= static_cast<double>(touched);
    }
    distinct = std::min(distinct, static_cast<double>(banks));
    distinct = std::min(distinct, requesters);

    // Serialize the worst bank: ceil(R / D) extra-cycle multiplier.
    double slowdown =
        static_cast<double>(static_cast<std::int64_t>(
            (requesters + distinct - 1.0) / distinct));
    return std::max(slowdown, 1.0);
}

spec::PerTensor<double>
bankConflictSlowdowns(const layout::ResolvedLayout& layout,
                      const spec::Hierarchy& hierarchy,
                      std::size_t node_index,
                      const mapping::Mapping& mapping)
{
    CIM_ASSERT(mapping.levels.size() == hierarchy.nodes.size(),
               "mapping does not match the hierarchy");
    spec::PerTensor<double> slow = {1.0, 1.0, 1.0};
    if (node_index >= layout.slots.size() || !layout.nodeAny(node_index))
        return slow;

    // Tile extents covered inside the node, and the spatial fanout that
    // makes the concurrent requesters (same decomposition the nest
    // analysis uses for tile sizing).
    DimSizes below = workload::onesDims();
    DimSizes parallel = workload::onesDims();
    for (std::size_t j = node_index + 1; j < mapping.levels.size(); ++j) {
        const mapping::LevelMapping& lm = mapping.levels[j];
        for (Dim d : workload::kAllDims) {
            below[dimIndex(d)] *=
                lm.temporal[dimIndex(d)] * lm.spatial[dimIndex(d)];
            parallel[dimIndex(d)] *= lm.spatial[dimIndex(d)];
        }
    }

    for (TensorKind t : workload::kAllTensors) {
        const layout::TensorLayout* tl = layout.at(node_index, t);
        if (tl)
            slow[spec::tensorIndex(t)] =
                bankConflictSlowdown(*tl, below, parallel);
    }
    return slow;
}

} // namespace cimloop::models
