#include "cimloop/models/component.hh"

#include <algorithm>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::models {

std::int64_t
ComponentContext::attrInt(const std::string& key, std::int64_t fb) const
{
    CIM_ASSERT(node, "ComponentContext has no spec node");
    return node->attrInt(key, fb);
}

double
ComponentContext::attrDouble(const std::string& key, double fb) const
{
    CIM_ASSERT(node, "ComponentContext has no spec node");
    return node->attrDouble(key, fb);
}

std::string
ComponentContext::attrString(const std::string& key,
                             const std::string& fb) const
{
    CIM_ASSERT(node, "ComponentContext has no spec node");
    return node->attrString(key, fb);
}

TechParams
ComponentContext::tech() const
{
    return techParams(technologyNm);
}

double
ComponentContext::voltage() const
{
    return supplyVoltage > 0.0 ? supplyVoltage : tech().vNominal;
}

double
ComponentContext::voltageEnergyFactor() const
{
    return VoltageModel(tech()).energyFactor(voltage());
}

double
ComponentContext::voltageFrequencyFactor() const
{
    return VoltageModel(tech()).frequencyFactor(voltage());
}

PluginRegistry&
PluginRegistry::instance()
{
    static PluginRegistry registry;
    static bool initialized = false;
    if (!initialized) {
        initialized = true;
        registerBuiltinModels(registry);
    }
    return registry;
}

void
PluginRegistry::add(std::unique_ptr<ComponentModel> model)
{
    CIM_ASSERT(model, "cannot register a null model");
    std::string key = toLower(model->className());
    models[key] = std::move(model);
}

const ComponentModel*
PluginRegistry::find(const std::string& class_name) const
{
    auto it = models.find(toLower(class_name));
    return it == models.end() ? nullptr : it->second.get();
}

const ComponentModel&
PluginRegistry::require(const std::string& class_name) const
{
    const ComponentModel* m = find(class_name);
    if (!m) {
        CIM_FATAL("no component model registered for class '", class_name,
                  "'; register a plug-in or use a built-in class");
    }
    return *m;
}

std::vector<std::string>
PluginRegistry::classNames() const
{
    std::vector<std::string> names;
    names.reserve(models.size());
    for (const auto& [k, v] : models) {
        (void)k;
        names.push_back(v->className());
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace cimloop::models
