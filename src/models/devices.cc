#include "cimloop/models/devices.hh"

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::models {

namespace {

yaml::Node
num(double v)
{
    return yaml::Node::makeFloat(v);
}

/** Builds the preset table once. Values follow the NVMExplorer /
 *  NeuroSim survey ballparks for each technology class. */
std::vector<DevicePreset>
buildPresets()
{
    std::vector<DevicePreset> out;

    {
        DevicePreset p;
        p.name = "ReRAM";
        p.cellClass = "ReRAMCell";
        p.nonVolatile = true;
        p.maxBitsPerCell = 4; // analog multi-level storage
        p.attributes["g_on_us"] = num(100.0);
        p.attributes["g_off_us"] = num(2.0);
        p.attributes["v_read"] = num(0.25);
        p.attributes["t_read_ns"] = num(10.0);
        p.attributes["write_energy_pj"] = num(8.0);
        p.attributes["area_f2"] = num(40.0);
        out.push_back(std::move(p));
    }
    {
        DevicePreset p;
        p.name = "PCM";
        p.cellClass = "ReRAMCell"; // same conductive-read physics
        p.nonVolatile = true;
        p.maxBitsPerCell = 4;
        p.attributes["g_on_us"] = num(50.0);
        p.attributes["g_off_us"] = num(0.5);
        p.attributes["v_read"] = num(0.2);
        p.attributes["t_read_ns"] = num(20.0);
        // Melt-quench programming is expensive.
        p.attributes["write_energy_pj"] = num(30.0);
        p.attributes["area_f2"] = num(25.0);
        out.push_back(std::move(p));
    }
    {
        DevicePreset p;
        p.name = "STT-MRAM";
        p.cellClass = "ReRAMCell";
        p.nonVolatile = true;
        p.maxBitsPerCell = 1; // binary only; low TMR ratio
        p.attributes["g_on_us"] = num(250.0);
        p.attributes["g_off_us"] = num(125.0);
        p.attributes["v_read"] = num(0.15);
        p.attributes["t_read_ns"] = num(5.0);
        p.attributes["write_energy_pj"] = num(1.0);
        p.attributes["area_f2"] = num(60.0);
        out.push_back(std::move(p));
    }
    {
        DevicePreset p;
        p.name = "FeFET";
        p.cellClass = "ReRAMCell";
        p.nonVolatile = true;
        p.maxBitsPerCell = 3;
        p.attributes["g_on_us"] = num(40.0);
        p.attributes["g_off_us"] = num(0.4);
        p.attributes["v_read"] = num(0.2);
        p.attributes["t_read_ns"] = num(8.0);
        // Field-effect programming: very cheap writes.
        p.attributes["write_energy_pj"] = num(0.1);
        p.attributes["area_f2"] = num(30.0);
        out.push_back(std::move(p));
    }
    {
        DevicePreset p;
        p.name = "SRAM";
        p.cellClass = "SRAMCell";
        p.nonVolatile = false;
        p.maxBitsPerCell = 1;
        p.attributes["mac_energy_fj"] = num(1.8);
        p.attributes["write_energy_fj"] = num(4.0);
        p.attributes["area_f2"] = num(320.0);
        p.attributes["leakage_pw"] = num(40.0);
        out.push_back(std::move(p));
    }
    return out;
}

const std::vector<DevicePreset>&
presets()
{
    static const std::vector<DevicePreset> table = buildPresets();
    return table;
}

} // namespace

const DevicePreset&
devicePreset(const std::string& name)
{
    std::string n = toLower(name);
    for (const DevicePreset& p : presets()) {
        if (toLower(p.name) == n)
            return p;
    }
    CIM_FATAL("unknown device preset '", name, "' (have: ReRAM, PCM, "
              "STT-MRAM, FeFET, SRAM)");
}

std::vector<std::string>
devicePresetNames()
{
    std::vector<std::string> names;
    for (const DevicePreset& p : presets())
        names.push_back(p.name);
    return names;
}

void
applyDevicePreset(spec::Hierarchy& hierarchy,
                  const std::string& cell_node_name,
                  const DevicePreset& preset)
{
    int idx = hierarchy.indexOf(cell_node_name);
    if (idx < 0) {
        CIM_FATAL("hierarchy '", hierarchy.name, "' has no node '",
                  cell_node_name, "' to re-target to ", preset.name);
    }
    spec::SpecNode& node = hierarchy.nodes[idx];
    node.klass = preset.cellClass;
    for (const auto& [key, value] : preset.attributes)
        node.attributes[key] = value;
}

} // namespace cimloop::models
