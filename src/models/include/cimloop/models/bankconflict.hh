/**
 * @file
 * Analytical bank-conflict model (LayoutLoop / SquareLoop style).
 *
 * A storage node with spatial fanout below it is hit by many requesters
 * per step: every spatial instance the mapping creates under the node
 * wants a (generally different) element of the stored tile in the same
 * cycle. The idealized engine serves them all at once. With a physical
 * layout, requests that land in the same bank serialize:
 *
 *   slowdown = ceil(R / D)
 *
 * where R is the number of concurrent requesters (product of spatial
 * factors below the node over the tensor's index dims) and D the number
 * of *distinct* banks those requests touch. D follows from the layout:
 * walking the physical rank order innermost-out gives each dim an
 * element stride; parallel requests along dim d are separated by
 * stride_d x (tile_d / fan_d) elements, and the bank of element a is
 * floor(a / interleave) mod banks. The model is deterministic, closed
 * form, and exact for the affine access patterns the nest analysis
 * produces; slowdown 1.0 reproduces the idealized engine bit-for-bit.
 */
#ifndef CIMLOOP_MODELS_BANKCONFLICT_HH
#define CIMLOOP_MODELS_BANKCONFLICT_HH

#include "cimloop/layout/layout.hh"
#include "cimloop/mapping/mapping.hh"
#include "cimloop/spec/hierarchy.hh"
#include "cimloop/workload/layer.hh"

namespace cimloop::models {

/**
 * Slowdown (>= 1.0) of one tensor's accesses at one storage node.
 *
 * @p below  extents covered inside the node (all mapping factors of
 *           deeper nodes, per dim — cf. the nest analysis's tile
 *           extents); Inputs apply the halo to P/Q internally.
 * @p parallel  concurrent requesters per dim: the product of *spatial*
 *           factors of deeper nodes (R/S fold into P/Q for Inputs
 *           before calling; pass the raw per-dim factors here).
 */
double bankConflictSlowdown(const layout::TensorLayout& tl,
                            const workload::DimSizes& below,
                            const workload::DimSizes& parallel);

/**
 * Per-tensor slowdowns for hierarchy node @p node_index under
 * @p mapping. Tensors without a layout at the node (or not stored
 * there) get exactly 1.0.
 */
spec::PerTensor<double>
bankConflictSlowdowns(const layout::ResolvedLayout& layout,
                      const spec::Hierarchy& hierarchy,
                      std::size_t node_index,
                      const mapping::Mapping& mapping);

} // namespace cimloop::models

#endif // CIMLOOP_MODELS_BANKCONFLICT_HH
