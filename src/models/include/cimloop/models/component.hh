/**
 * @file
 * The data-value-dependent component modeling interface (paper Sec.
 * III-C) and the Accelergy-style plug-in registry.
 *
 * A component model receives, per tensor, the *representation* that this
 * component actually sees — an encoding, bit width, and code distribution
 * (dist::EncodedTensor) — plus the component's attributes and operating
 * point, and returns per-action energies, area, and latency. Because the
 * result is an *average per action*, the engine computes it once per
 * (architecture, layer) and reuses it across any number of actions and
 * mappings (paper Sec. III-D: constant-runtime statistical model).
 */
#ifndef CIMLOOP_MODELS_COMPONENT_HH
#define CIMLOOP_MODELS_COMPONENT_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cimloop/dist/encoding.hh"
#include "cimloop/models/tech.hh"
#include "cimloop/spec/hierarchy.hh"

namespace cimloop::models {

using spec::PerTensor;
using workload::TensorKind;

/** Operating point and data context handed to a component model. */
struct ComponentContext
{
    /** The spec node (attributes, directives). Never null. */
    const spec::SpecNode* node = nullptr;

    /** Technology node in nm. */
    double technologyNm = 65.0;

    /** Supply voltage in volts (0 = use the node's nominal). */
    double supplyVoltage = 0.0;

    /** Representation of each tensor at this component. Tensors the
     *  component bypasses hold a default EncodedTensor. */
    PerTensor<dist::EncodedTensor> tensors = {};

    /** Attribute lookup forwarding to the spec node. */
    std::int64_t attrInt(const std::string& key, std::int64_t fb) const;
    double attrDouble(const std::string& key, double fb) const;
    std::string attrString(const std::string& key,
                           const std::string& fb) const;

    /** Resolved technology parameters. */
    TechParams tech() const;

    /** Resolved supply voltage (nominal when unset). */
    double voltage() const;

    /** Energy multiplier for voltage relative to nominal. */
    double voltageEnergyFactor() const;

    /** Achievable frequency multiplier for voltage. */
    double voltageFrequencyFactor() const;
};

/** Per-action estimates a component model produces. */
struct ComponentEstimate
{
    /** Area of one instance, um^2. */
    double areaUm2 = 0.0;

    /** Latency of one action, ns (0 = not rate-limiting). */
    double latencyNs = 0.0;

    /** Energy per child-side access served (storage reads / arriving
     *  updates), pJ, per tensor. */
    PerTensor<double> readEnergyPj = {0.0, 0.0, 0.0};

    /** Energy per parent-side transfer (fills / writebacks), pJ. */
    PerTensor<double> fillEnergyPj = {0.0, 0.0, 0.0};

    /** Energy per pass-through action (convert, add, transfer), pJ. */
    PerTensor<double> actionEnergyPj = {0.0, 0.0, 0.0};

    /**
     * Static (leakage) power per instance, uW. Charged for the whole
     * execution time of a layer (NeuroSim includes the same term).
     * Components that power-gate between uses (ADCs) fold their bias
     * into the per-action energy instead and report 0 here.
     */
    double staticPowerUw = 0.0;
};

/** Interface implemented by every plug-in model. */
class ComponentModel
{
  public:
    virtual ~ComponentModel() = default;

    /** Component class this model handles (matches SpecNode::klass). */
    virtual std::string className() const = 0;

    /** One-line description for documentation listings. */
    virtual std::string description() const = 0;

    /** Computes per-action estimates for a component in context. */
    virtual ComponentEstimate estimate(const ComponentContext& ctx) const
        = 0;
};

/**
 * Registry of component models keyed by class name (case-insensitive).
 * Built-in plug-ins register at first use; user plug-ins can be added at
 * runtime (paper: "a simple plug-in interface that lets users define new
 * data-value-dependent energy models").
 */
class PluginRegistry
{
  public:
    /** The global registry (built-ins pre-registered). */
    static PluginRegistry& instance();

    /** Registers a model; replaces any model with the same class name. */
    void add(std::unique_ptr<ComponentModel> model);

    /** Finds a model; nullptr when the class is unknown. */
    const ComponentModel* find(const std::string& class_name) const;

    /** Finds a model; fatal when the class is unknown. */
    const ComponentModel& require(const std::string& class_name) const;

    /** Registered class names, sorted. */
    std::vector<std::string> classNames() const;

  private:
    PluginRegistry() = default;
    std::map<std::string, std::unique_ptr<ComponentModel>> models;
};

/** Registers all built-in plug-ins into @p registry (idempotent). */
void registerBuiltinModels(PluginRegistry& registry);

} // namespace cimloop::models

#endif // CIMLOOP_MODELS_COMPONENT_HH
