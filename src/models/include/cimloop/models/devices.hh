/**
 * @file
 * Memory-cell device presets (paper Sec. III-C2: "we also connect the
 * NeuroSim plug-in to memory cells in the NVMExplorer memory cell
 * exploration tool to let users flexibly swap device models").
 *
 * Each preset names the plug-in class that models the device and the
 * attribute set to program into a hierarchy's cell node, so a user can
 * re-run any study with a different storage technology by swapping one
 * preset.
 */
#ifndef CIMLOOP_MODELS_DEVICES_HH
#define CIMLOOP_MODELS_DEVICES_HH

#include <map>
#include <string>
#include <vector>

#include "cimloop/spec/hierarchy.hh"

namespace cimloop::models {

/** One memory-cell technology operating point. */
struct DevicePreset
{
    std::string name;       //!< "ReRAM", "PCM", "STT-MRAM", "SRAM", "FeFET"
    std::string cellClass;  //!< plug-in class modeling it
    bool nonVolatile = true;
    int maxBitsPerCell = 1; //!< multi-level-cell capability

    /** Attributes programmed into the cell node. */
    std::map<std::string, yaml::Node> attributes;
};

/** Looks a preset up by (case-insensitive) name; fatal when unknown. */
const DevicePreset& devicePreset(const std::string& name);

/** All preset names, in a stable order. */
std::vector<std::string> devicePresetNames();

/**
 * Re-targets the named cell node of @p hierarchy to @p preset: replaces
 * its class and merges the preset's attributes (existing attributes with
 * the same keys are overwritten; others are kept). Fatal when the node
 * does not exist.
 */
void applyDevicePreset(spec::Hierarchy& hierarchy,
                       const std::string& cell_node_name,
                       const DevicePreset& preset);

} // namespace cimloop::models

#endif // CIMLOOP_MODELS_DEVICES_HH
