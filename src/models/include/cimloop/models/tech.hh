/**
 * @file
 * Technology and supply-voltage scaling.
 *
 * CiMLoop scales component models across process nodes (paper Sec. V-B5
 * scales Macros A/B/D to 7 nm for a fair comparison) using
 * Stillmaker-Baas-style scaling factors, and models supply-voltage sweeps
 * (paper Fig. 7) with the standard CV^2 energy rule and the alpha-power
 * delay law.
 */
#ifndef CIMLOOP_MODELS_TECH_HH
#define CIMLOOP_MODELS_TECH_HH

namespace cimloop::models {

/** Per-node reference parameters (interpolated between table entries). */
struct TechParams
{
    double nm = 65.0;          //!< feature size
    double vNominal = 1.0;     //!< nominal supply (V)
    double vThreshold = 0.35;  //!< threshold voltage (V)
    double energyFactor = 1.0; //!< dynamic energy relative to 65 nm
    double areaFactor = 1.0;   //!< logic area relative to 65 nm
    double delayFactor = 1.0;  //!< gate delay relative to 65 nm
};

/** Looks up (with geometric interpolation) parameters for a node. */
TechParams techParams(double nm);

/** Dynamic energy multiplier when porting a value from one node to
 *  another at nominal voltage. */
double energyScale(double from_nm, double to_nm);

/** Area multiplier between nodes. */
double areaScale(double from_nm, double to_nm);

/** Delay multiplier between nodes. */
double delayScale(double from_nm, double to_nm);

/**
 * Supply-voltage behaviour at a node: energy goes as (V/Vnom)^2, maximum
 * frequency follows the alpha-power law f ~ (V - Vt)^alpha / V.
 */
class VoltageModel
{
  public:
    explicit VoltageModel(const TechParams& tech, double alpha = 1.3);

    /** Dynamic-energy multiplier at supply @p v relative to nominal. */
    double energyFactor(double v) const;

    /** Achievable-frequency multiplier at supply @p v (1.0 at nominal);
     *  fatal when @p v is at or below threshold. */
    double frequencyFactor(double v) const;

    double nominal() const { return v_nom; }
    double threshold() const { return v_th; }

  private:
    double v_nom;
    double v_th;
    double alpha;
};

} // namespace cimloop::models

#endif // CIMLOOP_MODELS_TECH_HH
