/**
 * @file
 * Built-in component model plug-ins (paper Sec. III-C2).
 *
 * The suite mirrors the plug-ins CiMLoop ships: an ADC regression model in
 * the spirit of the ADC-survey plug-in, NeuroSim-style analytical models
 * for cells/drivers/digital logic, a CACTI-lite SRAM buffer model, and a
 * component library for published CiM works. Energy formulas are
 * capacitance-switching (C V^2 activity) or conductance (G V^2 T) forms;
 * constants are calibrated so the Table III macros land near their
 * published efficiency (see EXPERIMENTS.md).
 *
 * Units: energy pJ, area um^2, latency ns, voltage V.
 */
#include <cmath>

#include "cimloop/common/error.hh"
#include "cimloop/models/component.hh"

namespace cimloop::models {

namespace {

using dist::EncodedTensor;
using spec::tensorIndex;

constexpr int kI = tensorIndex(TensorKind::Input);
constexpr int kW = tensorIndex(TensorKind::Weight);
constexpr int kO = tensorIndex(TensorKind::Output);

/** Energy scale factor of the context's node relative to 65 nm. */
double
e65(const ComponentContext& ctx)
{
    return energyScale(65.0, ctx.technologyNm) * ctx.voltageEnergyFactor();
}

/** Area scale factor relative to 65 nm. */
double
a65(const ComponentContext& ctx)
{
    return areaScale(65.0, ctx.technologyNm);
}

/** Delay scale relative to 65 nm, including voltage slowdown. */
double
d65(const ComponentContext& ctx)
{
    return delayScale(65.0, ctx.technologyNm) /
           ctx.voltageFrequencyFactor();
}

/**
 * ADC: regression over published ADC surveys. Energy per conversion
 * follows the Walden figure-of-merit form E = FoM * 2^bits; area grows
 * with the capacitor array (~2^bits). A `value_aware` attribute enables
 * bit-level value dependence (converts of small values cost less).
 */
class AdcModel : public ComponentModel
{
  public:
    std::string className() const override { return "ADC"; }

    std::string
    description() const override
    {
        return "successive-approximation ADC, survey-regression energy";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        int bits = static_cast<int>(ctx.attrInt("resolution", 8));
        // A user-reachable limit, not an invariant: design sweeps over
        // array size / DAC width can push the derived resolution past
        // the survey's 14-bit ceiling, and that point must fail as a
        // spec error (FatalError) the keep-going paths can report.
        if (bits < 1 || bits > 14) {
            CIM_FATAL("ADC attribute 'resolution' must be within "
                      "[1, 14], got ", bits,
                      " (the survey regression has no data beyond "
                      "14 bits)");
        }
        // Survey regression: a Walden term (E ~ 2^bits) plus a
        // thermal-noise term (E ~ 4^bits) that dominates at high
        // resolution — the reason ADC cost stops amortizing as CiM
        // arrays (and thus required resolutions) grow.
        double fom_fj = ctx.attrDouble("fom_fj_per_step", 25.0);
        double fom4_fj = ctx.attrDouble("fom_thermal_fj", 0.05);
        // ADCs scale sub-quadratically with supply (comparator noise
        // floors keep the FoM from improving as fast as CV^2 logic).
        double v_scale = std::pow(ctx.voltageEnergyFactor(), 0.5);
        double energy = (fom_fj * std::pow(2.0, bits) +
                         fom4_fj * std::pow(4.0, bits)) /
                        1000.0 * energyScale(65.0, ctx.technologyNm) *
                        v_scale;
        if (ctx.attrInt("value_aware", 0)) {
            // Value-aware SAR terminates early on small codes; the
            // resolved-bit count grows concavely, so the expectation runs
            // over the full code distribution.
            const EncodedTensor& out = ctx.tensors[kO];
            double mc = out.maxCode();
            energy *= out.codes.expectation([mc](double code) {
                double level = mc > 0.0 ? code / mc : 0.0;
                return 0.3 + 0.7 * std::min(1.0, std::sqrt(2.0 * level));
            });
        }
        ComponentEstimate est;
        est.actionEnergyPj[kO] = energy;
        // SAR: one comparison cycle per bit.
        double clock_ghz = ctx.attrDouble("clock_ghz", 1.0);
        est.latencyNs = bits / clock_ghz * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_per_step_um2", 18.0) *
                      std::pow(2.0, bits) * a65(ctx);
        return est;
    }
};

/**
 * DAC: capacitive DAC whose switching energy is proportional to the
 * converted code — the data-value-dependent behaviour in paper Fig. 4.
 * XNOR/bipolar representations toggle full-swing every bit instead.
 */
class DacModel : public ComponentModel
{
  public:
    std::string className() const override { return "DAC"; }

    std::string
    description() const override
    {
        return "capacitive DAC; energy proportional to converted value";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& in = ctx.tensors[kI];
        int bits = static_cast<int>(ctx.attrInt("resolution", in.bits));
        CIM_ASSERT(bits >= 1 && bits <= 14, "DAC resolution out of range: ",
                   bits);
        double e_unit_fj = ctx.attrDouble("unit_cap_energy_fj", 3.0);
        double e_base_fj = ctx.attrDouble("base_energy_fj_per_bit", 1.5);
        double value_term;
        if (in.bipolarBits) {
            // Bipolar bits swing full scale; cost follows toggling.
            value_term = in.meanBitFlips() * std::pow(2.0, bits) /
                         std::max(1, in.bits);
        } else {
            value_term = in.meanNormValue() * (std::pow(2.0, bits) - 1.0);
        }
        double energy_fj = e_unit_fj * value_term + e_base_fj * bits;
        ComponentEstimate est;
        est.actionEnergyPj[kI] = energy_fj / 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 1.0) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_per_bit_um2", 60.0) * bits *
                      a65(ctx);
        return est;
    }
};

/**
 * SRAM CiM bitcell: charge-domain multiply. Per-op energy scales with the
 * input level and the probability the stored weight bit conducts.
 */
class SramCellModel : public ComponentModel
{
  public:
    std::string className() const override { return "SRAMCell"; }

    std::string
    description() const override
    {
        return "6T+compute SRAM cell, charge-domain MAC";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& in = ctx.tensors[kI];
        const EncodedTensor& wt = ctx.tensors[kW];
        double e_mac_fj = ctx.attrDouble("mac_energy_fj", 1.8);
        double activity = in.bipolarBits
            ? 0.5 + 0.5 * wt.meanNormValue()
            : in.meanNormValue() * (0.15 + 0.85 * wt.meanNormValue());
        ComponentEstimate est;
        est.readEnergyPj[kW] = e_mac_fj * activity / 1000.0 * e65(ctx);
        est.fillEnergyPj[kW] =
            ctx.attrDouble("write_energy_fj", 4.0) / 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 1.0) * d65(ctx);
        double f2 = ctx.technologyNm * ctx.technologyNm * 1e-6; // um^2 per F^2
        est.areaUm2 = ctx.attrDouble("area_f2", 320.0) * f2;
        // 6T bitcell subthreshold leakage (nonvolatile cells report 0).
        est.staticPowerUw =
            ctx.attrDouble("leakage_pw", 40.0) / 1e6 * ctx.voltage();
        return est;
    }
};

/**
 * ReRAM cell: read energy G V^2 T (paper Algorithm 1). The average
 * conductance tracks the stored weight level; the average squared read
 * voltage tracks the input distribution.
 */
class ReramCellModel : public ComponentModel
{
  public:
    std::string className() const override { return "ReRAMCell"; }

    std::string
    description() const override
    {
        return "1T1R ReRAM cell; read energy = G * V^2 * T";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& in = ctx.tensors[kI];
        const EncodedTensor& wt = ctx.tensors[kW];
        double g_on_us = ctx.attrDouble("g_on_us", 100.0);
        double g_off_us = ctx.attrDouble("g_off_us", 2.0);
        double v_read = ctx.attrDouble("v_read", 0.3);
        double t_read_ns = ctx.attrDouble("t_read_ns", 10.0);
        // Average conductance between G_off and G_on by weight level.
        double g_avg =
            g_off_us + (g_on_us - g_off_us) * wt.meanNormValue();
        // Average squared voltage from the input level distribution.
        double v2_avg = v_read * v_read * in.meanNormSquare();
        // uS * V^2 * ns = fJ.
        double energy_fj = g_avg * v2_avg * t_read_ns;
        ComponentEstimate est;
        est.readEnergyPj[kW] = energy_fj / 1000.0;
        est.fillEnergyPj[kW] = ctx.attrDouble("write_energy_pj", 8.0);
        est.latencyNs = t_read_ns;
        double f2 = ctx.technologyNm * ctx.technologyNm * 1e-6;
        est.areaUm2 = ctx.attrDouble("area_f2", 40.0) * f2;
        return est;
    }
};

/**
 * Analog adder (paper Macro B): sums analog values from several columns;
 * switched-capacitor energy follows the summed charge, making it
 * data-value-dependent (paper Fig. 11).
 */
class AnalogAdderModel : public ComponentModel
{
  public:
    std::string className() const override { return "AnalogAdder"; }

    std::string
    description() const override
    {
        return "switched-capacitor analog adder; charge follows data";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& in = ctx.tensors[kI];
        const EncodedTensor& wt = ctx.tensors[kW];
        std::int64_t operands = ctx.attrInt("operands", 2);
        CIM_ASSERT(operands >= 1 && operands <= 16,
                   "analog adder operand count out of range: ", operands);
        // Binary-weighted summation (operand i carries weight 2^i): the
        // capacitor array totals 2^N - 1 unit caps, so area AND charge
        // grow exponentially with operand count — why very wide analog
        // adders never win on throughput/area (paper Fig. 13).
        double unit_caps = std::pow(2.0, operands) - 1.0;
        double e_unit_fj = ctx.attrDouble("unit_energy_fj", 1.6);
        double mac = dist::meanNormMac(in, wt);
        double energy_fj = e_unit_fj * unit_caps * (0.15 + 0.85 * mac);
        ComponentEstimate est;
        est.actionEnergyPj[kO] = energy_fj / 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 0.5) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_per_unit_um2", 9.3) *
                      unit_caps * a65(ctx);
        return est;
    }
};

/**
 * Analog accumulator (paper Macro C): integrates partial sums across
 * cycles on a capacitor.
 */
class AnalogAccumulatorModel : public ComponentModel
{
  public:
    std::string className() const override { return "AnalogAccumulator"; }

    std::string
    description() const override
    {
        return "capacitive analog accumulator across cycles";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& in = ctx.tensors[kI];
        const EncodedTensor& wt = ctx.tensors[kW];
        double e_unit_fj = ctx.attrDouble("unit_energy_fj", 4.0);
        double mac = dist::meanNormMac(in, wt);
        ComponentEstimate est;
        // Arriving updates charge the integration cap.
        est.readEnergyPj[kO] =
            e_unit_fj * (0.25 + 0.75 * mac) / 1000.0 * e65(ctx);
        // Evicting a finished value costs one buffer-out drive.
        est.fillEnergyPj[kO] =
            ctx.attrDouble("evict_energy_fj", 8.0) / 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 0.5) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_um2", 80.0) * a65(ctx);
        return est;
    }
};

/**
 * C-2C ladder analog MAC unit (paper Macro D): multiplies a multi-bit
 * input by a multi-bit weight in the charge domain.
 */
class CapacitorMacModel : public ComponentModel
{
  public:
    std::string className() const override { return "CapacitorMac"; }

    std::string
    description() const override
    {
        return "C-2C ladder charge-domain multi-bit MAC";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& in = ctx.tensors[kI];
        const EncodedTensor& wt = ctx.tensors[kW];
        std::int64_t bits = ctx.attrInt("bits", 8);
        double e_unit_fj = ctx.attrDouble("unit_energy_fj", 1.2);
        double mac = dist::meanNormMac(in, wt);
        double energy_fj =
            e_unit_fj * static_cast<double>(bits) * (0.3 + 0.7 * mac);
        ComponentEstimate est;
        // The MAC unit stores its multi-bit weight; one MAC per weight
        // read, plus a write cost when weights are (re)loaded.
        est.readEnergyPj[kW] = energy_fj / 1000.0 * e65(ctx);
        est.fillEnergyPj[kW] =
            ctx.attrDouble("write_energy_fj", 30.0) / 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 1.0) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_per_bit_um2", 25.0) *
                      static_cast<double>(bits) * a65(ctx);
        return est;
    }
};

/** Digital adder tree / accumulator stage. */
class DigitalAdderModel : public ComponentModel
{
  public:
    std::string className() const override { return "DigitalAdder"; }

    std::string
    description() const override
    {
        return "ripple/tree adder; energy follows bit activity";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& out = ctx.tensors[kO];
        std::int64_t width =
            ctx.attrInt("width", std::max(out.bits, 8));
        double e_bit_fj = ctx.attrDouble("energy_per_bit_fj", 3.0);
        double activity = out.bits > 0
            ? 0.1 + out.meanBitFlips() / out.bits
            : 0.5;
        ComponentEstimate est;
        est.actionEnergyPj[kO] = e_bit_fj *
                                 static_cast<double>(width) * activity /
                                 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 0.5) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_per_bit_um2", 12.0) *
                      static_cast<double>(width) * a65(ctx);
        return est;
    }
};

/** Shift-and-add combiner for bit-sliced partial sums. */
class ShiftAddModel : public ComponentModel
{
  public:
    std::string className() const override { return "ShiftAdd"; }

    std::string
    description() const override
    {
        return "shift-and-add combiner for bit-serial partials";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        std::int64_t width = ctx.attrInt("width", 16);
        double e_bit_fj = ctx.attrDouble("energy_per_bit_fj", 4.0);
        ComponentEstimate est;
        est.actionEnergyPj[kO] =
            e_bit_fj * static_cast<double>(width) / 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 0.5) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_per_bit_um2", 16.0) *
                      static_cast<double>(width) * a65(ctx);
        return est;
    }
};

/** Full digital MAC (paper's Digital CiM / Colonnade). */
class DigitalMacModel : public ComponentModel
{
  public:
    std::string className() const override { return "DigitalMac"; }

    std::string
    description() const override
    {
        return "bit-serial digital MAC unit";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        const EncodedTensor& in = ctx.tensors[kI];
        const EncodedTensor& wt = ctx.tensors[kW];
        std::int64_t ib = std::max(in.bits, 1);
        std::int64_t wb = std::max(wt.bits, 1);
        double e_fj = ctx.attrDouble("energy_per_bit2_fj", 0.9);
        ComponentEstimate est;
        est.actionEnergyPj[kO] = e_fj * static_cast<double>(ib * wb) /
                                 1000.0 * e65(ctx);
        est.latencyNs = ctx.attrDouble("latency_ns", 1.0) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_per_bit2_um2", 4.0) *
                      static_cast<double>(ib * wb) * a65(ctx);
        est.staticPowerUw = ctx.attrDouble("leakage_pw", 200.0) / 1e6 *
                            static_cast<double>(ib * wb) / 64.0 *
                            ctx.voltage();
        return est;
    }
};

/**
 * SRAM buffer (CACTI-lite): access energy grows with sqrt(capacity)
 * (wordline/bitline length) plus a per-bit term.
 */
class SramBufferModel : public ComponentModel
{
  public:
    std::string className() const override { return "SRAM"; }

    std::string
    description() const override
    {
        return "SRAM buffer; CACTI-style sqrt-capacity access energy";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        std::int64_t entries = ctx.attrInt("entries", 1024);
        std::int64_t width = ctx.attrInt("width", 64);
        CIM_ASSERT(entries >= 1 && width >= 1,
                   "SRAM needs positive entries/width");
        double bits = static_cast<double>(entries * width);
        double word_pj =
            (0.012 * std::sqrt(bits) + 0.003 * width) * e65(ctx);
        ComponentEstimate est;
        for (TensorKind t : workload::kAllTensors) {
            int ti = tensorIndex(t);
            // Fractional words: traffic counts are per data item (slice
            // or word), and energy is proportional to bits moved.
            double tensor_bits = std::max(ctx.tensors[ti].bits, 1);
            double words = tensor_bits / static_cast<double>(width);
            est.readEnergyPj[ti] = word_pj * words;
            est.fillEnergyPj[ti] = word_pj * words;
        }
        est.latencyNs = ctx.attrDouble("latency_ns", 1.0) * d65(ctx);
        est.areaUm2 = (0.55 * bits + 40.0 * std::sqrt(bits)) * a65(ctx);
        est.staticPowerUw = ctx.attrDouble("leakage_pw_per_bit", 8.0) *
                            bits / 1e6 * ctx.voltage();
        return est;
    }
};

/** DRAM backing store: flat per-bit transfer cost. */
class DramModel : public ComponentModel
{
  public:
    std::string className() const override { return "DRAM"; }

    std::string
    description() const override
    {
        return "off-chip DRAM; flat energy per bit moved";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        double e_bit_pj = ctx.attrDouble("energy_per_bit_pj", 6.0);
        ComponentEstimate est;
        for (TensorKind t : workload::kAllTensors) {
            int ti = tensorIndex(t);
            double bits = std::max(ctx.tensors[ti].bits, 1);
            est.readEnergyPj[ti] = e_bit_pj * bits;
            est.fillEnergyPj[ti] = e_bit_pj * bits;
        }
        est.latencyNs = ctx.attrDouble("latency_ns", 20.0);
        est.areaUm2 = 0.0; // off-chip
        return est;
    }
};

/** On-chip router / NoC link: energy per bit-hop. */
class RouterModel : public ComponentModel
{
  public:
    std::string className() const override { return "Router"; }

    std::string
    description() const override
    {
        return "NoC router+link; energy per bit per hop";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        double e_bit_hop_fj = ctx.attrDouble("energy_per_bit_hop_fj", 40.0);
        double hops = ctx.attrDouble("hops", 2.0);
        ComponentEstimate est;
        for (TensorKind t : workload::kAllTensors) {
            int ti = tensorIndex(t);
            double bits = std::max(ctx.tensors[ti].bits, 1);
            est.actionEnergyPj[ti] =
                e_bit_hop_fj * bits * hops / 1000.0 * e65(ctx);
        }
        est.latencyNs = ctx.attrDouble("latency_ns", 2.0) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_um2", 8000.0) * a65(ctx);
        return est;
    }
};

/** Row/column driver: charges the word/bit line capacitance. */
class LineDriverModel : public ComponentModel
{
  public:
    std::string className() const override { return "LineDriver"; }

    std::string
    description() const override
    {
        return "word/bit line driver; C V^2 line charge";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        double line_cap_ff = ctx.attrDouble("line_cap_ff", 60.0);
        double v = ctx.voltage();
        ComponentEstimate est;
        // One line charge per action for whichever tensor streams through.
        double energy_pj = 0.5 * line_cap_ff * v * v / 1000.0;
        for (TensorKind t : workload::kAllTensors)
            est.actionEnergyPj[tensorIndex(t)] = energy_pj;
        est.latencyNs = ctx.attrDouble("latency_ns", 0.3) * d65(ctx);
        est.areaUm2 = ctx.attrDouble("area_um2", 120.0) * a65(ctx);
        return est;
    }
};

/** Zero-cost structural node (containers, abstract groupings). */
class WireModel : public ComponentModel
{
  public:
    std::string className() const override { return "Wire"; }

    std::string
    description() const override
    {
        return "free structural connection";
    }

    ComponentEstimate
    estimate(const ComponentContext& ctx) const override
    {
        (void)ctx;
        return ComponentEstimate{};
    }
};

} // namespace

void
registerBuiltinModels(PluginRegistry& registry)
{
    registry.add(std::make_unique<AdcModel>());
    registry.add(std::make_unique<DacModel>());
    registry.add(std::make_unique<SramCellModel>());
    registry.add(std::make_unique<ReramCellModel>());
    registry.add(std::make_unique<AnalogAdderModel>());
    registry.add(std::make_unique<AnalogAccumulatorModel>());
    registry.add(std::make_unique<CapacitorMacModel>());
    registry.add(std::make_unique<DigitalAdderModel>());
    registry.add(std::make_unique<ShiftAddModel>());
    registry.add(std::make_unique<DigitalMacModel>());
    registry.add(std::make_unique<SramBufferModel>());
    registry.add(std::make_unique<DramModel>());
    registry.add(std::make_unique<RouterModel>());
    registry.add(std::make_unique<LineDriverModel>());
    registry.add(std::make_unique<WireModel>());
}

} // namespace cimloop::models
