#include "cimloop/models/tech.hh"

#include <cmath>
#include <vector>

#include "cimloop/common/error.hh"

namespace cimloop::models {

namespace {

// Reference table in the spirit of Stillmaker & Baas, "Scaling equations
// for the accurate prediction of CMOS device performance from 180 nm to
// 7 nm". Factors are relative to 65 nm at nominal supply.
const std::vector<TechParams> kTable = {
    //  nm   Vnom   Vth   energy  area    delay
    {  7.0,  0.70,  0.30, 0.040,  0.012,  0.28 },
    { 14.0,  0.80,  0.32, 0.095,  0.046,  0.40 },
    { 22.0,  0.85,  0.33, 0.160,  0.110,  0.52 },
    { 28.0,  0.90,  0.34, 0.220,  0.180,  0.60 },
    { 32.0,  0.95,  0.34, 0.280,  0.240,  0.66 },
    { 40.0,  1.00,  0.35, 0.420,  0.380,  0.76 },
    { 65.0,  1.10,  0.35, 1.000,  1.000,  1.00 },
    { 90.0,  1.20,  0.38, 1.900,  1.900,  1.30 },
    { 130.0, 1.30,  0.40, 3.800,  4.000,  1.80 },
    { 180.0, 1.80,  0.45, 9.500,  7.700,  2.60 },
};

/** Geometric interpolation of a factor between two table rows. */
double
interp(double nm, double a_nm, double a_v, double b_nm, double b_v)
{
    double t = (std::log(nm) - std::log(a_nm)) /
               (std::log(b_nm) - std::log(a_nm));
    return std::exp(std::log(a_v) + t * (std::log(b_v) - std::log(a_v)));
}

} // namespace

TechParams
techParams(double nm)
{
    if (nm <= 0.0)
        CIM_FATAL("technology node must be positive, got ", nm);
    if (nm <= kTable.front().nm)
        return kTable.front();
    if (nm >= kTable.back().nm)
        return kTable.back();
    for (std::size_t i = 1; i < kTable.size(); ++i) {
        if (nm <= kTable[i].nm) {
            const TechParams& a = kTable[i - 1];
            const TechParams& b = kTable[i];
            TechParams out;
            out.nm = nm;
            out.vNominal = interp(nm, a.nm, a.vNominal, b.nm, b.vNominal);
            out.vThreshold =
                interp(nm, a.nm, a.vThreshold, b.nm, b.vThreshold);
            out.energyFactor =
                interp(nm, a.nm, a.energyFactor, b.nm, b.energyFactor);
            out.areaFactor =
                interp(nm, a.nm, a.areaFactor, b.nm, b.areaFactor);
            out.delayFactor =
                interp(nm, a.nm, a.delayFactor, b.nm, b.delayFactor);
            return out;
        }
    }
    CIM_PANIC("unreachable: node ", nm, " not bracketed");
}

double
energyScale(double from_nm, double to_nm)
{
    return techParams(to_nm).energyFactor / techParams(from_nm).energyFactor;
}

double
areaScale(double from_nm, double to_nm)
{
    return techParams(to_nm).areaFactor / techParams(from_nm).areaFactor;
}

double
delayScale(double from_nm, double to_nm)
{
    return techParams(to_nm).delayFactor / techParams(from_nm).delayFactor;
}

VoltageModel::VoltageModel(const TechParams& tech, double a)
    : v_nom(tech.vNominal), v_th(tech.vThreshold), alpha(a)
{
    CIM_ASSERT(v_nom > v_th, "nominal voltage must exceed threshold");
}

double
VoltageModel::energyFactor(double v) const
{
    if (v <= 0.0)
        CIM_FATAL("supply voltage must be positive, got ", v);
    return (v * v) / (v_nom * v_nom);
}

double
VoltageModel::frequencyFactor(double v) const
{
    if (v <= v_th)
        CIM_FATAL("supply voltage ", v, " V is at or below threshold ",
                  v_th, " V; the circuit cannot switch");
    double f = std::pow(v - v_th, alpha) / v;
    double f_nom = std::pow(v_nom - v_th, alpha) / v_nom;
    return f / f_nom;
}

} // namespace cimloop::models
