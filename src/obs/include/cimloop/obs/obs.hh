#pragma once
/**
 * cimloop::obs — always-compiled observability: named monotonic counters,
 * RAII timing spans, and exporters (summary table, metrics JSON, Chrome
 * trace-event JSON).
 *
 * Design contract (see docs/architecture.md, "Observability"):
 *
 *  - Counters are always on. An increment is one relaxed atomic add on a
 *    cache-line-owned uint64, cheap enough to leave in hot loops when the
 *    use site hoists the registry lookup:
 *
 *        static obs::Counter& hits = obs::counter("engine.cache.hits");
 *        hits.add();
 *
 *    Registry references are stable for the life of the process; resetAll()
 *    zeroes values but never invalidates references.
 *
 *  - Counter values are deterministic at fixed seed regardless of
 *    --threads. Use sites must count scheduling-invariant events (e.g. a
 *    cache miss is counted by the thread whose insert wins, not by every
 *    thread that raced on the same key). This makes counters a cheap
 *    regression oracle: tests diff them byte-for-byte.
 *
 *  - Spans are off by default. When timing is disabled a CIM_SPAN costs
 *    two branches and no clock reads; when enabled it records wall time
 *    and thread id, aggregated per name (count/total/min/max) so spans
 *    compose with parallelFor/parallelForAll. When tracing is also
 *    enabled, every span additionally appends a Chrome trace event.
 *
 *  - Names are dotted lowercase `module.noun.verb` (or `module.noun`),
 *    e.g. "engine.per_action_cache.hits", "dist.pmf.convolve.lattice".
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cimloop {
namespace obs {

/** Monotonic counter. add() is a relaxed atomic increment; always-on. */
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    alignas(64) std::atomic<std::uint64_t> value_{0};
};

/**
 * Look up (creating on first use) the counter registered under `name`.
 * The reference is stable for the process lifetime; hoist it into a
 * function-local static at hot use sites.
 */
Counter& counter(const std::string& name);

/** Enable/disable span wall-clock timing (off by default). */
void setTimingEnabled(bool on) noexcept;
bool timingEnabled() noexcept;

/**
 * Enable/disable Chrome trace-event capture (off by default). Enabling
 * tracing implies timing: spans need clock reads to emit events.
 */
void setTraceEnabled(bool on) noexcept;
bool traceEnabled() noexcept;

/**
 * Small sequential id for the calling thread (0 for the first thread
 * that asks, 1 for the next, ...). Used as `tid` in trace events so
 * traces stay stable and readable across runs.
 */
int currentThreadId() noexcept;

/**
 * RAII timing span. Construct via CIM_SPAN(name); on destruction the
 * elapsed wall time is aggregated under `name` (thread-safe) and, when
 * tracing is on, appended to the trace-event buffer. When timing is
 * disabled construction and destruction are branch-only.
 *
 * `name` must outlive the span; string literals satisfy this.
 */
class Span {
public:
    explicit Span(const char* name) noexcept;
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_;
    std::int64_t start_ns_; // -1 when timing was disabled at construction
};

/** Aggregated statistics for one span name. */
struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t min_ns = 0;
    std::int64_t max_ns = 0;
    int threads = 0; ///< distinct thread ids that closed this span
};

/** One Chrome trace event (ph:"X" complete event). */
struct TraceEvent {
    const char* name;
    int tid;
    std::int64_t start_ns;
    std::int64_t dur_ns;
};

/** Point-in-time copy of every registered counter and span aggregate. */
struct MetricsSnapshot {
    /// (name, value) sorted by name; zero-valued counters included here,
    /// filtered by the JSON exporter.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /// Sorted by name; empty unless timing was enabled.
    std::vector<SpanStats> spans;
};

/** Copy out the current counters and span aggregates, sorted by name. */
MetricsSnapshot snapshot();

/**
 * Zero every counter, clear span aggregates and the trace buffer.
 * Counter references stay valid. Call at the start of a run so metrics
 * describe exactly one invocation.
 */
void resetAll();

/**
 * Counters as a JSON object fragment, one `"name": value` per line,
 * sorted, zero-valued counters omitted (so unrelated instrumented code
 * paths never pollute a comparison). Deterministic at fixed seed for
 * any thread count — this is the byte-comparable regression surface.
 */
std::string countersJson(const MetricsSnapshot& snap);

/**
 * Full metrics document: `{"counters": {...}, "spans": {...}}`. The
 * counters block is byte-identical to countersJson(); span values are
 * wall-clock and therefore NOT deterministic.
 */
std::string metricsJson(const MetricsSnapshot& snap);

/** Human-readable summary (counter table + span table when timed). */
std::string summaryTable(const MetricsSnapshot& snap);

/**
 * Chrome trace-event JSON (load via chrome://tracing or
 * ui.perfetto.dev): {"traceEvents":[...],"displayTimeUnit":"ms"} with
 * ph:"X" complete events, ts/dur in microseconds. Empty traceEvents
 * unless tracing was enabled during the run.
 */
std::string traceJson();

} // namespace obs
} // namespace cimloop

#define CIM_OBS_CONCAT2(a, b) a##b
#define CIM_OBS_CONCAT(a, b) CIM_OBS_CONCAT2(a, b)

/** Open a RAII timing span for the rest of the enclosing scope. */
#define CIM_SPAN(name)                                                       \
    ::cimloop::obs::Span CIM_OBS_CONCAT(cim_span_, __LINE__)(name)
