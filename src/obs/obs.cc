/** Registry, span aggregation, and exporters for cimloop::obs. */
#include "cimloop/obs/obs.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <iomanip>

namespace cimloop {
namespace obs {
namespace {

std::int64_t nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Per-name span aggregate plus the set of thread ids that closed it. */
struct SpanAgg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t min_ns = 0;
    std::int64_t max_ns = 0;
    std::set<int> tids;
};

struct Registry {
    std::mutex mutex;
    // std::map: stable element addresses and sorted iteration for free.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, SpanAgg> spans;
    std::vector<TraceEvent> trace;
};

Registry& registry()
{
    static Registry r;
    return r;
}

std::atomic<bool> g_timing{false};
std::atomic<bool> g_trace{false};
std::atomic<int> g_next_tid{0};

/** Escape a name for use inside a JSON string literal. */
std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

Counter& counter(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::unique_ptr<Counter>& slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

void setTimingEnabled(bool on) noexcept
{
    g_timing.store(on, std::memory_order_relaxed);
}

bool timingEnabled() noexcept
{
    return g_timing.load(std::memory_order_relaxed);
}

void setTraceEnabled(bool on) noexcept
{
    g_trace.store(on, std::memory_order_relaxed);
    if (on) // tracing needs clock reads
        g_timing.store(true, std::memory_order_relaxed);
}

bool traceEnabled() noexcept
{
    return g_trace.load(std::memory_order_relaxed);
}

int currentThreadId() noexcept
{
    thread_local int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

Span::Span(const char* name) noexcept : name_(name), start_ns_(-1)
{
    if (timingEnabled())
        start_ns_ = nowNs();
}

Span::~Span()
{
    if (start_ns_ < 0)
        return;
    const std::int64_t end_ns = nowNs();
    const std::int64_t dur = end_ns - start_ns_;
    const int tid = currentThreadId();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    SpanAgg& agg = r.spans[name_];
    if (agg.count == 0) {
        agg.min_ns = dur;
        agg.max_ns = dur;
    } else {
        agg.min_ns = std::min(agg.min_ns, dur);
        agg.max_ns = std::max(agg.max_ns, dur);
    }
    ++agg.count;
    agg.total_ns += dur;
    agg.tids.insert(tid);
    if (traceEnabled())
        r.trace.push_back(TraceEvent{name_, tid, start_ns_, dur});
}

MetricsSnapshot snapshot()
{
    MetricsSnapshot snap;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    snap.counters.reserve(r.counters.size());
    for (const auto& [name, c] : r.counters)
        snap.counters.emplace_back(name, c->value());
    snap.spans.reserve(r.spans.size());
    for (const auto& [name, agg] : r.spans) {
        SpanStats s;
        s.name = name;
        s.count = agg.count;
        s.total_ns = agg.total_ns;
        s.min_ns = agg.min_ns;
        s.max_ns = agg.max_ns;
        s.threads = static_cast<int>(agg.tids.size());
        snap.spans.push_back(std::move(s));
    }
    return snap; // std::map iteration is already name-sorted
}

void resetAll()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& [name, c] : r.counters)
        c->reset();
    r.spans.clear();
    r.trace.clear();
}

std::string countersJson(const MetricsSnapshot& snap)
{
    // Keep this format in sync with scripts/metrics_regress.sh, which
    // extracts the block between `"counters": {` and `},` with sed.
    std::ostringstream out;
    out << "\"counters\": {\n";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        if (value == 0)
            continue; // unrelated instrumentation must not pollute diffs
        if (!first)
            out << ",\n";
        first = false;
        out << "  \"" << jsonEscape(name) << "\": " << value;
    }
    out << "\n}";
    return out.str();
}

std::string metricsJson(const MetricsSnapshot& snap)
{
    std::ostringstream out;
    out << "{\n" << countersJson(snap) << ",\n";
    out << "\"spans\": {\n";
    bool first = true;
    for (const SpanStats& s : snap.spans) {
        if (!first)
            out << ",\n";
        first = false;
        out << "  \"" << jsonEscape(s.name) << "\": {\"count\": " << s.count
            << ", \"total_ns\": " << s.total_ns
            << ", \"min_ns\": " << s.min_ns << ", \"max_ns\": " << s.max_ns
            << ", \"threads\": " << s.threads << "}";
    }
    out << "\n}\n}\n";
    return out.str();
}

std::string summaryTable(const MetricsSnapshot& snap)
{
    std::ostringstream out;
    out << "== metrics ==\n";
    std::size_t width = 7; // "counter"
    for (const auto& [name, value] : snap.counters)
        if (value != 0)
            width = std::max(width, name.size());
    for (const SpanStats& s : snap.spans)
        width = std::max(width, s.name.size());
    out << std::left << std::setw(static_cast<int>(width)) << "counter"
        << "  value\n";
    for (const auto& [name, value] : snap.counters) {
        if (value == 0)
            continue;
        out << std::left << std::setw(static_cast<int>(width)) << name
            << "  " << value << "\n";
    }
    if (!snap.spans.empty()) {
        out << std::left << std::setw(static_cast<int>(width)) << "span"
            << "  count  total_ms  avg_us  threads\n";
        for (const SpanStats& s : snap.spans) {
            const double total_ms = static_cast<double>(s.total_ns) / 1e6;
            const double avg_us =
                s.count ? static_cast<double>(s.total_ns) / 1e3
                              / static_cast<double>(s.count)
                        : 0.0;
            out << std::left << std::setw(static_cast<int>(width)) << s.name
                << "  " << s.count << "  " << std::fixed
                << std::setprecision(3) << total_ms << "  "
                << std::setprecision(1) << avg_us << "  " << s.threads
                << "\n";
            out.unsetf(std::ios::fixed);
        }
    }
    return out.str();
}

std::string traceJson()
{
    std::vector<TraceEvent> events;
    {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        events = r.trace;
    }
    // Chrome's trace viewer wants ts in microseconds; rebase to the
    // earliest event so timestamps start near zero.
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.start_ns < b.start_ns;
              });
    const std::int64_t base = events.empty() ? 0 : events.front().start_ns;
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& e : events) {
        if (!first)
            out << ",";
        first = false;
        const std::int64_t ts = e.start_ns - base;
        out << "\n{\"name\":\"" << jsonEscape(e.name)
            << "\",\"cat\":\"cimloop\",\"ph\":\"X\",\"pid\":1,\"tid\":"
            << e.tid << ",\"ts\":" << ts / 1000 << "." << std::setw(3)
            << std::setfill('0') << ts % 1000 << ",\"dur\":"
            << e.dur_ns / 1000 << "." << std::setw(3) << std::setfill('0')
            << e.dur_ns % 1000 << "}";
        out << std::setfill(' ');
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out.str();
}

} // namespace obs
} // namespace cimloop
