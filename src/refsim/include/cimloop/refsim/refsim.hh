/**
 * @file
 * Value-level reference simulator and baseline energy models.
 *
 * The paper validates CiMLoop's statistical model against NeuroSim, which
 * "calculates every data value propagated by every modeled component"
 * (Sec. IV). NeuroSim is unavailable here, so this module provides a
 * from-scratch equivalent (see DESIGN.md): it synthesizes *correlated*
 * operand tensors (per-activation contrast, per-filter scale — the joint
 * structure real DNN tensors have), then walks every DAC convert, cell
 * read, column sum, ADC convert, and digital accumulation of the base CiM
 * macro, summing exact per-value energies.
 *
 * Three estimators share the same physics:
 *  - simulateValueLevel(): exact, slow — the ground truth (paper's
 *    "NeuroSim" column in Fig. 6 / Table II).
 *  - estimateStatistical(): CiMLoop's model — expectation over *per-layer
 *    marginal PMFs recorded from the same tensors*, treating tensors as
 *    independent (paper Sec. III-D1). Error relative to ground truth
 *    comes from the independence assumption on nonlinear components.
 *  - estimateFixedEnergy(): Timeloop-style non-data-value-dependent
 *    baseline using one network-average distribution for all layers.
 */
#ifndef CIMLOOP_REFSIM_REFSIM_HH
#define CIMLOOP_REFSIM_REFSIM_HH

#include <cstdint>

#include "cimloop/common/cancel.hh"
#include "cimloop/dist/operands.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/workload/layer.hh"

namespace cimloop::refsim {

/** Base-macro configuration simulated at value level. */
struct RefSimConfig
{
    std::int64_t rows = 128;
    std::int64_t cols = 128;

    int inputBits = 8;
    int weightBits = 8;
    int dacBits = 1;   //!< input slice width
    int cellBits = 1;  //!< weight bits per cell
    int adcBits = 5;

    double technologyNm = 40.0;

    /** ADC spends less on small codes (nonlinear in the column sum). */
    bool valueAwareAdc = true;

    /**
     * Macro-C-style analog accumulation (paper Fig. 3): column partial
     * sums integrate across the input-bit cycles and the ADC converts
     * each output once, instead of once per cycle. DAC and cell activity
     * still scale with the number of input slices.
     */
    bool accumulateAcrossInputBits = false;

    /**
     * Strength of the joint structure in the synthesized tensors: the
     * log-std of the shared per-activation contrast factor. 0 makes
     * operand values independent (the statistical model's assumption is
     * then exact); larger values grow the independence-assumption error
     * (DESIGN.md ablation 1, bench/ablation_independence).
     */
    double contrastStd = 0.5;

    std::uint64_t seed = 1;

    /** Activation vectors simulated per layer (the rest is scaled up);
     *  0 simulates every vector. */
    std::int64_t maxVectors = 48;

    /**
     * Worker threads for the per-vector simulation loop. Every sampled
     * vector draws from its own counter-derived RNG stream and the
     * reduction runs in a fixed order, so results are bit-identical for
     * any value here.
     */
    int threads = 1;

    /**
     * Device fault / variation injection (default: none). The value-level
     * simulator perturbs its precomputed conductance array per cell with
     * counter-derived Rng::forStream(fault_seed, cell_index) streams and
     * its ADC readouts per convert, so injection is bit-identical at any
     * thread count; estimateStatistical() applies the same model
     * analytically (stuck-at mixture atoms, variance-inflated conductance
     * levels, offset/noise-adjusted column-sum Gaussian).
     */
    faults::FaultModel faults;

    /**
     * Cooperative cancellation. Workers poll between simulated vectors;
     * a fired token abandons the whole layer with CancelledError — the
     * simulation is all-or-nothing, a result from fewer vectors would
     * not match an uninterrupted run's. Default-constructed tokens are
     * never cancelled, so existing callers are unaffected.
     */
    CancelToken cancel;
};

/** Energy totals (pJ, whole layer) with a per-component breakdown. */
struct RefSimResult
{
    double dacPj = 0.0;
    double cellPj = 0.0;
    double adcPj = 0.0;
    double digitalPj = 0.0;
    double bufferPj = 0.0;

    double ops = 0.0;              //!< unit cell operations accounted
    std::int64_t valuesSimulated = 0; //!< per-value events processed

    double totalPj() const
    {
        return dacPj + cellPj + adcPj + digitalPj + bufferPj;
    }
};

/**
 * Exact value-level simulation. When @p out_profile is non-null it
 * receives the *empirical marginal PMFs* of the simulated tensors — what
 * the paper's "RecordOperandPMFs" step produces — for use by
 * estimateStatistical().
 */
RefSimResult simulateValueLevel(const RefSimConfig& config,
                                const workload::Layer& layer,
                                dist::OperandProfile* out_profile = nullptr);

/** CiMLoop-style statistical estimate from independent marginal PMFs. */
RefSimResult estimateStatistical(const RefSimConfig& config,
                                 const workload::Layer& layer,
                                 const dist::OperandProfile& profile);

/** Fixed-energy baseline: per-action energies frozen at the
 *  network-average operand distribution @p network_avg. */
RefSimResult estimateFixedEnergy(const RefSimConfig& config,
                                 const workload::Layer& layer,
                                 const dist::OperandProfile& network_avg);

/**
 * Averages several per-layer profiles into the network-average profile
 * the fixed-energy baseline uses (paper Fig. 6: "energy ... calculated
 * using data values averaged over all layers").
 */
dist::OperandProfile averageProfiles(
    const std::vector<dist::OperandProfile>& profiles);

} // namespace cimloop::refsim

#endif // CIMLOOP_REFSIM_REFSIM_HH
