#include "cimloop/refsim/refsim.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cimloop/common/error.hh"
#include "cimloop/common/parallel.hh"
#include "cimloop/common/util.hh"
#include "cimloop/dist/encoding.hh"
#include "cimloop/dist/simd.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/models/tech.hh"
#include "cimloop/obs/obs.hh"

namespace cimloop::refsim {

using dist::EncodedTensor;
using dist::Pmf;
using workload::Dim;
using workload::Layer;
namespace simd = dist::simd;

namespace {

/**
 * Shared physics, mirroring the plug-in constants (src/models/plugins.cc)
 * so that the statistical model and the value-level simulator disagree
 * only through their treatment of data values.
 */
struct Physics
{
    double e65;         //!< tech energy scale relative to 65 nm
    int dacBits;
    int adcBits;
    bool valueAwareAdc;

    // DAC (capacitive, value-proportional).
    static constexpr double kDacUnitFj = 3.0;
    static constexpr double kDacBaseFjPerBit = 1.5;

    // ReRAM cell: G V^2 T.
    static constexpr double kGOnUs = 100.0;
    static constexpr double kGOffUs = 2.0;
    static constexpr double kVRead = 0.3;
    static constexpr double kTReadNs = 10.0;

    // ADC: survey regression.
    static constexpr double kAdcFomFj = 25.0;

    // Digital shift-add per ADC output.
    static constexpr double kShiftAddPj = 0.064;

    // Buffer word access (CACTI-lite at 8K x 64b).
    static constexpr double kBufferWordPj = 8.9;

    // Hoisted per-call invariants (pow() would otherwise run on every
    // DAC/ADC convert of the value-level loop).
    double dacLevels;
    double adcConvertPj;

    explicit Physics(const RefSimConfig& c)
        : e65(models::energyScale(65.0, c.technologyNm)),
          dacBits(c.dacBits), adcBits(c.adcBits),
          valueAwareAdc(c.valueAwareAdc),
          dacLevels(std::pow(2.0, c.dacBits) - 1.0),
          adcConvertPj(kAdcFomFj * std::pow(2.0, c.adcBits) / 1000.0 *
                       models::energyScale(65.0, c.technologyNm))
    {}

    /** DAC convert of a normalized slice level in [0, 1]. */
    double
    dacPj(double x_norm) const
    {
        return (kDacUnitFj * x_norm * dacLevels +
                kDacBaseFjPerBit * dacBits) / 1000.0 * e65;
    }

    /** One cell read: conductance level g_norm, input level x_norm. */
    double
    cellPj(double g_norm, double x_norm) const
    {
        double g_us = kGOffUs + (kGOnUs - kGOffUs) * g_norm;
        double v2 = kVRead * kVRead * x_norm * x_norm;
        return g_us * v2 * kTReadNs / 1000.0; // uS * V^2 * ns = fJ
    }

    /** One ADC convert of a normalized column sum in [0, 1]. */
    double
    adcPj(double sum_norm) const
    {
        double e = adcConvertPj;
        if (valueAwareAdc) {
            // Value-aware SAR: resolved-bit count grows ~sqrt-like with
            // the code, so the energy transfer is concave — which is why
            // the *spread* of the column-sum distribution (and thus the
            // independence assumption) matters, not just its mean.
            e *= 0.3 + 0.7 * std::min(1.0,
                                      std::sqrt(2.0 * std::abs(sum_norm)));
        }
        return e;
    }

    double
    shiftAddPj() const
    {
        return kShiftAddPj * e65;
    }

    double
    bufferPjPerWord() const
    {
        return kBufferWordPj * e65;
    }
};

/** Matrix view of a layer: reduction, outputs, activation vectors. */
struct LayerShape
{
    std::int64_t c_total; //!< C * R * S
    std::int64_t k_total; //!< K
    std::int64_t vectors; //!< N * P * Q
    std::int64_t ib;      //!< input slices
    std::int64_t wb;      //!< weight slices
    std::int64_t kcols;   //!< outputs per column tile (cols / WB)
    std::int64_t tiles_c;
    std::int64_t tiles_k;

    LayerShape(const RefSimConfig& cfg, const Layer& layer)
    {
        c_total = layer.size(Dim::C) * layer.size(Dim::R) *
                  layer.size(Dim::S);
        k_total = layer.size(Dim::K);
        vectors = layer.size(Dim::N) * layer.size(Dim::P) *
                  layer.size(Dim::Q);
        ib = ceilDiv(cfg.inputBits, cfg.dacBits);
        wb = ceilDiv(cfg.weightBits, cfg.cellBits);
        kcols = std::max<std::int64_t>(1, cfg.cols / wb);
        tiles_c = ceilDiv(c_total, cfg.rows);
        tiles_k = ceilDiv(k_total, kcols);
    }
};

/** Deterministic layer-dependent generator parameters (mirrors the
 *  structure of dist::synthesizeOperands, plus joint correlations). */
struct GenParams
{
    double inSigma;     //!< activation scale (fraction of full range)
    double wtSigma;     //!< weight scale
    double zeroProb;    //!< extra activation sparsity
    bool signedInputs;  //!< first layer behaves image-like

    GenParams(const std::string& network, int index, int num_layers)
    {
        Rng rng(dist::stableHash(network) ^
                (0x9E3779B97F4A7C15ull *
                 static_cast<std::uint64_t>(index + 1)));
        double u_act = rng.uniform();
        rng.uniform(); // u_wt drawn below to decorrelate
        double u_wt = rng.uniform();
        double u_sp = rng.uniform();
        double depth = num_layers > 1
            ? static_cast<double>(index) /
                  static_cast<double>(num_layers - 1)
            : 0.0;
        signedInputs = (index == 0);
        inSigma = signedInputs
            ? 0.18 + 0.12 * u_act
            : 0.06 + 0.30 * u_act * (1.0 - 0.5 * depth);
        wtSigma = 0.05 + 0.18 * u_wt;
        zeroProb = signedInputs ? 0.0 : 0.25 + 0.40 * u_sp;
    }
};

/** Normalized level of slice @p slice_idx of unsigned code @p code. */
double
sliceNorm(std::int64_t code, int slice_idx, int slice_bits, int total_bits)
{
    int lo = slice_idx * slice_bits;
    int width = std::min(slice_bits, total_bits - lo);
    std::int64_t mask = (std::int64_t{1} << width) - 1;
    std::int64_t v = (code >> lo) & mask;
    std::int64_t max_code = (std::int64_t{1} << width) - 1;
    return max_code > 0 ? static_cast<double>(v) /
                              static_cast<double>(max_code)
                        : 0.0;
}

/** Offset-encodes a signed operand to an unsigned code at @p bits. */
std::int64_t
offsetCode(double v, int bits)
{
    std::int64_t half = std::int64_t{1} << (bits - 1);
    std::int64_t full = (std::int64_t{1} << bits) - 1;
    auto c = static_cast<std::int64_t>(std::llround(v)) + half;
    if (c < 0)
        c = 0;
    if (c > full)
        c = full;
    return c;
}

/** Closed-form action counts shared by all three estimators. */
struct ActionCounts
{
    double dac, cells, adc, digital, buffer_reads, buffer_writes;

    ActionCounts(const LayerShape& s, bool accumulate_across_input_bits)
    {
        double v = static_cast<double>(s.vectors);
        dac = v * static_cast<double>(s.tiles_k) *
              static_cast<double>(s.c_total) * static_cast<double>(s.ib);
        cells = v * static_cast<double>(s.c_total) *
                static_cast<double>(s.k_total) *
                static_cast<double>(s.ib) * static_cast<double>(s.wb);
        // With an analog accumulator (Macro C) the ADC converts each
        // output once, not once per input-bit cycle.
        double adc_ib = accumulate_across_input_bits
            ? 1.0
            : static_cast<double>(s.ib);
        adc = v * static_cast<double>(s.k_total) * adc_ib *
              static_cast<double>(s.wb) * static_cast<double>(s.tiles_c);
        digital = adc;
        buffer_reads = dac; // one input-slice fetch per DAC convert
        buffer_writes = v * static_cast<double>(s.k_total);
    }
};

} // namespace

namespace {

/**
 * One sampled activation vector's contribution. Energies are summed
 * per-vector and reduced in ascending vector order afterwards, and the
 * input histogram is kept as integer counts (whose merge is exact), so
 * the full result is bit-identical for any thread count.
 */
struct VectorPartial
{
    double dacPj = 0.0;
    double cellPj = 0.0;
    double adcPj = 0.0;
    double digitalPj = 0.0;
    std::int64_t values = 0;
    std::vector<std::int64_t> inCounts; //!< histogram over input codes
    std::vector<Pmf::Point> outPts;     //!< recorded output samples
};

/** Simulates vector @p v of the layer into @p part. The per-vector RNG
 *  stream makes the draw independent of which thread runs it. */
void
simulateVector(const RefSimConfig& config, const Physics& phys,
               const LayerShape& shape, const GenParams& gen,
               const std::vector<double>& weights,
               const std::vector<double>& g_norm,
               const std::vector<double>& bit_weight,
               std::uint64_t layer_seed, std::int64_t v, bool record,
               VectorPartial& part)
{
    const std::int64_t in_half = std::int64_t{1} << (config.inputBits - 1);
    const std::int64_t wt_half = std::int64_t{1} << (config.weightBits - 1);
    Rng rng = Rng::forStream(layer_seed, static_cast<std::uint64_t>(v));

    // ADC non-idealities: every convert of this vector reads out shifted
    // by the offset plus a fresh noise draw from the per-vector stream
    // (serial within the vector, so still bit-identical at any thread
    // count). Gated so fault-free runs draw nothing and stay bit-identical
    // to the pre-fault baseline.
    const bool adc_faulty = config.faults.adcFaultsEnabled();
    const double adc_offset = config.faults.adcOffset;
    const double adc_noise = config.faults.adcNoiseSigma;
    auto adcReadout = [&](double sum_norm) {
        if (adc_faulty) {
            if (adc_noise > 0.0)
                sum_norm += adc_noise * rng.gaussian();
            sum_norm += adc_offset;
        }
        return sum_norm;
    };

    // Per-worker scratch: reused across every vector a thread simulates.
    thread_local std::vector<double> x;
    thread_local std::vector<double> xn;
    thread_local std::vector<double> xn2;
    thread_local std::vector<double> sum_x2;
    x.resize(shape.c_total);
    xn.resize(shape.ib * shape.c_total);
    xn2.resize(shape.ib * shape.c_total);
    sum_x2.resize(shape.ib);

    // Correlated activations: a shared per-vector contrast factor.
    double contrast = std::exp(config.contrastStd * rng.gaussian());
    for (std::int64_t c = 0; c < shape.c_total; ++c) {
        double val;
        if (gen.signedInputs) {
            val = contrast * gen.inSigma *
                  static_cast<double>(in_half) * rng.gaussian();
        } else {
            if (rng.uniform() < gen.zeroProb) {
                val = 0.0;
            } else {
                val = std::abs(contrast * gen.inSigma *
                               static_cast<double>(in_half) *
                               rng.gaussian());
            }
        }
        val = std::max(std::min(val, static_cast<double>(in_half - 1)),
                       gen.signedInputs
                           ? static_cast<double>(-in_half)
                           : 0.0);
        x[c] = std::round(val);
    }
    if (record) {
        part.inCounts.assign(
            static_cast<std::size_t>(std::int64_t{1} << config.inputBits),
            0);
        for (std::int64_t c = 0; c < shape.c_total; ++c)
            ++part.inCounts[static_cast<std::size_t>(
                static_cast<std::int64_t>(x[c]) + in_half)];
    }

    // Slice levels for every input-bit slice of this vector.
    for (std::int64_t c = 0; c < shape.c_total; ++c) {
        std::int64_t code = offsetCode(x[c], config.inputBits);
        for (std::int64_t ib = 0; ib < shape.ib; ++ib) {
            double level = sliceNorm(code, static_cast<int>(ib),
                                     config.dacBits, config.inputBits);
            xn[ib * shape.c_total + c] = level;
            xn2[ib * shape.c_total + c] = level * level;
        }
    }

    // 1-bit DAC slices drive exact 0.0 / 1.0 levels, so xn2 == xn
    // element-for-element and the energy dot product equals the signal
    // dot product (same doubles, same order): skip the second dot.
    const bool unit_levels = config.dacBits == 1;
    const double v2 = Physics::kVRead * Physics::kVRead;
    for (std::int64_t ct = 0; ct < shape.tiles_c; ++ct) {
        std::int64_t c0 = ct * config.rows;
        std::int64_t c1 = std::min(c0 + config.rows, shape.c_total);
        auto rows_used = static_cast<double>(c1 - c0);

        // DAC converts: one per row per input-bit cycle, re-driven for
        // every k-tile — the per-tile sum is identical each time, so
        // compute it once and charge it tiles_k times.
        double dac_tile = 0.0;
        for (std::int64_t ib = 0; ib < shape.ib; ++ib) {
            const double* xs = &xn[ib * shape.c_total];
            for (std::int64_t c = c0; c < c1; ++c)
                dac_tile += phys.dacPj(xs[c]);
        }
        part.dacPj += static_cast<double>(shape.tiles_k) * dac_tile;

        // Per-slice x^2 row sums over this tile: independent of (k, wb),
        // so hoist them out of the column loops.
        const auto tile_len = static_cast<std::size_t>(c1 - c0);
        for (std::int64_t ib = 0; ib < shape.ib; ++ib)
            sum_x2[ib] = simd::sum(&xn2[ib * shape.c_total] + c0, tile_len);

        for (std::int64_t k = 0; k < shape.k_total; ++k) {
            for (std::int64_t wb = 0; wb < shape.wb; ++wb) {
                // Slice-major conductance row: contiguous in c, so the
                // dot products run as explicit 4-lane SIMD kernels with
                // the fixed blocked association from simd.hh — the same
                // bytes on either backend and at any thread count.
                const double* g =
                    &g_norm[(k * shape.wb + wb) * shape.c_total];
                double acc_s = 0.0; // accumulated across cycles
                for (std::int64_t ib = 0; ib < shape.ib; ++ib) {
                    const double* xs = &xn[ib * shape.c_total];
                    const double* xs2 = &xn2[ib * shape.c_total];
                    double dot_s = 0.0; // sum x*g (ADC input)
                    double dot_e = 0.0; // sum x^2*g (cells)
                    if (unit_levels) {
                        dot_s = simd::dot(xs + c0, g + c0, tile_len);
                        dot_e = dot_s;
                    } else {
                        simd::dotPair(xs + c0, xs2 + c0, g + c0, tile_len,
                                      dot_s, dot_e);
                    }
                    // Cell energy, exact over the tile.
                    part.cellPj +=
                        (Physics::kGOffUs * sum_x2[ib] +
                         (Physics::kGOnUs - Physics::kGOffUs) * dot_e) *
                        v2 * Physics::kTReadNs / 1000.0;
                    part.values += static_cast<std::int64_t>(rows_used);
                    if (config.accumulateAcrossInputBits) {
                        // Integrate on the analog accumulator
                        // (binary-weighted across cycles).
                        acc_s += dot_s * bit_weight[ib];
                    } else {
                        part.adcPj += phys.adcPj(
                            adcReadout(dot_s / rows_used));
                        part.digitalPj += phys.shiftAddPj();
                        ++part.values;
                    }
                }
                if (config.accumulateAcrossInputBits) {
                    double norm = acc_s / (2.0 * rows_used);
                    part.adcPj += phys.adcPj(adcReadout(norm));
                    part.digitalPj += phys.shiftAddPj();
                    ++part.values;
                }
            }
        }
    }

    // Output values for the recorded profile.
    if (record && v < 8) {
        for (std::int64_t k = 0;
             k < std::min<std::int64_t>(shape.k_total, 64); ++k) {
            double dot = 0.0;
            for (std::int64_t c = 0; c < shape.c_total; ++c)
                dot += x[c] * weights[k * shape.c_total + c];
            double norm = dot / (static_cast<double>(shape.c_total) *
                                 static_cast<double>(wt_half));
            part.outPts.push_back(
                {std::round(std::max(
                     std::min(norm * static_cast<double>(in_half),
                              static_cast<double>(in_half - 1)),
                     static_cast<double>(-in_half))),
                 1.0});
        }
    }
}

} // namespace

RefSimResult
simulateValueLevel(const RefSimConfig& config, const Layer& layer,
                   dist::OperandProfile* out_profile)
{
    CIM_SPAN("refsim.simulate_layer");
    config.cancel.throwIfCancelled("value-level simulation of layer '" +
                                   layer.name + "'");
    CIM_ASSERT(config.rows >= 1 && config.cols >= 1,
               "refsim needs a non-empty array");
    if (config.maxVectors < 0) {
        CIM_FATAL("refsim maxVectors must be >= 0 (0 simulates every "
                  "vector), got ", config.maxVectors);
    }
    if (config.seed == 0) {
        CIM_FATAL("refsim seed must be nonzero (seed 0 would silently "
                  "alias the generator's internal fallback state)");
    }
    if (config.threads < 1) {
        CIM_FATAL("refsim threads must be >= 1, got ", config.threads);
    }
    config.faults.validate();
    Physics phys(config);
    LayerShape shape(config, layer);
    GenParams gen(layer.network.empty() ? layer.name : layer.network,
                  layer.index, std::max(layer.networkLayers, 1));

    if (shape.c_total * shape.k_total > (std::int64_t{1} << 24)) {
        CIM_FATAL("layer '", layer.name, "' weight matrix (",
                  shape.c_total, " x ", shape.k_total,
                  ") is too large for value-level simulation");
    }

    const std::uint64_t layer_seed =
        config.seed ^ dist::stableHash(layer.name) ^
        (0x9E3779B97F4A7C15ull *
         static_cast<std::uint64_t>(layer.index + 1));
    Rng rng(layer_seed);

    const std::int64_t wt_half = std::int64_t{1} << (config.weightBits - 1);

    // --- Sample the (correlated) weight matrix once: per-filter scale. ---
    std::vector<double> weights(shape.c_total * shape.k_total);
    for (std::int64_t k = 0; k < shape.k_total; ++k) {
        double filter_scale = std::exp(0.3 * rng.gaussian());
        for (std::int64_t c = 0; c < shape.c_total; ++c) {
            double w = filter_scale * gen.wtSigma *
                       static_cast<double>(wt_half) * rng.gaussian();
            w = std::max(std::min(w, static_cast<double>(wt_half - 1)),
                         static_cast<double>(-wt_half));
            weights[k * shape.c_total + c] = std::round(w);
        }
    }

    // Precompute per-(k, wb, c) cell conductance levels, slice-major so
    // the kernel's c loop runs over contiguous memory.
    std::vector<double> g_norm(weights.size() * shape.wb);
    for (std::int64_t k = 0; k < shape.k_total; ++k) {
        for (std::int64_t c = 0; c < shape.c_total; ++c) {
            std::int64_t code = offsetCode(weights[k * shape.c_total + c],
                                           config.weightBits);
            for (std::int64_t wb = 0; wb < shape.wb; ++wb) {
                g_norm[(k * shape.wb + wb) * shape.c_total + c] =
                    sliceNorm(code, static_cast<int>(wb), config.cellBits,
                              config.weightBits);
            }
        }
    }

    // Inject device faults into the conductance array: each cell draws
    // from its own counter-derived stream, so the pattern depends only on
    // (fault model, layer identity, flat cell index) — never on thread
    // scheduling. The recorded operand profile keeps the IDEAL weights:
    // the statistical model receives clean marginals and applies the same
    // fault model analytically, which is exactly the truth-vs-model
    // comparison the fault tests assert.
    if (config.faults.cellFaultsEnabled()) {
        faults::perturbConductances(
            config.faults,
            faults::layerFaultSeed(config.faults, layer.name, layer.index),
            g_norm);
    }

    // Binary cycle weights for the Macro-C analog accumulator.
    std::vector<double> bit_weight(shape.ib);
    for (std::int64_t ib = 0; ib < shape.ib; ++ib)
        bit_weight[ib] = std::pow(2.0, -(shape.ib - 1 - ib));

    std::int64_t sim_vectors = shape.vectors;
    if (config.maxVectors > 0)
        sim_vectors = std::min(sim_vectors, config.maxVectors);
    double scale = static_cast<double>(shape.vectors) /
                   static_cast<double>(sim_vectors);

    // Fan the sampled vectors over workers; each vector draws from its
    // own counter-derived stream (Rng::forStream(layer_seed, v)), so the
    // sampled values do not depend on thread scheduling.
    const bool record = out_profile != nullptr;
    std::vector<VectorPartial> partials(sim_vectors);
    // Workers poll the token between vectors; a fired token throws
    // CancelledError out of the parallelFor join, abandoning the layer
    // whole — no partial reduction ever escapes.
    parallelFor(config.threads, static_cast<std::size_t>(sim_vectors),
                [&](std::size_t v) {
                    simulateVector(config, phys, shape, gen, weights,
                                   g_norm, bit_weight, layer_seed,
                                   static_cast<std::int64_t>(v), record,
                                   partials[v]);
                },
                &config.cancel);

    // Deterministic ordered reduction: ascending vector order, so energy
    // sums (and histogram concatenation) are bit-identical for any
    // thread count.
    RefSimResult res;
    std::vector<std::int64_t> in_counts(
        record ? static_cast<std::size_t>(std::int64_t{1}
                                          << config.inputBits)
               : 0,
        0);
    std::vector<Pmf::Point> out_hist;
    for (std::int64_t v = 0; v < sim_vectors; ++v) {
        const VectorPartial& part = partials[v];
        res.dacPj += part.dacPj;
        res.cellPj += part.cellPj;
        res.adcPj += part.adcPj;
        res.digitalPj += part.digitalPj;
        res.valuesSimulated += part.values;
        if (record) {
            for (std::size_t i = 0; i < in_counts.size(); ++i)
                in_counts[i] += part.inCounts[i];
            out_hist.insert(out_hist.end(), part.outPts.begin(),
                            part.outPts.end());
        }
    }

    static obs::Counter& c_vectors =
        obs::counter("refsim.vectors.simulated");
    static obs::Counter& c_values = obs::counter("refsim.values.simulated");
    c_vectors.add(static_cast<std::uint64_t>(sim_vectors));
    c_values.add(static_cast<std::uint64_t>(res.valuesSimulated));

    // Scale the sampled vectors up to the full layer.
    res.dacPj *= scale;
    res.cellPj *= scale;
    res.adcPj *= scale;
    res.digitalPj *= scale;

    // Buffer traffic is value-independent; count it analytically.
    ActionCounts counts(shape, config.accumulateAcrossInputBits);
    res.bufferPj = (counts.buffer_reads + counts.buffer_writes) *
                   phys.bufferPjPerWord() / 8.0;
    res.ops = counts.cells;

    if (out_profile) {
        const std::int64_t in_half =
            std::int64_t{1} << (config.inputBits - 1);
        std::vector<Pmf::Point> in_pts;
        for (std::size_t i = 0; i < in_counts.size(); ++i) {
            if (in_counts[i] > 0)
                in_pts.push_back(
                    {static_cast<double>(static_cast<std::int64_t>(i) -
                                         in_half),
                     static_cast<double>(in_counts[i])});
        }
        out_profile->inputs = Pmf::fromPoints(std::move(in_pts));
        out_profile->weights = Pmf::fromPoints([&] {
            std::vector<Pmf::Point> pts;
            pts.reserve(weights.size());
            for (double w : weights)
                pts.push_back({w, 1.0});
            return pts;
        }());
        out_profile->outputs = out_hist.empty()
            ? Pmf::delta(0.0)
            : Pmf::fromPoints(std::move(out_hist));
        out_profile->inputSparsity = out_profile->inputs.probOf(0.0);
    }
    return res;
}

namespace {

/** Per-action energies from marginal PMFs (the statistical model). */
struct StatEnergies
{
    double dac_pj;
    double cell_pj;
    double adc_pj;
    double digital_pj;
    double buffer_word_pj;

    StatEnergies(const RefSimConfig& config, const LayerShape& shape,
                 const dist::OperandProfile& profile)
    {
        Physics phys(config);

        // Inputs: offset-encode, slice, take the slice mixture.
        EncodedTensor in_full = dist::encodeOperands(
            profile.inputs, dist::Encoding::Offset, config.inputBits);
        double exf = in_full.meanNormValue();
        double exf2 = in_full.meanNormSquare();
        std::vector<EncodedTensor> in_slices =
            in_full.slices(config.dacBits);
        double e_dac = 0.0, ex = 0.0, ex2 = 0.0;
        for (const EncodedTensor& s : in_slices) {
            double mc = s.maxCode();
            e_dac += s.codes.expectation([&](double code) {
                return phys.dacPj(mc > 0 ? code / mc : 0.0);
            });
            ex += s.meanNormValue();
            ex2 += s.meanNormSquare();
        }
        double n_slices = static_cast<double>(in_slices.size());
        dac_pj = e_dac / n_slices;
        ex /= n_slices;
        ex2 /= n_slices;

        // Weights: offset-encode, slice at the cell width. Device faults
        // perturb each slice's level PMF the same way the value-level
        // simulator perturbs cells: stuck-at mass moves to the 0 / full
        // atoms and surviving levels get the mean-preserving two-point
        // variance inflation, whose first two moments exactly match the
        // injected lognormal variation.
        EncodedTensor wt_full = dist::encodeOperands(
            profile.weights, dist::Encoding::Offset, config.weightBits);
        std::vector<EncodedTensor> wt_slices =
            wt_full.slices(config.cellBits);
        double eg = 0.0, eg2 = 0.0;
        for (EncodedTensor& s : wt_slices) {
            if (config.faults.cellFaultsEnabled()) {
                s.codes = faults::perturbedCellLevels(config.faults,
                                                      s.codes, s.maxCode());
            }
            eg += s.meanNormValue();
            eg2 += s.meanNormSquare();
        }
        double n_wslices = static_cast<double>(wt_slices.size());
        eg /= n_wslices;
        eg2 /= n_wslices;

        // Cell: E[(g_off + gd*g) * v^2 * x^2] = independence-exact.
        double v2 = Physics::kVRead * Physics::kVRead;
        cell_pj = (Physics::kGOffUs * ex2 +
                   (Physics::kGOnUs - Physics::kGOffUs) * eg * ex2) *
                  v2 * Physics::kTReadNs / 1000.0;

        // ADC: the column sum of `rows` INDEPENDENT x*g terms (this is
        // the paper's independence approximation; the ground truth has
        // correlated terms). CLT Gaussian for E[f(sum / rows)]. Under
        // Macro-C accumulation the converted value integrates all input
        // bits, so the FULL-precision input moments apply.
        double rows = static_cast<double>(
            std::min<std::int64_t>(config.rows, shape.c_total));
        double mu1 = (config.accumulateAcrossInputBits ? exf : ex) * eg;
        double var1 = (config.accumulateAcrossInputBits ? exf2 : ex2) *
                          eg2 -
                      mu1 * mu1;
        // ADC faults shift the readout mean by the offset and widen it by
        // the per-convert noise variance (the value-level path draws both
        // per convert). The quantization window widens with them so no
        // perturbed mass clamps to the window ends.
        double mu = mu1 + config.faults.adcOffset;
        double sigma = std::sqrt(
            std::max(var1, 1e-12) / rows +
            config.faults.adcNoiseSigma * config.faults.adcNoiseSigma);
        std::int64_t window_lo = -100, window_hi = 1100;
        if (config.faults.adcFaultsEnabled()) {
            window_lo = -1100;
            window_hi = 2100;
        }
        Pmf sum_pmf = Pmf::quantizedGaussian(mu * 1000.0, sigma * 1000.0,
                                             window_lo, window_hi);
        adc_pj = sum_pmf.expectation(
            [&](double milli) { return phys.adcPj(milli / 1000.0); });

        digital_pj = phys.shiftAddPj();
        buffer_word_pj = phys.bufferPjPerWord();
    }
};

RefSimResult
estimateFromProfile(const RefSimConfig& config, const Layer& layer,
                    const dist::OperandProfile& profile)
{
    CIM_SPAN("refsim.estimate_statistical");
    static obs::Counter& c_estimates =
        obs::counter("refsim.statistical.estimates");
    c_estimates.add();
    config.faults.validate();
    LayerShape shape(config, layer);
    ActionCounts counts(shape, config.accumulateAcrossInputBits);
    StatEnergies e(config, shape, profile);

    RefSimResult res;
    res.dacPj = counts.dac * e.dac_pj;
    res.cellPj = counts.cells * e.cell_pj;
    res.adcPj = counts.adc * e.adc_pj;
    res.digitalPj = counts.digital * e.digital_pj;
    res.bufferPj =
        (counts.buffer_reads + counts.buffer_writes) * e.buffer_word_pj /
        8.0;
    res.ops = counts.cells;
    res.valuesSimulated = 0;
    return res;
}

} // namespace

RefSimResult
estimateStatistical(const RefSimConfig& config, const Layer& layer,
                    const dist::OperandProfile& profile)
{
    return estimateFromProfile(config, layer, profile);
}

RefSimResult
estimateFixedEnergy(const RefSimConfig& config, const Layer& layer,
                    const dist::OperandProfile& network_avg)
{
    return estimateFromProfile(config, layer, network_avg);
}

dist::OperandProfile
averageProfiles(const std::vector<dist::OperandProfile>& profiles)
{
    CIM_ASSERT(!profiles.empty(), "averageProfiles needs profiles");
    std::vector<Pmf> ins, wts, outs;
    ins.reserve(profiles.size());
    wts.reserve(profiles.size());
    outs.reserve(profiles.size());
    for (const dist::OperandProfile& p : profiles) {
        ins.push_back(p.inputs);
        wts.push_back(p.weights);
        outs.push_back(p.outputs);
    }
    dist::OperandProfile avg;
    avg.inputs = Pmf::mixture(ins);
    avg.weights = Pmf::mixture(wts);
    avg.outputs = Pmf::mixture(outs);
    avg.inputSparsity = avg.inputs.probOf(0.0);
    return avg;
}

} // namespace cimloop::refsim
