/**
 * @file
 * Minimal JSON for the serve protocol: a strict recursive-descent
 * parser and an escaping writer. No external dependency — the request
 * surface of a daemon is exactly the place a vendored parser earns its
 * ~300 lines, because every malformed byte sequence a client can send
 * must become a structured error, never UB or an abort.
 *
 * Parser properties the protocol robustness suite pins:
 *  - never throws on malformed input: parse() returns nullopt and fills
 *    an error string with a byte offset;
 *  - bounded recursion (kMaxDepth) so deeply nested input cannot
 *    overflow the stack;
 *  - numbers keep their raw source text next to the double value, so a
 *    request id of arbitrary magnitude echoes back verbatim instead of
 *    round-tripping through double precision;
 *  - strings accept the full backslash-uXXXX escape range including
 *    surrogate pairs (encoded as UTF-8) and escaped NULs; raw control
 *    bytes (including NUL) inside a string are rejected as JSON
 *    requires.
 */
#ifndef CIMLOOP_SERVE_JSON_HH
#define CIMLOOP_SERVE_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cimloop::serve {

/** One parsed JSON value (a small closed sum type). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;  //!< numbers: the exact source token
    std::string text; //!< strings: the decoded value
    std::vector<JsonValue> items; //!< arrays
    /** Object members in source order (later duplicates win on get()). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue* get(const std::string& key) const;
};

/** Maximum nesting depth parseJson() accepts before erroring out. */
inline constexpr int kJsonMaxDepth = 64;

/**
 * Parses exactly one JSON document from @p input (leading/trailing
 * whitespace allowed, trailing garbage rejected). On failure returns
 * nullopt and, when @p error is non-null, stores a message carrying the
 * byte offset of the offending input.
 */
std::optional<JsonValue> parseJson(const std::string& input,
                                   std::string* error = nullptr);

/** Escapes @p s as the *inside* of a JSON string literal (no quotes):
 *  ", backslash, control bytes, and DEL become escape sequences;
 *  everything else — including non-ASCII UTF-8 — passes through
 *  byte-exact. */
std::string jsonEscape(const std::string& s);

/** Serializes @p v compactly (one line, no spaces). Numbers emit their
 *  raw source token when one was captured, so parsed ids round-trip
 *  byte-exact. */
std::string writeJson(const JsonValue& v);

} // namespace cimloop::serve

#endif // CIMLOOP_SERVE_JSON_HH
