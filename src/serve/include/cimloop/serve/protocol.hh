/**
 * @file
 * The `cimloop serve` request protocol, factored away from sockets so
 * the robustness suite can drive it in-process.
 *
 * Wire format: newline-delimited JSON (NDJSON) over a local stream.
 * Each request is one JSON object on one line; the daemon answers with
 * exactly one JSON object line per request, in request order:
 *
 *   {"id":1,"kind":"ping"}
 *   {"id":2,"kind":"evaluate","macro":"base","network":"mvm",
 *    "mappings":100,"seed":1,"threads":8}
 *   {"id":3,"kind":"sweep","sweep":"examples/sweep.yaml","threads":8}
 *   {"id":4,"kind":"metrics"}
 *   {"id":5,"kind":"shutdown"}
 *
 * Responses:
 *  - executed requests (evaluate/sweep):
 *      {"id":2,"ok":true,"exit":0,"stdout":"...","stderr":""}
 *    where `stdout` is byte-for-byte what the equivalent one-shot CLI
 *    invocation writes at the same seed and threads (the determinism
 *    contract the serve e2e harness enforces), and a nonzero exit adds
 *      "error":{"kind":"fatal"|"cancelled"|...,"message":"..."}
 *    built from the same FatalError/CancelledError/LayerDiagnostic
 *    machinery the CLI maps to exit codes;
 *  - protocol-level failures (malformed JSON, bad shape, bad flag
 *    values):
 *      {"id":null,"ok":false,"error":{"kind":"parse","message":"..."}}
 *    with kind "parse" (not JSON), "protocol" (JSON, but not a valid
 *    request: wrong types, unknown kind/field, oversized line) or
 *    "usage" (fields rejected by the CLI's own flag validation).
 *
 * A bad request must never kill the daemon: handleRequestLine() never
 * throws, and every line gets exactly one response. The request id is
 * echoed byte-exact (numbers keep their source spelling, however huge).
 */
#ifndef CIMLOOP_SERVE_PROTOCOL_HH
#define CIMLOOP_SERVE_PROTOCOL_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "cimloop/common/cancel.hh"
#include "cimloop/common/request_context.hh"

namespace cimloop::serve {

/** Protocol revision reported by ping/metrics. */
inline constexpr int kProtocolVersion = 1;

/** Daemon configuration (from `cimloop serve` flags). */
struct ServeConfig
{
    std::string listenPath;  //!< --listen PATH (Unix socket)
    std::size_t cacheMb = 0; //!< --cache-mb N (0 = unlimited)
    int defaultThreads = 1;  //!< --threads N: default for requests
    std::size_t maxLineBytes = 1 << 20; //!< request line size guard
};

/** Per-connection state: request counts and the per-client cache
 *  hit/miss attribution the metrics request reports. */
struct ClientState
{
    std::uint64_t clientId = 0;
    RequestStats cacheStats;
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
};

/** Cross-connection daemon state. */
struct ServerState
{
    ServeConfig config;
    std::atomic<std::uint64_t> requestsTotal{0};
    std::atomic<std::uint64_t> errorsTotal{0};
    std::atomic<std::uint64_t> clientsTotal{0};
    /** Flipped by a shutdown request; the socket loop polls it. */
    std::atomic<bool> shutdownRequested{false};
};

/**
 * Handles one request line and returns the single response line
 * (without the trailing newline). Never throws; a request that cannot
 * even be parsed still produces a structured error response.
 *
 * @p cancel is the request's cancellation token: the socket layer
 * cancels it when the client disconnects or the server shuts down, and
 * a `timeout_s` field in the request arms a deadline on it. evaluate /
 * sweep requests run under the caller's thread with the client's
 * RequestStats installed, so per-action cache traffic lands on
 * @p client's counters (and the process-wide ones) without perturbing
 * concurrent requests.
 */
std::string handleRequestLine(ServerState& server, ClientState& client,
                              const std::string& line,
                              const CancelToken& cancel);

/**
 * A protocol-level error response the socket layer can emit without a
 * parsed request (e.g. for an oversized line). @p id_json must be a
 * serialized JSON value ("null" when unknown).
 */
std::string errorResponse(const std::string& id_json,
                          const std::string& kind,
                          const std::string& message);

} // namespace cimloop::serve

#endif // CIMLOOP_SERVE_PROTOCOL_HH
