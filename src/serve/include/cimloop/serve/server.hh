/**
 * @file
 * The `cimloop serve` daemon: a long-lived evaluation server speaking
 * the NDJSON protocol (see protocol.hh) over a Unix domain socket.
 *
 *   cimloop serve --listen /tmp/cimloop.sock --cache-mb 64 --threads 8
 *
 * Lifecycle:
 *  - binds the socket (unlinking a stale path first), prints one
 *    "listening on PATH" line to stderr, and accepts connections;
 *  - each connection is handled on its own thread, requests on one
 *    connection strictly in order (responses line up with requests),
 *    different connections concurrently — they share the per-action
 *    cache, so identical concurrent requests coalesce into one compute;
 *  - a request runs on a worker thread while the connection thread
 *    watches the socket: a client that drops mid-request cancels its
 *    token cooperatively (same machinery as --timeout);
 *  - a `shutdown` request finishes in-flight work, then the daemon
 *    exits 0; SIGINT/SIGTERM cancel in-flight work and exit 128+signo.
 *
 * The process-wide per-action cache and obs counters deliberately
 * persist across requests (the point of a daemon); --cache-mb arms the
 * cache's LRU byte budget for the process lifetime.
 */
#ifndef CIMLOOP_SERVE_SERVER_HH
#define CIMLOOP_SERVE_SERVER_HH

#include <ostream>
#include <string>
#include <vector>

namespace cimloop::serve {

/** Usage text for `cimloop serve --help`. */
std::string serveUsage();

/**
 * Runs the daemon until shutdown: parses serve flags (argv after the
 * `serve` word), binds, serves, and returns the process exit code
 * (0 after a `shutdown` request, 2 for bad flags, 1 for bind/listen
 * failures, 128+signo when a signal stopped it).
 */
int runServe(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

} // namespace cimloop::serve

#endif // CIMLOOP_SERVE_SERVER_HH
