#include "cimloop/serve/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cimloop::serve {

const JsonValue*
JsonValue::get(const std::string& key) const
{
    const JsonValue* found = nullptr;
    for (const auto& [k, v] : members) {
        if (k == key)
            found = &v; // later duplicates win, like most parsers
    }
    return found;
}

namespace {

/** Recursive-descent parser over a byte range; never throws. */
class Parser
{
  public:
    Parser(const std::string& input, std::string* error)
        : in_(input), error_(error)
    {}

    std::optional<JsonValue> run()
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v, 0))
            return std::nullopt;
        skipWs();
        if (pos_ != in_.size())
            return fail("trailing garbage after JSON value");
        return v;
    }

  private:
    const std::string& in_;
    std::string* error_;
    std::size_t pos_ = 0;

    std::nullopt_t fail(const std::string& what)
    {
        if (error_ && error_->empty()) {
            *error_ = what + " at byte " + std::to_string(pos_);
        }
        return std::nullopt;
    }

    bool failValue(const std::string& what)
    {
        fail(what);
        return false;
    }

    void skipWs()
    {
        while (pos_ < in_.size()) {
            char c = in_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool atEnd() const { return pos_ >= in_.size(); }
    char peek() const { return in_[pos_]; }

    bool literal(const char* word, std::size_t len)
    {
        if (in_.compare(pos_, len, word) != 0)
            return failValue("invalid literal");
        pos_ += len;
        return true;
    }

    bool parseValue(JsonValue& out, int depth)
    {
        if (depth > kJsonMaxDepth)
            return failValue("nesting deeper than " +
                             std::to_string(kJsonMaxDepth) + " levels");
        if (atEnd())
            return failValue("unexpected end of input");
        switch (peek()) {
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        case '[':
            return parseArray(out, depth);
        case '{':
            return parseObject(out, depth);
        default:
            return parseNumber(out);
        }
    }

    bool parseNumber(JsonValue& out)
    {
        const std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        if (atEnd() || peek() < '0' || peek() > '9')
            return failValue("invalid value");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                return failValue("digit required after decimal point");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() || peek() < '0' || peek() > '9')
                return failValue("digit required in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        out.kind = JsonValue::Kind::Number;
        out.raw = in_.substr(start, pos_ - start);
        // strtod saturates huge magnitudes to +-inf; the raw token keeps
        // the exact spelling for byte-exact id echo.
        out.number = std::strtod(out.raw.c_str(), nullptr);
        return true;
    }

    bool hex4(unsigned& out)
    {
        if (pos_ + 4 > in_.size())
            return failValue("truncated unicode escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = in_[pos_ + static_cast<std::size_t>(i)];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A' + 10);
            else
                return failValue("invalid unicode escape digit");
            out = out * 16 + digit;
        }
        pos_ += 4;
        return true;
    }

    static void appendUtf8(std::string& s, unsigned cp)
    {
        if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool parseString(std::string& out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (atEnd())
                return failValue("unterminated string");
            unsigned char c = static_cast<unsigned char>(in_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                // Raw control bytes — embedded NULs included — are
                // invalid inside a JSON string; clients must escape.
                return failValue("raw control byte in string");
            }
            if (c == '\\') {
                ++pos_;
                if (atEnd())
                    return failValue("truncated escape");
                char e = in_[pos_++];
                switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned cp;
                    if (!hex4(cp))
                        return false;
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: require the low half.
                        if (pos_ + 1 >= in_.size() || in_[pos_] != '\\' ||
                            in_[pos_ + 1] != 'u')
                            return failValue("unpaired high surrogate");
                        pos_ += 2;
                        unsigned lo;
                        if (!hex4(lo))
                            return false;
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            return failValue("invalid low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return failValue("unpaired low surrogate");
                    }
                    appendUtf8(out, cp);
                    break;
                }
                default:
                    return failValue("unknown escape");
                }
                continue;
            }
            out.push_back(static_cast<char>(c));
            ++pos_;
        }
    }

    bool parseArray(JsonValue& out, int depth)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            skipWs();
            if (!parseValue(item, depth + 1))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (atEnd())
                return failValue("unterminated array");
            char c = in_[pos_++];
            if (c == ']')
                return true;
            if (c != ',') {
                --pos_;
                return failValue("expected ',' or ']' in array");
            }
        }
    }

    bool parseObject(JsonValue& out, int depth)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return failValue("expected string key in object");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (atEnd() || in_[pos_] != ':')
                return failValue("expected ':' after object key");
            ++pos_;
            skipWs();
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (atEnd())
                return failValue("unterminated object");
            char c = in_[pos_++];
            if (c == '}')
                return true;
            if (c != ',') {
                --pos_;
                return failValue("expected ',' or '}' in object");
            }
        }
    }
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string& input, std::string* error)
{
    if (error)
        error->clear();
    Parser parser(input, error);
    return parser.run();
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20 || c == 0x7F) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

std::string
writeJson(const JsonValue& v)
{
    switch (v.kind) {
    case JsonValue::Kind::Null:
        return "null";
    case JsonValue::Kind::Bool:
        return v.boolean ? "true" : "false";
    case JsonValue::Kind::Number:
        if (!v.raw.empty())
            return v.raw; // byte-exact round trip for parsed numbers
        if (std::isfinite(v.number)) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", v.number);
            return buf;
        }
        return "null"; // JSON has no inf/nan
    case JsonValue::Kind::String:
        return "\"" + jsonEscape(v.text) + "\"";
    case JsonValue::Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                out += ",";
            out += writeJson(v.items[i]);
        }
        return out + "]";
    }
    case JsonValue::Kind::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            if (i)
                out += ",";
            out += "\"" + jsonEscape(v.members[i].first) +
                   "\":" + writeJson(v.members[i].second);
        }
        return out + "}";
    }
    }
    return "null";
}

} // namespace cimloop::serve
