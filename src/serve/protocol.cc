#include "cimloop/serve/protocol.hh"

#include <exception>
#include <iterator>
#include <sstream>
#include <vector>

#include "cimloop/cli/cli.hh"
#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/obs/obs.hh"
#include "cimloop/serve/json.hh"

namespace cimloop::serve {

namespace {

/**
 * One request field the protocol accepts, and the CLI flag it becomes.
 * Translating fields to argv and re-entering cli::parseArgs() buys the
 * daemon the CLI's entire validation surface for free and guarantees
 * the determinism contract structurally: a request *is* a one-shot
 * invocation, minus the per-process setup runParsed() skips.
 */
struct FieldSpec
{
    const char* name; //!< JSON member name (snake_case)
    const char* flag; //!< CLI flag it maps to
    enum Type
    {
        String, //!< must be a JSON string; passed through decoded
        Number, //!< must be a JSON number; passed as its raw token
        Flag,   //!< must be a JSON bool; true appends the bare flag
    } type;
};

// Numbers travel as their raw source token so the CLI's own
// parseInt/parseDouble decide validity ("seed":1e3 fails the same way
// `--seed 1e3` does); booleans gate presence of a bare flag.
const FieldSpec kEvaluateFields[] = {
    {"macro", "--macro", FieldSpec::String},
    {"arch", "--arch", FieldSpec::String},
    {"network", "--network", FieldSpec::String},
    {"workload", "--workload", FieldSpec::String},
    {"mappings", "--mappings", FieldSpec::Number},
    {"seed", "--seed", FieldSpec::Number},
    {"threads", "--threads", FieldSpec::Number},
    {"objective", "--objective", FieldSpec::String},
    {"device", "--device", FieldSpec::String},
    {"tech_nm", "--tech", FieldSpec::Number},
    {"voltage", "--voltage", FieldSpec::Number},
    {"dac_bits", "--dac-bits", FieldSpec::Number},
    {"cell_bits", "--cell-bits", FieldSpec::Number},
    {"input_bits", "--input-bits", FieldSpec::Number},
    {"weight_bits", "--weight-bits", FieldSpec::Number},
    {"faults", "--faults", FieldSpec::String},
    {"fault_stuck_rate", "--fault-stuck-rate", FieldSpec::Number},
    {"fault_sigma", "--fault-sigma", FieldSpec::Number},
    {"mapping", "--mapping", FieldSpec::String},
    {"layout", "--layout", FieldSpec::String},
    {"layout_search", "--layout-search", FieldSpec::Flag},
    {"keep_going", "--keep-going", FieldSpec::Flag},
    {"report", "--report", FieldSpec::Flag},
    {"csv", "--csv", FieldSpec::String},
    {"ert", "--ert", FieldSpec::String},
    {"timeout_s", "--timeout", FieldSpec::Number},
};

const FieldSpec kSweepFields[] = {
    {"sweep", "--sweep", FieldSpec::String},
    {"seed", "--seed", FieldSpec::Number},
    {"threads", "--threads", FieldSpec::Number},
    {"chunk_size", "--chunk-size", FieldSpec::Number},
    {"max_chunks", "--max-chunks", FieldSpec::Number},
    {"resume", "--resume", FieldSpec::String},
    {"csv", "--csv", FieldSpec::String},
    {"json", "--json", FieldSpec::String},
    {"timeout_s", "--timeout", FieldSpec::Number},
};

const FieldSpec*
findField(const FieldSpec* table, std::size_t n, const std::string& name)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (name == table[i].name)
            return &table[i];
    }
    return nullptr;
}

/** Serialized "id" member of the request ("null" when absent or the
 *  request never parsed). Raw-token numbers round-trip byte-exact. */
std::string
requestId(const JsonValue* doc)
{
    if (doc && doc->isObject()) {
        if (const JsonValue* id = doc->get("id"))
            return writeJson(*id);
    }
    return "null";
}

const char* const kTypeWord[] = {"a string", "a number", "a boolean"};

/**
 * Translates the request's members into argv for cli::parseArgs().
 * Returns false (with a protocol-error message) on an unknown member or
 * a type mismatch; value *validation* stays with the CLI.
 */
bool
buildArgs(const JsonValue& doc, const FieldSpec* table, std::size_t n,
          std::vector<std::string>& args, std::string& error)
{
    for (const auto& [key, value] : doc.members) {
        if (key == "id" || key == "kind")
            continue;
        const FieldSpec* spec = findField(table, n, key);
        if (!spec) {
            error = "unknown field \"" + key + "\"";
            return false;
        }
        // Last duplicate wins, consistent with JsonValue::get().
        if (doc.get(key) != &value)
            continue;
        switch (spec->type) {
        case FieldSpec::String:
            if (!value.isString()) {
                error = "field \"" + key + "\" must be " +
                        kTypeWord[FieldSpec::String];
                return false;
            }
            args.push_back(spec->flag);
            args.push_back(value.text);
            break;
        case FieldSpec::Number:
            if (!value.isNumber()) {
                error = "field \"" + key + "\" must be " +
                        kTypeWord[FieldSpec::Number];
                return false;
            }
            args.push_back(spec->flag);
            args.push_back(value.raw);
            break;
        case FieldSpec::Flag:
            if (!value.isBool()) {
                error = "field \"" + key + "\" must be " +
                        kTypeWord[FieldSpec::Flag];
                return false;
            }
            if (value.boolean)
                args.push_back(spec->flag);
            break;
        }
    }
    return true;
}

/** The error "kind" for a nonzero exit from an executed request. */
std::string
executionErrorKind(int rc, const CancelToken& cancel)
{
    if (rc == cli::ExitDeadline) {
        return cancel.reason() == CancelReason::User ? "cancelled"
                                                     : "deadline";
    }
    if (rc >= 128)
        return "signal";
    if (rc == cli::ExitUsage)
        return "usage";
    return "fatal";
}

/** stderr with the trailing newline shaved off, for error messages. */
std::string
trimTrailingNewlines(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

/**
 * Runs an already-translated evaluate/sweep request through the CLI
 * core with the client's cache attribution installed, and packages exit
 * code + captured streams as the response. Never throws: anything that
 * escapes runParsed() (which already maps FatalError/CancelledError)
 * becomes a fatal execution error, not a dead daemon.
 */
std::string
executeRequest(ClientState& client, const std::string& id_json,
               const std::vector<std::string>& args,
               const CancelToken& cancel, bool& usage_error)
{
    usage_error = false;
    cli::CliOptions opts;
    try {
        opts = cli::parseArgs(args);
    } catch (const FatalError& e) {
        usage_error = true;
        return errorResponse(id_json, "usage", e.what());
    }
    // run() arms the deadline from --timeout before entering the core;
    // the daemon does the same on the per-request token, which the
    // socket layer additionally cancels on disconnect or shutdown.
    if (opts.timeoutSeconds > 0.0)
        cancel.setDeadline(Deadline::after(opts.timeoutSeconds));

    std::ostringstream out, err;
    int rc;
    {
        RequestStatsScope stats_scope(&client.cacheStats);
        try {
            rc = cli::runParsed(opts, cancel, out, err);
        } catch (const std::exception& e) {
            err << e.what() << "\n";
            rc = cli::ExitFatal;
        } catch (...) {
            err << "unknown error\n";
            rc = cli::ExitFatal;
        }
    }

    std::string resp = "{\"id\":" + id_json +
                       ",\"ok\":" + (rc == 0 ? "true" : "false") +
                       ",\"exit\":" + std::to_string(rc) +
                       ",\"stdout\":\"" + jsonEscape(out.str()) +
                       "\",\"stderr\":\"" + jsonEscape(err.str()) + "\"";
    if (rc != 0) {
        resp += ",\"error\":{\"kind\":\"" + executionErrorKind(rc, cancel) +
                "\",\"message\":\"" +
                jsonEscape(trimTrailingNewlines(err.str())) + "\"}";
    }
    return resp + "}";
}

/** The metrics request: obs counters + cache + per-client attribution,
 *  compact on one line (obs::countersJson() is a multi-line fragment). */
std::string
metricsResponse(ServerState& server, ClientState& client,
                const std::string& id_json)
{
    const engine::PerActionCacheStats cache = engine::perActionCacheStats();
    const obs::MetricsSnapshot snap = obs::snapshot();

    std::string counters;
    for (const auto& [name, value] : snap.counters) {
        if (value == 0)
            continue; // match countersJson(): only touched counters
        if (!counters.empty())
            counters += ",";
        counters += "\"" + jsonEscape(name) + "\":" + u64(value);
    }

    std::string resp =
        "{\"id\":" + id_json + ",\"ok\":true,\"result\":{" +
        "\"protocol\":" + std::to_string(kProtocolVersion) +
        ",\"server\":{\"requests_total\":" + u64(server.requestsTotal) +
        ",\"errors_total\":" + u64(server.errorsTotal) +
        ",\"clients_total\":" + u64(server.clientsTotal) + "}" +
        ",\"client\":{\"id\":" + u64(client.clientId) +
        ",\"requests\":" + u64(client.requests) +
        ",\"errors\":" + u64(client.errors) +
        ",\"cache_hits\":" + u64(client.cacheStats.cacheHits) +
        ",\"cache_misses\":" + u64(client.cacheStats.cacheMisses) + "}" +
        ",\"cache\":{\"hits\":" + u64(cache.hits) +
        ",\"misses\":" + u64(cache.misses) +
        ",\"entries\":" + u64(cache.entries) +
        ",\"bytes\":" + u64(cache.bytes) +
        ",\"evictions\":" + u64(cache.evictions) +
        ",\"budget_bytes\":" + u64(cache.budgetBytes) + "}" +
        ",\"counters\":{" + counters + "}}}";
    return resp;
}

/** Rejects members other than id/kind on argument-less request kinds. */
bool
onlyIdAndKind(const JsonValue& doc, std::string& error)
{
    for (const auto& [key, value] : doc.members) {
        (void)value;
        if (key != "id" && key != "kind") {
            error = "unknown field \"" + key + "\"";
            return false;
        }
    }
    return true;
}

} // namespace

std::string
errorResponse(const std::string& id_json, const std::string& kind,
              const std::string& message)
{
    return "{\"id\":" + id_json + ",\"ok\":false,\"error\":{\"kind\":\"" +
           jsonEscape(kind) + "\",\"message\":\"" + jsonEscape(message) +
           "\"}}";
}

std::string
handleRequestLine(ServerState& server, ClientState& client,
                  const std::string& line, const CancelToken& cancel)
{
    static obs::Counter& requests = obs::counter("serve.requests.handled");
    static obs::Counter& errors = obs::counter("serve.requests.rejected");
    requests.add();
    server.requestsTotal.fetch_add(1, std::memory_order_relaxed);
    client.requests.fetch_add(1, std::memory_order_relaxed);

    // One response per line, whatever happens below.
    const auto reject = [&](const std::string& id_json,
                            const std::string& kind,
                            const std::string& message) {
        errors.add();
        server.errorsTotal.fetch_add(1, std::memory_order_relaxed);
        client.errors.fetch_add(1, std::memory_order_relaxed);
        return errorResponse(id_json, kind, message);
    };

    try {
        if (line.size() > server.config.maxLineBytes) {
            return reject("null", "protocol",
                          "request line exceeds " +
                              std::to_string(server.config.maxLineBytes) +
                              " bytes");
        }

        std::string parse_error;
        std::optional<JsonValue> doc = parseJson(line, &parse_error);
        if (!doc)
            return reject("null", "parse", parse_error);

        const std::string id_json = requestId(&*doc);
        if (!doc->isObject()) {
            return reject(id_json, "protocol",
                          "request must be a JSON object");
        }

        const JsonValue* kind = doc->get("kind");
        if (!kind)
            return reject(id_json, "protocol", "missing \"kind\"");
        if (!kind->isString()) {
            return reject(id_json, "protocol", "\"kind\" must be a string");
        }

        std::string shape_error;
        if (kind->text == "ping") {
            if (!onlyIdAndKind(*doc, shape_error))
                return reject(id_json, "protocol", shape_error);
            return "{\"id\":" + id_json +
                   ",\"ok\":true,\"result\":{\"pong\":true,\"protocol\":" +
                   std::to_string(kProtocolVersion) + "}}";
        }
        if (kind->text == "metrics") {
            if (!onlyIdAndKind(*doc, shape_error))
                return reject(id_json, "protocol", shape_error);
            return metricsResponse(server, client, id_json);
        }
        if (kind->text == "shutdown") {
            if (!onlyIdAndKind(*doc, shape_error))
                return reject(id_json, "protocol", shape_error);
            server.shutdownRequested.store(true, std::memory_order_release);
            return "{\"id\":" + id_json +
                   ",\"ok\":true,\"result\":{\"shutting_down\":true}}";
        }

        const bool is_evaluate = (kind->text == "evaluate");
        const bool is_sweep = (kind->text == "sweep");
        if (!is_evaluate && !is_sweep) {
            return reject(id_json, "protocol",
                          "unknown kind \"" + kind->text + "\"");
        }
        if (is_sweep && !doc->get("sweep")) {
            return reject(id_json, "protocol",
                          "sweep request requires a \"sweep\" field");
        }

        std::vector<std::string> args;
        const bool ok =
            is_evaluate
                ? buildArgs(*doc, kEvaluateFields,
                            std::size(kEvaluateFields), args, shape_error)
                : buildArgs(*doc, kSweepFields, std::size(kSweepFields),
                            args, shape_error);
        if (!ok)
            return reject(id_json, "protocol", shape_error);
        if (!doc->get("threads")) {
            // The daemon's --threads is the default; a request field
            // overrides it per request.
            args.push_back("--threads");
            args.push_back(std::to_string(server.config.defaultThreads));
        }

        bool usage_error = false;
        std::string resp =
            executeRequest(client, id_json, args, cancel, usage_error);
        if (usage_error) {
            // Flag validation rejected the request before it ran;
            // count it like any other rejection.
            errors.add();
            server.errorsTotal.fetch_add(1, std::memory_order_relaxed);
            client.errors.fetch_add(1, std::memory_order_relaxed);
        }
        return resp;
    } catch (const std::exception& e) {
        // Belt and braces: no request may kill the daemon.
        return reject("null", "protocol",
                      std::string("internal error: ") + e.what());
    } catch (...) {
        return reject("null", "protocol", "internal error");
    }
}

} // namespace cimloop::serve
