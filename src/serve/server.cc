#include "cimloop/serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cimloop/cli/cli.hh"
#include "cimloop/common/cancel.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/serve/protocol.hh"

namespace cimloop::serve {

namespace {

/** Everything the accept loop and connection threads share. */
struct ServerContext
{
    ServerState state;
    /** Process-level token: SIGINT/SIGTERM cancel it (reason Signal);
     *  connection threads and request monitors poll it. */
    CancelToken token;
};

/** send() the whole buffer; MSG_NOSIGNAL so a vanished client yields
 *  EPIPE instead of killing the daemon with SIGPIPE. */
bool
writeAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Runs one request on a worker thread while this (connection) thread
 * watches the socket and the process token: a client that hangs up
 * mid-request — or a signal hitting the daemon — cancels the request's
 * token, and the evaluation stack unwinds at its next deterministic
 * boundary exactly as --timeout does. The worker always finishes (it
 * polls the token), so the response future is always redeemed.
 */
std::string
runRequest(ServerContext& ctx, ClientState& client, int fd,
           const std::string& line)
{
    CancelToken token;
    std::future<std::string> worker =
        std::async(std::launch::async, [&ctx, &client, &line, &token] {
            return handleRequestLine(ctx.state, client, line, token);
        });
    for (;;) {
        if (worker.wait_for(std::chrono::milliseconds(50)) ==
            std::future_status::ready) {
            return worker.get();
        }
        if (ctx.token.cancelled()) {
            token.cancel(ctx.token.reason() == CancelReason::Signal
                             ? CancelReason::Signal
                             : CancelReason::User);
            continue;
        }
        // events=0: poll still reports POLLERR/POLLHUP, so a fully
        // closed peer is detected without consuming pipelined input.
        struct pollfd p = {fd, 0, 0};
        if (::poll(&p, 1, 0) > 0 && (p.revents & (POLLERR | POLLHUP)))
            token.cancel(CancelReason::User);
    }
}

/**
 * One connection: split the byte stream into lines, answer each in
 * order. Requests on one connection are sequential (responses line up
 * with requests); concurrency comes from multiple connections.
 */
void
serveConnection(ServerContext& ctx, int fd,
                const std::shared_ptr<ClientState>& client)
{
    std::string pending;
    bool discarding = false; // inside an oversized line, seeking '\n'
    char buf[64 * 1024];

    for (;;) {
        std::size_t nl;
        while ((nl = pending.find('\n')) != std::string::npos) {
            std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.find_first_not_of(" \t") == std::string::npos)
                continue; // blank keep-alive lines get no response
            std::string resp = runRequest(ctx, *client, fd, line);
            if (!writeAll(fd, resp + "\n"))
                return;
            if (ctx.state.shutdownRequested.load(
                    std::memory_order_acquire))
                return; // graceful: this response was the last
        }

        if (ctx.state.shutdownRequested.load(std::memory_order_acquire) ||
            ctx.token.cancelled())
            return;

        if (!discarding &&
            pending.size() > ctx.state.config.maxLineBytes) {
            // No newline in sight and over budget: reject now and skip
            // input until the line ends, keeping memory bounded.
            ctx.state.errorsTotal.fetch_add(1, std::memory_order_relaxed);
            client->errors.fetch_add(1, std::memory_order_relaxed);
            std::string resp = errorResponse(
                "null", "protocol",
                "request line exceeds " +
                    std::to_string(ctx.state.config.maxLineBytes) +
                    " bytes");
            if (!writeAll(fd, resp + "\n"))
                return;
            pending.clear();
            discarding = true;
        }

        struct pollfd p = {fd, POLLIN, 0};
        int rc = ::poll(&p, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (rc == 0)
            continue;
        if (p.revents & (POLLERR | POLLNVAL))
            return;
        if (p.revents & POLLIN) {
            ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0)
                return; // EOF (orderly close) or error
            std::size_t off = 0;
            if (discarding) {
                const char* nlp = static_cast<const char*>(
                    std::memchr(buf, '\n', static_cast<std::size_t>(n)));
                if (!nlp)
                    continue; // still inside the oversized line
                off = static_cast<std::size_t>(nlp - buf) + 1;
                discarding = false;
            }
            pending.append(buf + off, static_cast<std::size_t>(n) - off);
        } else if (p.revents & POLLHUP) {
            return;
        }
    }
}

struct ServeFlags
{
    ServeConfig config;
    bool help = false;
};

/** Parses serve's own flags; returns false with a message on error. */
bool
parseServeFlags(const std::vector<std::string>& args, ServeFlags& out,
                std::string& error)
{
    std::size_t i = 0;
    const auto value = [&](const std::string& flag,
                           std::string& v) -> bool {
        if (i + 1 >= args.size()) {
            error = flag + " requires a value";
            return false;
        }
        v = args[++i];
        return true;
    };
    const auto number = [&](const std::string& flag, long long min_v,
                            long long& v) -> bool {
        std::string s;
        if (!value(flag, s))
            return false;
        errno = 0;
        char* end = nullptr;
        v = std::strtoll(s.c_str(), &end, 10);
        if (errno != 0 || end == s.c_str() || *end != '\0' || v < min_v) {
            error = flag + " wants an integer >= " +
                    std::to_string(min_v) + ", got \"" + s + "\"";
            return false;
        }
        return true;
    };

    for (; i < args.size(); ++i) {
        const std::string& flag = args[i];
        long long n = 0;
        if (flag == "--listen") {
            if (!value(flag, out.config.listenPath))
                return false;
        } else if (flag == "--cache-mb") {
            if (!number(flag, 0, n))
                return false;
            out.config.cacheMb = static_cast<std::size_t>(n);
        } else if (flag == "--threads") {
            if (!number(flag, 1, n))
                return false;
            out.config.defaultThreads = static_cast<int>(n);
        } else if (flag == "--max-line-bytes") {
            if (!number(flag, 1024, n))
                return false;
            out.config.maxLineBytes = static_cast<std::size_t>(n);
        } else if (flag == "--help" || flag == "-h") {
            out.help = true;
        } else {
            error = "unknown serve flag: " + flag;
            return false;
        }
    }
    if (!out.help && out.config.listenPath.empty()) {
        error = "serve requires --listen PATH";
        return false;
    }
    return true;
}

} // namespace

std::string
serveUsage()
{
    return "usage: cimloop serve --listen PATH [options]\n"
           "\n"
           "Long-lived evaluation daemon: newline-delimited JSON requests\n"
           "over a Unix socket, one response line per request (see\n"
           "docs/architecture.md, \"The evaluation server\").\n"
           "\n"
           "  --listen PATH        Unix socket path to bind (required).\n"
           "                       A stale path is unlinked first.\n"
           "  --cache-mb N         LRU byte budget for the cross-request\n"
           "                       per-action cache (0 = unlimited).\n"
           "  --threads N          default worker threads per request\n"
           "                       (a request's \"threads\" field wins).\n"
           "  --max-line-bytes N   reject request lines longer than this\n"
           "                       (default 1048576).\n"
           "  --help               this text.\n"
           "\n"
           "Request kinds: ping, evaluate, sweep, metrics, shutdown.\n"
           "Responses to evaluate/sweep carry the byte-identical stdout\n"
           "of the equivalent one-shot invocation at the same seed.\n"
           "Exit: 0 after a shutdown request, 128+signo on a signal.\n";
}

int
runServe(const std::vector<std::string>& args, std::ostream& out,
         std::ostream& err)
{
    ServeFlags flags;
    std::string error;
    if (!parseServeFlags(args, flags, error)) {
        err << "cimloop serve: " << error << "\n\n" << serveUsage();
        return cli::ExitUsage;
    }
    if (flags.help) {
        out << serveUsage();
        return cli::ExitOk;
    }

    if (flags.config.cacheMb > 0) {
        engine::setPerActionCacheBudget(flags.config.cacheMb << 20);
    }

    ServerContext ctx;
    ctx.state.config = flags.config;
    const std::string& path = flags.config.listenPath;

    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        err << "cimloop serve: socket path too long (max "
            << sizeof(addr.sun_path) - 1 << " bytes): " << path << "\n";
        return cli::ExitFatal;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) {
        err << "cimloop serve: socket(): " << std::strerror(errno)
            << "\n";
        return cli::ExitFatal;
    }
    ::unlink(path.c_str()); // stale socket from a previous daemon
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listen_fd, 16) < 0) {
        err << "cimloop serve: cannot listen on " << path << ": "
            << std::strerror(errno) << "\n";
        ::close(listen_fd);
        return cli::ExitFatal;
    }

    // One greppable readiness line; stdout stays clean for scripts.
    err << "cimloop serve: listening on " << path << std::endl;

    installSignalCancel(ctx.token);

    std::vector<std::thread> connections;
    for (;;) {
        if (ctx.state.shutdownRequested.load(std::memory_order_acquire) ||
            ctx.token.cancelled())
            break;
        struct pollfd p = {listen_fd, POLLIN, 0};
        int rc = ::poll(&p, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            err << "cimloop serve: poll(): " << std::strerror(errno)
                << "\n";
            break;
        }
        if (rc == 0 || !(p.revents & POLLIN))
            continue;
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto client = std::make_shared<ClientState>();
        client->clientId =
            ctx.state.clientsTotal.fetch_add(1, std::memory_order_relaxed) +
            1;
        connections.emplace_back([&ctx, fd, client] {
            serveConnection(ctx, fd, client);
            ::close(fd);
        });
    }

    ::close(listen_fd);
    for (std::thread& t : connections)
        t.join();
    uninstallSignalCancel();
    ::unlink(path.c_str());

    if (ctx.token.cancelled() &&
        ctx.token.reason() == CancelReason::Signal) {
        const int sig = lastCancelSignal();
        err << "cimloop serve: stopped by signal\n";
        return sig > 0 ? 128 + sig : cli::ExitInterrupt;
    }
    err << "cimloop serve: shutdown complete\n";
    return cli::ExitOk;
}

} // namespace cimloop::serve
