#include "cimloop/spec/builder.hh"

#include "cimloop/common/error.hh"

namespace cimloop::spec {

HierarchyBuilder::HierarchyBuilder(std::string name)
{
    hierarchy.name = std::move(name);
}

HierarchyBuilder&
HierarchyBuilder::container(const std::string& name)
{
    SpecNode node;
    node.kind = SpecNode::Kind::Container;
    node.name = name;
    hierarchy.nodes.push_back(std::move(node));
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::component(const std::string& name,
                            const std::string& klass)
{
    SpecNode node;
    node.kind = SpecNode::Kind::Component;
    node.name = name;
    node.klass = klass;
    hierarchy.nodes.push_back(std::move(node));
    return *this;
}

SpecNode&
HierarchyBuilder::current()
{
    if (hierarchy.nodes.empty())
        CIM_FATAL("builder: directive before any node was added");
    return hierarchy.nodes.back();
}

void
HierarchyBuilder::setDirective(std::initializer_list<TensorKind> ts,
                               TemporalDirective d)
{
    SpecNode& node = current();
    for (TensorKind t : ts) {
        TemporalDirective& slot = node.temporal[tensorIndex(t)];
        if (slot != TemporalDirective::Bypass && slot != d) {
            CIM_FATAL("builder: node '", node.name, "' tensor ",
                      workload::tensorName(t), " already has directive ",
                      directiveName(slot));
        }
        slot = d;
    }
}

HierarchyBuilder&
HierarchyBuilder::temporalReuse(std::initializer_list<TensorKind> ts)
{
    setDirective(ts, TemporalDirective::TemporalReuse);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::coalesce(std::initializer_list<TensorKind> ts)
{
    setDirective(ts, TemporalDirective::Coalesce);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::noCoalesce(std::initializer_list<TensorKind> ts)
{
    setDirective(ts, TemporalDirective::NoCoalesce);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::spatialReuse(std::initializer_list<TensorKind> ts)
{
    SpecNode& node = current();
    for (TensorKind t : ts)
        node.spatialReuse[tensorIndex(t)] = true;
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::spatial(std::int64_t mesh_x, std::int64_t mesh_y)
{
    SpecNode& node = current();
    if (mesh_x < 1 || mesh_y < 1)
        CIM_FATAL("builder: node '", node.name,
                  "' mesh sizes must be >= 1");
    node.meshX = mesh_x;
    node.meshY = mesh_y;
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::spatialDims(std::initializer_list<workload::Dim> ds)
{
    SpecNode& node = current();
    for (workload::Dim d : ds)
        node.spatialDims.push_back(d);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::temporalDims(std::initializer_list<workload::Dim> ds)
{
    SpecNode& node = current();
    for (workload::Dim d : ds)
        node.temporalDims.push_back(d);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::flexibleSpatial(bool flexible)
{
    current().flexibleSpatial = flexible;
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::attr(const std::string& key, std::int64_t value)
{
    current().attributes[key] = yaml::Node::makeInt(value);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::attr(const std::string& key, double value)
{
    current().attributes[key] = yaml::Node::makeFloat(value);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::attr(const std::string& key, const std::string& value)
{
    current().attributes[key] = yaml::Node::makeString(value);
    return *this;
}

HierarchyBuilder&
HierarchyBuilder::attr(const std::string& key, const char* value)
{
    current().attributes[key] = yaml::Node::makeString(value);
    return *this;
}

Hierarchy
HierarchyBuilder::build()
{
    hierarchy.validate();
    return hierarchy;
}

} // namespace cimloop::spec
