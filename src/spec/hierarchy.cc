#include "cimloop/spec/hierarchy.hh"

#include <set>
#include <sstream>

#include "cimloop/common/error.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::spec {

const char*
directiveName(TemporalDirective d)
{
    switch (d) {
      case TemporalDirective::Bypass: return "bypass";
      case TemporalDirective::TemporalReuse: return "temporal_reuse";
      case TemporalDirective::Coalesce: return "coalesce";
      case TemporalDirective::NoCoalesce: return "no_coalesce";
    }
    return "?";
}

std::int64_t
SpecNode::attrInt(const std::string& key, std::int64_t fallback) const
{
    auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second.asInt();
}

double
SpecNode::attrDouble(const std::string& key, double fallback) const
{
    auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second.asDouble();
}

std::string
SpecNode::attrString(const std::string& key,
                     const std::string& fallback) const
{
    auto it = attributes.find(key);
    return it == attributes.end() ? fallback : it->second.asString();
}

bool
SpecNode::hasAttr(const std::string& key) const
{
    return attributes.count(key) > 0;
}

namespace {

/** Applies a directive list ("temporal_reuse: [Inputs, Outputs]"). */
void
applyDirective(SpecNode& node, const yaml::Node& list,
               TemporalDirective directive)
{
    if (!list.isSequence())
        CIM_FATAL("node '", node.name, "': ", directiveName(directive),
                  " must be a list of tensor names");
    for (const yaml::Node& entry : list.elements()) {
        TensorKind t = workload::tensorFromString(entry.asString());
        TemporalDirective& slot = node.temporal[tensorIndex(t)];
        if (slot != TemporalDirective::Bypass && slot != directive) {
            CIM_FATAL("node '", node.name, "': tensor ",
                      workload::tensorName(t), " listed under both ",
                      directiveName(slot), " and ",
                      directiveName(directive));
        }
        slot = directive;
    }
}

SpecNode
nodeFromYaml(const yaml::Node& y)
{
    SpecNode node;
    if (y.tag() == "Component") {
        node.kind = SpecNode::Kind::Component;
    } else if (y.tag() == "Container") {
        node.kind = SpecNode::Kind::Container;
    } else {
        CIM_FATAL("hierarchy entries must be tagged !Component or "
                  "!Container, got '!", y.tag(), "'");
    }
    if (!y.isMapping())
        CIM_FATAL("hierarchy node body must be a mapping");

    for (const auto& [key, value] : y.items()) {
        if (key == "name") {
            node.name = value.asString();
        } else if (key == "class") {
            node.klass = value.asString();
        } else if (key == "temporal_reuse") {
            applyDirective(node, value, TemporalDirective::TemporalReuse);
        } else if (key == "coalesce") {
            applyDirective(node, value, TemporalDirective::Coalesce);
        } else if (key == "no_coalesce") {
            applyDirective(node, value, TemporalDirective::NoCoalesce);
        } else if (key == "spatial_reuse") {
            if (!value.isSequence())
                CIM_FATAL("node '", node.name,
                          "': spatial_reuse must be a list");
            for (const yaml::Node& entry : value.elements()) {
                TensorKind t =
                    workload::tensorFromString(entry.asString());
                node.spatialReuse[tensorIndex(t)] = true;
            }
        } else if (key == "spatial") {
            if (!value.isMapping())
                CIM_FATAL("node '", node.name,
                          "': spatial must be a mapping of meshX/meshY");
            node.meshX = value.getInt("meshX", 1);
            node.meshY = value.getInt("meshY", 1);
            for (const auto& [mk, mv] : value.items()) {
                (void)mv;
                if (mk != "meshX" && mk != "meshY")
                    CIM_FATAL("node '", node.name,
                              "': unknown spatial key '", mk, "'");
            }
        } else if (key == "spatial_dims") {
            if (!value.isSequence())
                CIM_FATAL("node '", node.name,
                          "': spatial_dims must be a list");
            for (const yaml::Node& entry : value.elements())
                node.spatialDims.push_back(
                    workload::dimFromString(entry.asString()));
        } else if (key == "temporal_dims") {
            if (!value.isSequence())
                CIM_FATAL("node '", node.name,
                          "': temporal_dims must be a list");
            for (const yaml::Node& entry : value.elements())
                node.temporalDims.push_back(
                    workload::dimFromString(entry.asString()));
        } else if (key == "flexible_spatial") {
            node.flexibleSpatial = value.asBool();
        } else if (key == "attributes") {
            if (!value.isMapping())
                CIM_FATAL("node '", node.name,
                          "': attributes must be a mapping");
            for (const auto& [ak, av] : value.items())
                node.attributes[ak] = av;
        } else {
            // Any other key is a free-form attribute.
            node.attributes[key] = value;
        }
    }
    if (node.name.empty())
        CIM_FATAL("hierarchy node is missing a name");
    return node;
}

} // namespace

Hierarchy
Hierarchy::fromYaml(const yaml::Node& doc, const std::string& name)
{
    Hierarchy h;
    h.name = name;
    const yaml::Node* seq = &doc;
    // Accept either a bare tagged-block sequence or a document with an
    // 'architecture:' key holding one.
    if (doc.isMapping() && doc.has("architecture"))
        seq = &doc["architecture"];
    if (!seq->isSequence())
        CIM_FATAL("hierarchy document must be a sequence of !Component / "
                  "!Container nodes");
    for (const yaml::Node& entry : seq->elements())
        h.nodes.push_back(nodeFromYaml(entry));
    h.validate();
    return h;
}

Hierarchy
Hierarchy::fromText(const std::string& text, const std::string& name)
{
    return fromYaml(yaml::parse(text), name);
}

Hierarchy
Hierarchy::fromFile(const std::string& path)
{
    return fromYaml(yaml::parseFile(path), path);
}

const SpecNode&
Hierarchy::node(const std::string& node_name) const
{
    int i = indexOf(node_name);
    if (i < 0)
        CIM_FATAL("hierarchy '", name, "' has no node '", node_name, "'");
    return nodes[i];
}

int
Hierarchy::indexOf(const std::string& node_name) const
{
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].name == node_name)
            return static_cast<int>(i);
    }
    return -1;
}

std::int64_t
Hierarchy::instancesOf(int i) const
{
    CIM_ASSERT(i >= 0 && i < static_cast<int>(nodes.size()),
               "node index out of range: ", i);
    std::int64_t instances = 1;
    for (int j = 0; j < i; ++j)
        instances *= nodes[j].spatialFanout();
    return instances;
}

void
Hierarchy::insertAfter(const std::string& anchor, SpecNode new_node)
{
    int i = indexOf(anchor);
    if (i < 0)
        CIM_FATAL("hierarchy '", name, "' has no node '", anchor,
                  "' to insert after");
    nodes.insert(nodes.begin() + i + 1, std::move(new_node));
    validate();
}

void
Hierarchy::remove(const std::string& node_name)
{
    int i = indexOf(node_name);
    if (i < 0)
        CIM_FATAL("hierarchy '", name, "' has no node '", node_name,
                  "' to remove");
    SpecNode removed = std::move(nodes[i]);
    nodes.erase(nodes.begin() + i);
    try {
        validate();
    } catch (const FatalError&) {
        // Restore so the hierarchy stays usable, then re-report.
        nodes.insert(nodes.begin() + i, std::move(removed));
        CIM_FATAL("removing '", node_name, "' from hierarchy '", name,
                  "' would leave it inconsistent");
    }
}

void
Hierarchy::validate() const
{
    if (nodes.empty())
        CIM_FATAL("hierarchy '", name, "' has no nodes");

    std::set<std::string> names;
    for (const SpecNode& n : nodes) {
        if (!names.insert(n.name).second)
            CIM_FATAL("hierarchy '", name, "': duplicate node name '",
                      n.name, "'");
        if (n.meshX < 1 || n.meshY < 1)
            CIM_FATAL("node '", n.name, "': mesh sizes must be >= 1");
        for (TensorKind t : workload::kAllTensors) {
            if (n.spatialReuse[tensorIndex(t)] && n.spatialFanout() == 1 &&
                n.kind == SpecNode::Kind::Component) {
                // Benign: spatial reuse with a single instance is a no-op.
                continue;
            }
        }
    }

    // Every tensor needs at least one temporal-reuse (storage) node so the
    // nest analysis has a backing store to charge fills against.
    for (TensorKind t : workload::kAllTensors) {
        bool stored = false;
        for (const SpecNode& n : nodes)
            stored = stored || n.stores(t);
        if (!stored)
            CIM_FATAL("hierarchy '", name, "': no node stores ",
                      workload::tensorName(t),
                      " (need temporal_reuse somewhere)");
    }
}

std::string
Hierarchy::toYamlText() const
{
    std::ostringstream oss;
    oss << "# hierarchy '" << name << "' (generated)\n";
    for (const SpecNode& n : nodes) {
        oss << (n.kind == SpecNode::Kind::Container ? "!Container\n"
                                                    : "!Component\n");
        oss << "name: " << n.name << "\n";
        if (!n.klass.empty())
            oss << "class: " << n.klass << "\n";

        auto emitTensorList = [&](const char* key,
                                  TemporalDirective which) {
            std::vector<std::string> listed;
            for (TensorKind t : workload::kAllTensors) {
                if (n.directiveFor(t) == which)
                    listed.push_back(workload::tensorName(t));
            }
            if (listed.empty())
                return;
            oss << key << ": [";
            for (std::size_t i = 0; i < listed.size(); ++i)
                oss << (i ? ", " : "") << listed[i];
            oss << "]\n";
        };
        emitTensorList("temporal_reuse", TemporalDirective::TemporalReuse);
        emitTensorList("coalesce", TemporalDirective::Coalesce);
        emitTensorList("no_coalesce", TemporalDirective::NoCoalesce);

        {
            std::vector<std::string> reused;
            for (TensorKind t : workload::kAllTensors) {
                if (n.spatialReuse[tensorIndex(t)])
                    reused.push_back(workload::tensorName(t));
            }
            if (!reused.empty()) {
                oss << "spatial_reuse: [";
                for (std::size_t i = 0; i < reused.size(); ++i)
                    oss << (i ? ", " : "") << reused[i];
                oss << "]\n";
            }
        }

        if (n.spatialFanout() > 1) {
            oss << "spatial: {meshX: " << n.meshX << ", meshY: " << n.meshY
                << "}\n";
        }
        if (!n.spatialDims.empty()) {
            oss << "spatial_dims: [";
            for (std::size_t i = 0; i < n.spatialDims.size(); ++i)
                oss << (i ? ", " : "") << workload::dimName(
                                              n.spatialDims[i]);
            oss << "]\n";
        }
        if (!n.temporalDims.empty()) {
            oss << "temporal_dims: [";
            for (std::size_t i = 0; i < n.temporalDims.size(); ++i)
                oss << (i ? ", " : "") << workload::dimName(
                                              n.temporalDims[i]);
            oss << "]\n";
        }
        if (n.flexibleSpatial)
            oss << "flexible_spatial: true\n";
        for (const auto& [key, value] : n.attributes)
            oss << key << ": " << value.toString() << "\n";
    }
    return oss.str();
}

std::string
Hierarchy::summary() const
{
    std::ostringstream oss;
    oss << "hierarchy '" << name << "' (" << nodes.size() << " nodes)\n";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const SpecNode& n = nodes[i];
        oss << "  [" << i << "] "
            << (n.kind == SpecNode::Kind::Container ? "container " :
                                                      "component ")
            << n.name;
        if (!n.klass.empty())
            oss << " <" << n.klass << ">";
        if (n.spatialFanout() > 1)
            oss << " x" << n.meshX << "x" << n.meshY;
        for (TensorKind t : workload::kAllTensors) {
            if (n.touches(t)) {
                oss << " " << workload::tensorName(t) << ":"
                    << directiveName(n.directiveFor(t));
            }
            if (n.spatialReuse[tensorIndex(t)])
                oss << " " << workload::tensorName(t) << ":spatial_reuse";
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace cimloop::spec
