/**
 * @file
 * Fluent C++ builder for container-hierarchies. The macro library uses this
 * to construct the paper's Macros A-D programmatically; it produces the
 * same Hierarchy type as the YAML front end.
 */
#ifndef CIMLOOP_SPEC_BUILDER_HH
#define CIMLOOP_SPEC_BUILDER_HH

#include <initializer_list>
#include <string>

#include "cimloop/spec/hierarchy.hh"

namespace cimloop::spec {

/**
 * Builds a Hierarchy node-by-node. Directive calls apply to the most
 * recently added node. Example:
 *
 *   Hierarchy h = HierarchyBuilder("macro")
 *       .component("buffer", "SRAM")
 *           .temporalReuse({TensorKind::Input, TensorKind::Output})
 *           .attr("depth", 1024)
 *       .container("column")
 *           .spatial(8, 1)
 *           .spatialReuse({TensorKind::Input})
 *       .component("memory_cell", "SRAMCell")
 *           .spatial(1, 64)
 *           .temporalReuse({TensorKind::Weight})
 *           .spatialReuse({TensorKind::Output})
 *       .build();
 */
class HierarchyBuilder
{
  public:
    explicit HierarchyBuilder(std::string name);

    /** Starts a new container node. */
    HierarchyBuilder& container(const std::string& name);

    /** Starts a new component node with an optional class. */
    HierarchyBuilder& component(const std::string& name,
                                const std::string& klass = "");

    /** @name Directives for the current node @{ */
    HierarchyBuilder& temporalReuse(std::initializer_list<TensorKind> ts);
    HierarchyBuilder& coalesce(std::initializer_list<TensorKind> ts);
    HierarchyBuilder& noCoalesce(std::initializer_list<TensorKind> ts);
    HierarchyBuilder& spatialReuse(std::initializer_list<TensorKind> ts);
    HierarchyBuilder& spatial(std::int64_t mesh_x, std::int64_t mesh_y = 1);
    HierarchyBuilder& spatialDims(std::initializer_list<workload::Dim> ds);
    HierarchyBuilder& temporalDims(std::initializer_list<workload::Dim> ds);
    HierarchyBuilder& flexibleSpatial(bool flexible = true);
    HierarchyBuilder& attr(const std::string& key, std::int64_t value);
    HierarchyBuilder& attr(const std::string& key, double value);
    HierarchyBuilder& attr(const std::string& key, const std::string& value);
    HierarchyBuilder& attr(const std::string& key, const char* value);
    /** @} */

    /** Validates and returns the hierarchy. */
    Hierarchy build();

  private:
    Hierarchy hierarchy;

    SpecNode& current();
    void setDirective(std::initializer_list<TensorKind> ts,
                      TemporalDirective d);
};

} // namespace cimloop::spec

#endif // CIMLOOP_SPEC_BUILDER_HH
