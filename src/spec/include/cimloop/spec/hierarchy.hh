/**
 * @file
 * CiMLoop's flexible specification: the container-hierarchy (paper Sec.
 * III-B).
 *
 * A specification is an ordered list of nodes. A !Container scopes
 * everything declared after it; a !Component is a leaf that may move,
 * store, or transform data. Per tensor (Inputs / Weights / Outputs), each
 * node declares one reuse directive:
 *
 *  - temporal_reuse: the node stores the tensor across cycles (a buffer,
 *    a memory cell holding weights, an accumulator register).
 *  - coalesce: no temporal storage, but multiple child-side accesses of the
 *    same datum merge into one parent-side access (an adder summing partial
 *    outputs into one value).
 *  - no_coalesce: no temporal storage and no merging; every datum streamed
 *    through is a fresh action (a DAC or ADC convert).
 *  - (absent): the tensor *bypasses* the node entirely.
 *
 * Containers (and components with a spatial mesh) additionally declare
 * spatial_reuse per tensor: listed tensors are multicast (inputs/weights)
 * or reduced (outputs) across the mesh; unlisted tensors are unicast.
 */
#ifndef CIMLOOP_SPEC_HIERARCHY_HH
#define CIMLOOP_SPEC_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cimloop/workload/layer.hh"
#include "cimloop/yaml/node.hh"

namespace cimloop::spec {

using workload::TensorKind;

/** Per-tensor temporal behaviour of a node. */
enum class TemporalDirective {
    Bypass,          //!< tensor does not touch this node
    TemporalReuse,   //!< stores the tensor between cycles
    Coalesce,        //!< pass-through; merges same-datum accesses
    NoCoalesce,      //!< pass-through; every datum is a fresh action
};

/** Name of a temporal directive (for messages). */
const char* directiveName(TemporalDirective d);

/** Convenience array indexed by TensorKind. */
template <typename T>
using PerTensor = std::array<T, workload::kNumTensors>;

/** Index into a PerTensor array. */
constexpr int
tensorIndex(TensorKind t)
{
    return static_cast<int>(t);
}

/** One node of the container-hierarchy. */
struct SpecNode
{
    enum class Kind { Component, Container };

    Kind kind = Kind::Component;
    std::string name;
    std::string klass;  //!< component class ("SRAM", "ADC", ...); optional

    /** Per-tensor temporal behaviour. */
    PerTensor<TemporalDirective> temporal = {
        TemporalDirective::Bypass, TemporalDirective::Bypass,
        TemporalDirective::Bypass};

    /** Per-tensor spatial reuse across this node's mesh. */
    PerTensor<bool> spatialReuse = {false, false, false};

    /** Spatial instances in X / Y. */
    std::int64_t meshX = 1;
    std::int64_t meshY = 1;

    /**
     * Mapping constraint: dimensions that may be mapped spatially across
     * this node's mesh. Empty means unconstrained. Published macros use
     * this to express restrictions like "adjacent columns hold different
     * bits of the same weight" (spatial_dims: [WB], Fig. 3).
     */
    std::vector<workload::Dim> spatialDims;

    /**
     * Mapping constraint: dimensions whose temporal loops may live at
     * this node. Empty means unconstrained. The paper's full syntax
     * attaches "optional constraints/heuristics for the mapping search"
     * to components; this is the temporal half of that.
     */
    std::vector<workload::Dim> temporalDims;

    /**
     * When true, the node's interconnect can multicast/reduce
     * opportunistically (a NoC) without the hard wire-sharing constraint
     * that spatial_reuse implies for macro-internal wires.
     */
    bool flexibleSpatial = false;

    /** Free-form attributes (resolution, width, technology, ...). */
    std::map<std::string, yaml::Node> attributes;

    /** Total spatial instances contributed by this node. */
    std::int64_t spatialFanout() const { return meshX * meshY; }

    /** Directive for one tensor. */
    TemporalDirective
    directiveFor(TensorKind t) const
    {
        return temporal[tensorIndex(t)];
    }

    /** True when the tensor does not bypass this node. */
    bool
    touches(TensorKind t) const
    {
        return directiveFor(t) != TemporalDirective::Bypass;
    }

    /** True when the node stores the tensor across cycles. */
    bool
    stores(TensorKind t) const
    {
        return directiveFor(t) == TemporalDirective::TemporalReuse;
    }

    /** Attribute accessors with defaults. */
    std::int64_t attrInt(const std::string& key, std::int64_t fallback) const;
    double attrDouble(const std::string& key, double fallback) const;
    std::string attrString(const std::string& key,
                           const std::string& fallback) const;
    bool hasAttr(const std::string& key) const;
};

/**
 * An ordered container-hierarchy, outermost node first. Node i scopes all
 * nodes j > i (the paper's "each container contains all subsequent
 * components/containers").
 */
struct Hierarchy
{
    std::string name;
    std::vector<SpecNode> nodes;

    /** Parses a hierarchy from a YAML document (Fig. 5b style). */
    static Hierarchy fromYaml(const yaml::Node& doc,
                              const std::string& name = "arch");

    /** Parses a hierarchy from YAML text. */
    static Hierarchy fromText(const std::string& text,
                              const std::string& name = "arch");

    /** Parses a hierarchy from a YAML file. */
    static Hierarchy fromFile(const std::string& path);

    /** Looks a node up by name; fatal when missing. */
    const SpecNode& node(const std::string& name) const;

    /** Index of a node by name; -1 when missing. */
    int indexOf(const std::string& name) const;

    /**
     * Cumulative spatial instances of node @p i: the product of the
     * fanouts of all nodes 0..i-1 scoping it (its own mesh excluded).
     */
    std::int64_t instancesOf(int i) const;

    /**
     * Inserts @p node immediately after the named anchor node (i.e.
     * inside every container the anchor is inside, scoping everything
     * the anchor scoped). Re-validates. Fatal when the anchor is
     * missing or the result is inconsistent. Supports programmatic
     * design-space mutation (add an accumulator, splice in a buffer).
     */
    void insertAfter(const std::string& anchor, SpecNode node);

    /**
     * Removes the named node. Fatal when missing or when removal leaves
     * a tensor without storage.
     */
    void remove(const std::string& node_name);

    /**
     * Checks structural invariants: unique names, positive meshes, at
     * least one storage node per tensor, directive consistency. Fatal on
     * violation.
     */
    void validate() const;

    /** Renders a human-readable summary table. */
    std::string summary() const;

    /**
     * Serializes the hierarchy back to the Fig. 5b YAML style.
     * Hierarchy::fromText(h.toYamlText()) reconstructs an equivalent
     * hierarchy (round-trip), so generated architectures can be saved
     * and shared as specification files.
     */
    std::string toYamlText() const;
};

} // namespace cimloop::spec

#endif // CIMLOOP_SPEC_HIERARCHY_HH
