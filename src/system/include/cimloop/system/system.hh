/**
 * @file
 * Full CiM systems: DRAM + global buffer + NoC routers + parallel macros
 * (paper Sec. V-B4, Fig. 15, and the Fig. 2 macro-vs-system studies).
 *
 * Three weight/activation placement scenarios from the paper:
 *  - OffChip: inputs, outputs, AND weights fetched from DRAM per layer.
 *  - WeightStationary: weights pre-loaded into the macros; only
 *    inputs/outputs move to/from DRAM (once per layer).
 *  - Fused: weights stationary AND inputs/outputs kept on-chip in the
 *    global buffer between layers (layer-fusion style).
 */
#ifndef CIMLOOP_SYSTEM_SYSTEM_HH
#define CIMLOOP_SYSTEM_SYSTEM_HH

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"

namespace cimloop::system {

/** Where tensors live between layers. */
enum class WeightPolicy { OffChip, WeightStationary, Fused };

/** Name of a policy (for reports). */
const char* policyName(WeightPolicy p);

/** Full-system configuration. */
struct SystemParams
{
    /** Which macro populates the chip ("base", "A".."D", "digital"). */
    std::string macroKind = "D";

    /** Macro parameters (Table III defaults for the kind when unset). */
    macros::MacroParams macro = macros::macroDDefaults();

    /** Parallel macros on the chip. */
    std::int64_t numMacros = 16;

    /**
     * Chips in a multi-chip pipeline (paper Sec. V-B4: storing large
     * DNNs "may require a multi-chip pipeline"). Chips multiply the
     * weight capacity; tensors crossing chip boundaries pay the
     * inter-chip link cost.
     */
    std::int64_t numChips = 1;

    /** Inter-chip link transfer cost (SerDes-class, per bit). */
    double interChipEnergyPerBitPj = 1.5;

    /** Global buffer capacity in KB. */
    std::int64_t globalBufferKb = 65536;

    /** DRAM transfer cost. */
    double dramEnergyPerBitPj = 6.0;

    WeightPolicy policy = WeightPolicy::WeightStationary;
};

/** Builds the full-system Arch. */
engine::Arch buildSystem(const SystemParams& params);

/** Energy grouped the way paper Fig. 15 reports it. */
struct SystemBreakdown
{
    double offChipPj = 0.0;   //!< DRAM accesses
    double globalBufferPj = 0.0;
    double onChipMovePj = 0.0; //!< routers + macro-local buffers
    double macroComputePj = 0.0; //!< DACs, cells, ADCs, digital

    double totalPj() const
    {
        return offChipPj + globalBufferPj + onChipMovePj + macroComputePj;
    }
};

/** Groups a layer evaluation's per-node energies into the Fig. 15 bins. */
SystemBreakdown groupBreakdown(const engine::Arch& arch,
                               const engine::Evaluation& ev);

} // namespace cimloop::system

#endif // CIMLOOP_SYSTEM_SYSTEM_HH
