#include "cimloop/system/system.hh"

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"
#include "cimloop/spec/builder.hh"

namespace cimloop::system {

using spec::HierarchyBuilder;
using workload::TensorKind;

const char*
policyName(WeightPolicy p)
{
    switch (p) {
      case WeightPolicy::OffChip: return "off-chip";
      case WeightPolicy::WeightStationary: return "weight-stationary";
      case WeightPolicy::Fused: return "fused";
    }
    return "?";
}

engine::Arch
buildSystem(const SystemParams& params)
{
    CIM_ASSERT(params.numMacros >= 1, "system needs at least one macro");

    HierarchyBuilder b("system_" + params.macroKind + "_" +
                       policyName(params.policy));

    // DRAM backing store: which tensors it serves depends on the
    // scenario. Under Fused nothing crosses off-chip per layer, so the
    // DRAM node is omitted entirely and on-chip storage backs all
    // tensors.
    switch (params.policy) {
      case WeightPolicy::OffChip:
        b.component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
            .attr("energy_per_bit_pj", params.dramEnergyPerBitPj);
        break;
      case WeightPolicy::WeightStationary:
        b.component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
            .attr("energy_per_bit_pj", params.dramEnergyPerBitPj);
        break;
      case WeightPolicy::Fused:
        break;
    }

    // Multi-chip pipeline: chips partition the model; everything
    // crossing a chip boundary pays the SerDes link.
    if (params.numChips > 1) {
        b.component("interchip_link", "Router")
            .noCoalesce({TensorKind::Input, TensorKind::Weight,
                         TensorKind::Output})
            .attr("energy_per_bit_hop_fj",
                  params.interChipEnergyPerBitPj * 1000.0)
            .attr("hops", 1.0);
        b.container("chips")
            .spatial(params.numChips, 1)
            .flexibleSpatial();
    }

    b.container("chip");

    // Global buffer holds activations on-chip; weights stream past it to
    // the macros (ISAAC-style).
    std::int64_t gb_entries = params.globalBufferKb * 1024 * 8 / 64;
    b.component("global_buffer", "SRAM")
        .temporalReuse({TensorKind::Input, TensorKind::Output})
        .attr("entries", gb_entries)
        .attr("width", std::int64_t{64});

    // NoC: routers move everything between the global buffer and macros.
    b.component("router", "Router")
        .noCoalesce({TensorKind::Input, TensorKind::Weight,
                     TensorKind::Output});

    // Parallel macros; the NoC can multicast/reduce opportunistically.
    b.container("macro_array")
        .spatial(params.numMacros, 1)
        .flexibleSpatial();

    macros::appendMacro(b, params.macro, params.macroKind);

    engine::Arch arch;
    arch.name = "system_" + params.macroKind;
    arch.hierarchy = b.build();
    macros::applyMacroParams(arch, params.macro);
    return arch;
}

SystemBreakdown
groupBreakdown(const engine::Arch& arch, const engine::Evaluation& ev)
{
    CIM_ASSERT(ev.nodeEnergyPj.size() == arch.hierarchy.nodes.size(),
               "evaluation does not match the architecture");
    SystemBreakdown out;
    for (std::size_t i = 0; i < arch.hierarchy.nodes.size(); ++i) {
        const spec::SpecNode& node = arch.hierarchy.nodes[i];
        double e = ev.nodeEnergyPj[i];
        std::string klass = toLower(node.klass);
        if (klass == "dram") {
            out.offChipPj += e;
        } else if (node.name == "global_buffer") {
            out.globalBufferPj += e;
        } else if (klass == "router" ||
                   (klass == "sram" && node.name == "buffer")) {
            out.onChipMovePj += e;
        } else {
            out.macroComputePj += e;
        }
    }
    return out;
}

} // namespace cimloop::system
