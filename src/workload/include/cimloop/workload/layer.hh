/**
 * @file
 * DNN workload model: layers as extended-Einsum tensor operations.
 *
 * Following Timeloop, every layer is expressed over seven canonical
 * dimensions (the CNN-layer form; matrix multiplies set the unused spatial
 * dims to 1):
 *
 *   N  batch
 *   C  input channels (reduction)
 *   K  output channels
 *   P  output rows
 *   Q  output columns
 *   R  filter rows (reduction)
 *   S  filter columns (reduction)
 *
 * plus two *representation* dimensions that expose bit slicing to the
 * mapper (paper Sec. III-C1b: "Computations across multiple slices are
 * exposed to the Timeloop mapper"):
 *
 *   IB input-bit slices (relevant to Inputs; a reduction for Outputs)
 *   WB weight-bit slices (relevant to Weights; a reduction for Outputs)
 *
 * Tensor projections (stride 1):
 *   Weights[k][c][r][s][wb],  Outputs[n][k][p][q],
 *   Inputs[n][c][p + r][q + s][ib]  (halo: H = P + R - 1, W = Q + S - 1).
 *
 * Workload layers default IB = WB = 1; the engine sets them from the
 * architecture's representation choices (DAC resolution, cell bits).
 */
#ifndef CIMLOOP_WORKLOAD_LAYER_HH
#define CIMLOOP_WORKLOAD_LAYER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cimloop::workload {

/** The seven Einsum dimensions plus the two bit-slice dimensions. */
enum class Dim { N, C, K, P, Q, R, S, IB, WB };

/** Number of Einsum dimensions. */
constexpr int kNumDims = 9;

/** All dimensions, for iteration. */
constexpr std::array<Dim, kNumDims> kAllDims = {
    Dim::N, Dim::C, Dim::K, Dim::P, Dim::Q, Dim::R, Dim::S, Dim::IB,
    Dim::WB};

/** Single-letter name of a dimension. */
const char* dimName(Dim d);

/** Parses a dimension name ("N", "C", ..., "IB", "WB"); fatal if unknown. */
Dim dimFromString(const std::string& name);

/** Index of a dimension in a DimSizes array. */
constexpr int
dimIndex(Dim d)
{
    return static_cast<int>(d);
}

/** Per-dimension extents (sizes, tile extents, loop factors, ...). */
using DimSizes = std::array<std::int64_t, kNumDims>;

/** DimSizes filled with ones. */
constexpr DimSizes
onesDims()
{
    return {1, 1, 1, 1, 1, 1, 1, 1, 1};
}

/** The three operand tensors of a layer. */
enum class TensorKind { Input, Weight, Output };

/** Number of tensors. */
constexpr int kNumTensors = 3;

/** All tensors, for iteration. */
constexpr std::array<TensorKind, kNumTensors> kAllTensors = {
    TensorKind::Input, TensorKind::Weight, TensorKind::Output};

/** Name of a tensor kind ("Inputs", "Weights", "Outputs"). */
const char* tensorName(TensorKind t);

/** Parses a tensor name; accepts singular/plural, any case. */
TensorKind tensorFromString(const std::string& name);

/**
 * True when dimension @p d indexes tensor @p t (coupled dims P/R and Q/S
 * both count as relevant to Inputs).
 */
bool dimRelevantTo(TensorKind t, Dim d);

/** True when @p d is a pure reduction dimension (C, R, or S). */
bool isReductionDim(Dim d);

/** One DNN layer: a shaped Einsum plus operand precisions. */
struct Layer
{
    std::string name;       //!< human-readable layer name
    std::string network;    //!< owning network name (seeds operand PMFs)
    int index = 0;          //!< position within the network
    int networkLayers = 1;  //!< total layers in the owning network
    std::int64_t count = 1; //!< repetitions (e.g. identical decoder blocks)

    DimSizes dims = onesDims();

    int inputBits = 8;
    int weightBits = 8;
    int outputBits = 8;

    /** Size of one dimension. */
    std::int64_t size(Dim d) const { return dims[dimIndex(d)]; }

    /** Total MACs in one instance of the layer. */
    std::int64_t macs() const;

    /** Full element count of one tensor. */
    std::int64_t tensorSize(TensorKind t) const;

    /**
     * Element count of a tensor tile whose per-dimension extents are
     * @p ext (Inputs use the halo formula).
     */
    static std::int64_t tensorTile(TensorKind t, const DimSizes& ext);

    /** "N1 C64 K128 P28 Q28 R3 S3" style shape string. */
    std::string shapeString() const;
};

/** A named sequence of layers. */
struct Network
{
    std::string name;
    std::vector<Layer> layers;

    /** Total MACs across all layers (respecting per-layer counts). */
    std::int64_t totalMacs() const;
};

/**
 * Builds a convolution layer. @p p and @p q are *output* spatial sizes.
 */
Layer convLayer(const std::string& name, std::int64_t n, std::int64_t c,
                std::int64_t k, std::int64_t p, std::int64_t q,
                std::int64_t r, std::int64_t s);

/**
 * Builds a matrix multiply Out[m][n_out] = sum_k In[m][k] * W[k][n_out]
 * mapped onto the conv form (M -> P, reduction K -> C, N_out -> K).
 */
Layer matmulLayer(const std::string& name, std::int64_t m,
                  std::int64_t k_reduction, std::int64_t n_out);

} // namespace cimloop::workload

// Forward declaration to avoid pulling the YAML headers in here.
namespace cimloop::yaml {
class Node;
} // namespace cimloop::yaml

namespace cimloop::workload {

/**
 * Parses one layer from a YAML mapping, e.g.
 *
 *   name: conv3_1a
 *   dims: {C: 64, K: 128, P: 28, Q: 28, R: 3, S: 3}
 *   input_bits: 8      # optional, default 8
 *   weight_bits: 8     # optional
 *   count: 1           # optional repetitions
 *
 * Unlisted dims default to 1. Fatal on unknown keys or dims; error
 * messages cite @p path (e.g. "workload.layers[3]") so the offending
 * spot in a multi-layer file is findable.
 */
Layer layerFromYaml(const yaml::Node& node,
                    const std::string& path = "workload layer");

/**
 * Parses a network from a YAML document:
 *
 *   name: mynet
 *   layers:
 *     - {name: l0, dims: {C: 64, K: 64, P: 56, Q: 56, R: 3, S: 3}}
 *     - {name: fc, dims: {C: 512, K: 1000, P: 1}}
 */
Network networkFromYaml(const yaml::Node& doc);

/** Loads a network from a YAML file. */
Network networkFromFile(const std::string& path);

} // namespace cimloop::workload

#endif // CIMLOOP_WORKLOAD_LAYER_HH
