/**
 * @file
 * Bundled DNN workloads used by the paper's evaluation:
 *
 *  - ResNet18 (medium tensors; Figs. 2, 4, 6, 12, 14, 15; Table II)
 *  - ViT-Base (large tensors; Fig. 14)
 *  - MobileNetV3-Large excerpt (small tensors; Fig. 14)
 *  - GPT-2 small (large language tensors; Fig. 15)
 *  - a maximum-utilization matrix-vector multiply sized to a CiM array
 *    (Figs. 12-14, 16)
 */
#ifndef CIMLOOP_WORKLOAD_NETWORKS_HH
#define CIMLOOP_WORKLOAD_NETWORKS_HH

#include "cimloop/workload/layer.hh"

namespace cimloop::workload {

/** ResNet18 at 224x224 (all 20 convolutions + final FC). */
Network resnet18(std::int64_t batch = 1);

/** ViT-Base/16 at 224x224: one encoder block's matmuls, count = 12. */
Network vitBase();

/** MobileNetV3-Large excerpt: representative small pointwise/depthwise
 *  stages (depthwise modeled as C = 1 grouped convs, see DESIGN.md). */
Network mobileNetV3();

/** GPT-2 small (124M), one decoder block's matmuls with count = 12 plus
 *  the LM head, at sequence length @p seq. */
Network gpt2Small(std::int64_t seq = 1024);

/** A single matrix-vector multiply exactly filling a rows x cols array. */
Network maxUtilMvm(std::int64_t rows, std::int64_t cols,
                   std::int64_t vectors = 1024);

/** AlexNet at 224x224 (5 convolutions + 3 FC layers). */
Network alexNet(std::int64_t batch = 1);

/** VGG-16 at 224x224 (13 convolutions + 3 FC layers). */
Network vgg16(std::int64_t batch = 1);

/** BERT-Base encoder: one block's matmuls with count = 12, at sequence
 *  length @p seq. */
Network bertBase(std::int64_t seq = 384);

/** Looks a bundled network up by name ("resnet18", "vit", "mobilenetv3",
 *  "gpt2", ...); fatal when unknown. */
Network networkByName(const std::string& name);

} // namespace cimloop::workload

#endif // CIMLOOP_WORKLOAD_NETWORKS_HH
