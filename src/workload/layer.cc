#include "cimloop/workload/layer.hh"

#include <sstream>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::workload {

const char*
dimName(Dim d)
{
    switch (d) {
      case Dim::N: return "N";
      case Dim::C: return "C";
      case Dim::K: return "K";
      case Dim::P: return "P";
      case Dim::Q: return "Q";
      case Dim::R: return "R";
      case Dim::S: return "S";
      case Dim::IB: return "IB";
      case Dim::WB: return "WB";
    }
    return "?";
}

Dim
dimFromString(const std::string& name)
{
    std::string n = toLower(name);
    if (n == "n")
        return Dim::N;
    if (n == "c")
        return Dim::C;
    if (n == "k")
        return Dim::K;
    if (n == "p")
        return Dim::P;
    if (n == "q")
        return Dim::Q;
    if (n == "r")
        return Dim::R;
    if (n == "s")
        return Dim::S;
    if (n == "ib")
        return Dim::IB;
    if (n == "wb")
        return Dim::WB;
    CIM_FATAL("unknown dimension name '", name, "'");
}

const char*
tensorName(TensorKind t)
{
    switch (t) {
      case TensorKind::Input: return "Inputs";
      case TensorKind::Weight: return "Weights";
      case TensorKind::Output: return "Outputs";
    }
    return "?";
}

TensorKind
tensorFromString(const std::string& name)
{
    std::string n = toLower(name);
    if (n == "input" || n == "inputs")
        return TensorKind::Input;
    if (n == "weight" || n == "weights")
        return TensorKind::Weight;
    if (n == "output" || n == "outputs")
        return TensorKind::Output;
    CIM_FATAL("unknown tensor name '", name, "'");
}

bool
dimRelevantTo(TensorKind t, Dim d)
{
    switch (t) {
      case TensorKind::Input:
        return d == Dim::N || d == Dim::C || d == Dim::P || d == Dim::Q ||
               d == Dim::R || d == Dim::S || d == Dim::IB;
      case TensorKind::Weight:
        return d == Dim::C || d == Dim::K || d == Dim::R || d == Dim::S ||
               d == Dim::WB;
      case TensorKind::Output:
        return d == Dim::N || d == Dim::K || d == Dim::P || d == Dim::Q;
    }
    return false;
}

bool
isReductionDim(Dim d)
{
    return d == Dim::C || d == Dim::R || d == Dim::S || d == Dim::IB ||
           d == Dim::WB;
}

std::int64_t
Layer::macs() const
{
    std::int64_t total = 1;
    for (std::int64_t s : dims)
        total *= s;
    return total;
}

std::int64_t
Layer::tensorSize(TensorKind t) const
{
    return tensorTile(t, dims);
}

std::int64_t
Layer::tensorTile(TensorKind t, const DimSizes& ext)
{
    auto at = [&ext](Dim d) { return ext[dimIndex(d)]; };
    switch (t) {
      case TensorKind::Input:
        // Measured in slices: one element spans IB input-bit slices.
        return at(Dim::N) * at(Dim::C) * (at(Dim::P) + at(Dim::R) - 1) *
               (at(Dim::Q) + at(Dim::S) - 1) * at(Dim::IB);
      case TensorKind::Weight:
        // Measured in slices: one element spans WB weight-bit slices.
        return at(Dim::C) * at(Dim::K) * at(Dim::R) * at(Dim::S) *
               at(Dim::WB);
      case TensorKind::Output:
        // Outputs accumulate across IB/WB; footprint is unaffected.
        return at(Dim::N) * at(Dim::K) * at(Dim::P) * at(Dim::Q);
    }
    CIM_PANIC("unreachable tensor kind");
}

std::string
Layer::shapeString() const
{
    std::ostringstream oss;
    for (Dim d : kAllDims)
        oss << dimName(d) << size(d) << " ";
    std::string s = oss.str();
    if (!s.empty())
        s.pop_back();
    return s;
}

std::int64_t
Network::totalMacs() const
{
    std::int64_t total = 0;
    for (const Layer& l : layers)
        total += l.macs() * l.count;
    return total;
}

Layer
convLayer(const std::string& name, std::int64_t n, std::int64_t c,
          std::int64_t k, std::int64_t p, std::int64_t q, std::int64_t r,
          std::int64_t s)
{
    CIM_ASSERT(n >= 1 && c >= 1 && k >= 1 && p >= 1 && q >= 1 && r >= 1 &&
                   s >= 1,
               "layer '", name, "' has a non-positive dimension");
    Layer l;
    l.name = name;
    l.dims[dimIndex(Dim::N)] = n;
    l.dims[dimIndex(Dim::C)] = c;
    l.dims[dimIndex(Dim::K)] = k;
    l.dims[dimIndex(Dim::P)] = p;
    l.dims[dimIndex(Dim::Q)] = q;
    l.dims[dimIndex(Dim::R)] = r;
    l.dims[dimIndex(Dim::S)] = s;
    return l;
}

Layer
matmulLayer(const std::string& name, std::int64_t m,
            std::int64_t k_reduction, std::int64_t n_out)
{
    return convLayer(name, 1, k_reduction, n_out, m, 1, 1, 1);
}

} // namespace cimloop::workload
