#include "cimloop/workload/networks.hh"

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::workload {

namespace {

/** Stamps network name + running index onto layers. */
void
finalize(Network& net)
{
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        net.layers[i].network = net.name;
        net.layers[i].index = static_cast<int>(i);
        net.layers[i].networkLayers = static_cast<int>(net.layers.size());
    }
}

} // namespace

Network
resnet18(std::int64_t batch)
{
    Network net;
    net.name = "resnet18";
    auto conv = [&](const std::string& name, std::int64_t c, std::int64_t k,
                    std::int64_t pq, std::int64_t rs) {
        net.layers.push_back(
            convLayer(name, batch, c, k, pq, pq, rs, rs));
    };

    conv("conv1", 3, 64, 112, 7);

    // Stage 1: 64 channels, 56x56.
    conv("conv2_1a", 64, 64, 56, 3);
    conv("conv2_1b", 64, 64, 56, 3);
    conv("conv2_2a", 64, 64, 56, 3);
    conv("conv2_2b", 64, 64, 56, 3);

    // Stage 2: 128 channels, 28x28 (+1x1 downsample).
    conv("conv3_1a", 64, 128, 28, 3);
    conv("conv3_1b", 128, 128, 28, 3);
    conv("conv3_ds", 64, 128, 28, 1);
    conv("conv3_2a", 128, 128, 28, 3);
    conv("conv3_2b", 128, 128, 28, 3);

    // Stage 3: 256 channels, 14x14.
    conv("conv4_1a", 128, 256, 14, 3);
    conv("conv4_1b", 256, 256, 14, 3);
    conv("conv4_ds", 128, 256, 14, 1);
    conv("conv4_2a", 256, 256, 14, 3);
    conv("conv4_2b", 256, 256, 14, 3);

    // Stage 4: 512 channels, 7x7.
    conv("conv5_1a", 256, 512, 7, 3);
    conv("conv5_1b", 512, 512, 7, 3);
    conv("conv5_ds", 256, 512, 7, 1);
    conv("conv5_2a", 512, 512, 7, 3);
    conv("conv5_2b", 512, 512, 7, 3);

    // Classifier.
    net.layers.push_back(matmulLayer("fc", batch, 512, 1000));

    finalize(net);
    return net;
}

Network
vitBase()
{
    Network net;
    net.name = "vit";
    const std::int64_t tokens = 197; // 14x14 patches + class token
    const std::int64_t d = 768;

    // Patch embedding: each 16x16x3 patch projects to d.
    net.layers.push_back(matmulLayer("patch_embed", 196, 16 * 16 * 3, d));

    // One encoder block, repeated 12x.
    Layer qkv = matmulLayer("blk_qkv", tokens, d, 3 * d);
    qkv.count = 12;
    net.layers.push_back(qkv);

    // Attention scores and weighted values: 12 heads of 64 dims folded in.
    Layer scores = matmulLayer("blk_scores", tokens * 12, 64, tokens);
    scores.count = 12;
    net.layers.push_back(scores);

    Layer attend = matmulLayer("blk_attend", tokens * 12, tokens, 64);
    attend.count = 12;
    net.layers.push_back(attend);

    Layer proj = matmulLayer("blk_proj", tokens, d, d);
    proj.count = 12;
    net.layers.push_back(proj);

    Layer mlp1 = matmulLayer("blk_mlp1", tokens, d, 4 * d);
    mlp1.count = 12;
    net.layers.push_back(mlp1);

    Layer mlp2 = matmulLayer("blk_mlp2", tokens, 4 * d, d);
    mlp2.count = 12;
    net.layers.push_back(mlp2);

    // Classification head.
    net.layers.push_back(matmulLayer("head", 1, d, 1000));

    finalize(net);
    return net;
}

Network
mobileNetV3()
{
    Network net;
    net.name = "mobilenetv3";
    auto pw = [&](const std::string& name, std::int64_t c, std::int64_t k,
                  std::int64_t pq) {
        net.layers.push_back(convLayer(name, 1, c, k, pq, pq, 1, 1));
    };
    // Depthwise convs have no cross-channel reduction; on a weight-
    // stationary CiM array each filter occupies only R*S rows, which is the
    // underutilization behaviour Fig. 14's small-tensor workload probes.
    auto dw = [&](const std::string& name, std::int64_t k, std::int64_t pq,
                  std::int64_t rs) {
        net.layers.push_back(convLayer(name, 1, 1, k, pq, pq, rs, rs));
    };

    net.layers.push_back(convLayer("conv_stem", 1, 3, 16, 112, 112, 3, 3));
    dw("dw1", 16, 112, 3);
    pw("pw1", 16, 16, 112);
    pw("pw2_exp", 16, 64, 56);
    dw("dw2", 64, 56, 3);
    pw("pw2_prj", 64, 24, 56);
    pw("pw3_exp", 24, 72, 28);
    dw("dw3", 72, 28, 5);
    pw("pw3_prj", 72, 40, 28);
    pw("pw4_exp", 40, 120, 14);
    dw("dw4", 120, 14, 5);
    pw("pw4_prj", 120, 48, 14);
    pw("pw5_exp", 48, 144, 14);
    dw("dw5", 144, 14, 5);
    pw("pw5_prj", 144, 96, 7);
    pw("pw6_exp", 96, 576, 7);
    net.layers.push_back(matmulLayer("fc1", 1, 576, 1024));
    net.layers.push_back(matmulLayer("fc2", 1, 1024, 1000));

    finalize(net);
    return net;
}

Network
gpt2Small(std::int64_t seq)
{
    CIM_ASSERT(seq >= 1, "sequence length must be positive");
    Network net;
    net.name = "gpt2";
    const std::int64_t d = 768;

    Layer qkv = matmulLayer("blk_qkv", seq, d, 3 * d);
    qkv.count = 12;
    net.layers.push_back(qkv);

    Layer scores = matmulLayer("blk_scores", seq * 12, 64, seq);
    scores.count = 12;
    net.layers.push_back(scores);

    Layer attend = matmulLayer("blk_attend", seq * 12, seq, 64);
    attend.count = 12;
    net.layers.push_back(attend);

    Layer proj = matmulLayer("blk_proj", seq, d, d);
    proj.count = 12;
    net.layers.push_back(proj);

    Layer mlp1 = matmulLayer("blk_mlp1", seq, d, 4 * d);
    mlp1.count = 12;
    net.layers.push_back(mlp1);

    Layer mlp2 = matmulLayer("blk_mlp2", seq, 4 * d, d);
    mlp2.count = 12;
    net.layers.push_back(mlp2);

    // LM head over the (tied) vocabulary projection.
    net.layers.push_back(matmulLayer("lm_head", seq, d, 50257));

    finalize(net);
    return net;
}

Network
maxUtilMvm(std::int64_t rows, std::int64_t cols, std::int64_t vectors)
{
    Network net;
    net.name = "mvm";
    net.layers.push_back(matmulLayer("mvm", vectors, rows, cols));
    finalize(net);
    return net;
}

Network
alexNet(std::int64_t batch)
{
    Network net;
    net.name = "alexnet";
    net.layers.push_back(convLayer("conv1", batch, 3, 96, 55, 55, 11, 11));
    net.layers.push_back(convLayer("conv2", batch, 96, 256, 27, 27, 5, 5));
    net.layers.push_back(
        convLayer("conv3", batch, 256, 384, 13, 13, 3, 3));
    net.layers.push_back(
        convLayer("conv4", batch, 384, 384, 13, 13, 3, 3));
    net.layers.push_back(
        convLayer("conv5", batch, 384, 256, 13, 13, 3, 3));
    net.layers.push_back(matmulLayer("fc6", batch, 256 * 6 * 6, 4096));
    net.layers.push_back(matmulLayer("fc7", batch, 4096, 4096));
    net.layers.push_back(matmulLayer("fc8", batch, 4096, 1000));
    finalize(net);
    return net;
}

Network
vgg16(std::int64_t batch)
{
    Network net;
    net.name = "vgg16";
    auto conv = [&](const std::string& name, std::int64_t c,
                    std::int64_t k, std::int64_t pq) {
        net.layers.push_back(convLayer(name, batch, c, k, pq, pq, 3, 3));
    };
    conv("conv1_1", 3, 64, 224);
    conv("conv1_2", 64, 64, 224);
    conv("conv2_1", 64, 128, 112);
    conv("conv2_2", 128, 128, 112);
    conv("conv3_1", 128, 256, 56);
    conv("conv3_2", 256, 256, 56);
    conv("conv3_3", 256, 256, 56);
    conv("conv4_1", 256, 512, 28);
    conv("conv4_2", 512, 512, 28);
    conv("conv4_3", 512, 512, 28);
    conv("conv5_1", 512, 512, 14);
    conv("conv5_2", 512, 512, 14);
    conv("conv5_3", 512, 512, 14);
    net.layers.push_back(matmulLayer("fc6", batch, 512 * 7 * 7, 4096));
    net.layers.push_back(matmulLayer("fc7", batch, 4096, 4096));
    net.layers.push_back(matmulLayer("fc8", batch, 4096, 1000));
    finalize(net);
    return net;
}

Network
bertBase(std::int64_t seq)
{
    CIM_ASSERT(seq >= 1, "sequence length must be positive");
    Network net;
    net.name = "bert";
    const std::int64_t d = 768;

    Layer qkv = matmulLayer("blk_qkv", seq, d, 3 * d);
    qkv.count = 12;
    net.layers.push_back(qkv);

    Layer scores = matmulLayer("blk_scores", seq * 12, 64, seq);
    scores.count = 12;
    net.layers.push_back(scores);

    Layer attend = matmulLayer("blk_attend", seq * 12, seq, 64);
    attend.count = 12;
    net.layers.push_back(attend);

    Layer proj = matmulLayer("blk_proj", seq, d, d);
    proj.count = 12;
    net.layers.push_back(proj);

    Layer mlp1 = matmulLayer("blk_mlp1", seq, d, 4 * d);
    mlp1.count = 12;
    net.layers.push_back(mlp1);

    Layer mlp2 = matmulLayer("blk_mlp2", seq, 4 * d, d);
    mlp2.count = 12;
    net.layers.push_back(mlp2);

    finalize(net);
    return net;
}

Network
networkByName(const std::string& name)
{
    std::string n = toLower(name);
    if (n == "resnet18" || n == "resnet")
        return resnet18();
    if (n == "vit" || n == "vitbase" || n == "vit-base")
        return vitBase();
    if (n == "mobilenetv3" || n == "mobilenet")
        return mobileNetV3();
    if (n == "gpt2" || n == "gpt-2")
        return gpt2Small();
    if (n == "alexnet")
        return alexNet();
    if (n == "vgg16" || n == "vgg")
        return vgg16();
    if (n == "bert" || n == "bertbase" || n == "bert-base")
        return bertBase();
    if (n == "mvm")
        return maxUtilMvm(256, 256);
    CIM_FATAL("unknown network '", name, "'");
}

} // namespace cimloop::workload
