#include "cimloop/workload/layer.hh"

#include "cimloop/common/error.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::workload {

namespace {

/**
 * Re-raises YAML kind mismatches with the offending key path attached,
 * so "expected int" names the key instead of just the node kind.
 */
std::int64_t
intAt(const yaml::Node& value, const std::string& path)
{
    try {
        return value.asInt();
    } catch (const FatalError& e) {
        CIM_FATAL(path, ": ", e.what());
    }
}

std::string
stringAt(const yaml::Node& value, const std::string& path)
{
    try {
        return value.asString();
    } catch (const FatalError& e) {
        CIM_FATAL(path, ": ", e.what());
    }
}

} // namespace

Layer
layerFromYaml(const yaml::Node& node, const std::string& path)
{
    if (!node.isMapping())
        CIM_FATAL(path, " must be a YAML mapping (keys: name, dims, "
                  "input_bits, weight_bits, output_bits, count)");
    Layer layer;
    for (const auto& [key, value] : node.items()) {
        if (key == "name") {
            layer.name = stringAt(value, path + ".name");
        } else if (key == "dims") {
            if (!value.isMapping())
                CIM_FATAL(path, ".dims (layer '", layer.name,
                          "') must be a mapping");
            for (const auto& [dk, dv] : value.items()) {
                Dim d = dimFromString(dk);
                std::int64_t extent = intAt(dv, path + ".dims." + dk);
                if (extent < 1)
                    CIM_FATAL(path, ".dims.", dk, " (layer '",
                              layer.name, "') must be >= 1, got ",
                              extent);
                layer.dims[dimIndex(d)] = extent;
            }
        } else if (key == "input_bits") {
            layer.inputBits =
                static_cast<int>(intAt(value, path + ".input_bits"));
        } else if (key == "weight_bits") {
            layer.weightBits =
                static_cast<int>(intAt(value, path + ".weight_bits"));
        } else if (key == "output_bits") {
            layer.outputBits =
                static_cast<int>(intAt(value, path + ".output_bits"));
        } else if (key == "count") {
            layer.count = intAt(value, path + ".count");
            if (layer.count < 1)
                CIM_FATAL(path, ".count (layer '", layer.name,
                          "') must be >= 1, got ", layer.count);
        } else {
            CIM_FATAL(path, ": unknown key '", key, "' (layer '",
                      layer.name, "'; known: name, dims, input_bits, "
                      "weight_bits, output_bits, count)");
        }
    }
    if (layer.name.empty())
        CIM_FATAL(path, " is missing a 'name' key");
    return layer;
}

Network
networkFromYaml(const yaml::Node& doc)
{
    if (!doc.isMapping() || !doc.has("layers"))
        CIM_FATAL("workload document needs a top-level 'layers' list");
    Network net;
    net.name = doc.getString("name", "workload");
    const yaml::Node& layers = doc["layers"];
    if (!layers.isSequence())
        CIM_FATAL("workload.layers must be a sequence of layer "
                  "mappings");
    std::size_t i = 0;
    for (const yaml::Node& entry : layers.elements()) {
        net.layers.push_back(layerFromYaml(
            entry, "workload.layers[" + std::to_string(i) + "]"));
        ++i;
    }
    if (net.layers.empty())
        CIM_FATAL("workload '", net.name,
                  "' has an empty 'layers' list");
    for (std::size_t j = 0; j < net.layers.size(); ++j) {
        net.layers[j].network = net.name;
        net.layers[j].index = static_cast<int>(j);
        net.layers[j].networkLayers = static_cast<int>(net.layers.size());
    }
    return net;
}

Network
networkFromFile(const std::string& path)
{
    return networkFromYaml(yaml::parseFile(path));
}

} // namespace cimloop::workload
