#include "cimloop/workload/layer.hh"

#include "cimloop/common/error.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::workload {

Layer
layerFromYaml(const yaml::Node& node)
{
    if (!node.isMapping())
        CIM_FATAL("workload layer must be a YAML mapping");
    Layer layer;
    for (const auto& [key, value] : node.items()) {
        if (key == "name") {
            layer.name = value.asString();
        } else if (key == "dims") {
            if (!value.isMapping())
                CIM_FATAL("layer '", layer.name,
                          "': dims must be a mapping");
            for (const auto& [dk, dv] : value.items()) {
                Dim d = dimFromString(dk);
                std::int64_t extent = dv.asInt();
                if (extent < 1)
                    CIM_FATAL("layer '", layer.name, "': dimension ", dk,
                              " must be >= 1, got ", extent);
                layer.dims[dimIndex(d)] = extent;
            }
        } else if (key == "input_bits") {
            layer.inputBits = static_cast<int>(value.asInt());
        } else if (key == "weight_bits") {
            layer.weightBits = static_cast<int>(value.asInt());
        } else if (key == "output_bits") {
            layer.outputBits = static_cast<int>(value.asInt());
        } else if (key == "count") {
            layer.count = value.asInt();
            if (layer.count < 1)
                CIM_FATAL("layer '", layer.name, "': count must be >= 1");
        } else {
            CIM_FATAL("layer '", layer.name, "': unknown key '", key, "'");
        }
    }
    if (layer.name.empty())
        CIM_FATAL("workload layer is missing a name");
    return layer;
}

Network
networkFromYaml(const yaml::Node& doc)
{
    if (!doc.isMapping() || !doc.has("layers"))
        CIM_FATAL("workload document needs a 'layers' list");
    Network net;
    net.name = doc.getString("name", "workload");
    const yaml::Node& layers = doc["layers"];
    if (!layers.isSequence())
        CIM_FATAL("workload 'layers' must be a sequence");
    for (const yaml::Node& entry : layers.elements())
        net.layers.push_back(layerFromYaml(entry));
    if (net.layers.empty())
        CIM_FATAL("workload '", net.name, "' has no layers");
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        net.layers[i].network = net.name;
        net.layers[i].index = static_cast<int>(i);
        net.layers[i].networkLayers = static_cast<int>(net.layers.size());
    }
    return net;
}

Network
networkFromFile(const std::string& path)
{
    return networkFromYaml(yaml::parseFile(path));
}

} // namespace cimloop::workload
