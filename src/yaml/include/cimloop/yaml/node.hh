/**
 * @file
 * YAML document tree for CiMLoop specification files.
 *
 * CiMLoop specifications (architecture, workload, components) are YAML
 * documents in the style of Fig. 5b of the paper. This module implements a
 * self-contained subset of YAML sufficient for those files:
 *
 *  - block mappings and sequences nested by indentation,
 *  - flow mappings `{a: 1, b: 2}` and sequences `[x, y]`,
 *  - scalars: null, booleans, integers (dec/hex), floats, quoted and plain
 *    strings,
 *  - `#` comments,
 *  - `!Tag` type tags, including the paper's flat tagged-block style where a
 *    lone `!Component` / `!Container` line introduces a mapping formed by the
 *    following `key: value` lines at the same indentation.
 */
#ifndef CIMLOOP_YAML_NODE_HH
#define CIMLOOP_YAML_NODE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cimloop::yaml {

/** Discriminates the payload held by a Node. */
enum class Kind { Null, Bool, Int, Float, String, Sequence, Mapping };

/** Human-readable name of a Kind (for error messages). */
const char* kindName(Kind k);

/**
 * One node in a parsed YAML document. Nodes are value types; sequences and
 * mappings own their children. Mappings preserve insertion order, which the
 * spec layer relies on (a container scopes everything declared after it).
 */
class Node
{
  public:
    /** Constructs a null node. */
    Node() = default;

    /** @name Typed constructors @{ */
    static Node makeNull();
    static Node makeBool(bool v);
    static Node makeInt(std::int64_t v);
    static Node makeFloat(double v);
    static Node makeString(std::string v);
    static Node makeSequence();
    static Node makeMapping();
    /** @} */

    /** Node kind. */
    Kind kind() const { return kind_; }

    /** Type tag such as "Component"; empty when untagged. */
    const std::string& tag() const { return tag_; }

    /** Sets the type tag (without the leading '!'). */
    void setTag(std::string t) { tag_ = std::move(t); }

    /** @name Kind predicates @{ */
    bool isNull() const { return kind_ == Kind::Null; }
    bool isScalar() const
    {
        return kind_ != Kind::Sequence && kind_ != Kind::Mapping;
    }
    bool isSequence() const { return kind_ == Kind::Sequence; }
    bool isMapping() const { return kind_ == Kind::Mapping; }
    /** @} */

    /** @name Scalar accessors; fatal on kind mismatch @{ */
    bool asBool() const;
    std::int64_t asInt() const;
    /** Accepts both Int and Float payloads. */
    double asDouble() const;
    /** Returns the string payload, or re-renders scalar kinds. */
    std::string asString() const;
    /** @} */

    /** Children count for sequences/mappings; 0 for scalars. */
    std::size_t size() const;

    /** Sequence element access; fatal if out of range or not a sequence. */
    const Node& operator[](std::size_t i) const;

    /** Mapping lookup; fatal if the key is missing or not a mapping. */
    const Node& operator[](const std::string& key) const;

    /** True when this mapping contains @p key. */
    bool has(const std::string& key) const;

    /** Mapping lookup returning nullptr when absent. */
    const Node* find(const std::string& key) const;

    /** Convenience: value of @p key, or @p fallback when absent. */
    std::int64_t getInt(const std::string& key, std::int64_t fallback) const;
    double getDouble(const std::string& key, double fallback) const;
    std::string getString(const std::string& key,
                          const std::string& fallback) const;
    bool getBool(const std::string& key, bool fallback) const;

    /** Appends to a sequence; fatal when not a sequence. */
    void push(Node child);

    /** Inserts/overwrites a mapping entry; fatal when not a mapping. */
    void set(const std::string& key, Node value);

    /** Ordered mapping entries. */
    const std::vector<std::pair<std::string, Node>>& items() const;

    /** Ordered sequence entries. */
    const std::vector<Node>& elements() const;

    /** Renders this node as single-line flow YAML (for debugging/tests). */
    std::string toString() const;

  private:
    Kind kind_ = Kind::Null;
    std::string tag_;

    bool bool_v = false;
    std::int64_t int_v = 0;
    double float_v = 0.0;
    std::string str_v;
    std::vector<Node> seq_v;
    std::vector<std::pair<std::string, Node>> map_v;

    void renderTo(std::string& out) const;
};

} // namespace cimloop::yaml

#endif // CIMLOOP_YAML_NODE_HH
