/**
 * @file
 * Parser entry points for the CiMLoop YAML subset (see node.hh).
 */
#ifndef CIMLOOP_YAML_PARSER_HH
#define CIMLOOP_YAML_PARSER_HH

#include <string>

#include "cimloop/yaml/node.hh"

namespace cimloop::yaml {

/** Parses a YAML document from text; fatals on malformed input. */
Node parse(const std::string& text);

/** Parses a YAML document from a file; fatals if unreadable/malformed. */
Node parseFile(const std::string& path);

/** Parses a single scalar or flow expression ("{a: 1}", "[1, 2]", "3.5"). */
Node parseScalar(const std::string& text);

} // namespace cimloop::yaml

#endif // CIMLOOP_YAML_PARSER_HH
