#include "cimloop/yaml/node.hh"

#include <sstream>

#include "cimloop/common/error.hh"

namespace cimloop::yaml {

const char*
kindName(Kind k)
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Int: return "int";
      case Kind::Float: return "float";
      case Kind::String: return "string";
      case Kind::Sequence: return "sequence";
      case Kind::Mapping: return "mapping";
    }
    return "?";
}

Node
Node::makeNull()
{
    return Node{};
}

Node
Node::makeBool(bool v)
{
    Node n;
    n.kind_ = Kind::Bool;
    n.bool_v = v;
    return n;
}

Node
Node::makeInt(std::int64_t v)
{
    Node n;
    n.kind_ = Kind::Int;
    n.int_v = v;
    return n;
}

Node
Node::makeFloat(double v)
{
    Node n;
    n.kind_ = Kind::Float;
    n.float_v = v;
    return n;
}

Node
Node::makeString(std::string v)
{
    Node n;
    n.kind_ = Kind::String;
    n.str_v = std::move(v);
    return n;
}

Node
Node::makeSequence()
{
    Node n;
    n.kind_ = Kind::Sequence;
    return n;
}

Node
Node::makeMapping()
{
    Node n;
    n.kind_ = Kind::Mapping;
    return n;
}

bool
Node::asBool() const
{
    if (kind_ != Kind::Bool)
        CIM_FATAL("YAML node is ", kindName(kind_), ", expected bool");
    return bool_v;
}

std::int64_t
Node::asInt() const
{
    if (kind_ == Kind::Int)
        return int_v;
    if (kind_ == Kind::Bool)
        return bool_v ? 1 : 0;
    CIM_FATAL("YAML node is ", kindName(kind_), ", expected int");
}

double
Node::asDouble() const
{
    if (kind_ == Kind::Float)
        return float_v;
    if (kind_ == Kind::Int)
        return static_cast<double>(int_v);
    CIM_FATAL("YAML node is ", kindName(kind_), ", expected number");
}

std::string
Node::asString() const
{
    switch (kind_) {
      case Kind::String:
        return str_v;
      case Kind::Null:
        return "";
      case Kind::Bool:
        return bool_v ? "true" : "false";
      case Kind::Int: {
        std::ostringstream oss;
        oss << int_v;
        return oss.str();
      }
      case Kind::Float: {
        std::ostringstream oss;
        oss << float_v;
        return oss.str();
      }
      default:
        CIM_FATAL("YAML node is ", kindName(kind_), ", expected scalar");
    }
}

std::size_t
Node::size() const
{
    if (kind_ == Kind::Sequence)
        return seq_v.size();
    if (kind_ == Kind::Mapping)
        return map_v.size();
    return 0;
}

const Node&
Node::operator[](std::size_t i) const
{
    if (kind_ != Kind::Sequence)
        CIM_FATAL("YAML node is ", kindName(kind_), ", expected sequence");
    if (i >= seq_v.size())
        CIM_FATAL("YAML sequence index ", i, " out of range (size ",
                  seq_v.size(), ")");
    return seq_v[i];
}

const Node&
Node::operator[](const std::string& key) const
{
    const Node* n = find(key);
    if (!n)
        CIM_FATAL("YAML mapping has no key '", key, "'");
    return *n;
}

bool
Node::has(const std::string& key) const
{
    return find(key) != nullptr;
}

const Node*
Node::find(const std::string& key) const
{
    if (kind_ != Kind::Mapping)
        return nullptr;
    for (const auto& [k, v] : map_v) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::int64_t
Node::getInt(const std::string& key, std::int64_t fallback) const
{
    const Node* n = find(key);
    return n ? n->asInt() : fallback;
}

double
Node::getDouble(const std::string& key, double fallback) const
{
    const Node* n = find(key);
    return n ? n->asDouble() : fallback;
}

std::string
Node::getString(const std::string& key, const std::string& fallback) const
{
    const Node* n = find(key);
    return n ? n->asString() : fallback;
}

bool
Node::getBool(const std::string& key, bool fallback) const
{
    const Node* n = find(key);
    return n ? n->asBool() : fallback;
}

void
Node::push(Node child)
{
    if (kind_ != Kind::Sequence)
        CIM_FATAL("push on ", kindName(kind_), " YAML node");
    seq_v.push_back(std::move(child));
}

void
Node::set(const std::string& key, Node value)
{
    if (kind_ != Kind::Mapping)
        CIM_FATAL("set on ", kindName(kind_), " YAML node");
    for (auto& [k, v] : map_v) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    map_v.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, Node>>&
Node::items() const
{
    if (kind_ != Kind::Mapping)
        CIM_FATAL("items() on ", kindName(kind_), " YAML node");
    return map_v;
}

const std::vector<Node>&
Node::elements() const
{
    if (kind_ != Kind::Sequence)
        CIM_FATAL("elements() on ", kindName(kind_), " YAML node");
    return seq_v;
}

std::string
Node::toString() const
{
    std::string out;
    renderTo(out);
    return out;
}

void
Node::renderTo(std::string& out) const
{
    if (!tag_.empty()) {
        out += "!";
        out += tag_;
        out += " ";
    }
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
      case Kind::Int:
      case Kind::Float:
        out += asString();
        break;
      case Kind::String:
        out += "\"" + str_v + "\"";
        break;
      case Kind::Sequence: {
        out += "[";
        for (std::size_t i = 0; i < seq_v.size(); ++i) {
            if (i)
                out += ", ";
            seq_v[i].renderTo(out);
        }
        out += "]";
        break;
      }
      case Kind::Mapping: {
        out += "{";
        for (std::size_t i = 0; i < map_v.size(); ++i) {
            if (i)
                out += ", ";
            out += map_v[i].first + ": ";
            map_v[i].second.renderTo(out);
        }
        out += "}";
        break;
      }
    }
}

} // namespace cimloop::yaml
