#include "cimloop/yaml/parser.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::yaml {

namespace {

/** One significant source line (blank lines and pure comments removed). */
struct Line
{
    int indent = 0;
    std::string text;   //!< content with indentation and comments stripped
    int number = 0;     //!< 1-based source line for error messages
};

/** Strips a trailing '# comment', respecting quotes. Returns the prefix. */
std::string
stripComment(const std::string& s)
{
    char quote = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (quote) {
            if (c == quote)
                quote = 0;
        } else if (c == '"' || c == '\'') {
            quote = c;
        } else if (c == '#' &&
                   (i == 0 ||
                    std::isspace(static_cast<unsigned char>(s[i - 1])))) {
            return s.substr(0, i);
        }
    }
    return s;
}

std::vector<Line>
splitLines(const std::string& text)
{
    std::vector<Line> out;
    int number = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        ++number;
        std::string raw = text.substr(start, end - start);
        start = end + 1;
        if (!raw.empty() && raw.back() == '\r')
            raw.pop_back();
        std::string content = stripComment(raw);
        int indent = 0;
        while (indent < static_cast<int>(content.size()) &&
               content[indent] == ' ') {
            ++indent;
        }
        std::string body = trim(content);
        if (body.empty() || body == "---")
            continue;
        if (content.find('\t') != std::string::npos)
            CIM_FATAL("YAML line ", number, ": tabs are not allowed");
        out.push_back(Line{indent, body, number});
        if (end == text.size())
            break;
    }
    return out;
}

/** Scalar/flow parser over a single string. */
class FlowParser
{
  public:
    FlowParser(const std::string& s, int line) : src(s), line_no(line) {}

    Node
    parseAll()
    {
        Node n = parseValue();
        skipWs();
        if (pos != src.size())
            fail("trailing characters after value");
        return n;
    }

  private:
    const std::string& src;
    std::size_t pos = 0;
    int line_no;

    [[noreturn]] void
    fail(const std::string& msg)
    {
        CIM_FATAL("YAML line ", line_no, ": ", msg, " in '", src, "'");
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        return pos < src.size() ? src[pos] : '\0';
    }

    Node
    parseValue()
    {
        skipWs();
        std::string tag;
        if (peek() == '!') {
            ++pos;
            while (pos < src.size() &&
                   !std::isspace(static_cast<unsigned char>(src[pos]))) {
                tag += src[pos++];
            }
            skipWs();
            if (pos == src.size()) {
                Node n = Node::makeMapping();
                n.setTag(tag);
                return n;
            }
        }
        Node n;
        switch (peek()) {
          case '{':
            n = parseFlowMapping();
            break;
          case '[':
            n = parseFlowSequence();
            break;
          case '"':
          case '\'':
            n = Node::makeString(parseQuoted());
            break;
          default:
            n = parsePlain();
            break;
        }
        if (!tag.empty())
            n.setTag(tag);
        return n;
    }

    Node
    parseFlowMapping()
    {
        ++pos; // consume '{'
        Node n = Node::makeMapping();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return n;
        }
        while (true) {
            skipWs();
            std::string key;
            if (peek() == '"' || peek() == '\'') {
                key = parseQuoted();
            } else {
                while (pos < src.size() && src[pos] != ':')
                    key += src[pos++];
                key = trim(key);
            }
            skipWs();
            if (peek() != ':')
                fail("expected ':' in flow mapping");
            ++pos;
            n.set(key, parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return n;
            }
            fail("expected ',' or '}' in flow mapping");
        }
    }

    Node
    parseFlowSequence()
    {
        ++pos; // consume '['
        Node n = Node::makeSequence();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return n;
        }
        while (true) {
            n.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                skipWs();
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return n;
            }
            fail("expected ',' or ']' in flow sequence");
        }
    }

    std::string
    parseQuoted()
    {
        char quote = src[pos++];
        std::string out;
        while (pos < src.size() && src[pos] != quote) {
            if (quote == '"' && src[pos] == '\\' && pos + 1 < src.size()) {
                ++pos;
                switch (src[pos]) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default: out += src[pos]; break;
                }
                ++pos;
            } else {
                out += src[pos++];
            }
        }
        if (pos == src.size())
            fail("unterminated quoted string");
        ++pos; // closing quote
        return out;
    }

    Node
    parsePlain()
    {
        std::string token;
        while (pos < src.size() && src[pos] != ',' && src[pos] != '}' &&
               src[pos] != ']') {
            token += src[pos++];
        }
        return scalarFromToken(trim(token));
    }

  public:
    /** Interprets a plain token as null/bool/int/float/string. */
    static Node
    scalarFromToken(const std::string& token)
    {
        if (token.empty() || token == "~" || token == "null" ||
            token == "Null" || token == "NULL") {
            return Node::makeNull();
        }
        if (token == "true" || token == "True" || token == "TRUE")
            return Node::makeBool(true);
        if (token == "false" || token == "False" || token == "FALSE")
            return Node::makeBool(false);

        // Integer?
        {
            const char* begin = token.c_str();
            char* end = nullptr;
            errno = 0;
            long long v = std::strtoll(begin, &end, 0);
            if (errno == 0 && end && *end == '\0' &&
                end != begin) {
                return Node::makeInt(v);
            }
        }
        // Float?
        {
            const char* begin = token.c_str();
            char* end = nullptr;
            errno = 0;
            double v = std::strtod(begin, &end);
            if (errno == 0 && end && *end == '\0' && end != begin)
                return Node::makeFloat(v);
        }
        return Node::makeString(token);
    }
};

/** Block-structure parser over significant lines. */
class BlockParser
{
  public:
    explicit BlockParser(std::vector<Line> ls) : lines(std::move(ls)) {}

    Node
    parseDocument()
    {
        if (lines.empty())
            return Node::makeNull();
        Node n = parseBlock(lines[0].indent);
        if (pos != lines.size()) {
            CIM_FATAL("YAML line ", lines[pos].number,
                      ": unexpected content after document");
        }
        return n;
    }

  private:
    std::vector<Line> lines;
    std::size_t pos = 0;

    bool
    done() const
    {
        return pos >= lines.size();
    }

    const Line&
    cur() const
    {
        return lines[pos];
    }

    /** True when @p text is just a '!Tag' with nothing after it. */
    static bool
    isLoneTag(const std::string& text)
    {
        if (text.empty() || text[0] != '!')
            return false;
        for (char c : text) {
            if (std::isspace(static_cast<unsigned char>(c)))
                return false;
        }
        return true;
    }

    /**
     * Finds a top-level "key:" split. Returns npos when the line is not a
     * mapping entry. The colon must be outside quotes/brackets and followed
     * by a space or end of line.
     */
    static std::size_t
    findKeySplit(const std::string& s)
    {
        char quote = 0;
        int depth = 0;
        for (std::size_t i = 0; i < s.size(); ++i) {
            char c = s[i];
            if (quote) {
                if (c == quote)
                    quote = 0;
                continue;
            }
            if (c == '"' || c == '\'') {
                quote = c;
            } else if (c == '{' || c == '[') {
                ++depth;
            } else if (c == '}' || c == ']') {
                --depth;
            } else if (c == ':' && depth == 0) {
                if (i + 1 == s.size() || s[i + 1] == ' ')
                    return i;
            }
        }
        return std::string::npos;
    }

    Node
    parseBlock(int indent)
    {
        CIM_ASSERT(!done(), "parseBlock past end of input");
        const Line& first = cur();
        if (first.text[0] == '-' &&
            (first.text.size() == 1 || first.text[1] == ' ')) {
            return parseBlockSequence(indent);
        }
        if (isLoneTag(first.text))
            return parseTaggedBlocks(indent);
        if (findKeySplit(first.text) != std::string::npos)
            return parseBlockMapping(indent);
        // Single scalar / flow line.
        Node n = FlowParser(first.text, first.number).parseAll();
        ++pos;
        return n;
    }

    Node
    parseBlockSequence(int indent)
    {
        Node seq = Node::makeSequence();
        while (!done() && cur().indent == indent && cur().text[0] == '-' &&
               (cur().text.size() == 1 || cur().text[1] == ' ')) {
            Line item = cur();
            std::string rest = trim(item.text.substr(1));
            if (rest.empty()) {
                ++pos;
                if (!done() && cur().indent > indent) {
                    seq.push(parseBlock(cur().indent));
                } else {
                    seq.push(Node::makeNull());
                }
            } else {
                // Re-interpret the remainder as a line indented past the
                // dash (classic trick so '- key: value' nests correctly).
                int inner_indent =
                    indent + static_cast<int>(item.text.size() - rest.size());
                lines[pos] = Line{inner_indent, rest, item.number};
                seq.push(parseBlock(inner_indent));
            }
        }
        return seq;
    }

    /**
     * The paper's flat style: a document (or nested block) written as a
     * series of '!Component' / '!Container' lines, each followed by
     * key: value lines at the same indentation. Parsed as a sequence of
     * tagged mappings.
     */
    Node
    parseTaggedBlocks(int indent)
    {
        Node seq = Node::makeSequence();
        while (!done() && cur().indent == indent && isLoneTag(cur().text)) {
            std::string tag = cur().text.substr(1);
            ++pos;
            Node body = Node::makeMapping();
            if (!done() && cur().indent >= indent &&
                !isLoneTag(cur().text) &&
                findKeySplit(cur().text) != std::string::npos) {
                body = parseBlockMapping(cur().indent);
            }
            body.setTag(tag);
            seq.push(std::move(body));
        }
        return seq;
    }

    Node
    parseBlockMapping(int indent)
    {
        Node map = Node::makeMapping();
        while (!done() && cur().indent == indent &&
               !isLoneTag(cur().text) &&
               findKeySplit(cur().text) != std::string::npos) {
            Line entry = cur();
            std::size_t colon = findKeySplit(entry.text);
            std::string key = trim(entry.text.substr(0, colon));
            if (key.size() >= 2 &&
                ((key.front() == '"' && key.back() == '"') ||
                 (key.front() == '\'' && key.back() == '\''))) {
                key = key.substr(1, key.size() - 2);
            }
            std::string rest = trim(entry.text.substr(colon + 1));
            ++pos;
            if (rest.empty()) {
                if (!done() && cur().indent > indent) {
                    map.set(key, parseBlock(cur().indent));
                } else {
                    map.set(key, Node::makeNull());
                }
            } else if (rest[0] == '!' && isLoneTag(rest)) {
                // 'key: !Tag' with a nested block (or empty mapping) below.
                Node child = Node::makeMapping();
                if (!done() && cur().indent > indent)
                    child = parseBlock(cur().indent);
                child.setTag(rest.substr(1));
                map.set(key, std::move(child));
            } else {
                map.set(key, FlowParser(rest, entry.number).parseAll());
            }
        }
        return map;
    }
};

} // namespace

Node
parse(const std::string& text)
{
    return BlockParser(splitLines(text)).parseDocument();
}

Node
parseFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        CIM_FATAL("cannot open YAML file '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parse(oss.str());
}

Node
parseScalar(const std::string& text)
{
    return FlowParser(text, 0).parseAll();
}

} // namespace cimloop::yaml
