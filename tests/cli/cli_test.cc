#include "cimloop/cli/cli.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::cli {
namespace {

CliOptions
parse(std::initializer_list<const char*> args)
{
    return parseArgs(std::vector<std::string>(args.begin(), args.end()));
}

TEST(Parse, FullFlagSet)
{
    CliOptions o = parse({"--macro", "B", "--network", "mvm",
                          "--mappings", "64", "--seed", "9",
                          "--threads", "2", "--objective", "edp",
                          "--tech", "7", "--voltage", "0.65",
                          "--dac-bits", "2", "--cell-bits", "1",
                          "--input-bits", "4", "--weight-bits", "4",
                          "--csv", "/tmp/x.csv", "--report"});
    EXPECT_EQ(o.macroName, "B");
    EXPECT_EQ(o.networkName, "mvm");
    EXPECT_EQ(o.mappings, 64);
    EXPECT_EQ(o.seed, 9u);
    EXPECT_EQ(o.threads, 2);
    EXPECT_EQ(o.objective, "edp");
    EXPECT_DOUBLE_EQ(o.technologyNm, 7.0);
    EXPECT_DOUBLE_EQ(o.voltage, 0.65);
    EXPECT_EQ(o.dacBits, 2);
    EXPECT_EQ(o.inputBits, 4);
    EXPECT_EQ(o.csvPath, "/tmp/x.csv");
    EXPECT_TRUE(o.report);
}

TEST(Parse, Errors)
{
    EXPECT_THROW(parse({"--bogus"}), FatalError);
    EXPECT_THROW(parse({"--macro"}), FatalError); // missing value
    EXPECT_THROW(parse({"--macro", "B"}), FatalError); // no workload
    EXPECT_THROW(parse({"--network", "mvm"}), FatalError); // no arch
    EXPECT_THROW(parse({"--macro", "B", "--arch", "f.yaml", "--network",
                        "mvm"}),
                 FatalError); // both arch forms
    EXPECT_THROW(parse({"--macro", "B", "--network", "mvm", "--mappings",
                        "0"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "B", "--network", "mvm", "--mappings",
                        "ten"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "B", "--network", "mvm",
                        "--objective", "fastest"}),
                 FatalError);
}

TEST(Run, HelpExitsZero)
{
    std::ostringstream out, err;
    EXPECT_EQ(run({"--help"}, out, err), 0);
    EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(Run, BadFlagsExitTwoWithUsage)
{
    std::ostringstream out, err;
    EXPECT_EQ(run({"--nope"}, out, err), 2);
    EXPECT_NE(err.str().find("usage:"), std::string::npos);
}

TEST(Run, BuiltinMacroAndNetwork)
{
    std::ostringstream out, err;
    int rc = run({"--macro", "base", "--network", "mvm", "--mappings",
                  "20"},
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();
    std::string text = out.str();
    EXPECT_NE(text.find("total energy"), std::string::npos);
    EXPECT_NE(text.find("TOPS/W"), std::string::npos);
}

TEST(Run, YamlArchAndWorkloadWithCsv)
{
    const char* arch_path = "/tmp/cimloop_cli_arch.yaml";
    const char* net_path = "/tmp/cimloop_cli_net.yaml";
    const char* csv_path = "/tmp/cimloop_cli_out.csv";
    {
        std::ofstream a(arch_path);
        a << "!Component\n"
             "name: buffer\n"
             "class: SRAM\n"
             "temporal_reuse: [Inputs, Outputs]\n"
             "entries: 8192\n"
             "!Component\n"
             "name: dac\n"
             "class: DAC\n"
             "no_coalesce: [Inputs]\n"
             "resolution: 1\n"
             "!Container\n"
             "name: col\n"
             "spatial: {meshX: 16}\n"
             "spatial_reuse: [Inputs]\n"
             "spatial_dims: [K, WB]\n"
             "!Component\n"
             "name: adc\n"
             "class: ADC\n"
             "no_coalesce: [Outputs]\n"
             "resolution: 4\n"
             "!Component\n"
             "name: cells\n"
             "class: ReRAMCell\n"
             "spatial: {meshY: 16}\n"
             "temporal_reuse: [Weights]\n"
             "spatial_reuse: [Outputs]\n"
             "spatial_dims: [C, R, S]\n";
        std::ofstream n(net_path);
        n << "name: tiny\n"
             "layers:\n"
             "  - {name: l0, dims: {C: 16, K: 16, P: 32}}\n";
    }
    std::ostringstream out, err;
    int rc = run({"--arch", arch_path, "--workload", net_path,
                  "--dac-bits", "1", "--mappings", "30", "--csv",
                  csv_path, "--report"},
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("l0"), std::string::npos);
    EXPECT_NE(out.str().find("cells"), std::string::npos);

    std::ifstream csv(csv_path);
    ASSERT_TRUE(csv.good());
    std::string header;
    std::getline(csv, header);
    EXPECT_NE(header.find("energy_pj"), std::string::npos);
    std::string row;
    std::getline(csv, row);
    EXPECT_EQ(row.substr(0, 3), "l0,");
}

TEST(Run, MissingFileExitsOne)
{
    std::ostringstream out, err;
    int rc = run({"--arch", "/nonexistent/a.yaml", "--network", "mvm"},
                 out, err);
    EXPECT_EQ(rc, 1);
    EXPECT_NE(err.str().find("fatal"), std::string::npos);
}

TEST(Run, ErtDump)
{
    const char* ert_path = "/tmp/cimloop_cli_ert.yaml";
    std::ostringstream out, err;
    int rc = run({"--macro", "base", "--network", "mvm", "--mappings",
                  "10", "--ert", ert_path},
                 out, err);
    ASSERT_EQ(rc, 0) << err.str();
    std::ifstream ert(ert_path);
    ASSERT_TRUE(ert.good());
    std::string all((std::istreambuf_iterator<char>(ert)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("ert:"), std::string::npos);
    EXPECT_NE(all.find("node: adc"), std::string::npos);
    EXPECT_NE(all.find("action_outputs_pj"), std::string::npos);
}

TEST(Run, FixedMappingReplay)
{
    const char* map_path = "/tmp/cimloop_cli_map.yaml";
    {
        std::ofstream m(map_path);
        m << "mapping:\n"
             "  - node: cells\n"
             "    spatial: {C: 128}\n"
             "  - node: column\n"
             "    spatial: {K: 16, WB: 8}\n"
             "  - node: buffer\n"
             "    temporal: {P: 1024, IB: 8, K: 16}\n"
             "    order: [K, P, IB]\n";
        std::ofstream n("/tmp/cimloop_cli_fixnet.yaml");
        n << "name: fix\nlayers:\n"
             "  - {name: l0, dims: {C: 128, K: 256, P: 1024}}\n";
    }
    std::ostringstream out, err;
    int rc = run({"--macro", "base", "--workload",
                  "/tmp/cimloop_cli_fixnet.yaml", "--mapping", map_path},
                 out, err);
    ASSERT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("replaying fixed mapping"),
              std::string::npos);

    // A mapping that does not cover the layer fails loudly.
    {
        std::ofstream m(map_path);
        m << "mapping:\n  - node: cells\n    spatial: {C: 2}\n";
    }
    std::ostringstream out2, err2;
    EXPECT_EQ(run({"--macro", "base", "--workload",
                   "/tmp/cimloop_cli_fixnet.yaml", "--mapping", map_path},
                  out2, err2),
              1);
    EXPECT_NE(err2.str().find("invalid"), std::string::npos);
}

TEST(Run, DevicePresetFlag)
{
    std::ostringstream reram_out, pcm_out, err;
    ASSERT_EQ(run({"--macro", "C", "--network", "mvm", "--mappings",
                   "15", "--device", "reram"},
                  reram_out, err),
              0);
    ASSERT_EQ(run({"--macro", "C", "--network", "mvm", "--mappings",
                   "15", "--device", "pcm"},
                  pcm_out, err),
              0);
    // Different devices, different totals.
    EXPECT_NE(reram_out.str(), pcm_out.str());
    std::ostringstream out3, err3;
    EXPECT_EQ(run({"--macro", "C", "--network", "mvm", "--device",
                   "floppy"},
                  out3, err3),
              1);
}

TEST(Parse, RefSimFlags)
{
    CliOptions o = parse({"--refsim", "--network", "mvm",
                          "--refsim-vectors", "12", "--threads", "4"});
    EXPECT_TRUE(o.refsim);
    EXPECT_EQ(o.refsimVectors, 12);
    EXPECT_EQ(o.threads, 4);
    // No architecture flag needed in refsim mode...
    EXPECT_NO_THROW(parse({"--refsim", "--network", "mvm"}));
    // ...but a workload still is, and both arch forms stay an error.
    EXPECT_THROW(parse({"--refsim"}), FatalError);
    EXPECT_THROW(parse({"--refsim", "--network", "mvm", "--macro", "B",
                        "--arch", "f.yaml"}),
                 FatalError);
    EXPECT_THROW(parse({"--refsim", "--network", "mvm",
                        "--refsim-vectors", "-2"}),
                 FatalError);
}

TEST(Run, RefSimReportsPerLayerError)
{
    std::ostringstream out, err;
    int rc = run({"--refsim", "--network", "mvm", "--refsim-vectors",
                  "8", "--threads", "2"},
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();
    std::string text = out.str();
    EXPECT_NE(text.find("truth (pJ)"), std::string::npos);
    EXPECT_NE(text.find("mean |error|"), std::string::npos);
}

TEST(Run, RefSimThreadsMatchSingle)
{
    std::ostringstream out1, out4, err;
    ASSERT_EQ(run({"--refsim", "--network", "mvm", "--refsim-vectors",
                   "8"},
                  out1, err),
              0);
    ASSERT_EQ(run({"--refsim", "--network", "mvm", "--refsim-vectors",
                   "8", "--threads", "4"},
                  out4, err),
              0);
    // Bit-identical numbers -> byte-identical report (modulo the header
    // line that prints the thread count).
    std::string a = out1.str(), b = out4.str();
    a.erase(0, a.find("\n\n"));
    b.erase(0, b.find("\n\n"));
    EXPECT_EQ(a, b);
}

TEST(Parse, FaultFlags)
{
    CliOptions o = parse({"--macro", "base", "--network", "mvm",
                          "--faults", "/tmp/f.yaml",
                          "--fault-stuck-rate", "0.02",
                          "--fault-sigma", "0.3", "--keep-going"});
    EXPECT_EQ(o.faultsPath, "/tmp/f.yaml");
    EXPECT_DOUBLE_EQ(o.faultStuckRate, 0.02);
    EXPECT_DOUBLE_EQ(o.faultSigma, 0.3);
    EXPECT_TRUE(o.keepGoing);

    // Defaults: flags absent, faults disabled, strict mode.
    CliOptions d = parse({"--macro", "base", "--network", "mvm"});
    EXPECT_TRUE(d.faultsPath.empty());
    EXPECT_DOUBLE_EQ(d.faultStuckRate, -1.0);
    EXPECT_DOUBLE_EQ(d.faultSigma, -1.0);
    EXPECT_FALSE(d.keepGoing);

    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--fault-stuck-rate", "1.5"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--fault-stuck-rate", "-0.5"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--fault-sigma", "-0.1"}),
                 FatalError);
}

TEST(Run, FaultSpecFileDrivesBothModes)
{
    const char* faults_path = "/tmp/cimloop_cli_faults.yaml";
    {
        std::ofstream f(faults_path);
        f << "faults:\n"
             "  stuck_off_rate: 0.02\n"
             "  conductance_sigma: 0.2\n"
             "  seed: 9\n";
    }
    std::ostringstream out, err;
    int rc = run({"--refsim", "--network", "mvm", "--refsim-vectors", "8",
                  "--faults", faults_path},
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();
    std::string text = out.str();
    // Fault header plus the degradation columns against the clean run.
    EXPECT_NE(text.find("stuck-off 0.02"), std::string::npos);
    EXPECT_NE(text.find("clean (pJ)"), std::string::npos);
    EXPECT_NE(text.find("dE"), std::string::npos);

    std::ostringstream out2, err2;
    rc = run({"--macro", "base", "--network", "mvm", "--mappings", "15",
              "--faults", faults_path},
             out2, err2);
    EXPECT_EQ(rc, 0) << err2.str();
    EXPECT_NE(out2.str().find("per-layer degradation vs fault-free"),
              std::string::npos);

    // A broken spec fails loudly, naming the offending key.
    {
        std::ofstream f(faults_path);
        f << "faults:\n  stuck_off_rate: 7\n";
    }
    std::ostringstream out3, err3;
    EXPECT_EQ(run({"--refsim", "--network", "mvm", "--faults",
                   faults_path},
                  out3, err3),
              1);
    EXPECT_NE(err3.str().find("faults.stuck_off_rate"),
              std::string::npos);
}

TEST(Run, ZeroRateFaultFlagsKeepOutputByteIdentical)
{
    std::ostringstream plain, zeroed, err;
    ASSERT_EQ(run({"--macro", "base", "--network", "mvm", "--mappings",
                   "20", "--seed", "5", "--threads", "2"},
                  plain, err),
              0);
    ASSERT_EQ(run({"--macro", "base", "--network", "mvm", "--mappings",
                   "20", "--seed", "5", "--threads", "2",
                   "--fault-stuck-rate", "0", "--fault-sigma", "0",
                   "--keep-going"},
                  zeroed, err),
              0);
    EXPECT_EQ(plain.str(), zeroed.str());

    std::ostringstream ref_plain, ref_zeroed;
    ASSERT_EQ(run({"--refsim", "--network", "mvm", "--refsim-vectors",
                   "8"},
                  ref_plain, err),
              0);
    ASSERT_EQ(run({"--refsim", "--network", "mvm", "--refsim-vectors",
                   "8", "--fault-stuck-rate", "0", "--fault-sigma", "0"},
                  ref_zeroed, err),
              0);
    EXPECT_EQ(ref_plain.str(), ref_zeroed.str());
}

TEST(Run, FaultyStatisticalRunStillSucceeds)
{
    std::ostringstream out, err;
    int rc = run({"--macro", "base", "--network", "mvm", "--mappings",
                  "15", "--fault-stuck-rate", "0.04", "--fault-sigma",
                  "0.2", "--threads", "2"},
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("total energy"), std::string::npos);
    EXPECT_NE(out.str().find("faulty (pJ)"), std::string::npos);
}

TEST(Run, KeepGoingReportsFailedLayersAndExitsZero)
{
    const char* arch_path = "/tmp/cimloop_cli_kg_arch.yaml";
    const char* net_path = "/tmp/cimloop_cli_kg_net.yaml";
    {
        // An arch whose only temporal dims are P: the C-loop layer in
        // the middle of the network is unmappable on it.
        std::ofstream a(arch_path);
        a << "!Component\n"
             "name: dram\n"
             "class: DRAM\n"
             "temporal_reuse: [Inputs, Weights, Outputs]\n"
             "temporal_dims: [P, IB, WB]\n"
             "!Component\n"
             "name: pe\n"
             "class: DigitalMac\n"
             "temporal_reuse: [Weights]\n"
             "temporal_dims: [P, IB, WB]\n";
        std::ofstream n(net_path);
        n << "name: mixed\n"
             "layers:\n"
             "  - {name: ok1, dims: {P: 8}}\n"
             "  - {name: bad, dims: {C: 8, P: 2}}\n"
             "  - {name: ok2, dims: {P: 16}}\n";
    }
    // Strict mode aborts with exit 1...
    std::ostringstream out1, err1;
    EXPECT_EQ(run({"--arch", arch_path, "--workload", net_path,
                   "--mappings", "30"},
                  out1, err1),
              1);
    // ...keep-going completes, reports the bad layer, and exits 0.
    std::ostringstream out2, err2;
    int rc = run({"--arch", arch_path, "--workload", net_path,
                  "--mappings", "30", "--keep-going", "--threads", "4"},
                 out2, err2);
    EXPECT_EQ(rc, 0) << err2.str();
    EXPECT_NE(err2.str().find("1 of 3 layers failed"), std::string::npos)
        << err2.str();
    EXPECT_NE(err2.str().find("layer 'bad' (fatal)"), std::string::npos)
        << err2.str();
    EXPECT_NE(out2.str().find("total energy"), std::string::npos);
}

TEST(Parse, LayoutFlags)
{
    CliOptions fixed = parse({"--macro", "base", "--network", "mvm",
                              "--layout", "/tmp/l.yaml"});
    EXPECT_EQ(fixed.layoutPath, "/tmp/l.yaml");
    EXPECT_FALSE(fixed.layoutSearch);

    CliOptions eq = parse({"--macro", "base", "--network", "mvm",
                           "--layout=/tmp/l.yaml"});
    EXPECT_EQ(eq.layoutPath, "/tmp/l.yaml");

    CliOptions searched = parse(
        {"--macro", "base", "--network", "mvm", "--layout-search"});
    EXPECT_TRUE(searched.layoutSearch);
    EXPECT_TRUE(searched.layoutPath.empty());

    // Fixed layout and co-search are mutually exclusive; layouts make
    // no sense for --refsim; a fixed mapping cannot be co-searched; a
    // sweep explores layouts through its own axis instead.
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--layout", "/tmp/l.yaml", "--layout-search"}),
                 FatalError);
    EXPECT_THROW(parse({"--refsim", "--network", "mvm",
                        "--layout-search"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--mapping", "/tmp/m.yaml", "--layout-search"}),
                 FatalError);
    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--layout-search"}),
                 FatalError);
    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--layout",
                        "/tmp/l.yaml"}),
                 FatalError);
}

TEST(Parse, ObservabilityFlags)
{
    // Bare --metrics: summary table on stdout, no file.
    CliOptions o = parse({"--macro", "base", "--network", "mvm",
                          "--metrics"});
    EXPECT_TRUE(o.metrics);
    EXPECT_TRUE(o.metricsPath.empty());
    EXPECT_TRUE(o.tracePath.empty());

    // --metrics=FILE writes machine-readable JSON instead.
    CliOptions f = parse({"--macro", "base", "--network", "mvm",
                          "--metrics=/tmp/m.json"});
    EXPECT_TRUE(f.metrics);
    EXPECT_EQ(f.metricsPath, "/tmp/m.json");

    // --trace takes a path in either flag style.
    CliOptions t = parse({"--macro", "base", "--network", "mvm",
                          "--trace", "/tmp/t.json"});
    EXPECT_EQ(t.tracePath, "/tmp/t.json");
    CliOptions t2 = parse({"--macro", "base", "--network", "mvm",
                           "--trace=/tmp/t2.json"});
    EXPECT_EQ(t2.tracePath, "/tmp/t2.json");

    // Defaults: everything off.
    CliOptions d = parse({"--macro", "base", "--network", "mvm"});
    EXPECT_FALSE(d.metrics);
    EXPECT_TRUE(d.metricsPath.empty());
    EXPECT_TRUE(d.tracePath.empty());

    // Empty paths are an error, not a silent no-op.
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--metrics="}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--trace="}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--trace"}),
                 FatalError); // missing value
}

TEST(Run, MetricsSummaryTableOnStdout)
{
    std::ostringstream out, err;
    int rc = run({"--macro", "base", "--network", "mvm", "--mappings",
                  "15", "--metrics"},
                 out, err);
    ASSERT_EQ(rc, 0) << err.str();
    std::string text = out.str();
    EXPECT_NE(text.find("counter"), std::string::npos);
    EXPECT_NE(text.find("mapping.search.evaluated"), std::string::npos);
    EXPECT_NE(text.find("engine.layers.evaluated"), std::string::npos);
    // --metrics arms span timing, so the table has a span section too.
    EXPECT_NE(text.find("engine.evaluate_network"), std::string::npos);
}

TEST(Run, MetricsFileContainsCountersAndSpans)
{
    const char* path = "/tmp/cimloop_cli_metrics.json";
    std::ostringstream out, err;
    int rc = run({"--refsim", "--network", "mvm", "--refsim-vectors",
                  "4", "--metrics=" + std::string(path)},
                 out, err);
    ASSERT_EQ(rc, 0) << err.str();
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(json.find("{\n"), 0u);
    EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
    EXPECT_NE(json.find("\"refsim.vectors.simulated\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"spans\": {"), std::string::npos);
    EXPECT_NE(json.find("\"refsim.simulate_layer\""), std::string::npos);
    // JSON mode keeps stdout for the report only.
    EXPECT_EQ(out.str().find("counter"), std::string::npos);
    std::remove(path);
}

TEST(Run, TraceFileIsChromeLoadable)
{
    // The fig6 workload class: value-level refsim vs the statistical
    // model. Structural validation of the Chrome trace-event format —
    // the invariants chrome://tracing / Perfetto require to load it.
    const char* path = "/tmp/cimloop_cli_trace.json";
    std::ostringstream out, err;
    int rc = run({"--refsim", "--network", "mvm", "--refsim-vectors",
                  "4", "--threads", "2",
                  "--trace=" + std::string(path)},
                 out, err);
    ASSERT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find(std::string("wrote ") + path),
              std::string::npos);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    // Top-level object with the traceEvents array.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);

    // Every event is a complete ("ph":"X") event with the required
    // name/pid/tid/ts/dur fields; at least one refsim span shows up.
    std::size_t events = 0;
    for (std::size_t pos = json.find("{\"name\":");
         pos != std::string::npos;
         pos = json.find("{\"name\":", pos + 1)) {
        std::size_t end = json.find('}', pos);
        ASSERT_NE(end, std::string::npos);
        std::string ev = json.substr(pos, end - pos + 1);
        EXPECT_NE(ev.find("\"cat\":\"cimloop\""), std::string::npos);
        EXPECT_NE(ev.find("\"ph\":\"X\""), std::string::npos);
        EXPECT_NE(ev.find("\"pid\":1"), std::string::npos);
        EXPECT_NE(ev.find("\"tid\":"), std::string::npos);
        EXPECT_NE(ev.find("\"ts\":"), std::string::npos);
        EXPECT_NE(ev.find("\"dur\":"), std::string::npos);
        ++events;
    }
    EXPECT_GT(events, 0u);
    EXPECT_NE(json.find("\"name\":\"refsim.simulate_layer\""),
              std::string::npos);
    std::remove(path);

    // Tracing is a per-run switch: a following plain run must not
    // inherit it (the scope disarms on exit).
    std::ostringstream out2, err2;
    ASSERT_EQ(run({"--refsim", "--network", "mvm", "--refsim-vectors",
                   "4"},
                  out2, err2),
              0);
    EXPECT_EQ(out2.str().find("wrote"), std::string::npos);
}

namespace {

/** Writes a small sweep spec and returns its path. */
std::string
writeSweepSpec(const char* path)
{
    std::ofstream f(path);
    f << "sweep:\n"
         "  name: cli-sweep\n"
         "  network: mvm\n"
         "  mappings: 6\n"
         "  scaled_adc: true\n"
         "  axes:\n"
         "    - field: array\n"
         "      values: [64, 4096]\n"
         "    - field: dac_bits\n"
         "      values: [1, 8]\n";
    return path;
}

} // namespace

TEST(Parse, SweepFlags)
{
    CliOptions o = parse({"--sweep", "/tmp/s.yaml", "--threads", "4",
                          "--seed", "7", "--json", "/tmp/s.json"});
    EXPECT_EQ(o.sweepPath, "/tmp/s.yaml");
    EXPECT_EQ(o.jsonPath, "/tmp/s.json");
    EXPECT_EQ(o.threads, 4);
    EXPECT_EQ(o.seed, 7u);
    EXPECT_TRUE(o.seedGiven);

    CliOptions eq = parse({"--sweep=/tmp/s.yaml"});
    EXPECT_EQ(eq.sweepPath, "/tmp/s.yaml");
    EXPECT_FALSE(eq.seedGiven);

    // The spec names the architecture and workload; the single-run
    // selection flags conflict with it.
    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--macro", "base"}),
                 FatalError);
    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--network", "mvm"}),
                 FatalError);
    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--refsim"}),
                 FatalError);
    EXPECT_THROW(parse({"--sweep="}), FatalError);
    // --json is a sweep artifact; alone it is an error.
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm", "--json",
                        "/tmp/x.json"}),
                 FatalError);
}

TEST(Parse, SweepResumeFlags)
{
    CliOptions o = parse({"--sweep", "/tmp/s.yaml", "--resume",
                          "/tmp/journal", "--chunk-size", "256",
                          "--max-chunks", "3"});
    EXPECT_EQ(o.resumeDir, "/tmp/journal");
    EXPECT_EQ(o.chunkSize, 256u);
    EXPECT_EQ(o.maxChunks, 3u);

    CliOptions eq = parse({"--sweep=/tmp/s.yaml", "--resume=/tmp/j"});
    EXPECT_EQ(eq.resumeDir, "/tmp/j");

    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--resume="}),
                 FatalError);
    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--chunk-size", "0"}),
                 FatalError);
    EXPECT_THROW(parse({"--sweep", "/tmp/s.yaml", "--max-chunks", "0"}),
                 FatalError);
    // All three ride on --sweep; alone they are errors.
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--resume", "/tmp/j"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--chunk-size", "64"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--max-chunks", "1"}),
                 FatalError);
}

TEST(Run, SweepPauseAndResumeMatchesCleanRun)
{
    const char* spec_path = "/tmp/cimloop_cli_sweep_resume.yaml";
    const std::string dir = "/tmp/cimloop_cli_sweep_resume_journal";
    writeSweepSpec(spec_path);
    std::filesystem::remove_all(dir);

    std::ostringstream clean, err;
    ASSERT_EQ(run({"--sweep", spec_path, "--threads", "2"}, clean, err),
              0)
        << err.str();

    // Interrupted leg: one 2-point chunk of the 4-point grid.
    std::ostringstream paused;
    ASSERT_EQ(run({"--sweep", spec_path, "--threads", "2", "--resume",
                   dir.c_str(), "--chunk-size", "2", "--max-chunks",
                   "1"},
                  paused, err),
              0)
        << err.str();
    EXPECT_NE(paused.str().find("paused after 1 of 2 chunks"),
              std::string::npos)
        << paused.str();
    EXPECT_NE(paused.str().find("--resume " + dir), std::string::npos);

    // Resumed leg: picks up the journal, re-runs nothing it has, and
    // reproduces the uninterrupted report byte-for-byte.
    std::ostringstream resumed;
    ASSERT_EQ(run({"--sweep", spec_path, "--threads", "2", "--resume",
                   dir.c_str(), "--chunk-size", "2"},
                  resumed, err),
              0)
        << err.str();
    EXPECT_EQ(resumed.str(), clean.str());
    std::filesystem::remove_all(dir);
}

TEST(Run, SweepEndToEndWithArtifacts)
{
    const char* spec_path = "/tmp/cimloop_cli_sweep.yaml";
    const char* csv_path = "/tmp/cimloop_cli_sweep.csv";
    const char* json_path = "/tmp/cimloop_cli_sweep.json";
    writeSweepSpec(spec_path);

    std::ostringstream out, err;
    int rc = run({"--sweep", spec_path, "--threads", "2", "--csv",
                  csv_path, "--json", json_path},
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();
    std::string text = out.str();
    // 4 points; the (4096, dac 8) corner derives a 15-bit ADC and fails
    // as a per-point diagnostic carrying its axis values.
    EXPECT_NE(text.find("4 points (3 ok, 1 failed"), std::string::npos)
        << text;
    EXPECT_NE(text.find("array=4096, dac_bits=8"), std::string::npos);
    EXPECT_NE(text.find("pareto frontier"), std::string::npos);
    EXPECT_NE(text.find("best ("), std::string::npos);

    std::ifstream csv(csv_path);
    ASSERT_TRUE(csv.good());
    std::string header;
    std::getline(csv, header);
    EXPECT_NE(header.find("array"), std::string::npos);
    EXPECT_NE(header.find("energy_per_mac_pj"), std::string::npos);

    std::ifstream json(json_path);
    ASSERT_TRUE(json.good());
    std::string doc((std::istreambuf_iterator<char>(json)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(doc.find("\"sweep\": \"cli-sweep\""), std::string::npos);
    EXPECT_NE(doc.find("\"failed\": 1"), std::string::npos);
    std::remove(csv_path);
    std::remove(json_path);
}

TEST(Run, SweepThreadsMatchSingle)
{
    const char* spec_path = "/tmp/cimloop_cli_sweep_t.yaml";
    writeSweepSpec(spec_path);
    std::ostringstream out1, out8, err;
    ASSERT_EQ(run({"--sweep", spec_path, "--seed", "3"}, out1, err), 0);
    ASSERT_EQ(run({"--sweep", spec_path, "--seed", "3", "--threads",
                   "8"},
                  out8, err),
              0);
    EXPECT_EQ(out1.str(), out8.str());
}

TEST(Run, SweepBadSpecExitsOneWithKeyPath)
{
    const char* spec_path = "/tmp/cimloop_cli_sweep_bad.yaml";
    {
        std::ofstream f(spec_path);
        f << "sweep:\n"
             "  network: mvm\n"
             "  axes:\n"
             "    - field: gremlins\n"
             "      values: [1]\n";
    }
    std::ostringstream out, err;
    EXPECT_EQ(run({"--sweep", spec_path}, out, err), 1);
    EXPECT_NE(err.str().find("sweep.axes[0].field"), std::string::npos)
        << err.str();
}

TEST(Run, ThreadsMatchSingle)
{
    std::ostringstream out1, out4, err;
    ASSERT_EQ(run({"--macro", "base", "--network", "mvm", "--mappings",
                   "20", "--seed", "5"},
                  out1, err),
              0);
    ASSERT_EQ(run({"--macro", "base", "--network", "mvm", "--mappings",
                   "20", "--seed", "5", "--threads", "4"},
                  out4, err),
              0);
    EXPECT_EQ(out1.str(), out4.str());
}

TEST(Parse, TimeoutFlag)
{
    CliOptions o = parse({"--macro", "base", "--network", "mvm",
                          "--timeout", "5.5"});
    EXPECT_DOUBLE_EQ(o.timeoutSeconds, 5.5);

    // Default: no deadline.
    CliOptions d = parse({"--macro", "base", "--network", "mvm"});
    EXPECT_DOUBLE_EQ(d.timeoutSeconds, 0.0);

    // A non-positive, unparsable, or NaN budget is a usage error.
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--timeout", "0"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--timeout", "-3"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--timeout", "soon"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--timeout", "nan"}),
                 FatalError);
    EXPECT_THROW(parse({"--macro", "base", "--network", "mvm",
                        "--timeout"}),
                 FatalError); // missing value
}

TEST(Run, BadTimeoutExitsTwo)
{
    std::ostringstream out, err;
    EXPECT_EQ(run({"--macro", "base", "--network", "mvm", "--timeout",
                   "0"},
                  out, err),
              2);
    EXPECT_NE(err.str().find("--timeout"), std::string::npos);
}

TEST(Run, ExpiredTimeoutExitsWithDeadlineCode)
{
    // A 1 ns budget has expired by the first poll: strict mode aborts
    // at the first layer boundary with exit code 124.
    std::ostringstream out, err;
    int rc = run({"--macro", "base", "--network", "mvm", "--mappings",
                  "20", "--timeout", "1e-9"},
                 out, err);
    EXPECT_EQ(rc, 124) << err.str();
    EXPECT_NE(err.str().find("cancelled (deadline)"), std::string::npos)
        << err.str();

    // The refsim mode honors the same deadline and exit code.
    std::ostringstream rout, rerr;
    EXPECT_EQ(run({"--refsim", "--network", "mvm", "--refsim-vectors",
                   "8", "--timeout", "1e-9"},
                  rout, rerr),
              124);
    EXPECT_NE(rerr.str().find("cancelled (deadline)"),
              std::string::npos);
}

TEST(Run, KeepGoingTimeoutReportsDiagnosticsAndExits124)
{
    // Keep-going absorbs the cancellation into per-layer diagnostics
    // (the partial report still prints) but the exit code must say the
    // run was cut short.
    std::ostringstream out, err;
    int rc = run({"--macro", "base", "--network", "mvm", "--mappings",
                  "20", "--keep-going", "--timeout", "1e-9"},
                 out, err);
    EXPECT_EQ(rc, 124) << err.str();
    EXPECT_NE(err.str().find("cancelled"), std::string::npos)
        << err.str();
}

TEST(Run, SweepTimeoutPausesResumably)
{
    const char* spec_path = "/tmp/cimloop_cli_sweep_timeout.yaml";
    const std::string dir = "/tmp/cimloop_cli_sweep_timeout_journal";
    writeSweepSpec(spec_path);
    std::filesystem::remove_all(dir);

    std::ostringstream clean, err;
    ASSERT_EQ(run({"--sweep", spec_path, "--threads", "2"}, clean, err),
              0)
        << err.str();

    // Expired deadline: the sweep stops before its first chunk, exits
    // 124, and the journal records zero chunks.
    std::ostringstream paused;
    int rc = run({"--sweep", spec_path, "--threads", "2", "--resume",
                  dir.c_str(), "--chunk-size", "2", "--timeout", "1e-9"},
                 paused, err);
    EXPECT_EQ(rc, 124) << err.str();
    EXPECT_NE(paused.str().find("sweep cancelled (deadline)"),
              std::string::npos)
        << paused.str();
    EXPECT_NE(paused.str().find("paused after 0 of 2 chunks"),
              std::string::npos)
        << paused.str();
    EXPECT_NE(paused.str().find("--resume " + dir), std::string::npos);

    // Resuming without the deadline completes the sweep and reproduces
    // the uninterrupted report byte-for-byte.
    std::ostringstream resumed;
    ASSERT_EQ(run({"--sweep", spec_path, "--threads", "2", "--resume",
                   dir.c_str(), "--chunk-size", "2"},
                  resumed, err),
              0)
        << err.str();
    EXPECT_EQ(resumed.str(), clean.str());
    std::filesystem::remove_all(dir);
}

TEST(Run, SweepTimeoutWithoutJournalStillExits124)
{
    const char* spec_path = "/tmp/cimloop_cli_sweep_timeout_nj.yaml";
    writeSweepSpec(spec_path);
    std::ostringstream out, err;
    int rc = run({"--sweep", spec_path, "--timeout", "1e-9"}, out, err);
    EXPECT_EQ(rc, 124) << err.str();
    EXPECT_NE(out.str().find("sweep cancelled (deadline)"),
              std::string::npos);
    // No journal, so no resume hint.
    EXPECT_EQ(out.str().find("--resume"), std::string::npos);
}

} // namespace
} // namespace cimloop::cli
