/**
 * @file
 * Arena allocator: growth across chunks, alignment, mark/release
 * nesting, reset consolidation, and a randomized stress pattern. The
 * whole suite runs under ASan in CI (asan-ubsan job), where any overlap
 * or out-of-bounds write in the bump logic is fatal.
 */
#include "cimloop/common/arena.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "cimloop/common/util.hh"

namespace cimloop {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint)
{
    Arena arena;
    auto* a = arena.alloc<double>(3);
    auto* b = arena.alloc<double>(5);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % Arena::kMinAlign, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % Arena::kMinAlign, 0u);
    // b starts at or after a's end.
    EXPECT_GE(reinterpret_cast<std::uintptr_t>(b),
              reinterpret_cast<std::uintptr_t>(a + 3));
}

TEST(Arena, ZeroByteAllocationIsValid)
{
    Arena arena;
    void* a = arena.allocate(0);
    void* b = arena.allocate(0);
    EXPECT_NE(a, nullptr);
    EXPECT_NE(b, nullptr);
    EXPECT_NE(a, b);
}

TEST(Arena, GrowsAcrossChunksAndKeepsContents)
{
    Arena arena(256); // tiny first chunk: force growth quickly
    std::vector<unsigned char*> blocks;
    constexpr std::size_t kBlock = 300; // bigger than the first chunk
    for (int i = 0; i < 32; ++i) {
        auto* p = arena.alloc<unsigned char>(kBlock);
        std::memset(p, i + 1, kBlock);
        blocks.push_back(p);
    }
    EXPECT_GT(arena.chunkCount(), 1u);
    // Every block still holds its pattern: no chunk handed out
    // overlapping storage.
    for (int i = 0; i < 32; ++i) {
        for (std::size_t j = 0; j < kBlock; ++j)
            ASSERT_EQ(blocks[static_cast<std::size_t>(i)][j],
                      static_cast<unsigned char>(i + 1));
    }
}

TEST(Arena, OversizeAllocationHonored)
{
    Arena arena(64);
    auto* p = arena.alloc<double>(1 << 16); // 512 KiB in one shot
    ASSERT_NE(p, nullptr);
    p[0] = 1.0;
    p[(1 << 16) - 1] = 2.0;
    EXPECT_EQ(p[0], 1.0);
    EXPECT_EQ(p[(1 << 16) - 1], 2.0);
}

TEST(Arena, MarkReleaseReusesMemory)
{
    Arena arena;
    (void)arena.alloc<double>(16);
    Arena::Mark m = arena.mark();
    auto* a = arena.alloc<double>(64);
    std::size_t used_after = arena.usedBytes();
    arena.release(m);
    EXPECT_LT(arena.usedBytes(), used_after);
    auto* b = arena.alloc<double>(64);
    EXPECT_EQ(a, b); // bump pointer rewound to the mark
}

TEST(Arena, ScopesNestLifo)
{
    Arena arena;
    auto* outer = arena.alloc<double>(8);
    outer[0] = 42.0;
    double* inner_ptr = nullptr;
    {
        ArenaScope scope(arena);
        inner_ptr = arena.alloc<double>(8);
        inner_ptr[0] = 7.0;
        {
            ArenaScope nested(arena);
            auto* deepest = arena.alloc<double>(1024);
            deepest[0] = 9.0;
        }
        // The nested scope's release must not disturb this scope's data.
        EXPECT_EQ(inner_ptr[0], 7.0);
    }
    EXPECT_EQ(outer[0], 42.0);
    // Outer scope released: the next allocation reuses inner_ptr's spot.
    EXPECT_EQ(arena.alloc<double>(8), inner_ptr);
}

TEST(Arena, ResetConsolidatesChunks)
{
    Arena arena(128);
    for (int i = 0; i < 20; ++i)
        (void)arena.alloc<unsigned char>(500);
    ASSERT_GT(arena.chunkCount(), 1u);
    std::size_t cap = arena.capacityBytes();
    arena.reset();
    EXPECT_EQ(arena.chunkCount(), 1u);
    EXPECT_EQ(arena.capacityBytes(), cap);
    EXPECT_EQ(arena.usedBytes(), 0u);
    // The consolidated chunk serves what previously spanned chunks.
    auto* p = arena.alloc<unsigned char>(4000);
    std::memset(p, 0xAB, 4000);
    EXPECT_EQ(arena.chunkCount(), 1u);
}

TEST(Arena, StressRandomizedScopes)
{
    // Randomized nested-scope churn with pattern verification; ASan
    // turns any bump-logic overlap into a hard failure here.
    Arena arena(64);
    Rng rng(0xA12E5A);
    for (int round = 0; round < 200; ++round) {
        ArenaScope scope(arena);
        std::vector<std::pair<unsigned char*, std::size_t>> live;
        int blocks = 1 + static_cast<int>(rng.uniform() * 8.0);
        for (int i = 0; i < blocks; ++i) {
            auto n = static_cast<std::size_t>(rng.uniform() * 2000.0) + 1;
            auto* p = arena.alloc<unsigned char>(n);
            std::memset(p, round & 0xFF, n);
            live.emplace_back(p, n);
            if (rng.uniform() < 0.3) {
                ArenaScope inner(arena);
                auto m =
                    static_cast<std::size_t>(rng.uniform() * 4000.0) + 1;
                std::memset(arena.alloc<unsigned char>(m), 0xEE, m);
            }
        }
        for (auto& [p, n] : live) {
            for (std::size_t j = 0; j < n; ++j)
                ASSERT_EQ(p[j], static_cast<unsigned char>(round & 0xFF));
        }
    }
}

TEST(Arena, ScratchArenaIsPerThread)
{
    Arena* main_arena = &scratchArena();
    Arena* worker_arena = nullptr;
    std::thread t([&] { worker_arena = &scratchArena(); });
    t.join();
    EXPECT_NE(main_arena, nullptr);
    EXPECT_NE(worker_arena, nullptr);
    EXPECT_NE(main_arena, worker_arena);
}

} // namespace
} // namespace cimloop
