/** CancelToken / Deadline / installSignalCancel unit coverage. */
#include "cimloop/common/cancel.hh"

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>

namespace cimloop {
namespace {

TEST(Deadline, DefaultNeverExpires)
{
    Deadline d;
    EXPECT_FALSE(d.active());
    EXPECT_FALSE(d.expired());
    EXPECT_EQ(d.rawNs(), 0);
    EXPECT_TRUE(Deadline::never().remainingSeconds() >
                1e18); // +inf, really
}

TEST(Deadline, AfterFarFutureIsActiveNotExpired)
{
    Deadline d = Deadline::after(3600.0);
    EXPECT_TRUE(d.active());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingSeconds(), 3000.0);
    EXPECT_LE(d.remainingSeconds(), 3600.0);
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired)
{
    EXPECT_TRUE(Deadline::after(0.0).expired());
    EXPECT_TRUE(Deadline::after(-5.0).expired());
    EXPECT_EQ(Deadline::after(0.0).remainingSeconds(), 0.0);
}

TEST(Deadline, TinyBudgetExpiresOnFirstPoll)
{
    // 1 ns from now: by the time expired() runs, the clock has moved.
    EXPECT_TRUE(Deadline::after(1e-9).expired());
}

TEST(Deadline, HugeBudgetDoesNotOverflow)
{
    Deadline d = Deadline::after(1e300);
    EXPECT_TRUE(d.active());
    EXPECT_FALSE(d.expired());
}

TEST(Deadline, RawRoundTrip)
{
    Deadline d = Deadline::after(100.0);
    Deadline back = Deadline::fromRawNs(d.rawNs());
    EXPECT_EQ(back.rawNs(), d.rawNs());
    EXPECT_TRUE(back.active());
}

TEST(CancelToken, FreshTokenIsNotCancelled)
{
    CancelToken t;
    EXPECT_FALSE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::None);
    EXPECT_NO_THROW(t.throwIfCancelled("test"));
}

TEST(CancelToken, CancelLatchesAndFirstReasonWins)
{
    CancelToken t;
    t.cancel(CancelReason::User);
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::User);
    // Later cancels with a different reason are no-ops.
    t.cancel(CancelReason::Signal);
    EXPECT_EQ(t.reason(), CancelReason::User);
}

TEST(CancelToken, CopiesShareState)
{
    CancelToken a;
    CancelToken b = a; // same shared state
    b.cancel();
    EXPECT_TRUE(a.cancelled());
    EXPECT_EQ(a.reason(), CancelReason::User);
    // A fresh token is independent.
    CancelToken c;
    EXPECT_FALSE(c.cancelled());
}

TEST(CancelToken, ExpiredDeadlineLatchesDeadlineReason)
{
    CancelToken t;
    t.setDeadline(Deadline::after(1e-9));
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::Deadline);
}

TEST(CancelToken, ReasonAloneLatchesAnExpiredDeadline)
{
    // reason() must observe the deadline even when cancelled() was
    // never polled first.
    CancelToken t;
    t.setDeadline(Deadline::after(1e-9));
    EXPECT_EQ(t.reason(), CancelReason::Deadline);
}

TEST(CancelToken, FarDeadlineDoesNotCancel)
{
    CancelToken t;
    t.setDeadline(Deadline::after(3600.0));
    EXPECT_FALSE(t.cancelled());
    EXPECT_TRUE(t.deadline().active());
}

TEST(CancelToken, ExplicitCancelTrumpsLaterDeadline)
{
    CancelToken t;
    t.cancel(CancelReason::User);
    t.setDeadline(Deadline::after(1e-9));
    EXPECT_EQ(t.reason(), CancelReason::User);
}

TEST(CancelToken, ThrowIfCancelledCarriesContextAndReason)
{
    CancelToken t;
    t.cancel(CancelReason::User);
    try {
        t.throwIfCancelled("sweep chunk 3");
        FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.reason(), CancelReason::User);
        EXPECT_EQ(std::string(e.what()), "sweep chunk 3 cancelled (user)");
    }
}

TEST(CancelToken, PollIsVisibleAcrossThreads)
{
    CancelToken t;
    std::thread canceller([copy = t] { copy.cancel(); });
    canceller.join();
    EXPECT_TRUE(t.cancelled());
}

TEST(CancelReasonName, CoversEveryReason)
{
    EXPECT_STREQ(cancelReasonName(CancelReason::None), "none");
    EXPECT_STREQ(cancelReasonName(CancelReason::User), "user");
    EXPECT_STREQ(cancelReasonName(CancelReason::Deadline), "deadline");
    EXPECT_STREQ(cancelReasonName(CancelReason::Signal), "signal");
}

TEST(SignalCancel, SigtermCancelsTheInstalledToken)
{
    CancelToken t;
    installSignalCancel(t);
    // raise() delivers synchronously on this thread; the handler flips
    // the token instead of killing the test binary.
    std::raise(SIGTERM);
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::Signal);
    EXPECT_EQ(lastCancelSignal(), SIGTERM);
    uninstallSignalCancel();
}

TEST(SignalCancel, UninstallRestoresAndReinstallRetargets)
{
    CancelToken first;
    installSignalCancel(first);
    uninstallSignalCancel();
    // After uninstall, a new install targets the new token only.
    CancelToken second;
    installSignalCancel(second);
    std::raise(SIGTERM);
    EXPECT_FALSE(first.cancelled());
    EXPECT_TRUE(second.cancelled());
    uninstallSignalCancel();
}

} // namespace
} // namespace cimloop
