#include "cimloop/common/error.hh"

#include <gtest/gtest.h>

#include "cimloop/common/log.hh"

namespace cimloop {
namespace {

TEST(Errors, FatalThrowsWithMessage)
{
    try {
        CIM_FATAL("bad value ", 42, " for knob '", "x", "'");
        FAIL() << "CIM_FATAL did not throw";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "fatal: bad value 42 for knob 'x'");
    }
}

TEST(Errors, PanicIncludesLocation)
{
    try {
        CIM_PANIC("impossible state");
        FAIL() << "CIM_PANIC did not throw";
    } catch (const PanicError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("impossible state"), std::string::npos);
        EXPECT_NE(what.find("error_test.cc"), std::string::npos);
    }
}

TEST(Errors, AssertPassesAndFails)
{
    EXPECT_NO_THROW(CIM_ASSERT(1 + 1 == 2, "math works"));
    EXPECT_THROW(CIM_ASSERT(1 + 1 == 3, "math broke"), PanicError);
}

TEST(Errors, FatalIsNotPanic)
{
    EXPECT_THROW(CIM_FATAL("user error"), FatalError);
    // FatalError must not be catchable as PanicError and vice versa.
    bool caught_as_panic = false;
    try {
        CIM_FATAL("user error");
    } catch (const PanicError&) {
        caught_as_panic = true;
    } catch (const FatalError&) {
    }
    EXPECT_FALSE(caught_as_panic);
}

TEST(Log, LevelsControlOutput)
{
    int old = logLevel();
    setLogLevel(0);
    // Should be silent; just exercise the path.
    inform("invisible ", 1);
    warn("invisible ", 2);
    setLogLevel(old);
}

} // namespace
} // namespace cimloop
