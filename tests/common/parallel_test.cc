/** parallelFor: coverage, serial fallback, and exception capture. */
#include "cimloop/common/parallel.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cimloop/common/error.hh"

namespace cimloop {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    parallelFor(4, n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialFallbackRunsInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(1, 5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, HandlesMoreThreadsThanWork)
{
    std::atomic<int> count{0};
    parallelFor(16, 3, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, ZeroItemsIsANoop)
{
    parallelFor(4, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, RethrowsWorkerExceptionAfterJoin)
{
    // Before evaluateNetworkParallel used this, an exception inside a
    // worker lambda escaped std::thread and terminated the process.
    auto boom = [](std::size_t i) {
        if (i == 3)
            CIM_FATAL("worker failure on item ", i);
    };
    EXPECT_THROW(parallelFor(4, 100, boom), FatalError);
    EXPECT_THROW(parallelFor(1, 100, boom), FatalError); // serial path too
}

TEST(ParallelFor, AbandonsRemainingWorkAfterFailure)
{
    std::atomic<int> executed{0};
    try {
        parallelFor(2, 10000, [&](std::size_t i) {
            ++executed;
            if (i == 0)
                CIM_FATAL("fail fast");
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError&) {
    }
    // Not all 10000 items ran: workers saw the failure flag and stopped.
    EXPECT_LT(executed.load(), 10000);
}

TEST(ParallelFor, SingleFailureRethrowsTheOriginalMessage)
{
    try {
        parallelFor(4, 8, [](std::size_t i) {
            if (i == 5)
                CIM_FATAL("item five is bad");
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        // One failure: the original exception, not a wrapped summary.
        EXPECT_NE(std::string(e.what()).find("item five is bad"),
                  std::string::npos);
        EXPECT_EQ(std::string(e.what()).find("parallel work items"),
                  std::string::npos);
    }
}

TEST(ParallelFor, AggregatesEveryConcurrentFailure)
{
    // Before the aggregation fix, only the first captured exception
    // survived and concurrent failures were silently dropped. Both
    // workers rendezvous inside their item before either throws, so
    // both failures are guaranteed to land before the stop flag.
    std::atomic<int> arrived{0};
    try {
        parallelFor(2, 2, [&](std::size_t i) {
            ++arrived;
            while (arrived.load() < 2)
                std::this_thread::yield();
            CIM_FATAL("worker failure on item ", i);
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("2 parallel work items failed"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("item 0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("item 1"), std::string::npos) << msg;
    }
}

TEST(ParallelFor, PanicTrumpsFatalInAggregation)
{
    // A bug (PanicError) must not be downgraded by co-failing bad input.
    std::atomic<int> arrived{0};
    EXPECT_THROW(parallelFor(2, 2,
                             [&](std::size_t i) {
                                 ++arrived;
                                 while (arrived.load() < 2)
                                     std::this_thread::yield();
                                 if (i == 0)
                                     CIM_FATAL("bad input");
                                 CIM_PANIC("bug");
                             }),
                 PanicError);
}

TEST(ParallelForAll, RunsEveryItemDespiteFailures)
{
    std::vector<std::atomic<int>> visits(100);
    std::vector<WorkerError> errors =
        parallelForAll(4, 100, [&](std::size_t i) {
            ++visits[i];
            if (i % 10 == 3)
                CIM_FATAL("item ", i, " failed");
        });
    // Keep-going: no early abandon, every item ran exactly once.
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    ASSERT_EQ(errors.size(), 10u);
    // Failures come back sorted by item index with the exception intact.
    for (std::size_t k = 0; k < errors.size(); ++k) {
        EXPECT_EQ(errors[k].index, 10 * k + 3);
        try {
            std::rethrow_exception(errors[k].error);
            FAIL() << "expected FatalError";
        } catch (const FatalError& e) {
            EXPECT_NE(std::string(e.what()).find("failed"),
                      std::string::npos);
        }
    }
}

TEST(ParallelFor, AggregationListsFailuresInItemOrder)
{
    // Pins the diagnostic sort: item 1 fails (and is captured) first,
    // item 0 only fails after seeing item 1's flag plus a grace sleep,
    // so the raw capture order is reverse of the item order. The
    // aggregated message must still list item 0 before item 1.
    std::atomic<bool> one_threw{false};
    try {
        parallelFor(2, 2, [&](std::size_t i) {
            if (i == 1) {
                one_threw.store(true);
                CIM_FATAL("late item one");
            }
            while (!one_threw.load())
                std::this_thread::yield();
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            CIM_FATAL("early item zero");
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        std::string msg = e.what();
        std::size_t p0 = msg.find("item 0: fatal: early item zero");
        std::size_t p1 = msg.find("item 1: fatal: late item one");
        ASSERT_NE(p0, std::string::npos) << msg;
        ASSERT_NE(p1, std::string::npos) << msg;
        EXPECT_LT(p0, p1) << msg;
    }
}

TEST(ParallelForAll, ErrorsSortedDespiteReverseCompletionOrder)
{
    // Every item fails, with later items finishing earlier (staggered
    // sleeps), so the capture order is roughly reversed. The returned
    // diagnostics must come back in ascending item order regardless.
    constexpr std::size_t n = 6;
    std::vector<WorkerError> errors =
        parallelForAll(static_cast<int>(n), n, [&](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5 * (n - i)));
            CIM_FATAL("item ", i);
        });
    ASSERT_EQ(errors.size(), n);
    for (std::size_t k = 0; k < n; ++k)
        EXPECT_EQ(errors[k].index, k);
}

TEST(ParallelForAll, EmptyResultMeansSuccess)
{
    std::atomic<int> count{0};
    EXPECT_TRUE(parallelForAll(4, 50, [&](std::size_t) { ++count; })
                    .empty());
    EXPECT_EQ(count.load(), 50);
    // Serial path captures too.
    std::vector<WorkerError> serial =
        parallelForAll(1, 3, [](std::size_t i) {
            if (i == 1)
                CIM_FATAL("middle item");
        });
    ASSERT_EQ(serial.size(), 1u);
    EXPECT_EQ(serial[0].index, 1u);
}

TEST(ParallelForCancel, PreCancelledTokenRunsNothingAndThrows)
{
    CancelToken token;
    token.cancel();
    std::atomic<int> executed{0};
    EXPECT_THROW(parallelFor(4, 100,
                             [&](std::size_t) { ++executed; }, &token),
                 CancelledError);
    EXPECT_EQ(executed.load(), 0);
    // Serial path too.
    EXPECT_THROW(parallelFor(1, 100,
                             [&](std::size_t) { ++executed; }, &token),
                 CancelledError);
    EXPECT_EQ(executed.load(), 0);
}

TEST(ParallelForCancel, NullAndUncancelledTokensChangeNothing)
{
    CancelToken token;
    std::atomic<int> count{0};
    parallelFor(4, 50, [&](std::size_t) { ++count; }, nullptr);
    parallelFor(4, 50, [&](std::size_t) { ++count; }, &token);
    EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForCancel, SerialCancelMidRunStopsAtTheBoundary)
{
    // fn(2) cancels the token; item 2 itself completes (cancellation
    // acts between items, never inside one) and items 3+ never run.
    CancelToken token;
    std::vector<std::size_t> ran;
    try {
        parallelFor(1, 10,
                    [&](std::size_t i) {
                        ran.push_back(i);
                        if (i == 2)
                            token.cancel();
                    },
                    &token);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.reason(), CancelReason::User);
    }
    EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParallelForCancel, RealFailureTrumpsCancellation)
{
    // When a worker failure and a cancel race, the failure must
    // surface: the cancelled tail carries no information, the failure
    // is the thing the user needs to see.
    CancelToken token;
    try {
        parallelFor(2, 100,
                    [&](std::size_t i) {
                        if (i == 0) {
                            token.cancel();
                            CIM_FATAL("real failure on item 0");
                        }
                    },
                    &token);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("real failure"),
                  std::string::npos);
    } catch (const CancelledError&) {
        FAIL() << "cancellation must not mask the real failure";
    }
}

TEST(ParallelForAllCancel, ExecutedItemsAreAContiguousPrefix)
{
    // The claim counter hands out indices in order and workers poll the
    // token only between items, so whatever ran is exactly [0, k) and
    // the returned errors are exactly the CancelledError tail [k, n).
    // This invariant is what lets callers trust partial result arrays;
    // it runs under TSan in CI (threads > 1, shared token + slots).
    constexpr std::size_t n = 64;
    CancelToken token;
    std::vector<std::atomic<int>> ran(n);
    std::atomic<int> executed{0};
    std::vector<WorkerError> errors = parallelForAll(
        4, n,
        [&](std::size_t i) {
            ++ran[i];
            if (++executed == 8)
                token.cancel();
        },
        &token);

    ASSERT_FALSE(errors.empty());
    // Errors are sorted ascending; together with the executed items
    // they must partition [0, n) at a single boundary k.
    const std::size_t k = errors.front().index;
    ASSERT_EQ(errors.size(), n - k);
    for (std::size_t e = 0; e < errors.size(); ++e) {
        EXPECT_EQ(errors[e].index, k + e);
        try {
            std::rethrow_exception(errors[e].error);
            FAIL() << "expected CancelledError";
        } catch (const CancelledError& ce) {
            EXPECT_EQ(ce.reason(), CancelReason::User);
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(ran[i].load(), i < k ? 1 : 0) << "index " << i;
}

TEST(ParallelForAllCancel, PreCancelledTokenReportsEveryItemCancelled)
{
    CancelToken token;
    token.cancel(CancelReason::Deadline);
    std::vector<WorkerError> errors = parallelForAll(
        1, 5, [](std::size_t) { FAIL() << "must not run"; }, &token);
    ASSERT_EQ(errors.size(), 5u);
    for (std::size_t e = 0; e < errors.size(); ++e) {
        EXPECT_EQ(errors[e].index, e);
        try {
            std::rethrow_exception(errors[e].error);
        } catch (const CancelledError& ce) {
            EXPECT_EQ(ce.reason(), CancelReason::Deadline);
        }
    }
}

TEST(ParallelForCancel, AllItemsDoneBeforeCancelReturnsNormally)
{
    // A token that fires after the last item completed must not turn a
    // fully successful run into a CancelledError.
    CancelToken token;
    std::atomic<int> count{0};
    parallelFor(1, 10,
                [&](std::size_t i) {
                    ++count;
                    if (i == 9)
                        token.cancel(); // after the final item's work
                },
                &token);
    EXPECT_EQ(count.load(), 10);
}

} // namespace
} // namespace cimloop
