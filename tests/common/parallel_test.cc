/** parallelFor: coverage, serial fallback, and exception capture. */
#include "cimloop/common/parallel.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "cimloop/common/error.hh"

namespace cimloop {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    parallelFor(4, n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialFallbackRunsInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(1, 5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, HandlesMoreThreadsThanWork)
{
    std::atomic<int> count{0};
    parallelFor(16, 3, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, ZeroItemsIsANoop)
{
    parallelFor(4, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, RethrowsWorkerExceptionAfterJoin)
{
    // Before evaluateNetworkParallel used this, an exception inside a
    // worker lambda escaped std::thread and terminated the process.
    auto boom = [](std::size_t i) {
        if (i == 3)
            CIM_FATAL("worker failure on item ", i);
    };
    EXPECT_THROW(parallelFor(4, 100, boom), FatalError);
    EXPECT_THROW(parallelFor(1, 100, boom), FatalError); // serial path too
}

TEST(ParallelFor, AbandonsRemainingWorkAfterFailure)
{
    std::atomic<int> executed{0};
    try {
        parallelFor(2, 10000, [&](std::size_t i) {
            ++executed;
            if (i == 0)
                CIM_FATAL("fail fast");
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError&) {
    }
    // Not all 10000 items ran: workers saw the failure flag and stopped.
    EXPECT_LT(executed.load(), 10000);
}

} // namespace
} // namespace cimloop
