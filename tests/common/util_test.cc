#include "cimloop/common/util.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop {
namespace {

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 7), 1);
    EXPECT_EQ(ceilDiv(0, 7), 0);
}

TEST(PowerOfTwo, Predicate)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(-4));
}

TEST(PowerOfTwo, Next)
{
    EXPECT_EQ(nextPowerOfTwo(1), 1);
    EXPECT_EQ(nextPowerOfTwo(3), 4);
    EXPECT_EQ(nextPowerOfTwo(1000), 1024);
}

TEST(Log2Exact, ValidAndInvalid)
{
    EXPECT_EQ(log2Exact(1), 0);
    EXPECT_EQ(log2Exact(256), 8);
    EXPECT_THROW(log2Exact(3), FatalError);
}

TEST(BitsForCount, Basics)
{
    EXPECT_EQ(bitsForCount(1), 1);
    EXPECT_EQ(bitsForCount(2), 1);
    EXPECT_EQ(bitsForCount(3), 2);
    EXPECT_EQ(bitsForCount(256), 8);
    EXPECT_EQ(bitsForCount(257), 9);
}

TEST(Divisors, Exhaustive)
{
    EXPECT_EQ(divisorsOf(1), (std::vector<std::int64_t>{1}));
    EXPECT_EQ(divisorsOf(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(divisorsOf(13), (std::vector<std::int64_t>{1, 13}));
}

TEST(Divisors, MemoizedMatchesDirectComputation)
{
    // Trial division from scratch, independent of computeDivisors().
    auto direct = [](std::int64_t n) {
        std::vector<std::int64_t> out;
        for (std::int64_t d = 1; d <= n; ++d) {
            if (n % d == 0)
                out.push_back(d);
        }
        return out;
    };
    // Edge cases: 1, primes, perfect squares, and mixed composites.
    for (std::int64_t n : {std::int64_t{1}, std::int64_t{2},
                           std::int64_t{13}, std::int64_t{97},
                           std::int64_t{4}, std::int64_t{9},
                           std::int64_t{49}, std::int64_t{144},
                           std::int64_t{1024}, std::int64_t{1680}}) {
        EXPECT_EQ(divisorsOf(n), direct(n)) << "first call, n=" << n;
        EXPECT_EQ(divisorsOf(n), direct(n)) << "cached call, n=" << n;
        EXPECT_EQ(computeDivisors(n), direct(n)) << "uncached, n=" << n;
    }
}

TEST(Divisors, MemoizedReferencesAreStable)
{
    const std::vector<std::int64_t>& a = divisorsOf(360);
    const std::vector<std::int64_t>& b = divisorsOf(360);
    EXPECT_EQ(&a, &b); // cached: same underlying entry, not a copy
}

TEST(RngStreams, ForStreamDecorrelatesAndReproduces)
{
    Rng a = Rng::forStream(42, 0);
    Rng a2 = Rng::forStream(42, 0);
    Rng b = Rng::forStream(42, 1);
    std::uint64_t va = a.next();
    EXPECT_EQ(va, a2.next());  // same (seed, stream): same sequence
    EXPECT_NE(va, b.next());   // sibling stream: different sequence
    EXPECT_NE(va, Rng(42).next()); // and distinct from the raw seed
}

class DivisorsProperty : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(DivisorsProperty, EveryDivisorDivides)
{
    std::int64_t n = GetParam();
    auto divs = divisorsOf(n);
    EXPECT_EQ(divs.front(), 1);
    EXPECT_EQ(divs.back(), n);
    for (std::int64_t d : divs)
        EXPECT_EQ(n % d, 0) << "divisor " << d << " of " << n;
    // Sorted, unique.
    for (std::size_t i = 1; i < divs.size(); ++i)
        EXPECT_LT(divs[i - 1], divs[i]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivisorsProperty,
                         ::testing::Values(1, 2, 7, 36, 64, 97, 360, 1024,
                                           50257));

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtils, StartsWithAndLower)
{
    EXPECT_TRUE(startsWith("abcdef", "abc"));
    EXPECT_FALSE(startsWith("ab", "abc"));
    EXPECT_EQ(toLower("AbC"), "abc");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(3);
    double sum = 0.0, sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

} // namespace
} // namespace cimloop
