#include "cimloop/dist/encoding.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::dist {
namespace {

TEST(Names, RoundTrip)
{
    for (Encoding e :
         {Encoding::Unsigned, Encoding::TwosComplement, Encoding::Offset,
          Encoding::Differential, Encoding::Xnor, Encoding::MagnitudeOnly}) {
        EXPECT_EQ(encodingFromString(encodingName(e)), e);
    }
    EXPECT_THROW(encodingFromString("bogus"), FatalError);
}

TEST(Unsigned, IdentityCodes)
{
    Pmf ops = Pmf::uniformInt(0, 255);
    EncodedTensor enc = encodeOperands(ops, Encoding::Unsigned, 8);
    EXPECT_EQ(enc.bits, 8);
    EXPECT_EQ(enc.planes, 1);
    EXPECT_NEAR(enc.codes.mean(), 127.5, 1e-9);
    EXPECT_NEAR(enc.meanNormValue(), 0.5, 1e-9);
}

TEST(Unsigned, RejectsNegatives)
{
    Pmf ops = Pmf::uniformInt(-8, 8);
    EXPECT_THROW(encodeOperands(ops, Encoding::Unsigned, 8), FatalError);
}

TEST(TwosComplement, NegativeWrapsHigh)
{
    Pmf ops = Pmf::delta(-1.0);
    EncodedTensor enc = encodeOperands(ops, Encoding::TwosComplement, 8);
    EXPECT_NEAR(enc.codes.probOf(255.0), 1.0, 1e-12);
}

TEST(Offset, ZeroMapsToMidpoint)
{
    Pmf ops = Pmf::delta(0.0);
    EncodedTensor enc = encodeOperands(ops, Encoding::Offset, 8);
    EXPECT_NEAR(enc.codes.probOf(128.0), 1.0, 1e-12);
}

TEST(Offset, SymmetricOperandsGiveHalfLevel)
{
    Pmf ops = Pmf::quantizedGaussian(0.0, 20.0, -128, 127);
    EncodedTensor enc = encodeOperands(ops, Encoding::Offset, 8);
    EXPECT_NEAR(enc.meanNormValue(), 0.5, 0.01);
}

TEST(Differential, TwoPlanesSplitSign)
{
    // Operand +3 puts 3 on the positive plane, 0 on the negative plane.
    Pmf ops = Pmf::delta(3.0);
    EncodedTensor enc = encodeOperands(ops, Encoding::Differential, 8);
    EXPECT_EQ(enc.planes, 2);
    EXPECT_EQ(enc.bits, 7);
    EXPECT_NEAR(enc.codes.probOf(3.0), 0.5, 1e-12);
    EXPECT_NEAR(enc.codes.probOf(0.0), 0.5, 1e-12);
}

TEST(Differential, MeanLevelIsHalfMeanAbs)
{
    Pmf ops = Pmf::quantizedGaussian(0.0, 20.0, -128, 127);
    EncodedTensor enc = encodeOperands(ops, Encoding::Differential, 8);
    // E[plane code] = E[(|v| split across two planes)] = E[|v|] / 2.
    EXPECT_NEAR(enc.codes.mean(), ops.meanAbs() / 2.0, 0.05);
}

TEST(MagnitudeOnly, AbsoluteValues)
{
    Pmf ops = Pmf::uniformInt(-4, 4);
    EncodedTensor enc = encodeOperands(ops, Encoding::MagnitudeOnly, 4);
    EXPECT_EQ(enc.bits, 3);
    EXPECT_NEAR(enc.codes.mean(), ops.meanAbs(), 1e-9);
}

TEST(Xnor, BipolarFlagSet)
{
    Pmf ops = Pmf::uniformInt(-2, 1);
    EncodedTensor enc = encodeOperands(ops, Encoding::Xnor, 2);
    EXPECT_TRUE(enc.bipolarBits);
    EXPECT_EQ(enc.bits, 2);
}

TEST(BitStats, OnProbsUniform)
{
    Pmf ops = Pmf::uniformInt(0, 255);
    EncodedTensor enc = encodeOperands(ops, Encoding::Unsigned, 8);
    for (double p : enc.bitOnProbs())
        EXPECT_NEAR(p, 0.5, 1e-9);
    // Uniform codes: every bit toggles with probability 1/2 -> 4 flips.
    EXPECT_NEAR(enc.meanBitFlips(), 4.0, 1e-9);
}

TEST(BitStats, ConstantCodeNeverFlips)
{
    EncodedTensor enc =
        encodeOperands(Pmf::delta(5.0), Encoding::Unsigned, 8);
    EXPECT_NEAR(enc.meanBitFlips(), 0.0, 1e-12);
}

TEST(Slicing, WidthsAndMarginals)
{
    Pmf ops = Pmf::uniformInt(0, 255);
    EncodedTensor enc = encodeOperands(ops, Encoding::Unsigned, 8);
    auto slices = enc.slices(3); // 3 + 3 + 2 bits
    ASSERT_EQ(slices.size(), 3u);
    EXPECT_EQ(slices[0].bits, 3);
    EXPECT_EQ(slices[1].bits, 3);
    EXPECT_EQ(slices[2].bits, 2);
    // Uniform full code -> uniform slice marginals.
    EXPECT_NEAR(slices[0].codes.mean(), 3.5, 1e-9);
    EXPECT_NEAR(slices[2].codes.mean(), 1.5, 1e-9);
}

TEST(Slicing, ReassembleMean)
{
    Pmf ops = Pmf::quantizedGaussian(90.0, 30.0, 0, 255);
    EncodedTensor enc = encodeOperands(ops, Encoding::Unsigned, 8);
    auto slices = enc.slices(4);
    ASSERT_EQ(slices.size(), 2u);
    // E[code] = E[low] + 16 * E[high]: slicing preserves the first moment.
    double reassembled = slices[0].codes.mean() + 16.0 * slices[1].codes.mean();
    EXPECT_NEAR(reassembled, enc.codes.mean(), 1e-9);
}

TEST(SliceMixture, MatchesIncrementalReference)
{
    Pmf ops = Pmf::quantizedGaussian(90.0, 30.0, 0, 255);
    EncodedTensor enc = encodeOperands(ops, Encoding::Unsigned, 8);
    EncodedTensor mix = sliceMixture(enc, 2);
    // Reference: the k-step incremental equal-weight mix the engine used
    // before the single-pass merge.
    auto slices = enc.slices(2);
    Pmf chain = slices[0].codes;
    for (std::size_t i = 1; i < slices.size(); ++i) {
        double keep = static_cast<double>(i) / static_cast<double>(i + 1);
        chain = chain.mixedWith(slices[i].codes, keep);
    }
    ASSERT_EQ(mix.codes.size(), chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
        EXPECT_DOUBLE_EQ(mix.codes.points()[i].value,
                         chain.points()[i].value);
        EXPECT_NEAR(mix.codes.points()[i].prob, chain.points()[i].prob,
                    1e-12);
    }
    EXPECT_EQ(mix.bits, 2);
    EXPECT_EQ(mix.encoding, enc.encoding);
}

TEST(SliceMixture, SingleSlicePassesThrough)
{
    Pmf ops = Pmf::uniformInt(0, 255);
    EncodedTensor enc = encodeOperands(ops, Encoding::Unsigned, 8);
    EncodedTensor mix = sliceMixture(enc, 8); // one slice: the full code
    EXPECT_EQ(mix.bits, 8);
    ASSERT_EQ(mix.codes.size(), enc.codes.size());
    for (std::size_t i = 0; i < enc.codes.size(); ++i) {
        EXPECT_DOUBLE_EQ(mix.codes.points()[i].value,
                         enc.codes.points()[i].value);
        EXPECT_DOUBLE_EQ(mix.codes.points()[i].prob,
                         enc.codes.points()[i].prob);
    }
}

TEST(MeanMac, Independence)
{
    EncodedTensor in = encodeOperands(Pmf::delta(255.0),
                                      Encoding::Unsigned, 8);
    EncodedTensor wt = encodeOperands(Pmf::delta(255.0),
                                      Encoding::Unsigned, 8);
    EXPECT_NEAR(meanNormMac(in, wt), 1.0, 1e-12);
}

// Property sweep: every encoding produces codes within [0, 2^bits) and a
// normalized level within [0, 1].
class EncodingProperty
    : public ::testing::TestWithParam<std::tuple<Encoding, int>>
{};

TEST_P(EncodingProperty, CodesInRange)
{
    auto [e, bits] = GetParam();
    Pmf ops = (e == Encoding::Unsigned)
        ? Pmf::uniformInt(0, (1 << (bits - 1)) - 1)
        : Pmf::quantizedGaussian(0.0, (1 << bits) / 6.0,
                                 -(1 << (bits - 1)), (1 << (bits - 1)) - 1);
    EncodedTensor enc = encodeOperands(ops, e, bits);
    double max_code = enc.maxCode();
    for (const auto& pt : enc.codes.points()) {
        EXPECT_GE(pt.value, 0.0);
        EXPECT_LE(pt.value, max_code);
    }
    EXPECT_GE(enc.meanNormValue(), 0.0);
    EXPECT_LE(enc.meanNormValue(), 1.0);
    EXPECT_GE(enc.meanNormSquare(), 0.0);
    EXPECT_LE(enc.meanNormSquare(), 1.0);
    // Jensen on normalized codes.
    EXPECT_GE(enc.meanNormSquare() + 1e-12,
              enc.meanNormValue() * enc.meanNormValue());
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingProperty,
    ::testing::Combine(
        ::testing::Values(Encoding::Unsigned, Encoding::TwosComplement,
                          Encoding::Offset, Encoding::Differential,
                          Encoding::Xnor, Encoding::MagnitudeOnly),
        ::testing::Values(2, 4, 8)));

} // namespace
} // namespace cimloop::dist
