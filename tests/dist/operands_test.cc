#include "cimloop/dist/operands.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::dist {
namespace {

TEST(Profiles, Deterministic)
{
    OperandProfile a = synthesizeOperands("resnet18", 5, 21, 8, 8);
    OperandProfile b = synthesizeOperands("resnet18", 5, 21, 8, 8);
    EXPECT_EQ(a.inputs.points().size(), b.inputs.points().size());
    EXPECT_DOUBLE_EQ(a.inputs.mean(), b.inputs.mean());
    EXPECT_DOUBLE_EQ(a.weights.variance(), b.weights.variance());
}

TEST(Profiles, VaryAcrossLayers)
{
    // The whole point of the data-value-dependent model (paper Fig. 4/6):
    // distributions differ layer to layer.
    OperandProfile l3 = synthesizeOperands("resnet18", 3, 21, 8, 8);
    OperandProfile l9 = synthesizeOperands("resnet18", 9, 21, 8, 8);
    EXPECT_NE(l3.inputs.mean(), l9.inputs.mean());
    EXPECT_NE(l3.weights.variance(), l9.weights.variance());
}

TEST(Profiles, VaryAcrossNetworks)
{
    OperandProfile r = synthesizeOperands("resnet18", 4, 21, 8, 8);
    OperandProfile g = synthesizeOperands("gpt2", 4, 21, 8, 8);
    EXPECT_NE(r.inputs.mean(), g.inputs.mean());
}

TEST(Profiles, FirstLayerIsSigned)
{
    OperandProfile l0 = synthesizeOperands("resnet18", 0, 21, 8, 8);
    EXPECT_LT(l0.inputs.minValue(), 0.0);
}

TEST(Profiles, LaterLayersAreReLU)
{
    for (int layer : {1, 5, 10, 20}) {
        OperandProfile p = synthesizeOperands("resnet18", layer, 21, 8, 8);
        EXPECT_GE(p.inputs.minValue(), 0.0) << "layer " << layer;
        EXPECT_GT(p.inputSparsity, 0.2) << "layer " << layer;
        EXPECT_LT(p.inputSparsity, 0.95) << "layer " << layer;
    }
}

TEST(Profiles, WeightsZeroMeanSigned)
{
    OperandProfile p = synthesizeOperands("vit", 2, 7, 8, 8);
    EXPECT_NEAR(p.weights.mean(), 0.0, 2.0);
    EXPECT_LT(p.weights.minValue(), 0.0);
    EXPECT_GT(p.weights.maxValue(), 0.0);
}

TEST(Profiles, RespectBitRanges)
{
    OperandProfile p = synthesizeOperands("resnet18", 2, 21, 4, 6);
    EXPECT_LE(p.inputs.maxValue(), 7.0);    // 4b signed: max +7
    EXPECT_GE(p.weights.minValue(), -32.0); // 6b signed: min -32
    EXPECT_LE(p.weights.maxValue(), 31.0);
}

TEST(Profiles, InvalidArgsFatal)
{
    EXPECT_THROW(synthesizeOperands("x", -1, 5, 8, 8), PanicError);
    EXPECT_THROW(synthesizeOperands("x", 0, 5, 0, 8), PanicError);
    EXPECT_THROW(synthesizeOperands("x", 0, 5, 8, 17), PanicError);
}

TEST(Profiles, BinaryOperandsSupported)
{
    // 1b operands (binarized networks, paper Fig. 16 sweeps to 1 bit).
    OperandProfile p = synthesizeOperands("resnet18", 3, 21, 1, 1);
    EXPECT_LE(p.inputs.maxValue(), 1.0);
    EXPECT_GE(p.inputs.minValue(), 0.0);
    EXPECT_GE(p.weights.minValue(), -1.0);
    EXPECT_GT(p.inputs.probOf(1.0), 0.1);
    EXPECT_GT(p.weights.probOf(-1.0), 0.2);
}

TEST(StableHash, DistinctAndStable)
{
    EXPECT_EQ(stableHash("abc"), stableHash("abc"));
    EXPECT_NE(stableHash("abc"), stableHash("abd"));
    EXPECT_NE(stableHash(""), 0u);
}

class LayerSweep : public ::testing::TestWithParam<int>
{};

TEST_P(LayerSweep, DistributionsWellFormed)
{
    OperandProfile p =
        synthesizeOperands("resnet18", GetParam(), 21, 8, 8);
    for (const Pmf* pmf : {&p.inputs, &p.weights, &p.outputs}) {
        double total = 0.0;
        for (const auto& pt : pmf->points())
            total += pt.prob;
        EXPECT_NEAR(total, 1.0, 1e-9);
        EXPECT_GT(pmf->size(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerSweep,
                         ::testing::Range(0, 21));

} // namespace
} // namespace cimloop::dist
