/**
 * Property-based invariant tests for Pmf: seeded random PMFs pushed
 * through fromPoints / convolveWith / mixture / downsampling must keep
 * the invariants every statistical-pipeline claim rests on —
 *
 *   - total probability ≈ 1,
 *   - the exact mean under support capping (downsampling merges are
 *     probability-weighted),
 *   - sorted, duplicate-free support,
 *   - lattice fast path vs point-list fallback agreement ≤ 1e-12.
 *
 * Each property runs kCases randomized cases drawn from counter-derived
 * Rng::forStream streams, so failures reproduce exactly and adding a
 * case never reshuffles the others.
 */
#include "cimloop/dist/pmf.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "cimloop/common/util.hh"
#include "cimloop/dist/simd.hh"

namespace cimloop::dist {
namespace {

constexpr int kCases = 200;
constexpr std::uint64_t kSuiteSeed = 0xC0FFEE;

double
totalProb(const Pmf& p)
{
    double t = 0.0;
    for (const Pmf::Point& pt : p.points())
        t += pt.prob;
    return t;
}

void
expectSortedUnique(const Pmf& p, const char* where, int case_i)
{
    const std::vector<Pmf::Point>& pts = p.points();
    ASSERT_FALSE(pts.empty()) << where << " case " << case_i;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        ASSERT_LT(pts[i - 1].value, pts[i].value)
            << where << " case " << case_i << " index " << i;
    }
}

/** Random integer-lattice point list: duplicates, unsorted, 1-40 pts. */
std::vector<Pmf::Point>
randomIntegerPoints(Rng& rng)
{
    const std::size_t n = 1 + rng.below(40);
    std::vector<Pmf::Point> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = static_cast<double>(
            static_cast<std::int64_t>(rng.below(101)) - 50);
        pts.push_back({v, rng.uniform() + 1e-3});
    }
    return pts;
}

Pmf
randomIntegerPmf(Rng& rng)
{
    return Pmf::fromPoints(randomIntegerPoints(rng));
}

/** Random real-valued (off-lattice) point list. */
std::vector<Pmf::Point>
randomRealPoints(Rng& rng)
{
    const std::size_t n = 1 + rng.below(40);
    std::vector<Pmf::Point> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        pts.push_back({20.0 * rng.gaussian() + 0.25,
                       rng.uniform() + 1e-3});
    return pts;
}

/** Reference fromPoints: sort + merge duplicates + normalize, no fast
 *  path. The lattice path must agree with this to ~1 ULP. */
std::vector<Pmf::Point>
referenceFromPoints(const std::vector<Pmf::Point>& pts)
{
    std::map<double, double> acc;
    double total = 0.0;
    for (const Pmf::Point& pt : pts) {
        acc[pt.value] += pt.prob;
        total += pt.prob;
    }
    std::vector<Pmf::Point> out;
    out.reserve(acc.size());
    for (const auto& [v, p] : acc)
        out.push_back({v, p / total});
    return out;
}

TEST(PmfProperty, FromPointsPreservesTotalProbability)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed, static_cast<std::uint64_t>(c));
        Pmf p = (c % 2 == 0) ? randomIntegerPmf(rng)
                             : Pmf::fromPoints(randomRealPoints(rng));
        EXPECT_NEAR(totalProb(p), 1.0, 1e-12) << "case " << c;
    }
}

TEST(PmfProperty, FromPointsYieldsSortedUniqueSupport)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 1,
                                 static_cast<std::uint64_t>(c));
        Pmf p = (c % 2 == 0) ? randomIntegerPmf(rng)
                             : Pmf::fromPoints(randomRealPoints(rng));
        expectSortedUnique(p, "fromPoints", c);
    }
}

TEST(PmfProperty, FromPointsLatticePathMatchesReference)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 2,
                                 static_cast<std::uint64_t>(c));
        std::vector<Pmf::Point> raw = randomIntegerPoints(rng);
        Pmf fast = Pmf::fromPoints(raw); // integer support: lattice path
        std::vector<Pmf::Point> ref = referenceFromPoints(raw);
        ASSERT_EQ(fast.size(), ref.size()) << "case " << c;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(fast.points()[i].value, ref[i].value)
                << "case " << c;
            EXPECT_NEAR(fast.points()[i].prob, ref[i].prob, 1e-12)
                << "case " << c;
        }
    }
}

TEST(PmfProperty, ConvolvePreservesTotalProbability)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 3,
                                 static_cast<std::uint64_t>(c));
        Pmf a = randomIntegerPmf(rng);
        Pmf b = randomIntegerPmf(rng);
        EXPECT_NEAR(totalProb(a.convolveWith(b)), 1.0, 1e-12)
            << "case " << c;
    }
}

TEST(PmfProperty, ConvolveYieldsSortedUniqueSupport)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 4,
                                 static_cast<std::uint64_t>(c));
        Pmf a = randomIntegerPmf(rng);
        Pmf b = (c % 2 == 0) ? randomIntegerPmf(rng)
                             : Pmf::fromPoints(randomRealPoints(rng));
        expectSortedUnique(a.convolveWith(b), "convolve", c);
    }
}

TEST(PmfProperty, ConvolveMeanIsSumOfMeans)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 5,
                                 static_cast<std::uint64_t>(c));
        Pmf a = randomIntegerPmf(rng);
        Pmf b = randomIntegerPmf(rng);
        double exact = a.mean() + b.mean();
        EXPECT_NEAR(a.convolveWith(b).mean(), exact,
                    1e-9 * (1.0 + std::abs(exact)))
            << "case " << c;
    }
}

TEST(PmfProperty, ConvolveMeanSurvivesAggressiveCapping)
{
    // Downsampling to a handful of support points must not move the
    // mean: merges are probability-weighted.
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 6,
                                 static_cast<std::uint64_t>(c));
        Pmf a = randomIntegerPmf(rng);
        Pmf b = randomIntegerPmf(rng);
        double exact = a.mean() + b.mean();
        Pmf capped = a.convolveWith(b, 8);
        EXPECT_LE(capped.size(), 8u) << "case " << c;
        EXPECT_NEAR(capped.mean(), exact, 1e-9 * (1.0 + std::abs(exact)))
            << "case " << c;
    }
}

TEST(PmfProperty, ConvolveLatticePathMatchesFallback)
{
    // Shifting the operands by +/- 0.5 forces the sort-merge fallback
    // while keeping every pairwise sum bit-identical (halves are exact
    // in binary floating point), so the two kernels must produce the
    // same support and the same masses to ~1 ULP.
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 7,
                                 static_cast<std::uint64_t>(c));
        Pmf a = randomIntegerPmf(rng);
        Pmf b = randomIntegerPmf(rng);
        Pmf fast = a.convolveWith(b);

        Pmf a_shift = a.mapped([](double v) { return v + 0.5; });
        Pmf b_shift = b.mapped([](double v) { return v - 0.5; });
        Pmf slow = a_shift.convolveWith(b_shift);

        ASSERT_EQ(fast.size(), slow.size()) << "case " << c;
        for (std::size_t i = 0; i < fast.size(); ++i) {
            EXPECT_EQ(fast.points()[i].value, slow.points()[i].value)
                << "case " << c << " index " << i;
            EXPECT_NEAR(fast.points()[i].prob, slow.points()[i].prob,
                        1e-12)
                << "case " << c << " index " << i;
        }
    }
}

TEST(PmfProperty, MixturePreservesTotalProbability)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 8,
                                 static_cast<std::uint64_t>(c));
        std::vector<Pmf> parts;
        const std::size_t k = 1 + rng.below(6);
        for (std::size_t i = 0; i < k; ++i)
            parts.push_back(randomIntegerPmf(rng));
        Pmf mix = Pmf::mixture(parts);
        EXPECT_NEAR(totalProb(mix), 1.0, 1e-12) << "case " << c;
        expectSortedUnique(mix, "mixture", c);
    }
}

TEST(PmfProperty, MixtureMeanIsAverageOfComponentMeans)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 9,
                                 static_cast<std::uint64_t>(c));
        std::vector<Pmf> parts;
        const std::size_t k = 1 + rng.below(6);
        double mean_sum = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            parts.push_back(randomIntegerPmf(rng));
            mean_sum += parts.back().mean();
        }
        double expected = mean_sum / static_cast<double>(k);
        EXPECT_NEAR(Pmf::mixture(parts).mean(), expected,
                    1e-9 * (1.0 + std::abs(expected)))
            << "case " << c;
    }
}

TEST(PmfProperty, MixedWithInterpolatesMeans)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 10,
                                 static_cast<std::uint64_t>(c));
        Pmf a = randomIntegerPmf(rng);
        Pmf b = randomIntegerPmf(rng);
        double w = rng.uniform();
        double expected = w * a.mean() + (1.0 - w) * b.mean();
        EXPECT_NEAR(a.mixedWith(b, w).mean(), expected,
                    1e-9 * (1.0 + std::abs(expected)))
            << "case " << c;
    }
}

TEST(PmfProperty, MappedAffineTransformsMeanLinearly)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 11,
                                 static_cast<std::uint64_t>(c));
        Pmf p = randomIntegerPmf(rng);
        double scale = 0.25 + rng.uniform();
        double shift = 10.0 * rng.gaussian();
        Pmf q = p.mapped(
            [=](double v) { return scale * v + shift; });
        EXPECT_NEAR(totalProb(q), 1.0, 1e-12) << "case " << c;
        double expected = scale * p.mean() + shift;
        EXPECT_NEAR(q.mean(), expected,
                    1e-9 * (1.0 + std::abs(expected)))
            << "case " << c;
    }
}

TEST(PmfProperty, SampleAlwaysReturnsASupportValue)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 12,
                                 static_cast<std::uint64_t>(c));
        Pmf p = (c % 2 == 0) ? randomIntegerPmf(rng)
                             : Pmf::fromPoints(randomRealPoints(rng));
        double v = p.sample(rng.uniform());
        EXPECT_GT(p.probOf(v), 0.0) << "case " << c;
    }
}

TEST(PmfProperty, VarianceIsNonNegative)
{
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 13,
                                 static_cast<std::uint64_t>(c));
        Pmf p = (c % 2 == 0) ? randomIntegerPmf(rng)
                             : Pmf::fromPoints(randomRealPoints(rng));
        EXPECT_GE(p.variance(), -1e-9) << "case " << c;
    }
}

// ---------------------------------------------------------------------
// SIMD bit-identity: the AVX2 and portable kernels must produce
// byte-identical Pmfs (EXACT double equality, not tolerance) across the
// same randomized generators the invariant suite uses. This is the
// contract that lets goldens stay byte-stable whichever backend runs.
// ---------------------------------------------------------------------

/** Runs @p fn with the SIMD backend forced to @p b, then re-detects. */
template <typename Fn>
auto
runUnder(simd::Backend b, Fn&& fn)
{
    simd::setBackend(b);
    auto result = fn();
    simd::resetBackend();
    return result;
}

void
expectBitIdentical(const Pmf& portable, const Pmf& avx2, int case_i)
{
    ASSERT_EQ(portable.size(), avx2.size()) << "case " << case_i;
    for (std::size_t i = 0; i < portable.size(); ++i) {
        // EXPECT_EQ on doubles: exact equality, no ULP slack.
        EXPECT_EQ(portable.points()[i].value, avx2.points()[i].value)
            << "case " << case_i << " index " << i;
        EXPECT_EQ(portable.points()[i].prob, avx2.points()[i].prob)
            << "case " << case_i << " index " << i;
    }
}

#define SKIP_WITHOUT_AVX2()                                               \
    if (!simd::avx2Supported())                                           \
    GTEST_SKIP() << "AVX2 unavailable on this CPU/build"

TEST(PmfSimdProperty, FromPointsBitIdenticalAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    for (int c = 0; c < kCases; ++c) {
        auto build = [&](simd::Backend b) {
            return runUnder(b, [&] {
                Rng rng = Rng::forStream(kSuiteSeed + 14,
                                         static_cast<std::uint64_t>(c));
                return (c % 2 == 0)
                    ? Pmf::fromPoints(randomIntegerPoints(rng))
                    : Pmf::fromPoints(randomRealPoints(rng));
            });
        };
        expectBitIdentical(build(simd::Backend::Portable),
                           build(simd::Backend::Avx2), c);
    }
}

TEST(PmfSimdProperty, ConvolveBitIdenticalAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    // Odd cases cap the support at 8 points, so the downsample gap
    // kernel (adjacentGaps) is exercised along with the convolve axpy.
    for (int c = 0; c < kCases; ++c) {
        auto build = [&](simd::Backend b) {
            return runUnder(b, [&] {
                Rng rng = Rng::forStream(kSuiteSeed + 15,
                                         static_cast<std::uint64_t>(c));
                Pmf a = randomIntegerPmf(rng);
                Pmf bb = randomIntegerPmf(rng);
                return (c % 2 == 0) ? a.convolveWith(bb)
                                    : a.convolveWith(bb, 8);
            });
        };
        expectBitIdentical(build(simd::Backend::Portable),
                           build(simd::Backend::Avx2), c);
    }
}

TEST(PmfSimdProperty, ConvolveFallbackBitIdenticalAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    // Off-lattice operands route through the untouched sort-merge
    // fallback; only normalize/downsample touch SIMD kernels there.
    for (int c = 0; c < kCases; ++c) {
        auto build = [&](simd::Backend b) {
            return runUnder(b, [&] {
                Rng rng = Rng::forStream(kSuiteSeed + 16,
                                         static_cast<std::uint64_t>(c));
                Pmf a = Pmf::fromPoints(randomRealPoints(rng));
                Pmf bb = Pmf::fromPoints(randomRealPoints(rng));
                return a.convolveWith(bb, 16);
            });
        };
        expectBitIdentical(build(simd::Backend::Portable),
                           build(simd::Backend::Avx2), c);
    }
}

TEST(PmfSimdProperty, MixtureBitIdenticalAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    for (int c = 0; c < kCases; ++c) {
        auto build = [&](simd::Backend b) {
            return runUnder(b, [&] {
                Rng rng = Rng::forStream(kSuiteSeed + 17,
                                         static_cast<std::uint64_t>(c));
                std::vector<Pmf> parts;
                const std::size_t k = 1 + rng.below(6);
                for (std::size_t i = 0; i < k; ++i)
                    parts.push_back(
                        (c % 3 == 0)
                            ? Pmf::fromPoints(randomRealPoints(rng))
                            : randomIntegerPmf(rng));
                return Pmf::mixture(parts);
            });
        };
        expectBitIdentical(build(simd::Backend::Portable),
                           build(simd::Backend::Avx2), c);
    }
}

TEST(PmfSimdProperty, MixtureLatticePathMatchesConcatReference)
{
    // The single-pass dense mixture must reproduce the old
    // concat-then-fromPoints result exactly (same addends, same order).
    // Backend-independent, so it also runs on non-AVX2 hosts.
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 18,
                                 static_cast<std::uint64_t>(c));
        std::vector<Pmf> parts;
        const std::size_t k = 1 + rng.below(6);
        for (std::size_t i = 0; i < k; ++i)
            parts.push_back(randomIntegerPmf(rng));
        Pmf mix = Pmf::mixture(parts);

        std::vector<Pmf::Point> concat;
        const double w = 1.0 / static_cast<double>(k);
        for (const Pmf& part : parts) {
            for (const Pmf::Point& pt : part.points())
                concat.push_back({pt.value, pt.prob * w});
        }
        expectBitIdentical(Pmf::fromPoints(std::move(concat)), mix, c);
    }
}

TEST(PmfSimdProperty, RawKernelsBitIdenticalAcrossBackends)
{
    SKIP_WITHOUT_AVX2();
    // Kernel-level check across lengths 0..40 (covers every tail
    // residue) with random data: both backends must agree exactly on
    // elementwise kernels AND on the fixed-association reductions.
    for (int c = 0; c < kCases; ++c) {
        Rng rng = Rng::forStream(kSuiteSeed + 19,
                                 static_cast<std::uint64_t>(c));
        const std::size_t n = rng.below(41);
        std::vector<double> x(n), x2(n), g(n), dst_p(n), dst_a(n);
        std::vector<Pmf::Point> pts_p(n), pts_a(n);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = rng.gaussian();
            x2[i] = x[i] * x[i];
            g[i] = rng.uniform();
            dst_p[i] = dst_a[i] = rng.gaussian();
            pts_p[i] = pts_a[i] = {rng.gaussian() * 100.0,
                                   rng.uniform() + 1e-3};
        }
        const double scale = rng.gaussian();
        const double div = rng.uniform() + 0.5;

        simd::setBackend(simd::Backend::Portable);
        simd::axpy(dst_p.data(), x.data(), scale, n);
        double sum_p = simd::sum(x.data(), n);
        double dot_p = simd::dot(x.data(), g.data(), n);
        double s_p = 0.0, e_p = 0.0;
        simd::dotPair(x.data(), x2.data(), g.data(), n, s_p, e_p);
        std::vector<double> gaps_p(n > 0 ? n : 1);
        if (n > 0)
            simd::adjacentGaps(pts_p.data(), n, gaps_p.data());
        simd::scaleProbs(pts_p.data(), n, scale);
        simd::divProbs(pts_p.data(), n, div);

        simd::setBackend(simd::Backend::Avx2);
        simd::axpy(dst_a.data(), x.data(), scale, n);
        double sum_a = simd::sum(x.data(), n);
        double dot_a = simd::dot(x.data(), g.data(), n);
        double s_a = 0.0, e_a = 0.0;
        simd::dotPair(x.data(), x2.data(), g.data(), n, s_a, e_a);
        std::vector<double> gaps_a(n > 0 ? n : 1);
        if (n > 0)
            simd::adjacentGaps(pts_a.data(), n, gaps_a.data());
        simd::scaleProbs(pts_a.data(), n, scale);
        simd::divProbs(pts_a.data(), n, div);
        simd::resetBackend();

        EXPECT_EQ(sum_p, sum_a) << "case " << c << " n=" << n;
        EXPECT_EQ(dot_p, dot_a) << "case " << c << " n=" << n;
        EXPECT_EQ(s_p, s_a) << "case " << c << " n=" << n;
        EXPECT_EQ(e_p, e_a) << "case " << c << " n=" << n;
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(dst_p[i], dst_a[i]) << "case " << c << " i=" << i;
            EXPECT_EQ(pts_p[i].value, pts_a[i].value)
                << "case " << c << " i=" << i;
            EXPECT_EQ(pts_p[i].prob, pts_a[i].prob)
                << "case " << c << " i=" << i;
            if (i + 1 < n)
                EXPECT_EQ(gaps_p[i], gaps_a[i])
                    << "case " << c << " i=" << i;
        }
    }
}

} // namespace
} // namespace cimloop::dist
