#include "cimloop/dist/pmf.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::dist {
namespace {

double
totalProb(const Pmf& p)
{
    double t = 0.0;
    for (const auto& pt : p.points())
        t += pt.prob;
    return t;
}

TEST(Delta, Moments)
{
    Pmf p = Pmf::delta(3.0);
    EXPECT_DOUBLE_EQ(p.mean(), 3.0);
    EXPECT_DOUBLE_EQ(p.meanSquare(), 9.0);
    EXPECT_DOUBLE_EQ(p.variance(), 0.0);
    EXPECT_DOUBLE_EQ(p.probOf(3.0), 1.0);
    EXPECT_DOUBLE_EQ(p.probOf(4.0), 0.0);
}

TEST(UniformInt, Moments)
{
    Pmf p = Pmf::uniformInt(0, 9);
    EXPECT_EQ(p.size(), 10u);
    EXPECT_NEAR(p.mean(), 4.5, 1e-12);
    EXPECT_NEAR(p.variance(), 8.25, 1e-12);
    EXPECT_NEAR(totalProb(p), 1.0, 1e-12);
}

TEST(FromPoints, MergesDuplicatesAndNormalizes)
{
    Pmf p = Pmf::fromPoints({{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}});
    EXPECT_EQ(p.size(), 2u);
    EXPECT_NEAR(p.probOf(1.0), 0.5, 1e-12);
    EXPECT_NEAR(p.probOf(2.0), 0.5, 1e-12);
}

TEST(FromSamples, Empirical)
{
    Pmf p = Pmf::fromSamples({1, 1, 2, 4});
    EXPECT_NEAR(p.probOf(1.0), 0.5, 1e-12);
    EXPECT_NEAR(p.mean(), 2.0, 1e-12);
}

TEST(QuantizedGaussian, CapturesMoments)
{
    Pmf p = Pmf::quantizedGaussian(0.0, 20.0, -128, 127);
    EXPECT_NEAR(p.mean(), 0.0, 0.1);
    EXPECT_NEAR(std::sqrt(p.variance()), 20.0, 0.5);
    EXPECT_NEAR(totalProb(p), 1.0, 1e-9);
}

TEST(QuantizedGaussian, ClampsToRange)
{
    // Mean far outside the range: everything piles at the boundary.
    Pmf p = Pmf::quantizedGaussian(1000.0, 5.0, -128, 127);
    EXPECT_NEAR(p.probOf(127.0), 1.0, 1e-9);
}

TEST(ReluGaussian, HalfMassAtZero)
{
    Pmf p = Pmf::reluGaussian(0.0, 30.0, 127);
    // Half of a zero-mean Gaussian collapses onto zero after ReLU.
    EXPECT_NEAR(p.probOf(0.0), 0.5, 0.02);
    EXPECT_GE(p.minValue(), 0.0);
}

TEST(Mapped, MergesCollisions)
{
    Pmf p = Pmf::uniformInt(-2, 2).mapped([](double v) {
        return std::abs(v);
    });
    EXPECT_NEAR(p.probOf(0.0), 0.2, 1e-12);
    EXPECT_NEAR(p.probOf(1.0), 0.4, 1e-12);
    EXPECT_NEAR(p.probOf(2.0), 0.4, 1e-12);
}

TEST(Convolve, SumOfUniformDice)
{
    Pmf die = Pmf::uniformInt(1, 6);
    Pmf two = die.convolveWith(die);
    EXPECT_NEAR(two.probOf(7.0), 6.0 / 36.0, 1e-12);
    EXPECT_NEAR(two.probOf(2.0), 1.0 / 36.0, 1e-12);
    EXPECT_NEAR(two.mean(), 7.0, 1e-12);
}

TEST(Convolve, MeanIsExactEvenWhenCapped)
{
    Pmf wide = Pmf::uniformInt(0, 999);
    Pmf sum = wide.convolveWith(wide, 64); // heavy merging
    // Merging is probability-weighted, so the mean is preserved.
    EXPECT_NEAR(sum.mean(), 999.0, 1e-6);
    EXPECT_LE(sum.size(), 64u);
}

TEST(Convolve, LatticeAndPointListPathsAgree)
{
    // Integer supports take the dense lattice kernel; shifting each
    // operand by +0.25 moves the support off the lattice and forces the
    // sort-merge fallback. Both must produce the same distribution (the
    // fallback's support is offset by the combined shift of 0.5).
    Pmf a = Pmf::quantizedGaussian(0.0, 25.0, -128, 127);
    Pmf b = Pmf::quantizedGaussian(10.0, 15.0, -128, 127);
    Pmf lattice = a.convolveWith(b, 1 << 20); // uncapped
    Pmf fallback =
        a.mapped([](double v) { return v + 0.25; })
            .convolveWith(b.mapped([](double v) { return v + 0.25; }),
                          1 << 20);
    ASSERT_EQ(lattice.size(), fallback.size());
    for (std::size_t i = 0; i < lattice.size(); ++i) {
        EXPECT_NEAR(lattice.points()[i].value + 0.5,
                    fallback.points()[i].value, 1e-9);
        EXPECT_NEAR(lattice.points()[i].prob, fallback.points()[i].prob,
                    1e-12);
    }
}

TEST(Convolve, CappedMergePreservesMomentsAndTail)
{
    // A far outlier cluster stresses the support cap: the old blind
    // pairwise merge would average the outlier into its distant
    // neighbor, shifting the upper tail badly. Gap-aware merging keeps
    // nearby points merging with each other and the outlier intact.
    Pmf bulk = Pmf::uniformInt(0, 63);
    Pmf spike = Pmf::fromPoints({{0.0, 0.9}, {1000.0, 0.1}});
    Pmf sum = bulk.convolveWith(spike, 70);
    EXPECT_LE(sum.size(), 70u);
    double exact_mean = bulk.mean() + spike.mean();
    double exact_var = bulk.variance() + spike.variance();
    EXPECT_NEAR(sum.mean(), exact_mean, 1e-9 * (1.0 + exact_mean));
    // Merging nearest neighbors only collapses sub-gap structure, so
    // the variance moves by at most the bulk's own spread.
    EXPECT_NEAR(sum.variance(), exact_var, 0.02 * exact_var);
    // The outlier cluster must survive near +1000, not drift inward.
    EXPECT_GE(sum.maxValue(), 990.0);
}

TEST(Mixture, SinglePassMatchesIncrementalChain)
{
    std::vector<Pmf> parts = {Pmf::uniformInt(0, 7),
                              Pmf::uniformInt(4, 11),
                              Pmf::delta(2.0),
                              Pmf::quantizedGaussian(0.0, 3.0, -16, 15)};
    Pmf single = Pmf::mixture(parts);
    // Reference: the old k-step incremental equal-weight mix.
    Pmf chain = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) {
        double keep = static_cast<double>(i) / static_cast<double>(i + 1);
        chain = chain.mixedWith(parts[i], keep);
    }
    ASSERT_EQ(single.size(), chain.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
        EXPECT_DOUBLE_EQ(single.points()[i].value, chain.points()[i].value);
        EXPECT_NEAR(single.points()[i].prob, chain.points()[i].prob, 1e-12);
    }
}

TEST(Mixture, Weights)
{
    Pmf p = Pmf::delta(0.0).mixedWith(Pmf::delta(10.0), 0.25);
    EXPECT_NEAR(p.probOf(0.0), 0.25, 1e-12);
    EXPECT_NEAR(p.probOf(10.0), 0.75, 1e-12);
    EXPECT_NEAR(p.mean(), 7.5, 1e-12);
}

TEST(Expectation, ArbitraryFunction)
{
    Pmf p = Pmf::uniformInt(1, 4);
    double e = p.expectation([](double v) { return v * v * v; });
    EXPECT_NEAR(e, (1 + 8 + 27 + 64) / 4.0, 1e-12);
}

TEST(Sample, InverseCdf)
{
    Pmf p = Pmf::fromPoints({{1.0, 0.5}, {2.0, 0.3}, {3.0, 0.2}});
    EXPECT_DOUBLE_EQ(p.sample(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.sample(0.49), 1.0);
    EXPECT_DOUBLE_EQ(p.sample(0.51), 2.0);
    EXPECT_DOUBLE_EQ(p.sample(0.85), 3.0);
    EXPECT_DOUBLE_EQ(p.sample(0.999999), 3.0);
}

TEST(Errors, EmptyAndInvalid)
{
    Pmf empty;
    EXPECT_THROW(empty.minValue(), PanicError);
    EXPECT_THROW(Pmf::fromPoints({{1.0, 0.0}}), FatalError); // zero mass
}

class MomentProperty : public ::testing::TestWithParam<double>
{};

TEST_P(MomentProperty, VarianceNonNegative)
{
    double sigma = GetParam();
    Pmf p = Pmf::quantizedGaussian(3.0, sigma, -64, 63);
    EXPECT_GE(p.variance(), -1e-9);
    EXPECT_NEAR(totalProb(p), 1.0, 1e-9);
    // Jensen: E[X^2] >= E[X]^2.
    EXPECT_GE(p.meanSquare() + 1e-12, p.mean() * p.mean());
}

INSTANTIATE_TEST_SUITE_P(Sigmas, MomentProperty,
                         ::testing::Values(0.5, 1.0, 5.0, 20.0, 100.0));

} // namespace
} // namespace cimloop::dist
